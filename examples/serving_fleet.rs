//! Fleet-scale serving: a cluster of simulated RPUs under a stream of mixed
//! key-switch requests. The serving layer sits on top of the single-device
//! simulator — each request class is executed once through the regular
//! session path, and a deterministic virtual-clock simulation plays seeded
//! arrivals against the fleet. No wall-clock anywhere: same seed, same
//! report, to the bit.
//!
//! Run with: `cargo run -p ciflow --release --example serving_fleet`

use ciflow::api::Session;
use ciflow::serve::{try_serve_in, ArrivalProcess, DispatchPolicy, RequestClass, ServeConfig};
use ciflow::sweep::try_serve_sweep_in;
use ciflow::{Dataflow, HksBenchmark};
use rpu::RpuConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The served mix: mostly rotation batches and relinearizations, a few
    // rescaling chains, the occasional (heavy) bootstrap key-switch.
    let classes = RequestClass::standard_mix(HksBenchmark::ARK);
    println!("request mix:");
    for class in &classes {
        println!("  {class}");
    }

    // One session shared by every run below: each class's schedule is built
    // once and reused across cluster sizes, bandwidths and arrival models.
    let session = Session::new();
    let rpu = RpuConfig::ciflow_baseline().with_bandwidth(64.0);

    // Closed loop: 8 clients, one request in flight each, zero think time.
    // Offered load self-throttles to the fleet's capacity.
    let closed = ServeConfig::new(
        4,
        classes.clone(),
        ArrivalProcess::ClosedLoop {
            concurrency: 8,
            requests: 96,
        },
    )
    .with_rpu(rpu.clone())
    .with_seed(1);
    let report = try_serve_in(&session, &closed, Dataflow::OutputCentric)?;
    println!("\nclosed loop on 4 RPUs @ 64 GB/s:\n  {report}");
    assert_eq!(report.completed, 96);
    assert!(
        report.mean_utilization() > 0.5,
        "8 clients keep 4 RPUs busy"
    );

    // Open loop at ~80% of the closed-loop throughput: queues stay bounded.
    let rate = 0.8 * report.throughput_rps;
    let open = ServeConfig::new(
        4,
        classes.clone(),
        ArrivalProcess::OpenLoop {
            rate_rps: rate,
            requests: 96,
        },
    )
    .with_rpu(rpu.clone())
    .with_seed(1);
    let open_report = try_serve_in(&session, &open, Dataflow::OutputCentric)?;
    println!(
        "\nopen loop at {:.0} req/s on the same fleet:\n  {open_report}",
        rate
    );

    // Determinism: replaying the same seed reproduces the report exactly.
    let replay = try_serve_in(&session, &open, Dataflow::OutputCentric)?;
    assert_eq!(open_report, replay, "same seed, same report");

    // Dispatch policies: same traffic, different placement.
    println!("\ndispatch policies (open loop, same seed):");
    for policy in DispatchPolicy::all() {
        let report = try_serve_in(
            &session,
            &open.clone().with_policy(policy),
            Dataflow::OutputCentric,
        )?;
        println!(
            "  {policy:>14}: p50 {:7.3} ms, p99 {:7.3} ms, queue max {}",
            report.latency.p50_ms, report.latency.p99_ms, report.queue.max_depth
        );
    }

    // A small sweep: cluster size x per-device bandwidth, OC vs MP.
    let base = ServeConfig::new(
        2,
        classes,
        ArrivalProcess::ClosedLoop {
            concurrency: 8,
            requests: 64,
        },
    )
    .with_seed(3);
    println!("\nthroughput (req/s), closed loop c=8:");
    println!("{:>10} {:>8} {:>10} {:>10}", "devices", "GB/s", "MP", "OC");
    let bandwidths = [12.8, 64.0, 256.0];
    let sizes = [2usize, 4];
    let mp = try_serve_sweep_in(&session, &base, Dataflow::MaxParallel, &sizes, &bandwidths)?;
    let oc = try_serve_sweep_in(
        &session,
        &base,
        Dataflow::OutputCentric,
        &sizes,
        &bandwidths,
    )?;
    for (m, o) in mp.points.iter().zip(&oc.points) {
        println!(
            "{:>10} {:>8.1} {:>10.1} {:>10.1}",
            m.num_devices, m.bandwidth_gbps, m.throughput_rps, o.throughput_rps
        );
        // The paper's core result carries up the stack: when bandwidth is
        // scarce, the OC dataflow serves more requests per second.
        if m.bandwidth_gbps <= 12.8 {
            assert!(o.throughput_rps > m.throughput_rps);
        }
    }
    Ok(())
}
