//! Private-inference workload model: the paper motivates CiFlow with the
//! observation that a single HE ResNet-20 inference issues 3,306 rotations
//! and that key switching is ~70% of the end-to-end time. This example
//! models that rotation stream at the DPRIVE parameter point and reports the
//! total key-switching time under each dataflow and several memory systems —
//! all nine (memory system, dataflow) combinations submitted as one parallel
//! [`Session`](ciflow::api::Session) batch.
//!
//! Run with: `cargo run -p ciflow --release --example private_inference`

use ciflow::api::{Job, Session};
use ciflow::benchmark::HksBenchmark;
use ciflow::dataflow::Dataflow;
use rpu::RpuConfig;

/// Rotations in one HE ResNet-20 inference (Lee et al., ICML'22, as cited by
/// the paper).
const RESNET20_ROTATIONS: u64 = 3306;

/// Fraction of end-to-end time the paper attributes to key switching.
const KEY_SWITCH_FRACTION: f64 = 0.70;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = HksBenchmark::DPRIVE;
    let memory_systems = [("DDR4", 12.8), ("DDR5", 64.0), ("HBM2", 256.0)];
    println!(
        "workload: HE ResNet-20 ({RESNET20_ROTATIONS} rotations), parameter point {benchmark}"
    );
    println!("memory systems: DDR4 (12.8 GB/s), DDR5 (64 GB/s), HBM2 (256 GB/s)\n");

    // One batch: every (memory system, dataflow) pair, fanned out across
    // cores with a per-job Result.
    let session = Session::new().jobs(memory_systems.iter().flat_map(|&(label, bandwidth)| {
        Dataflow::all().into_iter().map(move |dataflow| {
            Job::new(benchmark, dataflow)
                .with_rpu(RpuConfig::ciflow_baseline().with_bandwidth(bandwidth))
                .with_label(format!("{label}/{dataflow}"))
        })
    }));
    let outcome = session.run();

    let mut results = outcome.results.iter();
    for (label, bandwidth) in memory_systems {
        println!("--- {label}: {bandwidth} GB/s, evks on-chip ---");
        for _ in Dataflow::all() {
            let result = results.next().expect("batch covers every pair");
            let output = result.outcome.as_ref().map_err(std::clone::Clone::clone)?;
            let per_ks_ms = output.runtime_ms();
            let key_switch_total_s = per_ks_ms * RESNET20_ROTATIONS as f64 / 1e3;
            let end_to_end_estimate_s = key_switch_total_s / KEY_SWITCH_FRACTION;
            println!(
                "  {}: {per_ks_ms:6.2} ms per key switch -> {key_switch_total_s:7.1} s of key switching, ~{end_to_end_estimate_s:7.1} s end-to-end",
                output.strategy,
            );
        }
        println!();
    }

    println!("Takeaway: at commodity (DDR4/DDR5) bandwidth the Output-Centric dataflow cuts");
    println!("the key-switching time of an entire inference by the same factor it cuts one");
    println!("kernel, without any extra SRAM.");
    Ok(())
}
