//! Evaluation-key placement study: compare preloading the evks into a large
//! on-chip key memory (the 392 MB configuration) against streaming them from
//! DRAM with only 32 MB of on-chip SRAM, for every benchmark under the
//! Output-Centric dataflow — the paper's §VI-B experiment. The ten
//! (benchmark, placement) runs execute as one parallel
//! [`Session`](ciflow::api::Session) batch.
//!
//! Run with: `cargo run -p ciflow --release --example evk_streaming`

use ciflow::api::{Job, Session};
use ciflow::benchmark::HksBenchmark;
use ciflow::dataflow::Dataflow;
use ciflow::sweep::streaming_equivalence_row;
use rpu::RpuConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let on_chip = RpuConfig::ciflow_baseline();
    let streaming = RpuConfig::ciflow_streaming();
    println!(
        "on-chip configuration : {} MiB SRAM (~{:.0} mm^2)",
        on_chip.total_sram_bytes() / rpu::MIB,
        on_chip.estimated_area_mm2()
    );
    println!(
        "streaming configuration: {} MiB SRAM (~{:.0} mm^2), a {:.2}x SRAM saving\n",
        streaming.total_sram_bytes() / rpu::MIB,
        streaming.estimated_area_mm2(),
        (on_chip.vector_memory_bytes + on_chip.key_memory_bytes) as f64
            / (streaming.vector_memory_bytes + streaming.key_memory_bytes) as f64
    );

    println!("OC runtime at 64 GB/s, evks on-chip vs streamed:");
    let session = Session::new().jobs(HksBenchmark::all().into_iter().flat_map(|benchmark| {
        [on_chip.clone(), streaming.clone()]
            .into_iter()
            .map(move |rpu| {
                Job::new(benchmark, Dataflow::OutputCentric).with_rpu(rpu.with_bandwidth(64.0))
            })
    }));
    let outputs = session.run().into_outputs()?;
    for (benchmark, pair) in HksBenchmark::all().iter().zip(outputs.chunks(2)) {
        let (with_keys, streamed) = (&pair[0], &pair[1]);
        println!(
            "  {:7}: {:6.2} ms -> {:6.2} ms ({:.2}x slowdown)",
            benchmark.name,
            with_keys.runtime_ms(),
            streamed.runtime_ms(),
            streamed.runtime_ms() / with_keys.runtime_ms()
        );
    }

    println!("\nBandwidth needed for the streamed configuration to match the on-chip one");
    println!("at the OCbase operating point (Figure 7):");
    for benchmark in HksBenchmark::all() {
        let row = streaming_equivalence_row(benchmark);
        println!(
            "  {:7}: {:5.1} GB/s -> {:6.1} GB/s ({:.2}x more bandwidth for a {:.2}x SRAM saving)",
            row.benchmark,
            row.ocbase_gbps,
            row.equivalent_streaming_gbps,
            row.extra_bandwidth,
            row.sram_saving
        );
    }
    Ok(())
}
