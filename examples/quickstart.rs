//! Quickstart: encrypt data with CKKS, perform a rotation (which triggers a
//! hybrid key switch), and then ask CiFlow how that key switch would perform
//! on the RPU under each registered scheduling strategy — submitted as one
//! parallel [`Session`](ciflow::api::Session) batch.
//!
//! Run with: `cargo run -p ciflow --release --example quickstart`

use ciflow::api::Session;
use ciflow::benchmark::HksBenchmark;
use ckks::context::CkksContext;
use ckks::encoding::CkksEncoder;
use ckks::encrypt::{decrypt, encrypt};
use ckks::keys::KeyGenerator;
use ckks::ops;
use ckks::params::CkksParametersBuilder;
use rand::SeedableRng;
use rpu::RpuConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------
    // Part 1: a real (laptop-scale) CKKS computation with key switching.
    // ---------------------------------------------------------------
    let params = CkksParametersBuilder::new()
        .ring_degree(1 << 11)
        .q_tower_bits(vec![50, 40, 40, 40])
        .p_tower_bits(vec![50, 50])
        .dnum(2)
        .scale_bits(40)
        .build()?;
    let ctx = CkksContext::new(params)?;
    let encoder = CkksEncoder::new(ctx.params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let pk = keygen.public_key(&mut rng, &sk);
    let rot_key = keygen.rotation_key(&mut rng, &sk, 1);

    let message: Vec<f64> = (0..8).map(|i| i as f64).collect();
    let pt = encoder.encode_real(&message, ctx.params().scale(), ctx.basis_q().clone());
    let ct = encrypt(&ctx, &mut rng, &pk, &pt);
    let rotated = ops::rotate(&ctx, &ct, 1, &rot_key)?;
    let decoded = encoder.decode(&decrypt(&ctx, &sk, &rotated));
    println!("original first slots: {:?}", &message[..4]);
    println!(
        "rotated  first slots: [{:.3}, {:.3}, {:.3}, {:.3}]",
        decoded[0].re, decoded[1].re, decoded[2].re, decoded[3].re
    );

    // ---------------------------------------------------------------
    // Part 2: how would that key switch behave at accelerator scale?
    // The rotation above ran one hybrid key switch; CiFlow models the same
    // kernel at the DPRIVE parameter point on the RPU. One `Session` batch
    // runs every registered strategy in parallel; new strategies registered
    // through `Session::register` would appear here with no other changes.
    // ---------------------------------------------------------------
    println!("\nDPRIVE hybrid key switch on the RPU at 12.8 GB/s (evks on-chip):");
    let mut session = Session::new().with_rpu(RpuConfig::ciflow_baseline().with_bandwidth(12.8));
    for name in session.registry().short_names() {
        session = session.job(HksBenchmark::DPRIVE, name);
    }
    let outputs = session.run().into_outputs()?;
    for output in outputs {
        println!(
            "  {}: {:6.2} ms, compute idle {:4.1}%, DRAM traffic {:6.1} MiB",
            output.strategy,
            output.runtime_ms(),
            100.0 * output.stats.compute_idle_fraction(),
            output.dram_mib()
        );
    }
    Ok(())
}
