//! Quickstart: encrypt data with CKKS, perform a rotation (which triggers a
//! hybrid key switch), and then ask CiFlow how that key switch would perform
//! on the RPU under each of the three dataflows.
//!
//! Run with: `cargo run -p ciflow --release --example quickstart`

use ciflow::benchmark::HksBenchmark;
use ciflow::dataflow::Dataflow;
use ciflow::runner::HksRun;
use ckks::context::CkksContext;
use ckks::encoding::CkksEncoder;
use ckks::encrypt::{decrypt, encrypt};
use ckks::keys::KeyGenerator;
use ckks::ops;
use ckks::params::CkksParametersBuilder;
use rand::SeedableRng;
use rpu::RpuConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------
    // Part 1: a real (laptop-scale) CKKS computation with key switching.
    // ---------------------------------------------------------------
    let params = CkksParametersBuilder::new()
        .ring_degree(1 << 11)
        .q_tower_bits(vec![50, 40, 40, 40])
        .p_tower_bits(vec![50, 50])
        .dnum(2)
        .scale_bits(40)
        .build()?;
    let ctx = CkksContext::new(params)?;
    let encoder = CkksEncoder::new(ctx.params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let pk = keygen.public_key(&mut rng, &sk);
    let rot_key = keygen.rotation_key(&mut rng, &sk, 1);

    let message: Vec<f64> = (0..8).map(|i| i as f64).collect();
    let pt = encoder.encode_real(&message, ctx.params().scale(), ctx.basis_q().clone());
    let ct = encrypt(&ctx, &mut rng, &pk, &pt);
    let rotated = ops::rotate(&ctx, &ct, 1, &rot_key)?;
    let decoded = encoder.decode(&decrypt(&ctx, &sk, &rotated));
    println!("original first slots: {:?}", &message[..4]);
    println!(
        "rotated  first slots: [{:.3}, {:.3}, {:.3}, {:.3}]",
        decoded[0].re, decoded[1].re, decoded[2].re, decoded[3].re
    );

    // ---------------------------------------------------------------
    // Part 2: how would that key switch behave at accelerator scale?
    // The rotation above ran one hybrid key switch; CiFlow models the same
    // kernel at the DPRIVE parameter point on the RPU.
    // ---------------------------------------------------------------
    println!("\nDPRIVE hybrid key switch on the RPU at 12.8 GB/s (evks on-chip):");
    for dataflow in Dataflow::all() {
        let result = HksRun::new(HksBenchmark::DPRIVE, dataflow)
            .with_rpu(RpuConfig::ciflow_baseline().with_bandwidth(12.8))
            .execute()?;
        println!(
            "  {dataflow}: {:6.2} ms, compute idle {:4.1}%, DRAM traffic {:6.1} MiB",
            result.stats.runtime_ms(),
            100.0 * result.stats.compute_idle_fraction(),
            result.stats.total_bytes() as f64 / rpu::MIB as f64
        );
    }
    Ok(())
}
