//! Plugging a brand-new scheduling strategy into CiFlow *without touching
//! the library*: implement [`ScheduleStrategy`], register it, and batch it
//! against the built-in dataflows across every benchmark — 20 jobs in one
//! parallel [`Session`](ciflow::api::Session) run with per-job `Result`s.
//!
//! The custom strategy here is a **roofline oracle**: it pretends the whole
//! key switch is one perfectly-fused kernel that reads the input and evk
//! once, computes every modular operation, and writes the output once. No
//! real dataflow can beat it, which makes it a useful lower bound to plot
//! next to MP/DC/OC.
//!
//! Run with: `cargo run -p ciflow --release --example custom_strategy`

use ciflow::api::{ScheduleStrategy, Session};
use ciflow::benchmark::HksBenchmark;
use ciflow::error::CiflowError;
use ciflow::hks_shape::HksShape;
use ciflow::schedule::{Schedule, ScheduleConfig};
use rpu::{ComputeKind, EvkPolicy, MemoryDirection, RpuConfig, TaskGraph};
use std::sync::Arc;

/// The ideal-fusion lower bound: input + evk in, every op once, output out.
struct RooflineOracle;

impl ScheduleStrategy for RooflineOracle {
    fn name(&self) -> &str {
        "roofline-oracle"
    }

    fn short_name(&self) -> &str {
        "RF"
    }

    fn description(&self) -> &str {
        "lower bound: one perfectly-fused kernel with compulsory traffic only"
    }

    fn build(&self, shape: &HksShape, config: &ScheduleConfig) -> Result<Schedule, CiflowError> {
        let mut graph = TaskGraph::new();
        let mut deps = vec![graph.push_memory(
            MemoryDirection::Load,
            shape.input_bytes(),
            vec![],
            "load input towers",
            "ModUp-P1",
        )];
        if config.evk_policy == EvkPolicy::Streamed {
            deps.push(graph.push_memory(
                MemoryDirection::Load,
                shape.evk_bytes(),
                vec![],
                "load evk",
                "ModUp-P4",
            ));
        }
        let compute = graph.push_compute(
            ComputeKind::Ntt,
            shape.total_ops(),
            deps,
            "fused hks kernel",
            "ModUp-P4",
        );
        graph.push_memory(
            MemoryDirection::Store,
            shape.output_bytes(),
            vec![compute],
            "store output towers",
            "ModDown-P4",
        );
        Ok(Schedule {
            strategy: self.short_name().to_string(),
            graph,
            peak_on_chip_bytes: 0,
            spill_bytes: 0,
        })
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new()
        .with_rpu(RpuConfig::ciflow_baseline().with_bandwidth(12.8))
        .register(Arc::new(RooflineOracle))?;

    // 5 benchmarks x (3 built-ins + the custom strategy) = 20 jobs, one batch.
    let names = session.registry().short_names();
    for benchmark in HksBenchmark::all() {
        for name in &names {
            session = session.job(benchmark, name.clone());
        }
    }
    println!(
        "running {} jobs across {} strategies in parallel...\n",
        session.job_count(),
        names.len()
    );
    let outcome = session.run();

    println!(
        "{:8} {}",
        "bench",
        names.iter().map(|n| format!("{n:>9}")).collect::<String>()
    );
    for (i, benchmark) in HksBenchmark::all().into_iter().enumerate() {
        let mut line = format!("{:8}", benchmark.name);
        for j in 0..names.len() {
            let result = &outcome.results[i * names.len() + j];
            match &result.outcome {
                Ok(output) => line.push_str(&format!("{:8.2}m", output.runtime_ms())),
                Err(e) => line.push_str(&format!(" err:{:.4}", e.to_string())),
            }
        }
        println!("{line}");
    }
    println!("\n(runtimes in ms at 12.8 GB/s; RF is the unreachable roofline lower bound)");

    // The oracle can never lose to a real dataflow.
    for (i, benchmark) in HksBenchmark::all().into_iter().enumerate() {
        let row = &outcome.results[i * names.len()..(i + 1) * names.len()];
        let rf = row
            .last()
            .unwrap()
            .outcome
            .as_ref()
            .map_err(std::clone::Clone::clone)?;
        for real in &row[..names.len() - 1] {
            let real = real.outcome.as_ref().map_err(std::clone::Clone::clone)?;
            assert!(
                rf.runtime_ms() <= real.runtime_ms() * 1.0001,
                "{}: roofline beaten?!",
                benchmark.name
            );
        }
    }
    println!("verified: RF lower-bounds MP/DC/OC on every benchmark");
    Ok(())
}
