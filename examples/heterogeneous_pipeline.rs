//! Heterogeneous workload pipelines: real CKKS programs rescale between
//! kernels, so the live tower count ℓ shrinks as a chain progresses. Each
//! step of a [`Workload`] can carry its own parameter point, and the fusion
//! layer re-derives the chaining at every kernel boundary — forwarding only
//! the towers that survive into the consumer's smaller basis and accounting
//! the elided traffic per boundary.
//!
//! Run with: `cargo run -p ciflow --release --example heterogeneous_pipeline`

use ciflow::api::{Job, Session};
use ciflow::schedule::ScheduleConfig;
use ciflow::sweep::try_heterogeneous_sweep;
use ciflow::workload::{build_workload, PipelineMode, Workload};
use ciflow::{Dataflow, HksBenchmark};
use rpu::{EvkPolicy, RpuConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A degree-6 polynomial evaluation on ARK: six multiply-relinearize-
    // rescale levels, ℓ decaying 24 -> 19. Every kernel runs at its own
    // (shrinking) parameter point.
    let chain = Workload::rescaling_chain(HksBenchmark::ARK, 6);
    let ladder: Vec<usize> = chain
        .kernel_benchmarks()
        .iter()
        .map(|b| b.q_towers)
        .collect();
    println!("rescaling chain {}: ℓ ladder {ladder:?}\n", chain.name);

    // One parallel batch: the chain under every dataflow, fused and
    // back-to-back, at DDR4-class bandwidth.
    let session = Session::new().with_rpu(RpuConfig::ciflow_baseline().with_bandwidth(12.8));
    let mut batch = session.clone();
    for dataflow in Dataflow::all() {
        for mode in [PipelineMode::BackToBack, PipelineMode::Fused] {
            batch = batch.push(Job::workload(chain.clone(), dataflow, mode));
        }
    }
    let outputs = batch.run().into_outputs()?;

    println!(
        "{:3} {:>12} {:>10} {:>9} {:>13} {:>12}",
        "df", "unfused ms", "fused ms", "speedup", "fwd (MiB)", "ms/HKS"
    );
    for (d, dataflow) in Dataflow::all().into_iter().enumerate() {
        let unfused = &outputs[2 * d];
        let fused = &outputs[2 * d + 1];
        println!(
            "{:3} {:>12.2} {:>10.2} {:>8.2}x {:>13.1} {:>12.2}",
            dataflow.short_name(),
            unfused.runtime_ms(),
            fused.runtime_ms(),
            unfused.runtime_ms() / fused.runtime_ms(),
            fused.forwarded_bytes as f64 / rpu::MIB as f64,
            fused.runtime_ms_per_kernel(),
        );
        assert!(
            fused.runtime_ms() <= unfused.runtime_ms() * 1.0001,
            "fusion must never slow a pipeline down"
        );
        // The traffic invariant: fused + forwarded == back-to-back, exactly.
        assert_eq!(
            fused.stats.total_bytes() + fused.forwarded_bytes,
            unfused.stats.total_bytes()
        );
    }

    // Per-boundary accounting: as ℓ decays, each boundary forwards one fewer
    // tower's worth of store+load traffic.
    let ws = build_workload(
        &chain,
        Dataflow::OutputCentric.strategy(),
        &ScheduleConfig::default(),
        PipelineMode::Fused,
    )?;
    println!("\nper-boundary forwarded traffic (OC fused):");
    for (i, &bytes) in ws.boundary_forwarded_bytes.iter().enumerate() {
        println!(
            "  k{i} -> k{}: ℓ {} -> {}, {:5.1} MiB forwarded",
            i + 1,
            ladder[i],
            ladder[i + 1],
            bytes as f64 / rpu::MIB as f64
        );
    }

    // The sweep: fused-vs-unfused across bandwidths for the whole chain.
    let sweep = try_heterogeneous_sweep(
        &chain,
        Dataflow::OutputCentric,
        &[8.0, 12.8, 25.6, 64.0],
        EvkPolicy::Streamed,
    )?;
    println!("\nOC, evks streamed, fused vs back-to-back:");
    for point in &sweep.points {
        println!(
            "  {:6.1} GB/s: {:7.2} ms unfused, {:7.2} ms fused ({:.2}x), idle {:4.1}% -> {:4.1}%",
            point.bandwidth_gbps,
            point.back_to_back_ms,
            point.fused_ms,
            point.back_to_back_ms / point.fused_ms,
            100.0 * point.back_to_back_idle,
            100.0 * point.fused_idle,
        );
    }
    println!("\n(chaining is re-derived at every boundary: only surviving towers forward,");
    println!(" dropped towers keep their stores, and accounting is exact per boundary)");
    Ok(())
}
