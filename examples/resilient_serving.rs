//! Resilient serving: the fleet simulator under deterministic fault
//! injection. A seeded [`FaultPlan`] crashes and restarts devices, opens
//! bandwidth-degradation windows, and fails attempts transiently; the
//! handling layer answers with deadlines, capped-backoff retries, crash
//! failover, and admission control. Everything runs on the virtual clock,
//! so a faulted run is as bit-reproducible as a fault-free one — and a
//! zero-fault plan replays the plain `ServeReport` exactly.
//!
//! Run with: `cargo run -p ciflow --release --example resilient_serving`

use ciflow::api::Session;
use ciflow::serve::{
    try_fault_serve_in, try_serve_in, AdmissionPolicy, ArrivalProcess, CrashEvent, CrashPlan,
    DegradeWindow, FaultPlan, RequestClass, RetryPolicy, ServeConfig,
};
use ciflow::sweep::try_fault_sweep_in;
use ciflow::{Dataflow, HksBenchmark};
use rpu::RpuConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let classes = RequestClass::standard_mix(HksBenchmark::ARK);
    let session = Session::new();
    let rpu = RpuConfig::ciflow_baseline().with_bandwidth(64.0);

    let config = ServeConfig::new(
        4,
        classes.clone(),
        ArrivalProcess::ClosedLoop {
            concurrency: 8,
            requests: 96,
        },
    )
    .with_rpu(rpu.clone())
    .with_seed(1);

    // The fault-free bound, and the zero-fault replay property: running the
    // faulted loop under an empty plan reproduces it bit-for-bit.
    let baseline = try_serve_in(&session, &config, Dataflow::OutputCentric)?;
    println!("fault-free bound:\n  {baseline}");
    let empty = try_fault_serve_in(
        &session,
        &config,
        &FaultPlan::none(),
        Dataflow::OutputCentric,
    )?;
    assert_eq!(empty.serve, baseline, "zero-fault plan replays the report");
    assert_eq!(empty.offered, baseline.completed);

    // Scale the fault process to the workload: one "tick" is the mean
    // service time of the mix, read off the baseline report.
    let tick = baseline.makespan_seconds / baseline.completed as f64;

    // An adverse but survivable plan: random crashes (MTBF 40 ticks, MTTR 5),
    // a bandwidth brown-out on device 0, 2% transient failures, retries with
    // capped exponential backoff, and queue-depth shedding.
    let plan = FaultPlan::none()
        .with_crashes(CrashPlan::Random {
            mtbf_seconds: 40.0 * tick,
            mttr_seconds: 5.0 * tick,
        })
        .with_degradation(DegradeWindow {
            device: 0,
            start_seconds: 10.0 * tick,
            duration_seconds: 30.0 * tick,
            bandwidth_factor: 0.25,
        })
        .with_transient_failure_rate(0.02)
        .with_retry(RetryPolicy::capped_exponential(4, 0.5 * tick, 4.0 * tick))
        .with_admission(AdmissionPolicy::ShedAboveDepth {
            max_queue_depth: 24,
        });
    let faulted = try_fault_serve_in(&session, &config, &plan, Dataflow::OutputCentric)?;
    println!("\nunder faults:\n  {faulted}");
    assert!(faulted.conserves_arrivals(), "arrivals are conserved");
    assert!(faulted.goodput_rps <= faulted.throughput_rps());

    // Determinism survives fault injection: same seed, same plan, same
    // report — crashes, retries, shed requests and all.
    let replay = try_fault_serve_in(&session, &config, &plan, Dataflow::OutputCentric)?;
    assert_eq!(faulted, replay, "faulted runs are bit-reproducible");

    println!("\nper-device availability:");
    for device in &faulted.availability {
        println!(
            "  rpu{}: {:5.1}% up, {} crash(es), {:.3} s down",
            device.device,
            device.availability * 100.0,
            device.crashes,
            device.down_seconds
        );
    }

    // Retries pay for themselves: on an overloaded single device with a
    // scripted mid-run crash, failover + retry completes strictly more
    // work than dropping the lost request.
    let single = ServeConfig::new(
        1,
        vec![RequestClass::single(HksBenchmark::ARK, 1.0)],
        ArrivalProcess::ClosedLoop {
            concurrency: 1,
            requests: 1,
        },
    )
    .with_rpu(rpu.clone());
    let service =
        try_serve_in(&session, &single, Dataflow::OutputCentric)?.records[0].service_seconds;
    let overload = ServeConfig::new(
        1,
        vec![RequestClass::single(HksBenchmark::ARK, 1.0)],
        ArrivalProcess::OpenLoop {
            rate_rps: 4.0 / service,
            requests: 40,
        },
    )
    .with_rpu(rpu.clone())
    .with_seed(5);
    let crash = CrashPlan::Scripted(vec![CrashEvent {
        device: 0,
        at_seconds: 3.5 * service,
        down_seconds: 0.5 * service,
    }]);
    let with_retries = try_fault_serve_in(
        &session,
        &overload,
        &FaultPlan::none()
            .with_crashes(crash.clone())
            .with_retry(RetryPolicy::capped_exponential(3, 0.0, 0.0)),
        Dataflow::OutputCentric,
    )?;
    let without = try_fault_serve_in(
        &session,
        &overload,
        &FaultPlan::none()
            .with_crashes(crash)
            .with_retry(RetryPolicy::disabled()),
        Dataflow::OutputCentric,
    )?;
    println!(
        "\ncrash on an overloaded device: goodput {:.1} req/s with retries \
         vs {:.1} req/s without",
        with_retries.goodput_rps, without.goodput_rps
    );
    assert!(with_retries.goodput_rps > without.goodput_rps);

    // A fault sweep: intensity x cluster size, one engine measurement per
    // class for the whole grid. Intensity 0 is the fault-free bound.
    let sweep_base = ServeConfig::new(
        2,
        classes,
        ArrivalProcess::ClosedLoop {
            concurrency: 8,
            requests: 64,
        },
    )
    .with_rpu(rpu)
    .with_seed(3);
    let sweep_plan = FaultPlan::none()
        .with_crashes(CrashPlan::Random {
            mtbf_seconds: 40.0 * tick,
            mttr_seconds: 5.0 * tick,
        })
        .with_transient_failure_rate(0.02)
        .with_retry(RetryPolicy::capped_exponential(4, 0.5 * tick, 4.0 * tick));
    let sweep = try_fault_sweep_in(
        &session,
        &sweep_base,
        &sweep_plan,
        Dataflow::OutputCentric,
        &[0.0, 0.5, 1.0, 2.0],
        &[2, 4],
    )?;
    println!("\nfault sweep (closed loop c=8):");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "devices", "intensity", "goodput", "thruput", "retries", "avail"
    );
    for point in &sweep.points {
        println!(
            "{:>8} {:>10.1} {:>10.1} {:>10.1} {:>8} {:>7.1}%",
            point.num_devices,
            point.intensity,
            point.goodput_rps,
            point.throughput_rps,
            point.retries,
            point.mean_availability * 100.0
        );
        assert_eq!(
            point.offered,
            point.completed + point.timed_out + point.shed
        );
    }
    Ok(())
}
