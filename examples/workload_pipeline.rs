//! Multi-kernel workload pipelines: chaining many hybrid key switches —
//! a rotation batch, the bootstrapping key-switch backbone — and fusing
//! their task graphs so the memory queue prefetches the next kernel's data
//! under the current kernel's compute (and, when the chained polynomial
//! fits on-chip, skips its DRAM round-trip entirely).
//!
//! Run with: `cargo run -p ciflow --release --example workload_pipeline`

use ciflow::api::{Job, Session};
use ciflow::workload::{PipelineMode, Workload};
use ciflow::{Dataflow, HksBenchmark};
use rpu::RpuConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // DDR4-class bandwidth: exactly the regime where the dataflow choice —
    // and now the pipeline fusion — decides the runtime.
    let session = Session::new().with_rpu(RpuConfig::ciflow_baseline().with_bandwidth(12.8));

    let workloads = [
        Workload::rotation_batch(HksBenchmark::ARK, 8),
        Workload::mul_rot_block(HksBenchmark::DPRIVE, 3),
        Workload::bootstrap_key_switch(HksBenchmark::ARK),
    ];

    // One parallel batch: every workload under every dataflow, fused and
    // back-to-back.
    let mut batch = session.clone();
    for workload in &workloads {
        for dataflow in Dataflow::all() {
            for mode in [PipelineMode::BackToBack, PipelineMode::Fused] {
                batch = batch.push(Job::workload(workload.clone(), dataflow, mode));
            }
        }
    }
    let outcome = batch.run();

    println!(
        "{:22} {:3} {:>4} {:>12} {:>10} {:>9} {:>11}",
        "workload", "df", "hks", "unfused ms", "fused ms", "speedup", "idle u->f"
    );
    let mut i = 0;
    for workload in &workloads {
        for dataflow in Dataflow::all() {
            let unfused = outcome.results[i]
                .outcome
                .as_ref()
                .map_err(std::clone::Clone::clone)?;
            let fused = outcome.results[i + 1]
                .outcome
                .as_ref()
                .map_err(std::clone::Clone::clone)?;
            i += 2;
            println!(
                "{:22} {:3} {:>4} {:>12.2} {:>10.2} {:>8.2}x {:>4.0}%->{:.0}%",
                workload.name,
                dataflow.short_name(),
                fused.kernels,
                unfused.runtime_ms(),
                fused.runtime_ms(),
                unfused.runtime_ms() / fused.runtime_ms(),
                100.0 * unfused.stats.compute_idle_fraction(),
                100.0 * fused.stats.compute_idle_fraction(),
            );
            assert!(
                fused.runtime_ms() <= unfused.runtime_ms() * 1.0001,
                "fusion must never slow a pipeline down"
            );
        }
    }
    println!("\n(12.8 GB/s, evks on-chip; fusion prefetches kernel i+1 under kernel i's compute");
    println!(" and forwards the chained polynomial on-chip when it fits in the data memory)");

    // Part two: split the memory queue into pseudo-channels. The aggregate
    // bandwidth is unchanged — channel-aware placement lets the fused
    // pipeline's evk prefetch bypass dependency-blocked writebacks, so the
    // compute-idle fraction falls as channels grow.
    println!("\nMemory channels (ARK x8 rotations, OC fused, evks streamed @ 128 GB/s):");
    let workload = Workload::rotation_batch(HksBenchmark::ARK, 8);
    for channels in ciflow::sweep::CHANNEL_LADDER {
        let output = Session::new()
            .with_rpu(
                RpuConfig::ciflow_streaming()
                    .with_bandwidth(128.0)
                    .with_memory_channels(channels),
            )
            .run_workload(
                workload.clone(),
                Dataflow::OutputCentric,
                PipelineMode::Fused,
            )?;
        // The monotonicity of this curve is enforced by
        // `tests/memory_channels.rs`; the example only reports it.
        println!(
            "  {channels} channel(s): {:6.2} ms, compute idle {:4.1}%, channel imbalance {:.2}",
            output.runtime_ms(),
            100.0 * output.stats.compute_idle_fraction(),
            output.stats.memory_channel_imbalance(),
        );
    }
    Ok(())
}
