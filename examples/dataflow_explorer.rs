//! Dataflow explorer: sweep off-chip bandwidth for a chosen benchmark and
//! compare every *registered* scheduling strategy, reproducing one panel of
//! the paper's Figure 4 from the command line. Strategies are resolved
//! through the session's [`StrategyRegistry`](ciflow::api::StrategyRegistry)
//! via [`try_bandwidth_sweep_in`], so a custom strategy registered on the
//! session below shows up in the output automatically.
//!
//! Run with, e.g.:
//! `cargo run -p ciflow --release --example dataflow_explorer -- ARK`
//! `cargo run -p ciflow --release --example dataflow_explorer -- BTS3 streamed`

use ciflow::api::Session;
use ciflow::benchmark::HksBenchmark;
use ciflow::report::{render_sweep_ascii, render_sweep_csv};
use ciflow::sweep::{baseline_runtime_ms, try_bandwidth_sweep_in};
use rpu::EvkPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let benchmark = args
        .get(1)
        .and_then(|name| HksBenchmark::by_name(name))
        .unwrap_or(HksBenchmark::ARK);
    let evk_policy = if args.iter().any(|a| a == "streamed") {
        EvkPolicy::Streamed
    } else {
        EvkPolicy::OnChip
    };
    let bandwidths = [
        8.0, 12.8, 16.0, 25.6, 32.0, 48.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    ];

    println!("benchmark: {benchmark}");
    println!("evk policy: {evk_policy}\n");
    // Register additional strategies here (`.register(Arc::new(...))?`) and
    // they join the comparison with no further changes.
    let session = Session::new();
    let series = session
        .registry()
        .short_names()
        .into_iter()
        .map(|name| try_bandwidth_sweep_in(&session, benchmark, name, &bandwidths, evk_policy, 1.0))
        .collect::<Result<Vec<_>, _>>()?;
    print!("{}", render_sweep_csv(&series));
    println!();
    print!("{}", render_sweep_ascii(&series, 66, 14));
    println!(
        "\nbaseline (MP @ 64 GB/s, evks on-chip): {:.2} ms",
        baseline_runtime_ms(benchmark)
    );
    Ok(())
}
