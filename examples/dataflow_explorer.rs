//! Dataflow explorer: sweep off-chip bandwidth for a chosen benchmark and
//! compare the three dataflows, reproducing one panel of the paper's
//! Figure 4 from the command line.
//!
//! Run with, e.g.:
//! `cargo run -p ciflow --release --example dataflow_explorer -- ARK`
//! `cargo run -p ciflow --release --example dataflow_explorer -- BTS3 streamed`

use ciflow::benchmark::HksBenchmark;
use ciflow::dataflow::Dataflow;
use ciflow::report::{render_sweep_ascii, render_sweep_csv};
use ciflow::sweep::{bandwidth_sweep, baseline_runtime_ms};
use rpu::EvkPolicy;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let benchmark = args
        .get(1)
        .and_then(|name| HksBenchmark::by_name(name))
        .unwrap_or(HksBenchmark::ARK);
    let evk_policy = if args.iter().any(|a| a == "streamed") {
        EvkPolicy::Streamed
    } else {
        EvkPolicy::OnChip
    };
    let bandwidths = [8.0, 12.8, 16.0, 25.6, 32.0, 48.0, 64.0, 128.0, 256.0, 512.0, 1024.0];

    println!("benchmark: {benchmark}");
    println!("evk policy: {evk_policy}\n");
    let series: Vec<_> = Dataflow::all()
        .into_iter()
        .map(|d| bandwidth_sweep(benchmark, d, &bandwidths, evk_policy, 1.0))
        .collect();
    print!("{}", render_sweep_csv(&series));
    println!();
    print!("{}", render_sweep_ascii(&series, 66, 14));
    println!(
        "\nbaseline (MP @ 64 GB/s, evks on-chip): {:.2} ms",
        baseline_runtime_ms(benchmark)
    );
}
