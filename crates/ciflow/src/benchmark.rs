//! The five HKS benchmark parameterizations of Table III.
//!
//! The paper evaluates its dataflows on parameter points taken from recent
//! accelerators — BTS (three points), ARK and the DARPA DPRIVE program — all
//! providing 128-bit security. These are *shape* parameters: ring degree,
//! tower counts, digit count. The actual prime values are irrelevant to the
//! dataflow analysis (and are generated separately when functional execution
//! is needed).

use serde::Serialize;

/// Bytes per residue word; the paper's CiFlow configuration uses 64-bit RNS
/// moduli (half the original RPU word size).
pub const WORD_BYTES: u64 = 8;

/// Bytes per binary megabyte, the unit of every capacity in the paper.
pub const MIB: u64 = 1024 * 1024;

/// One HKS benchmark parameter point (a row of Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct HksBenchmark {
    /// Benchmark name as used in the paper.
    pub name: &'static str,
    /// `log2 N` (16 or 17).
    pub log_ring_degree: u32,
    /// Number of live `Q` towers (`k_l` in Table III).
    pub q_towers: usize,
    /// Number of auxiliary `P` towers (`k_p` in Table III).
    pub p_towers: usize,
    /// Number of key-switching digits.
    pub dnum: usize,
}

impl HksBenchmark {
    /// BTS1: `N = 2^17`, 28 + 28 towers, a single digit.
    pub const BTS1: Self = Self {
        name: "BTS1",
        log_ring_degree: 17,
        q_towers: 28,
        p_towers: 28,
        dnum: 1,
    };

    /// BTS2: `N = 2^17`, 40 + 20 towers, two digits.
    pub const BTS2: Self = Self {
        name: "BTS2",
        log_ring_degree: 17,
        q_towers: 40,
        p_towers: 20,
        dnum: 2,
    };

    /// BTS3: `N = 2^17`, 45 + 15 towers, three digits (the largest benchmark).
    pub const BTS3: Self = Self {
        name: "BTS3",
        log_ring_degree: 17,
        q_towers: 45,
        p_towers: 15,
        dnum: 3,
    };

    /// ARK: `N = 2^16`, 24 + 6 towers, four digits (the smallest benchmark).
    pub const ARK: Self = Self {
        name: "ARK",
        log_ring_degree: 16,
        q_towers: 24,
        p_towers: 6,
        dnum: 4,
    };

    /// DPRIVE: `N = 2^16`, 26 + 7 towers, three digits.
    pub const DPRIVE: Self = Self {
        name: "DPRIVE",
        log_ring_degree: 16,
        q_towers: 26,
        p_towers: 7,
        dnum: 3,
    };

    /// All five benchmarks in the order the paper's tables list them.
    pub fn all() -> [Self; 5] {
        [Self::BTS1, Self::BTS2, Self::BTS3, Self::ARK, Self::DPRIVE]
    }

    /// Looks a benchmark up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<Self> {
        Self::all()
            .into_iter()
            .find(|b| b.name.eq_ignore_ascii_case(name))
    }

    /// A copy of this parameter point with the live tower count rescaled to
    /// `q_towers` — the shape a ciphertext takes after `k_l − q_towers`
    /// rescaling levels have been consumed. The ring degree and auxiliary
    /// towers are unchanged; the digit count is clamped so no digit is left
    /// entirely empty (`dnum ≤ ℓ`), mirroring how CKKS libraries shrink the
    /// key-switch decomposition as the modulus chain drains. `q_towers` is
    /// clamped to at least 1 (a ciphertext below level 0 does not exist).
    ///
    /// ```
    /// use ciflow::HksBenchmark;
    /// let rescaled = HksBenchmark::ARK.at_q_towers(20);
    /// assert_eq!(rescaled.q_towers, 20);
    /// assert_eq!(rescaled.p_towers, HksBenchmark::ARK.p_towers);
    /// assert_eq!(rescaled.dnum, 4);
    /// assert_eq!(HksBenchmark::ARK.at_q_towers(2).dnum, 2);
    /// ```
    pub fn at_q_towers(&self, q_towers: usize) -> Self {
        let q_towers = q_towers.max(1);
        Self {
            q_towers,
            dnum: self.dnum.min(q_towers),
            ..*self
        }
    }

    /// Ring degree `N`.
    pub fn ring_degree(&self) -> usize {
        1usize << self.log_ring_degree
    }

    /// Digit width `α = ⌈k_l / dnum⌉`.
    pub fn alpha(&self) -> usize {
        self.q_towers.div_ceil(self.dnum)
    }

    /// Extended tower count `k_l + k_p`.
    pub fn extended_towers(&self) -> usize {
        self.q_towers + self.p_towers
    }

    /// Bytes occupied by a single tower (`N` words).
    pub fn tower_bytes(&self) -> u64 {
        self.ring_degree() as u64 * WORD_BYTES
    }

    /// Size of the evaluation key in bytes:
    /// `dnum × 2 × N × (k_l + k_p)` words (the "evk Size" column of
    /// Table III).
    pub fn evk_bytes(&self) -> u64 {
        self.dnum as u64 * 2 * self.extended_towers() as u64 * self.tower_bytes()
    }

    /// Approximate intermediate ("Temp data") footprint in bytes: the input
    /// polynomial, its INTT outputs, the BConv/NTT-extended digits and the
    /// post-`Apply Key` partial products, matching the "Temp data" column of
    /// Table III to within rounding.
    pub fn temp_data_bytes(&self) -> u64 {
        let ell = self.q_towers as u64;
        let beta_total: u64 = (0..self.dnum)
            .map(|j| (self.extended_towers() - self.digit_width(j)) as u64)
            .sum();
        let apply_key = 2 * self.dnum as u64 * self.extended_towers() as u64;
        (ell + ell + beta_total + apply_key) * self.tower_bytes()
    }

    /// Width (in towers) of digit `j`: `α` for all but possibly the last
    /// digit, which absorbs the remainder. Trailing digits can be empty for
    /// degenerate `(q_towers, dnum)` combinations; they report width 0.
    pub fn digit_width(&self, j: usize) -> usize {
        self.digit_range(j).len()
    }

    /// Tower index range of digit `j` (possibly empty for trailing digits of
    /// degenerate parameter combinations).
    pub fn digit_range(&self, j: usize) -> std::ops::Range<usize> {
        assert!(j < self.dnum, "digit index out of range");
        let alpha = self.alpha();
        let start = (j * alpha).min(self.q_towers);
        let end = ((j + 1) * alpha).min(self.q_towers);
        start..end
    }
}

impl std::fmt::Display for HksBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (N=2^{}, k_l={}, k_p={}, dnum={}, alpha={})",
            self.name,
            self.log_ring_degree,
            self.q_towers,
            self.p_towers,
            self.dnum,
            self.alpha()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_matches_table_iii() {
        assert_eq!(HksBenchmark::BTS1.alpha(), 28);
        assert_eq!(HksBenchmark::BTS2.alpha(), 20);
        assert_eq!(HksBenchmark::BTS3.alpha(), 15);
        assert_eq!(HksBenchmark::ARK.alpha(), 6);
        assert_eq!(HksBenchmark::DPRIVE.alpha(), 9);
    }

    #[test]
    fn evk_sizes_match_table_iii() {
        assert_eq!(HksBenchmark::BTS1.evk_bytes(), 112 * MIB);
        assert_eq!(HksBenchmark::BTS2.evk_bytes(), 240 * MIB);
        assert_eq!(HksBenchmark::BTS3.evk_bytes(), 360 * MIB);
        assert_eq!(HksBenchmark::ARK.evk_bytes(), 120 * MIB);
        assert_eq!(HksBenchmark::DPRIVE.evk_bytes(), 99 * MIB);
    }

    #[test]
    fn temp_data_sizes_match_table_iii_within_rounding() {
        // Paper: 196, 400, 585, 192, 163 MB. The DPRIVE digit split is
        // slightly irregular (9+9+8), so allow a couple of MB of slack.
        let expected = [
            (HksBenchmark::BTS1, 196.0),
            (HksBenchmark::BTS2, 400.0),
            (HksBenchmark::BTS3, 585.0),
            (HksBenchmark::ARK, 192.0),
            (HksBenchmark::DPRIVE, 163.0),
        ];
        for (b, mb) in expected {
            let got = b.temp_data_bytes() as f64 / MIB as f64;
            assert!(
                (got - mb).abs() <= 2.5,
                "{}: temp data {got:.1} MB vs paper {mb} MB",
                b.name
            );
        }
    }

    #[test]
    fn digit_partition_covers_q_towers() {
        for b in HksBenchmark::all() {
            let mut covered = Vec::new();
            for j in 0..b.dnum {
                covered.extend(b.digit_range(j));
                assert_eq!(b.digit_range(j).len(), b.digit_width(j));
            }
            assert_eq!(covered, (0..b.q_towers).collect::<Vec<_>>(), "{}", b.name);
        }
    }

    #[test]
    fn degenerate_digit_counts_do_not_panic() {
        // q_towers = 5, dnum = 4 gives alpha = 2 and an empty fourth digit;
        // the accessors must report it as empty rather than overflowing.
        let odd = HksBenchmark {
            name: "ODD",
            log_ring_degree: 13,
            q_towers: 5,
            p_towers: 2,
            dnum: 4,
        };
        assert_eq!(odd.digit_width(2), 1);
        assert_eq!(odd.digit_width(3), 0);
        assert!(odd.digit_range(3).is_empty());
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(HksBenchmark::by_name("ark"), Some(HksBenchmark::ARK));
        assert_eq!(HksBenchmark::by_name("BTS3"), Some(HksBenchmark::BTS3));
        assert_eq!(HksBenchmark::by_name("unknown"), None);
    }

    #[test]
    fn display_is_informative() {
        let s = HksBenchmark::DPRIVE.to_string();
        assert!(s.contains("DPRIVE"));
        assert!(s.contains("dnum=3"));
    }
}
