//! # ciflow — dataflow analysis and optimization of HE key switching
//!
//! A from-scratch reproduction of *"CiFlow: Dataflow Analysis and
//! Optimization of Key Switching for Homomorphic Encryption"* (ISPASS 2024).
//!
//! Hybrid key switching (HKS) dominates the runtime of CKKS homomorphic
//! encryption. This crate analyzes and optimizes its *dataflow*: the order in
//! which the ModUp/ModDown stages are executed and which intermediates are
//! kept in a small on-chip memory, evaluated on a task-level model of the RPU
//! vector processor.
//!
//! The public API is organized around **pluggable scheduling strategies**:
//!
//! * [`api`] — the heart of the crate: the [`ScheduleStrategy`] trait every
//!   dataflow implements, the [`StrategyRegistry`] new dataflows plug into,
//!   and the [`Session`] batch runner that executes one-or-many
//!   `(benchmark, strategy)` jobs in parallel across all cores with per-job
//!   [`Result`]s.
//! * [`error`] — the [`CiflowError`] hierarchy threaded through every
//!   library path (wrapping `hemath`, `ckks` and `rpu` failures), so heavy
//!   batch traffic never panics.
//! * [`benchmark`] — the five parameter points of the paper's Table III
//!   (BTS1-3, ARK, DPRIVE).
//! * [`hks_shape`] — the per-stage geometry and operation counts of one HKS.
//! * [`dataflow`] / [`schedule`] — the three built-in dataflows
//!   (**Max-Parallel**, **Digit-Centric**, **Output-Centric**) as task-graph
//!   generators with explicit on-chip buffer management and evk streaming;
//!   [`Dataflow`] is a thin compatibility shim over the strategy API.
//! * [`analysis`] — DRAM traffic, arithmetic intensity and minimum-memory
//!   analysis (Tables II and III).
//! * [`lint`] — static schedule verification: a deadlock-freedom proof over
//!   the engine's queue semantics plus buffer-lifetime, capacity, placement
//!   and accounting checks, emitted as structured diagnostics *before*
//!   anything executes (catalogue in `docs/LINTS.md`; also
//!   [`Session::verify`](api::Session::verify) and the `schedule_lint` CI
//!   gate).
//! * [`workload`] — multi-kernel pipelines: chained HKS invocations
//!   (rotation batches, relinearizations, the bootstrapping key-switch
//!   backbone) fused into one task graph so the memory queue prefetches the
//!   next kernel's evk towers and limbs under the current kernel's compute.
//!   Pipelines may be *heterogeneous*: every step can run at its own
//!   parameter point (the [`Workload::rescaling_chain`] preset derives the
//!   descending-ℓ ladder of a real rescaling program), with chaining,
//!   partial forwarding and traffic accounting re-derived at every kernel
//!   boundary.
//! * [`runner`] / [`sweep`] — the legacy single-run wrapper and the
//!   `Session`-powered bandwidth / MODOPS / evk-placement / workload sweeps
//!   behind Figures 4–9 and Tables IV–V.
//! * [`serve`] — the fleet-scale serving simulator: seeded arrival
//!   processes (open- and closed-loop) feeding mixed request classes to a
//!   cluster of simulated RPUs under pluggable dispatch policies, reporting
//!   throughput, utilization, queue depths and latency percentiles on a
//!   deterministic virtual clock (see `docs/SERVING.md`).
//! * [`report`] — markdown / CSV / ASCII rendering of every table and figure.
//! * [`functional`] — bit-exact validation that the Output-Centric
//!   decomposition computes the same function as the reference CKKS key
//!   switch.
//!
//! ## Quick example
//!
//! ```
//! use ciflow::api::Session;
//! use ciflow::{Dataflow, HksBenchmark};
//! use rpu::RpuConfig;
//!
//! // How do the three dataflows compare on one ARK hybrid key switch at
//! // DDR4-class bandwidth? One parallel batch, one Result per job.
//! let session = Session::new()
//!     .with_rpu(RpuConfig::ciflow_baseline().with_bandwidth(12.8))
//!     .job(HksBenchmark::ARK, Dataflow::MaxParallel)
//!     .job(HksBenchmark::ARK, Dataflow::DigitCentric)
//!     .job(HksBenchmark::ARK, Dataflow::OutputCentric);
//! let outputs = session.run().into_outputs().unwrap();
//! for output in &outputs {
//!     println!("ARK {} @ 12.8 GB/s: {:.2} ms", output.strategy, output.runtime_ms());
//! }
//! // The paper's core result: OC beats MP when bandwidth is scarce.
//! assert!(outputs[2].runtime_ms() < outputs[0].runtime_ms());
//! ```
//!
//! ## Plugging in a new dataflow
//!
//! Implement [`ScheduleStrategy`], register it, and every consumer — the
//! session, the sweeps, the explorer example — can use it by name:
//!
//! ```
//! use ciflow::api::{ScheduleStrategy, Session};
//! use ciflow::schedule::{Schedule, ScheduleConfig};
//! use ciflow::{CiflowError, Dataflow, HksBenchmark, HksShape};
//! use std::sync::Arc;
//!
//! struct MaxParallelClone;
//!
//! impl ScheduleStrategy for MaxParallelClone {
//!     fn name(&self) -> &str { "mp-clone" }
//!     fn short_name(&self) -> &str { "MP2" }
//!     fn build(&self, shape: &HksShape, config: &ScheduleConfig)
//!         -> Result<Schedule, CiflowError>
//!     {
//!         // A real strategy would build its own task graph here.
//!         Dataflow::MaxParallel.strategy().build(shape, config)
//!     }
//! }
//!
//! let session = Session::new().register(Arc::new(MaxParallelClone)).unwrap();
//! let output = session.run_one(HksBenchmark::ARK, "MP2").unwrap();
//! assert!(output.runtime_ms() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

// Compile the README's quick-start examples as doctests so they cannot
// drift from the API (the session example and the workload example both
// execute under `cargo test`).
#[doc = include_str!("../../../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

pub mod analysis;
pub mod api;
pub mod benchmark;
pub mod dataflow;
pub mod error;
pub mod functional;
pub mod hks_shape;
pub mod lint;
mod parallel;
pub mod report;
pub mod runner;
pub mod schedule;
pub mod serve;
pub mod sweep;
pub mod workload;

pub use api::{
    AnalyticOutput, BatchOutcome, BoundsResult, Job, JobOutput, JobResult, ScheduleStrategy,
    Session, StrategyRegistry, VerifyResult,
};
pub use benchmark::HksBenchmark;
pub use dataflow::Dataflow;
pub use error::CiflowError;
pub use hks_shape::{HksShape, HksStage};
pub use lint::{lint_schedule, lint_with_config, lint_workload, LintConfig, LintReport};
pub use runner::{HksRun, HksRunResult};
pub use schedule::{build_schedule, Schedule, ScheduleConfig};
pub use workload::{
    build_workload, KernelStep, PipelineMode, Workload, WorkloadSchedule, WorkloadStep,
};
