//! # ciflow — dataflow analysis and optimization of HE key switching
//!
//! A from-scratch reproduction of *"CiFlow: Dataflow Analysis and
//! Optimization of Key Switching for Homomorphic Encryption"* (ISPASS 2024).
//!
//! Hybrid key switching (HKS) dominates the runtime of CKKS homomorphic
//! encryption. This crate analyzes and optimizes its *dataflow*: the order in
//! which the ModUp/ModDown stages are executed and which intermediates are
//! kept in a small on-chip memory, evaluated on a task-level model of the RPU
//! vector processor.
//!
//! The crate provides:
//!
//! * [`benchmark`] — the five parameter points of the paper's Table III
//!   (BTS1-3, ARK, DPRIVE).
//! * [`hks_shape`] — the per-stage geometry and operation counts of one HKS.
//! * [`dataflow`] / [`schedule`] — the three dataflows (**Max-Parallel**,
//!   **Digit-Centric**, **Output-Centric**) as task-graph generators with
//!   explicit on-chip buffer management and evk streaming.
//! * [`analysis`] — DRAM traffic, arithmetic intensity and minimum-memory
//!   analysis (Tables II and III).
//! * [`runner`] / [`sweep`] — execution on the RPU model and the bandwidth /
//!   MODOPS / evk-placement sweeps behind Figures 4–9 and Tables IV–V.
//! * [`report`] — markdown / CSV / ASCII rendering of every table and figure.
//! * [`functional`] — bit-exact validation that the Output-Centric
//!   decomposition computes the same function as the reference CKKS key
//!   switch.
//!
//! ## Quick example
//!
//! ```
//! use ciflow::benchmark::HksBenchmark;
//! use ciflow::dataflow::Dataflow;
//! use ciflow::runner::HksRun;
//! use rpu::RpuConfig;
//!
//! // How long does one ARK hybrid key switch take under the Output-Centric
//! // dataflow at DDR4-class bandwidth?
//! let result = HksRun::new(HksBenchmark::ARK, Dataflow::OutputCentric)
//!     .with_rpu(RpuConfig::ciflow_baseline().with_bandwidth(12.8))
//!     .execute()
//!     .unwrap();
//! println!("ARK OC @ 12.8 GB/s: {:.2} ms", result.stats.runtime_ms());
//! assert!(result.stats.runtime_ms() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod benchmark;
pub mod dataflow;
pub mod functional;
pub mod hks_shape;
pub mod report;
pub mod runner;
pub mod schedule;
pub mod sweep;

pub use benchmark::HksBenchmark;
pub use dataflow::Dataflow;
pub use hks_shape::{HksShape, HksStage};
pub use runner::{HksRun, HksRunResult};
pub use schedule::{build_schedule, Schedule, ScheduleConfig};
