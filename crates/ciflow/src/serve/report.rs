//! The outcome of one serving run: throughput, latency percentiles, queue
//! depths, and per-device / per-class usage.

use super::dispatch::DispatchPolicy;
use serde::Serialize;

/// One served request, in issue order. Latency is defined as
/// `wait + service` (not `completion − arrival`), so a request that never
/// queues reports its class's service time *bit-identically* — the invariant
/// the serve layer's zero-skew property test pins down.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RequestRecord {
    /// Issue index (also the index into [`ServeReport::records`]).
    pub id: usize,
    /// Index into the run's request classes.
    pub class: usize,
    /// Device the request executed on.
    pub device: usize,
    /// Virtual arrival time in seconds.
    pub arrival_seconds: f64,
    /// Time spent queued before dispatch, in seconds (0.0 exactly when the
    /// request was dispatched at its arrival instant).
    pub wait_seconds: f64,
    /// Service time in seconds — the engine-simulated runtime of the
    /// request's class on one device.
    pub service_seconds: f64,
}

impl RequestRecord {
    /// End-to-end latency in seconds (`wait + service`).
    pub fn latency_seconds(&self) -> f64 {
        self.wait_seconds + self.service_seconds
    }

    /// End-to-end latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency_seconds() * 1e3
    }
}

/// Latency distribution of one run, in milliseconds. Percentiles use the
/// nearest-rank method over the completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Mean latency.
    pub mean_ms: f64,
    /// Median (50th percentile) latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Worst observed latency.
    pub max_ms: f64,
}

/// Queue-depth statistics of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct QueueSummary {
    /// Largest number of requests waiting at any instant.
    pub max_depth: usize,
    /// Time-weighted mean queue depth over the makespan.
    pub mean_depth: f64,
}

/// Usage of one simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DeviceUsage {
    /// Device index.
    pub device: usize,
    /// Requests the device served.
    pub served: usize,
    /// Virtual seconds the device spent executing requests.
    pub busy_seconds: f64,
    /// `busy_seconds` over the run's makespan (1.0 = never idle).
    pub utilization: f64,
}

/// Usage of one request class.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClassUsage {
    /// Class name.
    pub name: String,
    /// Requests of this class that were served.
    pub served: usize,
    /// The class's per-request service time in milliseconds (identical for
    /// every request of the class — the cluster is homogeneous).
    pub service_ms: f64,
}

/// The full outcome of one serving run. Bit-reproducible: two runs with the
/// same [`ServeConfig`](super::ServeConfig) and seed compare equal.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeReport {
    /// Short name of the strategy that scheduled every request.
    pub strategy: String,
    /// The dispatch policy the run used.
    pub policy: DispatchPolicy,
    /// The arrival seed the run used.
    pub seed: u64,
    /// Number of devices in the cluster.
    pub num_devices: usize,
    /// Per-device DRAM bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Requests completed (always the configured request budget).
    pub completed: usize,
    /// Virtual time at which the last request completed, in seconds.
    pub makespan_seconds: f64,
    /// Completed requests per virtual second.
    pub throughput_rps: f64,
    /// Latency distribution over completed requests.
    pub latency: LatencySummary,
    /// Queue-depth statistics.
    pub queue: QueueSummary,
    /// Per-device usage, indexed by device.
    pub devices: Vec<DeviceUsage>,
    /// Per-class usage, in the order of the configured classes.
    pub classes: Vec<ClassUsage>,
    /// Every served request, in issue order.
    pub records: Vec<RequestRecord>,
}

impl ServeReport {
    /// Mean device utilization across the cluster.
    pub fn mean_utilization(&self) -> f64 {
        if self.devices.is_empty() {
            return 0.0;
        }
        self.devices.iter().map(|d| d.utilization).sum::<f64>() / self.devices.len() as f64
    }

    /// Latencies of every completed request in milliseconds, in issue order.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.records.iter().map(RequestRecord::latency_ms).collect()
    }

    /// Renders the report as one `ciflow.serve_report.v1` JSON document —
    /// the machine-readable twin of the [`Display`](std::fmt::Display)
    /// line, embedded by `serving_fleet --json` and by
    /// [`ResilienceReport::to_json`](super::ResilienceReport::to_json).
    pub fn to_json(&self) -> String {
        let devices = self
            .devices
            .iter()
            .map(|d| {
                format!(
                    "{{\"device\":{},\"served\":{},\"busy_seconds\":{},\"utilization\":{}}}",
                    d.device, d.served, d.busy_seconds, d.utilization
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let classes = self
            .classes
            .iter()
            .map(|c| {
                format!(
                    "{{\"name\":\"{}\",\"served\":{},\"service_ms\":{}}}",
                    json_escape(&c.name),
                    c.served,
                    c.service_ms
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let records = self
            .records
            .iter()
            .map(|r| {
                format!(
                    "{{\"id\":{},\"class\":{},\"device\":{},\"arrival_seconds\":{},\
                     \"wait_seconds\":{},\"service_seconds\":{}}}",
                    r.id, r.class, r.device, r.arrival_seconds, r.wait_seconds, r.service_seconds
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":\"ciflow.serve_report.v1\",\"strategy\":\"{}\",\"policy\":\"{}\",\
             \"seed\":{},\"num_devices\":{},\"bandwidth_gbps\":{},\"completed\":{},\
             \"makespan_seconds\":{},\"throughput_rps\":{},\
             \"latency\":{{\"mean_ms\":{},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\
             \"max_ms\":{}}},\"queue\":{{\"max_depth\":{},\"mean_depth\":{}}},\
             \"devices\":[{devices}],\"classes\":[{classes}],\"records\":[{records}]}}",
            json_escape(&self.strategy),
            self.policy,
            self.seed,
            self.num_devices,
            self.bandwidth_gbps,
            self.completed,
            self.makespan_seconds,
            self.throughput_rps,
            self.latency.mean_ms,
            self.latency.p50_ms,
            self.latency.p95_ms,
            self.latency.p99_ms,
            self.latency.max_ms,
            self.queue.max_depth,
            self.queue.mean_depth,
        )
    }
}

/// Escapes a string for embedding in the hand-rolled JSON documents.
pub(crate) fn json_escape(raw: &str) -> String {
    raw.replace('\\', "\\\\").replace('"', "\\\"")
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} x{} @ {} GB/s [{}] seed {}: {} req in {:.2} ms -> {:.1} req/s, \
             p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, util {:.1}%, queue max {}",
            self.strategy,
            self.num_devices,
            self.bandwidth_gbps,
            self.policy,
            self.seed,
            self.completed,
            self.makespan_seconds * 1e3,
            self.throughput_rps,
            self.latency.p50_ms,
            self.latency.p95_ms,
            self.latency.p99_ms,
            self.mean_utilization() * 100.0,
            self.queue.max_depth,
        )
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (`q` in 0..=100).
pub(crate) fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    let rank = ((q / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 95.0), 95.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        // Small samples clamp to the observed extremes.
        assert_eq!(percentile(&[1.0, 2.0], 1.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], 99.0), 2.0);
    }

    #[test]
    fn latency_is_wait_plus_service() {
        let record = RequestRecord {
            id: 0,
            class: 0,
            device: 0,
            arrival_seconds: 1.0,
            wait_seconds: 0.0,
            service_seconds: 0.25,
        };
        // Zero wait leaves the service time bit-identical.
        assert_eq!(record.latency_seconds().to_bits(), 0.25f64.to_bits());
        assert_eq!(record.latency_ms(), 250.0);
    }
}
