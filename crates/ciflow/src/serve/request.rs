//! Request classes: the unit of served work.
//!
//! A [`RequestClass`] names one kind of request the cluster serves — a
//! single hybrid key switch or a whole multi-kernel [`Workload`] pipeline —
//! together with the relative weight at which the arrival process draws it.
//! The presets mirror the workload presets of [`crate::workload`]: rotation
//! batches, relinearizations, the bootstrapping key-switch backbone, and
//! rescaling chains at descending parameter points.

use crate::api::{Job, StrategySpec};
use crate::benchmark::HksBenchmark;
use crate::workload::{PipelineMode, Workload};
use serde::Serialize;

/// What one request of a class executes on a device.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ClassWork {
    /// A single hybrid key switch at one parameter point.
    Single(HksBenchmark),
    /// A multi-kernel workload pipeline, stitched in the given mode.
    Pipeline {
        /// The kernel sequence one request expands to.
        workload: Workload,
        /// Fused pipeline or back-to-back baseline.
        mode: PipelineMode,
    },
}

impl ClassWork {
    /// Number of HKS kernel invocations one request of this work executes.
    pub fn hks_invocations(&self) -> usize {
        match self {
            ClassWork::Single(_) => 1,
            ClassWork::Pipeline { workload, .. } => workload.hks_invocations(),
        }
    }
}

/// One request class of a served mix: a name, the work a request executes,
/// and the relative weight at which the arrival process draws the class.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RequestClass {
    /// Human-readable class name (used in reports).
    pub name: String,
    /// The work one request of this class executes.
    pub work: ClassWork,
    /// Relative draw weight (need not sum to 1 across classes; must be
    /// finite and non-negative, and at least one class must be positive).
    pub weight: f64,
}

impl RequestClass {
    /// A class serving one plain hybrid key switch per request.
    pub fn single(benchmark: HksBenchmark, weight: f64) -> Self {
        Self {
            name: format!("ks-{}", benchmark.name),
            work: ClassWork::Single(benchmark),
            weight,
        }
    }

    /// A class serving one fused [`Workload`] pipeline per request, named
    /// after the workload.
    pub fn pipeline(workload: Workload, weight: f64) -> Self {
        Self {
            name: workload.name.clone(),
            work: ClassWork::Pipeline {
                workload,
                mode: PipelineMode::Fused,
            },
            weight,
        }
    }

    /// Preset: a batch of `count` chained rotations (fused), the dominant
    /// request shape of encrypted matrix-vector products.
    pub fn rotation_batch(benchmark: HksBenchmark, count: usize, weight: f64) -> Self {
        Self::pipeline(Workload::rotation_batch(benchmark, count), weight)
    }

    /// Preset: one relinearization after a ciphertext-ciphertext multiply.
    pub fn relinearize(benchmark: HksBenchmark, weight: f64) -> Self {
        Self {
            name: format!("relin-{}", benchmark.name),
            work: ClassWork::Single(benchmark),
            weight,
        }
    }

    /// Preset: the key-switch backbone of one bootstrapping iteration
    /// (fused) — the heaviest request class.
    pub fn bootstrap_key_switch(benchmark: HksBenchmark, weight: f64) -> Self {
        Self::pipeline(Workload::bootstrap_key_switch(benchmark), weight)
    }

    /// Preset: a `levels`-deep multiply-relinearize-rescale chain at
    /// descending parameter points (fused).
    pub fn rescaling_chain(benchmark: HksBenchmark, levels: usize, weight: f64) -> Self {
        Self::pipeline(Workload::rescaling_chain(benchmark, levels), weight)
    }

    /// The reference served mix used by the examples, benches and the perf
    /// report: mostly rotation batches and relinearizations, with occasional
    /// rescaling chains and rare (heavy) bootstrap key switches.
    pub fn standard_mix(benchmark: HksBenchmark) -> Vec<RequestClass> {
        vec![
            Self::rotation_batch(benchmark, 8, 0.40),
            Self::relinearize(benchmark, 0.35),
            Self::rescaling_chain(benchmark, 4, 0.20),
            Self::bootstrap_key_switch(benchmark, 0.05),
        ]
    }

    /// The session job one request of this class executes (stats-only,
    /// scheduled by `strategy` on the caller-chosen RPU).
    pub(crate) fn job(&self, strategy: StrategySpec) -> Job {
        match &self.work {
            ClassWork::Single(benchmark) => Job::new(*benchmark, strategy),
            ClassWork::Pipeline { workload, mode } => {
                Job::workload(workload.clone(), strategy, *mode)
            }
        }
    }
}

impl std::fmt::Display for RequestClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} HKS, weight {})",
            self.name,
            self.work.hks_invocations(),
            self.weight
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_expand_to_the_expected_kernel_counts() {
        assert_eq!(
            RequestClass::single(HksBenchmark::ARK, 1.0)
                .work
                .hks_invocations(),
            1
        );
        assert_eq!(
            RequestClass::rotation_batch(HksBenchmark::ARK, 8, 1.0)
                .work
                .hks_invocations(),
            8
        );
        assert_eq!(
            RequestClass::bootstrap_key_switch(HksBenchmark::ARK, 1.0)
                .work
                .hks_invocations(),
            14
        );
        assert_eq!(
            RequestClass::rescaling_chain(HksBenchmark::ARK, 4, 1.0)
                .work
                .hks_invocations(),
            4
        );
        let mix = RequestClass::standard_mix(HksBenchmark::ARK);
        assert_eq!(mix.len(), 4);
        assert!(mix.iter().all(|c| c.weight > 0.0));
        assert!(mix[0].to_string().contains("rot8"));
    }
}
