//! Cluster and run configuration for the serving simulator, with up-front
//! validation.

use super::arrival::ArrivalProcess;
use super::dispatch::DispatchPolicy;
use super::request::RequestClass;
use crate::error::CiflowError;
use rpu::RpuConfig;
use serde::Serialize;

/// The simulated fleet: `num_devices` identical RPUs, each running the same
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterConfig {
    /// Number of RPU devices serving requests (must be positive).
    pub num_devices: usize,
    /// The configuration every device runs (bandwidth, MODOPS, channels,
    /// evk policy, memories).
    pub rpu: RpuConfig,
}

impl ClusterConfig {
    /// A cluster of `num_devices` paper-baseline RPUs.
    pub fn new(num_devices: usize, rpu: RpuConfig) -> Self {
        Self { num_devices, rpu }
    }
}

/// Everything one serving run needs: the cluster, the request mix, the
/// arrival process, the dispatch policy, and the seed that makes the run
/// reproducible.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeConfig {
    /// The simulated fleet.
    pub cluster: ClusterConfig,
    /// The request classes traffic is drawn from.
    pub classes: Vec<RequestClass>,
    /// How requests arrive.
    pub arrival: ArrivalProcess,
    /// How queued requests are matched to idle devices.
    pub policy: DispatchPolicy,
    /// Seed of the arrival process; two runs with equal configs and seeds
    /// produce bit-identical [`ServeReport`](super::ServeReport)s.
    pub seed: u64,
}

impl ServeConfig {
    /// A serving run over `classes` on a `num_devices`-RPU cluster of
    /// paper-baseline devices, FIFO dispatch, seed 0. Adjust fields (or the
    /// embedded [`RpuConfig`]) from there.
    pub fn new(num_devices: usize, classes: Vec<RequestClass>, arrival: ArrivalProcess) -> Self {
        Self {
            cluster: ClusterConfig::new(num_devices, RpuConfig::ciflow_baseline()),
            classes,
            arrival,
            policy: DispatchPolicy::Fifo,
            seed: 0,
        }
    }

    /// Replaces the per-device RPU configuration (builder style).
    pub fn with_rpu(mut self, rpu: RpuConfig) -> Self {
        self.cluster.rpu = rpu;
        self
    }

    /// Replaces the dispatch policy (builder style).
    pub fn with_policy(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the arrival seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks the configuration for structural problems that would otherwise
    /// surface as panics deep inside the simulation (empty cluster,
    /// non-finite or non-positive per-device bandwidth, empty mix,
    /// degenerate weights, non-finite or non-positive arrival rate, zero
    /// clients, zero requests). Every rejection names the offending value.
    ///
    /// # Errors
    ///
    /// Returns [`CiflowError::InvalidConfig`] describing the first problem
    /// found.
    pub fn validate(&self) -> Result<(), CiflowError> {
        let invalid = |message: String| Err(CiflowError::InvalidConfig { message });
        if self.cluster.num_devices == 0 {
            return invalid("serving cluster has zero devices".to_string());
        }
        let bandwidth = self.cluster.rpu.dram_bandwidth_gbps;
        if !bandwidth.is_finite() || bandwidth <= 0.0 {
            return invalid(format!(
                "per-device DRAM bandwidth {bandwidth} GB/s is not finite and positive"
            ));
        }
        if self.classes.is_empty() {
            return invalid("serving mix has zero request classes".to_string());
        }
        let mut total_weight = 0.0;
        for class in &self.classes {
            if !class.weight.is_finite() || class.weight < 0.0 {
                return invalid(format!(
                    "request class {:?} has invalid weight {}",
                    class.name, class.weight
                ));
            }
            total_weight += class.weight;
        }
        if total_weight <= 0.0 {
            return invalid(format!(
                "request class weights sum to {total_weight}; at least one class \
                 needs positive weight"
            ));
        }
        match self.arrival {
            ArrivalProcess::OpenLoop { rate_rps, .. } => {
                if !rate_rps.is_finite() {
                    return invalid(format!("open-loop arrival rate {rate_rps} is not finite"));
                }
                if rate_rps <= 0.0 {
                    return invalid(format!(
                        "open-loop arrival rate {rate_rps} req/s is not positive"
                    ));
                }
            }
            ArrivalProcess::ClosedLoop { concurrency, .. } => {
                if concurrency == 0 {
                    return invalid("closed-loop concurrency is zero".to_string());
                }
            }
        }
        if self.arrival.requests() == 0 {
            return invalid("arrival process issues zero requests".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::HksBenchmark;

    fn base() -> ServeConfig {
        ServeConfig::new(
            2,
            RequestClass::standard_mix(HksBenchmark::ARK),
            ArrivalProcess::ClosedLoop {
                concurrency: 4,
                requests: 16,
            },
        )
    }

    #[test]
    fn valid_configurations_pass() {
        base().validate().expect("the reference config is valid");
    }

    #[test]
    fn structural_problems_are_reported_not_panicked() {
        let mut zero_devices = base();
        zero_devices.cluster.num_devices = 0;
        let mut no_classes = base();
        no_classes.classes.clear();
        let mut nan_weight = base();
        nan_weight.classes[0].weight = f64::NAN;
        let mut zero_weights = base();
        for class in &mut zero_weights.classes {
            class.weight = 0.0;
        }
        let mut bad_rate = base();
        bad_rate.arrival = ArrivalProcess::OpenLoop {
            rate_rps: f64::INFINITY,
            requests: 10,
        };
        let mut zero_rate = base();
        zero_rate.arrival = ArrivalProcess::OpenLoop {
            rate_rps: 0.0,
            requests: 10,
        };
        let mut zero_concurrency = base();
        zero_concurrency.arrival = ArrivalProcess::ClosedLoop {
            concurrency: 0,
            requests: 10,
        };
        let mut zero_requests = base();
        zero_requests.arrival = ArrivalProcess::ClosedLoop {
            concurrency: 2,
            requests: 0,
        };
        for config in [
            zero_devices,
            no_classes,
            nan_weight,
            zero_weights,
            bad_rate,
            zero_rate,
            zero_concurrency,
            zero_requests,
        ] {
            assert!(
                matches!(config.validate(), Err(CiflowError::InvalidConfig { .. })),
                "config must be rejected: {config:?}"
            );
        }
    }

    fn rejection(config: &ServeConfig) -> String {
        match config.validate() {
            Err(CiflowError::InvalidConfig { message }) => message,
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn rejections_name_the_offending_value() {
        let mut zero_devices = base();
        zero_devices.cluster.num_devices = 0;
        assert!(rejection(&zero_devices).contains("zero devices"));

        let mut nan_bandwidth = base();
        nan_bandwidth.cluster.rpu.dram_bandwidth_gbps = f64::NAN;
        assert!(rejection(&nan_bandwidth).contains("DRAM bandwidth NaN"));
        let mut zero_bandwidth = base();
        zero_bandwidth.cluster.rpu.dram_bandwidth_gbps = 0.0;
        assert!(rejection(&zero_bandwidth).contains("DRAM bandwidth 0 GB/s"));

        let mut zero_weights = base();
        for class in &mut zero_weights.classes {
            class.weight = 0.0;
        }
        assert!(rejection(&zero_weights).contains("weights sum to 0"));
        let mut negative_weight = base();
        negative_weight.classes[0].weight = -0.5;
        assert!(rejection(&negative_weight).contains("invalid weight -0.5"));

        let mut infinite_rate = base();
        infinite_rate.arrival = ArrivalProcess::OpenLoop {
            rate_rps: f64::INFINITY,
            requests: 10,
        };
        assert!(rejection(&infinite_rate).contains("rate inf is not finite"));
        let mut negative_rate = base();
        negative_rate.arrival = ArrivalProcess::OpenLoop {
            rate_rps: -3.0,
            requests: 10,
        };
        assert!(rejection(&negative_rate).contains("rate -3 req/s is not positive"));
    }
}
