//! Request-arrival processes: how traffic reaches the cluster.
//!
//! Two classic load-generation disciplines, both driven by one explicitly
//! seeded [`SmallRng`] so a run is bit-reproducible from a `u64` seed:
//!
//! * **Open loop** — requests arrive on a Poisson-like process at a fixed
//!   mean rate, regardless of how far the cluster has fallen behind. This is
//!   the discipline that exposes queueing collapse: offered load above
//!   capacity grows the queue without bound (here: until the configured
//!   request budget is exhausted).
//! * **Closed loop** — a fixed population of clients each keeps exactly one
//!   request in flight, issuing the next the instant the previous one
//!   completes (zero think time). Offered load self-throttles to the
//!   cluster's capacity, which is what makes the concurrency-1 special case
//!   an exact replay of a plain [`Session`](crate::api::Session) run.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::Serialize;
use std::collections::VecDeque;

/// How requests arrive at the cluster. Both variants carry the total number
/// of requests the simulation issues before draining.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ArrivalProcess {
    /// Poisson-like arrivals at `rate_rps` requests per (virtual) second:
    /// inter-arrival gaps are exponentially distributed with mean
    /// `1 / rate_rps`.
    OpenLoop {
        /// Mean offered load in requests per second (must be finite and
        /// positive).
        rate_rps: f64,
        /// Total requests to issue.
        requests: usize,
    },
    /// `concurrency` clients, each with exactly one request in flight and
    /// zero think time.
    ClosedLoop {
        /// Number of concurrent clients (must be positive).
        concurrency: usize,
        /// Total requests to issue.
        requests: usize,
    },
}

impl ArrivalProcess {
    /// Total number of requests the process issues.
    pub fn requests(&self) -> usize {
        match self {
            ArrivalProcess::OpenLoop { requests, .. }
            | ArrivalProcess::ClosedLoop { requests, .. } => *requests,
        }
    }
}

impl std::fmt::Display for ArrivalProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrivalProcess::OpenLoop { rate_rps, requests } => {
                write!(f, "open-loop {rate_rps} req/s x {requests}")
            }
            ArrivalProcess::ClosedLoop {
                concurrency,
                requests,
            } => write!(f, "closed-loop c={concurrency} x {requests}"),
        }
    }
}

/// The arrival half of the simulation state: yields `(time, class)` pairs in
/// non-decreasing time order, lazily, from the seeded generator.
///
/// RNG discipline (this is what makes runs bit-reproducible): every issued
/// request consumes exactly two draws in a fixed order — the inter-arrival
/// gap then the class — for the open loop, and exactly one draw (the class)
/// for the closed loop, in issue order.
pub(crate) struct ArrivalStream {
    rng: SmallRng,
    /// Cumulative class weights for the weighted draw.
    cumulative: Vec<f64>,
    total_weight: f64,
    issued: usize,
    total: usize,
    kind: StreamKind,
}

enum StreamKind {
    Open {
        rate_rps: f64,
        /// The next arrival, already drawn (time, class).
        next: Option<(f64, usize)>,
        /// Virtual time of the previous arrival.
        last_time: f64,
    },
    Closed {
        /// Arrivals triggered by completions, in non-decreasing time order.
        pending: VecDeque<(f64, usize)>,
    },
}

impl ArrivalStream {
    /// Builds the stream; for the closed loop the initial client population
    /// is issued immediately at virtual time 0.
    pub(crate) fn new(process: ArrivalProcess, weights: &[f64], mut rng: SmallRng) -> Self {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total_weight = 0.0;
        for w in weights {
            total_weight += w;
            cumulative.push(total_weight);
        }
        let total = process.requests();
        match process {
            ArrivalProcess::OpenLoop { rate_rps, .. } => {
                let mut stream = Self {
                    rng,
                    cumulative,
                    total_weight,
                    issued: 0,
                    total,
                    kind: StreamKind::Open {
                        rate_rps,
                        next: None,
                        last_time: 0.0,
                    },
                };
                stream.draw_next_open();
                stream
            }
            ArrivalProcess::ClosedLoop { concurrency, .. } => {
                let mut pending = VecDeque::new();
                let initial = concurrency.min(total);
                for _ in 0..initial {
                    let class = draw_class(&mut rng, &cumulative, total_weight);
                    pending.push_back((0.0, class));
                }
                Self {
                    rng,
                    cumulative,
                    total_weight,
                    issued: initial,
                    total,
                    kind: StreamKind::Closed { pending },
                }
            }
        }
    }

    /// Time of the next arrival, if any.
    pub(crate) fn peek_time(&self) -> Option<f64> {
        match &self.kind {
            StreamKind::Open { next, .. } => next.map(|(t, _)| t),
            StreamKind::Closed { pending } => pending.front().map(|(t, _)| *t),
        }
    }

    /// Consumes the next arrival.
    pub(crate) fn pop(&mut self) -> Option<(f64, usize)> {
        match &mut self.kind {
            StreamKind::Open { next, .. } => {
                let arrival = next.take();
                if arrival.is_some() {
                    self.draw_next_open();
                }
                arrival
            }
            StreamKind::Closed { pending } => pending.pop_front(),
        }
    }

    /// Notifies the stream that a request completed at `time` — the hook
    /// through which the closed loop issues its next request. No-op for the
    /// open loop.
    pub(crate) fn on_completion(&mut self, time: f64) {
        if let StreamKind::Closed { pending } = &mut self.kind {
            if self.issued < self.total {
                let class = draw_class(&mut self.rng, &self.cumulative, self.total_weight);
                pending.push_back((time, class));
                self.issued += 1;
            }
        }
    }

    /// Draws the next open-loop arrival (gap then class), if budget remains.
    fn draw_next_open(&mut self) {
        let StreamKind::Open {
            rate_rps,
            next,
            last_time,
        } = &mut self.kind
        else {
            return;
        };
        if self.issued >= self.total {
            *next = None;
            return;
        }
        // Inverse-CDF exponential gap with mean 1/rate. `gen_range` yields
        // u in [0, 1), so `1 - u` is in (0, 1] and the log is finite.
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let gap = -(1.0 - u).ln() / *rate_rps;
        let time = *last_time + gap;
        let class = draw_class(&mut self.rng, &self.cumulative, self.total_weight);
        *last_time = time;
        *next = Some((time, class));
        self.issued += 1;
    }
}

/// Weighted class draw: a uniform sample over the cumulative weight line.
fn draw_class(rng: &mut SmallRng, cumulative: &[f64], total_weight: f64) -> usize {
    let x: f64 = rng.gen_range(0.0..total_weight);
    cumulative
        .iter()
        .position(|&c| x < c)
        .unwrap_or(cumulative.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn open_loop_times_are_strictly_increasing_and_seed_stable() {
        let process = ArrivalProcess::OpenLoop {
            rate_rps: 100.0,
            requests: 50,
        };
        let drain = |seed: u64| {
            let mut stream =
                ArrivalStream::new(process, &[0.5, 0.5], SmallRng::seed_from_u64(seed));
            let mut out = Vec::new();
            while let Some(a) = stream.pop() {
                out.push(a);
            }
            out
        };
        let a = drain(7);
        let b = drain(7);
        let c = drain(8);
        assert_eq!(a.len(), 50);
        assert_eq!(a, b, "same seed, same arrivals");
        assert_ne!(a, c, "different seed, different arrivals");
        for w in a.windows(2) {
            assert!(w[1].0 > w[0].0, "gaps are positive");
        }
    }

    #[test]
    fn closed_loop_issues_up_to_concurrency_then_follows_completions() {
        let process = ArrivalProcess::ClosedLoop {
            concurrency: 3,
            requests: 5,
        };
        let mut stream = ArrivalStream::new(process, &[1.0], SmallRng::seed_from_u64(1));
        assert_eq!(stream.peek_time(), Some(0.0));
        assert!(stream.pop().is_some());
        assert!(stream.pop().is_some());
        assert!(stream.pop().is_some());
        assert_eq!(stream.peek_time(), None, "population exhausted");
        stream.on_completion(2.5);
        assert_eq!(stream.peek_time(), Some(2.5));
        stream.on_completion(3.0);
        assert!(stream.pop().is_some());
        assert!(stream.pop().is_some());
        stream.on_completion(4.0);
        assert_eq!(stream.peek_time(), None, "request budget exhausted");
    }

    #[test]
    fn zero_weight_classes_are_never_drawn() {
        let process = ArrivalProcess::OpenLoop {
            rate_rps: 10.0,
            requests: 200,
        };
        let mut stream = ArrivalStream::new(process, &[0.0, 1.0, 0.0], SmallRng::seed_from_u64(3));
        while let Some((_, class)) = stream.pop() {
            assert_eq!(class, 1);
        }
    }
}
