//! The virtual-clock event simulation behind [`try_serve`](super::try_serve).
//!
//! The simulation advances a virtual clock (f64 seconds) through two event
//! kinds — request arrivals and device completions — and never consults wall
//! time, so a run is a pure function of `(ServeConfig, strategy)`. Service
//! times come from the engine: one stats-only execution per distinct request
//! class (the session schedule cache means each class's schedule is built
//! once), and every request of a class takes exactly that long, because the
//! cluster's devices are identical and the engine is deterministic.
//!
//! Event ordering is fully specified so runs are bit-reproducible: the next
//! event is the earliest of (pending completion, pending arrival), with
//! completions processed first on ties (a freed device can serve a request
//! arriving at the same instant); simultaneous completions order by device
//! index, then issue id.

use super::arrival::ArrivalStream;
use super::config::ServeConfig;
use super::dispatch::DispatchPolicy;
use super::report::{
    percentile, ClassUsage, DeviceUsage, LatencySummary, QueueSummary, RequestRecord, ServeReport,
};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// A scheduled completion event. Ordered for a max-heap of `Reverse`d
/// entries: earliest time first, ties broken by device index then issue id.
struct Completion {
    time: f64,
    device: usize,
    id: usize,
}

impl PartialEq for Completion {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Completion {}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.device.cmp(&other.device))
            .then(self.id.cmp(&other.id))
    }
}

/// One device's simulation state.
#[derive(Debug, Clone)]
struct Device {
    busy: bool,
    busy_seconds: f64,
    served: usize,
    /// Class of the most recently *dispatched* request (the affinity key).
    last_class: Option<usize>,
}

/// A queued (arrived, not yet dispatched) request.
struct Pending {
    id: usize,
    class: usize,
    arrival: f64,
}

/// Runs the event simulation. `service_seconds[class]` is the deterministic
/// per-request service time of each class; the caller (`try_serve_in`) has
/// already validated the configuration and measured the classes.
pub(crate) fn simulate(config: &ServeConfig, service_seconds: &[f64]) -> SimOutcome {
    let num_devices = config.cluster.num_devices;
    let mut devices = vec![
        Device {
            busy: false,
            busy_seconds: 0.0,
            served: 0,
            last_class: None,
        };
        num_devices
    ];
    let mut arrivals = ArrivalStream::new(
        config.arrival,
        &config
            .classes
            .iter()
            .map(|c| c.weight)
            .collect::<Vec<f64>>(),
        rand::SeedableRng::seed_from_u64(config.seed),
    );
    let mut queue: VecDeque<Pending> = VecDeque::new();
    let mut running: BinaryHeap<std::cmp::Reverse<Completion>> = BinaryHeap::new();
    let mut records: Vec<RequestRecord> = Vec::with_capacity(config.arrival.requests());

    let mut clock = 0.0f64;
    let mut queue_area = 0.0f64;
    let mut max_depth = 0usize;

    loop {
        let next_completion = running.peek().map(|c| c.0.time);
        let next_arrival = arrivals.peek_time();
        let (time, completion_first) = match (next_completion, next_arrival) {
            (None, None) => break,
            (Some(c), None) => (c, true),
            (None, Some(a)) => (a, false),
            (Some(c), Some(a)) => {
                if c <= a {
                    (c, true)
                } else {
                    (a, false)
                }
            }
        };
        queue_area += queue.len() as f64 * (time - clock);
        clock = time;

        if completion_first {
            let done = running.pop().expect("peeked completion exists").0;
            let device = &mut devices[done.device];
            device.busy = false;
            device.served += 1;
            // A closed-loop client reissues the instant its request returns.
            arrivals.on_completion(clock);
        } else {
            let (arrival, class) = arrivals.pop().expect("peeked arrival exists");
            let id = records.len();
            records.push(RequestRecord {
                id,
                class,
                device: usize::MAX,
                arrival_seconds: arrival,
                wait_seconds: 0.0,
                service_seconds: 0.0,
            });
            queue.push_back(Pending { id, class, arrival });
            max_depth = max_depth.max(queue.len());
        }

        // Match idle devices with queued requests until one side is empty.
        while !queue.is_empty() {
            let Some((device, position)) = pick(config.policy, &devices, &queue) else {
                break;
            };
            let request = queue.remove(position).expect("picked position exists");
            let service = service_seconds[request.class];
            let record = &mut records[request.id];
            record.device = device;
            record.wait_seconds = clock - request.arrival;
            record.service_seconds = service;
            let d = &mut devices[device];
            d.busy = true;
            d.busy_seconds += service;
            d.last_class = Some(request.class);
            running.push(std::cmp::Reverse(Completion {
                time: clock + service,
                device,
                id: request.id,
            }));
        }
    }

    SimOutcome {
        makespan_seconds: clock,
        queue_area,
        max_depth,
        devices,
        records,
    }
}

/// Chooses `(device, queue position)` for the next dispatch, or `None` when
/// every device is busy. See [`DispatchPolicy`] for the disciplines.
fn pick(
    policy: DispatchPolicy,
    devices: &[Device],
    queue: &VecDeque<Pending>,
) -> Option<(usize, usize)> {
    let first_idle = devices.iter().position(|d| !d.busy)?;
    let least_loaded_idle = || {
        devices
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.busy)
            .min_by(|(i, a), (j, b)| a.busy_seconds.total_cmp(&b.busy_seconds).then(i.cmp(j)))
            .map(|(i, _)| i)
            .expect("an idle device exists")
    };
    match policy {
        DispatchPolicy::Fifo => Some((first_idle, 0)),
        DispatchPolicy::LeastLoaded => Some((least_loaded_idle(), 0)),
        DispatchPolicy::ClassAffinity => {
            let head_class = queue.front().expect("queue is non-empty").class;
            // The head request prefers an idle device warm for its class.
            let warm = devices
                .iter()
                .enumerate()
                .filter(|(_, d)| !d.busy && d.last_class == Some(head_class))
                .min_by(|(i, a), (j, b)| a.busy_seconds.total_cmp(&b.busy_seconds).then(i.cmp(j)))
                .map(|(i, _)| i);
            if let Some(device) = warm {
                return Some((device, 0));
            }
            // Otherwise the least-loaded idle device batches the earliest
            // queued request of its own last class, falling back to the head.
            let device = least_loaded_idle();
            let position = devices[device]
                .last_class
                .and_then(|class| queue.iter().position(|p| p.class == class))
                .unwrap_or(0);
            Some((device, position))
        }
    }
}

/// The raw simulation outcome, assembled into a [`ServeReport`] by
/// [`finish`].
pub(crate) struct SimOutcome {
    makespan_seconds: f64,
    queue_area: f64,
    max_depth: usize,
    devices: Vec<Device>,
    records: Vec<RequestRecord>,
}

/// Assembles the report from the simulation outcome and the per-class
/// service times.
pub(crate) fn finish(
    config: &ServeConfig,
    strategy: String,
    service_seconds: &[f64],
    outcome: SimOutcome,
) -> ServeReport {
    let SimOutcome {
        makespan_seconds,
        queue_area,
        max_depth,
        devices,
        records,
    } = outcome;
    let completed = records.len();
    let throughput_rps = if makespan_seconds > 0.0 {
        completed as f64 / makespan_seconds
    } else {
        0.0
    };
    let mut sorted_ms: Vec<f64> = records.iter().map(RequestRecord::latency_ms).collect();
    sorted_ms.sort_by(f64::total_cmp);
    let latency = LatencySummary {
        mean_ms: sorted_ms.iter().sum::<f64>() / completed.max(1) as f64,
        p50_ms: percentile(&sorted_ms, 50.0),
        p95_ms: percentile(&sorted_ms, 95.0),
        p99_ms: percentile(&sorted_ms, 99.0),
        max_ms: *sorted_ms.last().expect("at least one request completed"),
    };
    let queue = QueueSummary {
        max_depth,
        mean_depth: if makespan_seconds > 0.0 {
            queue_area / makespan_seconds
        } else {
            0.0
        },
    };
    let device_usage = devices
        .iter()
        .enumerate()
        .map(|(i, d)| DeviceUsage {
            device: i,
            served: d.served,
            busy_seconds: d.busy_seconds,
            utilization: if makespan_seconds > 0.0 {
                d.busy_seconds / makespan_seconds
            } else {
                0.0
            },
        })
        .collect();
    let class_usage = config
        .classes
        .iter()
        .enumerate()
        .map(|(i, class)| ClassUsage {
            name: class.name.clone(),
            served: records.iter().filter(|r| r.class == i).count(),
            service_ms: service_seconds[i] * 1e3,
        })
        .collect();
    ServeReport {
        strategy,
        policy: config.policy,
        seed: config.seed,
        num_devices: config.cluster.num_devices,
        bandwidth_gbps: config.cluster.rpu.dram_bandwidth_gbps,
        completed,
        makespan_seconds,
        throughput_rps,
        latency,
        queue,
        devices: device_usage,
        classes: class_usage,
        records,
    }
}
