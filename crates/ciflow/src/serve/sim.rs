//! The virtual-clock event simulation behind [`try_serve`](super::try_serve)
//! and [`try_fault_serve`](super::try_fault_serve).
//!
//! The simulation advances a virtual clock (f64 seconds) through four event
//! kinds — device completions, device fault transitions (crash/restore),
//! retry releases, and request arrivals — and never consults wall time, so
//! a run is a pure function of `(ServeConfig, FaultPlan, strategy)`.
//! Service times come from the engine: one stats-only execution per
//! distinct request class (the session schedule cache means each class's
//! schedule is built once), and every request of a class takes exactly that
//! long, because the cluster's devices are identical and the engine is
//! deterministic. Degradation windows substitute timeline-derived service
//! times at the dispatch instant.
//!
//! Event ordering is fully specified so runs are bit-reproducible: the next
//! event is the earliest by time, with ties broken by kind — completions
//! first, then fault transitions (by device index), then retry releases,
//! then arrivals. Simultaneous completions order by device index, then
//! issue id. The fault-free path is this same loop with an empty
//! [`FaultPlan`]; it performs exactly the same arithmetic in exactly the
//! same order as it did before faults existed, which is what makes the
//! zero-fault replay bit-exact.

use super::arrival::ArrivalStream;
use super::config::ServeConfig;
use super::dispatch::DispatchPolicy;
use super::fault::{AdmissionPolicy, CrashPlan, FaultPlan, ServiceTable};
use super::report::{
    percentile, ClassUsage, DeviceUsage, LatencySummary, QueueSummary, RequestRecord, ServeReport,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Stream salts for the dedicated fault RNGs, xor-folded with the run seed
/// so fault draws never perturb the arrival stream (zero-fault purity) and
/// each device's crash process is independent of the others.
const CRASH_STREAM_SALT: u64 = 0x9D5C_B761_1FC8_42A7;
const TRANSIENT_STREAM_SALT: u64 = 0x51AF_0296_63B5_D10F;
const DEVICE_STREAM_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// A scheduled completion event. Ordered for a max-heap of `Reverse`d
/// entries: earliest time first, ties broken by device index then issue
/// id. The epoch, failure flag and service time ride along without
/// affecting the order.
struct Completion {
    time: f64,
    device: usize,
    id: usize,
    /// The owning device's epoch at dispatch; a crash bumps the device
    /// epoch, turning this entry stale (lazily purged at the heap top).
    epoch: u64,
    /// Whether this attempt fails transiently at completion.
    failed: bool,
    /// The attempt's service time (wasted in full if `failed`).
    service: f64,
}

impl PartialEq for Completion {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Completion {}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.device.cmp(&other.device))
            .then(self.id.cmp(&other.id))
    }
}

/// A retry whose backoff expires at `time`; ordered like completions.
struct RetryEntry {
    time: f64,
    id: usize,
}

impl PartialEq for RetryEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for RetryEntry {}

impl PartialOrd for RetryEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RetryEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.id.cmp(&other.id))
    }
}

/// The attempt a device is currently executing.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: usize,
    dispatched_at: f64,
    completes_at: f64,
}

/// One device's simulation state.
#[derive(Debug, Clone)]
struct Device {
    busy: bool,
    /// Whether the device is up (crashed devices are never dispatched to).
    up: bool,
    busy_seconds: f64,
    served: usize,
    /// Class of the most recently *dispatched* request (the affinity key).
    /// A crash clears it: the replacement device comes up cold.
    last_class: Option<usize>,
    /// Bumped on every crash; completions from older epochs are stale.
    epoch: u64,
    crashes: usize,
    down_seconds: f64,
    down_since: f64,
    in_flight: Option<InFlight>,
}

/// A queued (arrived or re-queued, not yet dispatched) request.
struct Pending {
    id: usize,
    class: usize,
    arrival: f64,
}

/// Per-request bookkeeping beyond the public [`RequestRecord`].
struct ReqState {
    arrival: f64,
    /// Dispatch attempts consumed so far.
    attempts: usize,
    /// Whether admission downgraded the request to the fallback class.
    downgraded: bool,
    /// Absolute deadline (arrival + plan deadline), when timeouts are on.
    deadline: Option<f64>,
}

/// Final disposition of an accepted request.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Pending,
    Completed,
    TimedOut,
}

/// The crash/restore schedule of one device, advanced lazily as its
/// transitions are processed.
struct DeviceFaults {
    kind: FaultKind,
    /// The next transition, if any: `(time, what)`.
    next: Option<(f64, Transition)>,
}

enum FaultKind {
    Quiet,
    /// Sorted, non-overlapping `(crash, restore)` windows.
    Scripted {
        windows: Vec<(f64, f64)>,
        index: usize,
    },
    /// Exponential up/down times drawn from a per-device stream.
    Sampled {
        rng: SmallRng,
        mtbf_seconds: f64,
        mttr_seconds: f64,
    },
}

impl DeviceFaults {
    fn quiet() -> Self {
        Self {
            kind: FaultKind::Quiet,
            next: None,
        }
    }

    fn scripted(mut windows: Vec<(f64, f64)>) -> Self {
        windows.sort_by(|a, b| a.0.total_cmp(&b.0));
        let next = windows.first().map(|w| (w.0, Transition::Crash));
        Self {
            kind: FaultKind::Scripted { windows, index: 0 },
            next,
        }
    }

    fn sampled(seed: u64, mtbf_seconds: f64, mttr_seconds: f64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let first = exp_draw(&mut rng, mtbf_seconds);
        Self {
            kind: FaultKind::Sampled {
                rng,
                mtbf_seconds,
                mttr_seconds,
            },
            next: Some((first, Transition::Crash)),
        }
    }

    /// Advances past the transition just processed at `now`.
    fn advance(&mut self, now: f64, processed: Transition) {
        match (&mut self.kind, processed) {
            (FaultKind::Quiet, _) => self.next = None,
            (FaultKind::Scripted { windows, index }, Transition::Crash) => {
                self.next = Some((windows[*index].1, Transition::Restore));
            }
            (FaultKind::Scripted { windows, index }, Transition::Restore) => {
                *index += 1;
                self.next = windows.get(*index).map(|w| (w.0, Transition::Crash));
            }
            (
                FaultKind::Sampled {
                    rng, mttr_seconds, ..
                },
                Transition::Crash,
            ) => {
                self.next = Some((now + exp_draw(rng, *mttr_seconds), Transition::Restore));
            }
            (
                FaultKind::Sampled {
                    rng, mtbf_seconds, ..
                },
                Transition::Restore,
            ) => {
                self.next = Some((now + exp_draw(rng, *mtbf_seconds), Transition::Crash));
            }
        }
    }
}

#[derive(Clone, Copy)]
enum Transition {
    Crash,
    Restore,
}

/// Inverse-CDF exponential draw with the given mean. `gen_range` yields
/// u in [0, 1), so `1 - u` is in (0, 1] and the log is finite.
fn exp_draw(rng: &mut SmallRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() * mean
}

/// What the event loop processes next. Priority on time ties:
/// completions < faults < retries < arrivals.
enum Event {
    Completion,
    Fault(usize),
    Retry,
    Arrival,
}

/// Counters a faulted run accumulates on top of the [`SimOutcome`].
pub(crate) struct FaultCounters {
    pub(crate) offered: usize,
    pub(crate) timed_out: usize,
    pub(crate) shed: usize,
    pub(crate) degraded: usize,
    pub(crate) late: usize,
    /// Completions that were on time and at full fidelity.
    pub(crate) useful: usize,
    pub(crate) retries: usize,
    pub(crate) transient_failures: usize,
    pub(crate) crash_losses: usize,
    pub(crate) wasted_seconds: f64,
    pub(crate) device_faults: Vec<DeviceFaultStats>,
}

/// Crash/down-time tally of one device.
pub(crate) struct DeviceFaultStats {
    pub(crate) crashes: usize,
    pub(crate) down_seconds: f64,
}

/// Runs the fault-free event simulation: the faulted loop under an empty
/// plan. `service_seconds[class]` is the deterministic per-request service
/// time of each class; the caller (`try_serve_in`) has already validated
/// the configuration and measured the classes.
pub(crate) fn simulate(config: &ServeConfig, service_seconds: &[f64]) -> SimOutcome {
    let plan = FaultPlan::none();
    let services = ServiceTable::base_only(service_seconds);
    simulate_resilient(config, &plan, &services).0
}

/// Runs the faulted event simulation. The returned [`SimOutcome`] holds the
/// records of *completed* requests only (in issue order; ids are sparse
/// when requests timed out); the [`FaultCounters`] hold the resilience
/// ledger. With an empty plan this is bit-identical to the historical
/// fault-free simulator.
pub(crate) fn simulate_resilient(
    config: &ServeConfig,
    plan: &FaultPlan,
    services: &ServiceTable,
) -> (SimOutcome, FaultCounters) {
    let num_devices = config.cluster.num_devices;
    let mut devices = vec![
        Device {
            busy: false,
            up: true,
            busy_seconds: 0.0,
            served: 0,
            last_class: None,
            epoch: 0,
            crashes: 0,
            down_seconds: 0.0,
            down_since: 0.0,
            in_flight: None,
        };
        num_devices
    ];
    let mut faults = build_device_faults(config, plan);
    let has_faults = faults.iter().any(|f| f.next.is_some());
    let mut failure_rng = SmallRng::seed_from_u64(config.seed ^ TRANSIENT_STREAM_SALT);
    let transient_rate = plan.transient_failure_rate;

    let mut arrivals = ArrivalStream::new(
        config.arrival,
        &config
            .classes
            .iter()
            .map(|c| c.weight)
            .collect::<Vec<f64>>(),
        rand::SeedableRng::seed_from_u64(config.seed),
    );
    let mut queue: VecDeque<Pending> = VecDeque::new();
    let mut running: BinaryHeap<std::cmp::Reverse<Completion>> = BinaryHeap::new();
    let mut retries: BinaryHeap<std::cmp::Reverse<RetryEntry>> = BinaryHeap::new();
    let mut records: Vec<RequestRecord> = Vec::with_capacity(config.arrival.requests());
    let mut states: Vec<ReqState> = Vec::with_capacity(config.arrival.requests());
    let mut outcomes: Vec<Outcome> = Vec::with_capacity(config.arrival.requests());

    let mut clock = 0.0f64;
    let mut queue_area = 0.0f64;
    let mut max_depth = 0usize;
    let mut counters = FaultCounters {
        offered: 0,
        timed_out: 0,
        shed: 0,
        degraded: 0,
        late: 0,
        useful: 0,
        retries: 0,
        transient_failures: 0,
        crash_losses: 0,
        wasted_seconds: 0.0,
        device_faults: Vec::new(),
    };

    loop {
        // Attempts lost to a crash leave stale heap entries behind; purge
        // them lazily so the earliest live completion is at the top.
        while let Some(head) = running.peek() {
            if head.0.epoch != devices[head.0.device].epoch {
                running.pop();
            } else {
                break;
            }
        }

        // The run is over when no request can still make progress. Fault
        // transitions scheduled beyond this point never execute: the
        // makespan is the completion of the last disposed request.
        let work_remains = !queue.is_empty()
            || devices.iter().any(|d| d.busy)
            || arrivals.peek_time().is_some()
            || !retries.is_empty();
        if !work_remains {
            break;
        }

        // Earliest event wins; kind breaks time ties (completion < fault <
        // retry < arrival, faults tie-broken by device index).
        let mut best: Option<(f64, u8, Event)> = None;
        let replace = |best: &Option<(f64, u8, Event)>, time: f64, priority: u8| match best {
            None => true,
            Some((bt, bp, _)) => time < *bt || (time == *bt && priority < *bp),
        };
        if let Some(head) = running.peek() {
            best = Some((head.0.time, 0, Event::Completion));
        }
        if has_faults {
            for (device, fault) in faults.iter().enumerate() {
                if let Some((time, _)) = fault.next {
                    if replace(&best, time, 1) {
                        best = Some((time, 1, Event::Fault(device)));
                    }
                }
            }
        }
        if let Some(head) = retries.peek() {
            if replace(&best, head.0.time, 2) {
                best = Some((head.0.time, 2, Event::Retry));
            }
        }
        if let Some(time) = arrivals.peek_time() {
            if replace(&best, time, 3) {
                best = Some((time, 3, Event::Arrival));
            }
        }

        let Some((time, _, event)) = best else {
            // Work is stranded (every remaining device is down forever and
            // nothing else is scheduled): the queued requests give up. A
            // closed loop may issue replacements at this same instant, so
            // keep looping rather than breaking.
            let stranded: Vec<Pending> = queue.drain(..).collect();
            for pending in stranded {
                give_up(
                    pending.id,
                    clock,
                    &mut outcomes,
                    &mut counters,
                    &mut arrivals,
                );
            }
            continue;
        };
        queue_area += queue.len() as f64 * (time - clock);
        clock = time;

        match event {
            Event::Completion => {
                let done = running.pop().expect("peeked completion exists").0;
                let device = &mut devices[done.device];
                device.busy = false;
                device.in_flight = None;
                if done.failed {
                    counters.transient_failures += 1;
                    counters.wasted_seconds += done.service;
                    let state = &states[done.id];
                    if state.attempts < plan.retry.max_attempts {
                        let backoff = plan.retry.backoff_seconds(state.attempts);
                        retries.push(std::cmp::Reverse(RetryEntry {
                            time: clock + backoff,
                            id: done.id,
                        }));
                    } else {
                        give_up(done.id, clock, &mut outcomes, &mut counters, &mut arrivals);
                    }
                } else {
                    device.served += 1;
                    outcomes[done.id] = Outcome::Completed;
                    let state = &states[done.id];
                    let late = state.deadline.is_some_and(|d| clock > d);
                    if state.downgraded {
                        counters.degraded += 1;
                    }
                    if late {
                        counters.late += 1;
                    }
                    if !state.downgraded && !late {
                        counters.useful += 1;
                    }
                    // A closed-loop client reissues the instant its request
                    // returns.
                    arrivals.on_completion(clock);
                }
            }
            Event::Fault(device_index) => {
                let (_, transition) = faults[device_index]
                    .next
                    .expect("selected fault transition exists");
                match transition {
                    Transition::Crash => {
                        let device = &mut devices[device_index];
                        device.up = false;
                        device.crashes += 1;
                        device.down_since = clock;
                        device.last_class = None;
                        if let Some(in_flight) = device.in_flight.take() {
                            // The in-flight attempt is lost: its partial
                            // execution is wasted, its scheduled completion
                            // goes stale, and the dispatcher fails the work
                            // over immediately (no backoff) if attempts
                            // remain.
                            device.busy = false;
                            device.epoch += 1;
                            device.busy_seconds -= in_flight.completes_at - clock;
                            counters.wasted_seconds += clock - in_flight.dispatched_at;
                            counters.crash_losses += 1;
                            let id = in_flight.id;
                            if states[id].attempts < plan.retry.max_attempts {
                                insert_by_arrival(
                                    &mut queue,
                                    Pending {
                                        id,
                                        class: records[id].class,
                                        arrival: states[id].arrival,
                                    },
                                );
                                max_depth = max_depth.max(queue.len());
                            } else {
                                give_up(id, clock, &mut outcomes, &mut counters, &mut arrivals);
                            }
                        }
                    }
                    Transition::Restore => {
                        let device = &mut devices[device_index];
                        device.up = true;
                        device.down_seconds += clock - device.down_since;
                    }
                }
                faults[device_index].advance(clock, transition);
            }
            Event::Retry => {
                let entry = retries.pop().expect("peeked retry exists").0;
                insert_by_arrival(
                    &mut queue,
                    Pending {
                        id: entry.id,
                        class: records[entry.id].class,
                        arrival: states[entry.id].arrival,
                    },
                );
                max_depth = max_depth.max(queue.len());
            }
            Event::Arrival => {
                let (arrival, class) = arrivals.pop().expect("peeked arrival exists");
                counters.offered += 1;
                match admit(
                    &plan.admission,
                    plan.deadline_seconds,
                    &queue,
                    &devices,
                    services,
                    class,
                ) {
                    Admit::Shed => {
                        counters.shed += 1;
                        // The client observes the rejection immediately; a
                        // closed loop moves on to its next request.
                        arrivals.on_completion(clock);
                    }
                    Admit::Accept {
                        class: admitted,
                        downgraded,
                    } => {
                        let id = records.len();
                        records.push(RequestRecord {
                            id,
                            class: admitted,
                            device: usize::MAX,
                            arrival_seconds: arrival,
                            wait_seconds: 0.0,
                            service_seconds: 0.0,
                        });
                        states.push(ReqState {
                            arrival,
                            attempts: 0,
                            downgraded,
                            deadline: plan.deadline_seconds.map(|d| arrival + d),
                        });
                        outcomes.push(Outcome::Pending);
                        queue.push_back(Pending {
                            id,
                            class: admitted,
                            arrival,
                        });
                        max_depth = max_depth.max(queue.len());
                    }
                }
            }
        }

        // Timeouts apply to *starting*: a queued request whose deadline has
        // passed gives up before it can be dispatched. Once dispatched, an
        // attempt always runs to completion (it may finish late).
        if plan.deadline_seconds.is_some() {
            let mut position = 0;
            while position < queue.len() {
                let expired = states[queue[position].id]
                    .deadline
                    .is_some_and(|d| clock >= d);
                if expired {
                    let pending = queue.remove(position).expect("position is in range");
                    give_up(
                        pending.id,
                        clock,
                        &mut outcomes,
                        &mut counters,
                        &mut arrivals,
                    );
                } else {
                    position += 1;
                }
            }
        }

        // Match idle up devices with queued requests until one side is
        // empty.
        while !queue.is_empty() {
            let Some((device, position)) = pick(config.policy, &devices, &queue) else {
                break;
            };
            let request = queue.remove(position).expect("picked position exists");
            let service = service_for(plan, services, device, request.class, clock);
            let state = &mut states[request.id];
            state.attempts += 1;
            if state.attempts > 1 {
                counters.retries += 1;
            }
            // One draw per attempt, skipped entirely at rate zero so the
            // fault-free path consumes no RNG state.
            let failed = transient_rate > 0.0 && failure_rng.gen_range(0.0..1.0) < transient_rate;
            let record = &mut records[request.id];
            record.device = device;
            record.wait_seconds = clock - request.arrival;
            record.service_seconds = service;
            let d = &mut devices[device];
            d.busy = true;
            d.busy_seconds += service;
            d.last_class = Some(request.class);
            d.in_flight = Some(InFlight {
                id: request.id,
                dispatched_at: clock,
                completes_at: clock + service,
            });
            running.push(std::cmp::Reverse(Completion {
                time: clock + service,
                device,
                id: request.id,
                epoch: d.epoch,
                failed,
                service,
            }));
        }
    }

    // A device still down when the run ends accrues its tail of down time.
    for device in &mut devices {
        if !device.up {
            device.down_seconds += clock - device.down_since;
        }
    }
    counters.device_faults = devices
        .iter()
        .map(|d| DeviceFaultStats {
            crashes: d.crashes,
            down_seconds: d.down_seconds,
        })
        .collect();

    // The outcome keeps completed requests only (all of them, in the
    // fault-free case), in issue order.
    let mut kept = Vec::with_capacity(records.len());
    for record in records {
        if outcomes[record.id] == Outcome::Completed {
            kept.push(record);
        }
    }

    (
        SimOutcome {
            makespan_seconds: clock,
            queue_area,
            max_depth,
            devices,
            records: kept,
        },
        counters,
    )
}

/// Marks an accepted request as given up (deadline expired before start,
/// retry budget exhausted, or stranded with every device down).
fn give_up(
    id: usize,
    clock: f64,
    outcomes: &mut [Outcome],
    counters: &mut FaultCounters,
    arrivals: &mut ArrivalStream,
) {
    outcomes[id] = Outcome::TimedOut;
    counters.timed_out += 1;
    // The client observes the failure; a closed loop moves on.
    arrivals.on_completion(clock);
}

/// Re-queues a request in arrival order (ties by issue id), so a failed-over
/// or retried request rejoins the queue where its age entitles it to be.
fn insert_by_arrival(queue: &mut VecDeque<Pending>, pending: Pending) {
    let position = queue
        .iter()
        .position(|p| {
            p.arrival
                .total_cmp(&pending.arrival)
                .then(p.id.cmp(&pending.id))
                .is_gt()
        })
        .unwrap_or(queue.len());
    queue.insert(position, pending);
}

/// Builds the per-device fault schedules from the plan.
fn build_device_faults(config: &ServeConfig, plan: &FaultPlan) -> Vec<DeviceFaults> {
    let num_devices = config.cluster.num_devices;
    match &plan.crashes {
        CrashPlan::None => (0..num_devices).map(|_| DeviceFaults::quiet()).collect(),
        CrashPlan::Scripted(events) => {
            let mut windows: Vec<Vec<(f64, f64)>> = vec![Vec::new(); num_devices];
            for event in events {
                windows[event.device]
                    .push((event.at_seconds, event.at_seconds + event.down_seconds));
            }
            windows.into_iter().map(DeviceFaults::scripted).collect()
        }
        CrashPlan::Random {
            mtbf_seconds,
            mttr_seconds,
        } => (0..num_devices)
            .map(|device| {
                let seed = config.seed
                    ^ CRASH_STREAM_SALT
                        .wrapping_add((device as u64).wrapping_mul(DEVICE_STREAM_STRIDE));
                DeviceFaults::sampled(seed, *mtbf_seconds, *mttr_seconds)
            })
            .collect(),
    }
}

/// The admission decision for one arrival.
enum Admit {
    Accept { class: usize, downgraded: bool },
    Shed,
}

fn admit(
    policy: &AdmissionPolicy,
    deadline: Option<f64>,
    queue: &VecDeque<Pending>,
    devices: &[Device],
    services: &ServiceTable,
    class: usize,
) -> Admit {
    match policy {
        AdmissionPolicy::Open => Admit::Accept {
            class,
            downgraded: false,
        },
        AdmissionPolicy::ShedAboveDepth { max_queue_depth } => {
            if queue.len() >= *max_queue_depth {
                Admit::Shed
            } else {
                Admit::Accept {
                    class,
                    downgraded: false,
                }
            }
        }
        AdmissionPolicy::DegradeAboveDepth {
            degrade_depth,
            fallback_class,
            shed_depth,
        } => {
            if shed_depth.is_some_and(|shed_at| queue.len() >= shed_at) {
                Admit::Shed
            } else if queue.len() >= *degrade_depth && class != *fallback_class {
                Admit::Accept {
                    class: *fallback_class,
                    downgraded: true,
                }
            } else {
                Admit::Accept {
                    class,
                    downgraded: false,
                }
            }
        }
        AdmissionPolicy::DeadlineAware => {
            let deadline = deadline.expect("validated: deadline-aware admission has a deadline");
            let up = devices.iter().filter(|d| d.up).count();
            if up == 0 {
                return Admit::Shed;
            }
            let backlog: f64 = queue.iter().map(|p| services.base[p.class]).sum();
            if backlog / up as f64 > deadline {
                Admit::Shed
            } else {
                Admit::Accept {
                    class,
                    downgraded: false,
                }
            }
        }
    }
}

/// The service time of one dispatch: the degraded row of an open window on
/// the device at the dispatch instant, otherwise the baseline. Degradation
/// applies at dispatch granularity — an attempt keeps the service time it
/// started with even if the window closes mid-flight.
fn service_for(
    plan: &FaultPlan,
    services: &ServiceTable,
    device: usize,
    class: usize,
    clock: f64,
) -> f64 {
    for (index, window) in plan.degradations.iter().enumerate() {
        if window.device == device && window.contains(clock) {
            return services.degraded[index][class];
        }
    }
    services.base[class]
}

/// Chooses `(device, queue position)` for the next dispatch, or `None` when
/// every device is busy or down. See [`DispatchPolicy`] for the
/// disciplines.
fn pick(
    policy: DispatchPolicy,
    devices: &[Device],
    queue: &VecDeque<Pending>,
) -> Option<(usize, usize)> {
    let ready = |d: &Device| !d.busy && d.up;
    let first_idle = devices.iter().position(&ready)?;
    let least_loaded_idle = || {
        devices
            .iter()
            .enumerate()
            .filter(|(_, d)| ready(d))
            .min_by(|(i, a), (j, b)| a.busy_seconds.total_cmp(&b.busy_seconds).then(i.cmp(j)))
            .map(|(i, _)| i)
            .expect("an idle device exists")
    };
    match policy {
        DispatchPolicy::Fifo => Some((first_idle, 0)),
        DispatchPolicy::LeastLoaded => Some((least_loaded_idle(), 0)),
        DispatchPolicy::ClassAffinity => {
            let head_class = queue.front().expect("queue is non-empty").class;
            // The head request prefers an idle device warm for its class.
            let warm = devices
                .iter()
                .enumerate()
                .filter(|(_, d)| ready(d) && d.last_class == Some(head_class))
                .min_by(|(i, a), (j, b)| a.busy_seconds.total_cmp(&b.busy_seconds).then(i.cmp(j)))
                .map(|(i, _)| i);
            if let Some(device) = warm {
                return Some((device, 0));
            }
            // Otherwise the least-loaded idle device batches the earliest
            // queued request of its own last class, falling back to the head.
            let device = least_loaded_idle();
            let position = devices[device]
                .last_class
                .and_then(|class| queue.iter().position(|p| p.class == class))
                .unwrap_or(0);
            Some((device, position))
        }
    }
}

/// The raw simulation outcome, assembled into a [`ServeReport`] by
/// [`finish`].
pub(crate) struct SimOutcome {
    makespan_seconds: f64,
    queue_area: f64,
    max_depth: usize,
    devices: Vec<Device>,
    records: Vec<RequestRecord>,
}

/// Assembles the report from the simulation outcome and the per-class
/// service times.
pub(crate) fn finish(
    config: &ServeConfig,
    strategy: String,
    service_seconds: &[f64],
    outcome: SimOutcome,
) -> ServeReport {
    let SimOutcome {
        makespan_seconds,
        queue_area,
        max_depth,
        devices,
        records,
    } = outcome;
    let completed = records.len();
    let throughput_rps = if makespan_seconds > 0.0 {
        completed as f64 / makespan_seconds
    } else {
        0.0
    };
    let mut sorted_ms: Vec<f64> = records.iter().map(RequestRecord::latency_ms).collect();
    sorted_ms.sort_by(f64::total_cmp);
    // A faulted run can complete zero requests; its latency summary is all
    // zeros rather than a panic.
    let latency = if sorted_ms.is_empty() {
        LatencySummary {
            mean_ms: 0.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            max_ms: 0.0,
        }
    } else {
        LatencySummary {
            mean_ms: sorted_ms.iter().sum::<f64>() / completed.max(1) as f64,
            p50_ms: percentile(&sorted_ms, 50.0),
            p95_ms: percentile(&sorted_ms, 95.0),
            p99_ms: percentile(&sorted_ms, 99.0),
            max_ms: *sorted_ms.last().expect("at least one request completed"),
        }
    };
    let queue = QueueSummary {
        max_depth,
        mean_depth: if makespan_seconds > 0.0 {
            queue_area / makespan_seconds
        } else {
            0.0
        },
    };
    let device_usage = devices
        .iter()
        .enumerate()
        .map(|(i, d)| DeviceUsage {
            device: i,
            served: d.served,
            busy_seconds: d.busy_seconds,
            utilization: if makespan_seconds > 0.0 {
                d.busy_seconds / makespan_seconds
            } else {
                0.0
            },
        })
        .collect();
    let class_usage = config
        .classes
        .iter()
        .enumerate()
        .map(|(i, class)| ClassUsage {
            name: class.name.clone(),
            served: records.iter().filter(|r| r.class == i).count(),
            service_ms: service_seconds[i] * 1e3,
        })
        .collect();
    ServeReport {
        strategy,
        policy: config.policy,
        seed: config.seed,
        num_devices: config.cluster.num_devices,
        bandwidth_gbps: config.cluster.rpu.dram_bandwidth_gbps,
        completed,
        makespan_seconds,
        throughput_rps,
        latency,
        queue,
        devices: device_usage,
        classes: class_usage,
        records,
    }
}
