//! Deterministic fault injection and failure handling for the serving
//! fleet.
//!
//! A [`FaultPlan`] describes everything that can go wrong in one serving
//! run — device crashes and restarts (scripted, or MTBF/MTTR-sampled from
//! the run seed), transient per-device bandwidth degradation windows, and
//! per-request transient failures — together with the machinery that
//! handles it: request deadlines, retry with capped exponential backoff,
//! failover re-dispatch of in-flight work lost to a crash, and admission
//! control with graceful degradation (shedding or downgrading requests to
//! a cheaper [`RequestClass`] instead of collapsing).
//!
//! Everything is driven by the same virtual clock as the fault-free
//! simulator and by dedicated RNG streams derived from `config.seed`, so a
//! faulted run is a pure, bit-reproducible function of
//! `(ServeConfig, FaultPlan, strategy)`. Two invariants are held to the
//! same standard as the fault-free layer and property-tested in
//! `tests/fault_tolerance.rs`:
//!
//! * **Zero-fault replay** — running [`try_fault_serve`] with
//!   [`FaultPlan::none`] produces a [`ResilienceReport`] whose embedded
//!   [`ServeReport`] is bit-for-bit the report [`try_serve`](super::try_serve)
//!   produces. The fault-free path *is* the faulted path with an empty
//!   plan; there is no second simulator to drift.
//! * **Conservation** — every offered arrival is exactly one of
//!   completed, timed-out, or shed:
//!   `offered == serve.completed + timed_out + shed`.
//!
//! Degraded bandwidth windows re-derive service times through the
//! parametric timelines of [`Session::run_analytic`], so a degraded point
//! is bit-identical to re-measuring the class through the engine at the
//! reduced bandwidth. See `docs/SERVING.md` for the normative fault model.

use super::config::ServeConfig;
use super::report::ServeReport;
use super::sim;
use crate::api::{Session, StrategySpec};
use crate::error::CiflowError;
use serde::Serialize;

/// One scripted device outage: `device` goes down at `at_seconds` and comes
/// back `down_seconds` later.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CrashEvent {
    /// Device index (must be below the cluster size).
    pub device: usize,
    /// Virtual time at which the device crashes, in seconds.
    pub at_seconds: f64,
    /// How long the device stays down before restarting, in seconds (must
    /// be positive).
    pub down_seconds: f64,
}

/// How device crashes are injected.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum CrashPlan {
    /// No crashes.
    None,
    /// An explicit list of outages. Windows on the same device must not
    /// overlap.
    Scripted(Vec<CrashEvent>),
    /// Crashes sampled per device from the run seed: exponential up-times
    /// with mean `mtbf_seconds` alternating with exponential down-times
    /// with mean `mttr_seconds`. Each device gets its own RNG stream
    /// derived from `config.seed` and the device index, so the sample is
    /// independent of cluster size changes elsewhere in a sweep.
    Random {
        /// Mean time between failures, in virtual seconds (finite,
        /// positive).
        mtbf_seconds: f64,
        /// Mean time to repair, in virtual seconds (finite, positive).
        mttr_seconds: f64,
    },
}

/// One transient bandwidth-degradation window: while it is open, requests
/// *dispatched* to `device` run at `bandwidth_factor` times the configured
/// DRAM bandwidth (thermal throttling, a congested link). Service times
/// inside the window are re-derived from the class's parametric timeline,
/// so they are bit-identical to an engine run at the reduced bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DegradeWindow {
    /// Device index (must be below the cluster size).
    pub device: usize,
    /// Window start, in virtual seconds.
    pub start_seconds: f64,
    /// Window length, in virtual seconds (must be positive).
    pub duration_seconds: f64,
    /// Bandwidth multiplier in `(0, 1]`; `1.0` is a no-op window.
    pub bandwidth_factor: f64,
}

impl DegradeWindow {
    /// Whether the window is open at `time` (half-open interval
    /// `[start, start + duration)`).
    pub(crate) fn contains(&self, time: f64) -> bool {
        time >= self.start_seconds && time < self.start_seconds + self.duration_seconds
    }
}

/// Retry discipline for failed attempts (transient failures and work lost
/// to crashes). `max_attempts` bounds the total number of dispatches per
/// request, and the k-th retry waits
/// `min(backoff_base_seconds * 2^(k-1), backoff_cap_seconds)` after the
/// failure — capped exponential backoff. Crash failover skips the backoff
/// (the dispatcher observes the crash immediately) but still consumes an
/// attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RetryPolicy {
    /// Total dispatch attempts a request may consume (>= 1; `1` disables
    /// retries).
    pub max_attempts: usize,
    /// Backoff before the first retry, in virtual seconds (>= 0).
    pub backoff_base_seconds: f64,
    /// Upper bound on any single backoff, in virtual seconds (>= 0).
    pub backoff_cap_seconds: f64,
}

impl RetryPolicy {
    /// No retries: a request gets exactly one attempt.
    pub fn disabled() -> Self {
        Self {
            max_attempts: 1,
            backoff_base_seconds: 0.0,
            backoff_cap_seconds: 0.0,
        }
    }

    /// Capped exponential backoff: up to `max_attempts` dispatches, the
    /// k-th retry waiting `min(base * 2^(k-1), cap)` seconds.
    pub fn capped_exponential(max_attempts: usize, base_seconds: f64, cap_seconds: f64) -> Self {
        Self {
            max_attempts,
            backoff_base_seconds: base_seconds,
            backoff_cap_seconds: cap_seconds,
        }
    }

    /// Backoff before the retry that follows `completed_attempts` failed
    /// attempts (1-based: after the first failure this is the base).
    pub(crate) fn backoff_seconds(&self, completed_attempts: usize) -> f64 {
        if self.backoff_base_seconds <= 0.0 {
            return 0.0;
        }
        let doublings = completed_attempts.saturating_sub(1).min(62) as i32;
        (self.backoff_base_seconds * 2.0f64.powi(doublings)).min(self.backoff_cap_seconds)
    }
}

/// Admission control: what happens to an arrival when the cluster is
/// struggling. Decisions are made once, at the arrival instant, against
/// the queue and device state at that instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum AdmissionPolicy {
    /// Admit everything (the fault-free behaviour).
    Open,
    /// Shed (reject immediately) any arrival that finds `max_queue_depth`
    /// or more requests already waiting.
    ShedAboveDepth {
        /// Queue depth at or above which arrivals are shed (>= 1).
        max_queue_depth: usize,
    },
    /// Graceful degradation: an arrival that finds `degrade_depth` or more
    /// requests waiting is downgraded to `fallback_class` (a cheaper
    /// [`RequestClass`](super::RequestClass) index) instead of being rejected; with
    /// `shed_depth` set, arrivals above that deeper threshold are shed
    /// outright.
    DegradeAboveDepth {
        /// Queue depth at or above which arrivals are downgraded (>= 1).
        degrade_depth: usize,
        /// Index into `config.classes` the downgraded request is served
        /// as.
        fallback_class: usize,
        /// Optional deeper threshold at or above which arrivals are shed.
        shed_depth: Option<usize>,
    },
    /// Deadline-aware shedding: an arrival is shed when the queued work,
    /// spread over the currently-up devices, already exceeds the request
    /// deadline (it could not start in time), or when no device is up.
    /// Requires `deadline_seconds` to be set.
    DeadlineAware,
}

/// Everything that can go wrong in one serving run, plus the policies that
/// handle it. Validated against the [`ServeConfig`] before the simulation
/// starts, like the config itself.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Device crash/restart injection.
    pub crashes: CrashPlan,
    /// Transient per-device bandwidth-degradation windows.
    pub degradations: Vec<DegradeWindow>,
    /// Probability in `[0, 1)` that any single dispatch attempt fails at
    /// completion (the work is done, then discarded — a data-path error
    /// detected at the end). Drawn per attempt from a dedicated RNG
    /// stream.
    pub transient_failure_rate: f64,
    /// Optional request deadline: a request that cannot *start* within
    /// this many seconds of its arrival is timed out. `None` disables
    /// timeouts.
    pub deadline_seconds: Option<f64>,
    /// Retry discipline for failed attempts.
    pub retry: RetryPolicy,
    /// Admission control at the arrival instant.
    pub admission: AdmissionPolicy,
}

impl FaultPlan {
    /// The empty plan: no crashes, no degradation, no transient failures,
    /// no deadline, no retries needed, open admission. Running it replays
    /// the fault-free [`ServeReport`](super::ServeReport) bit-for-bit.
    pub fn none() -> Self {
        Self {
            crashes: CrashPlan::None,
            degradations: Vec::new(),
            transient_failure_rate: 0.0,
            deadline_seconds: None,
            retry: RetryPolicy::disabled(),
            admission: AdmissionPolicy::Open,
        }
    }

    /// Replaces the crash plan (builder style).
    pub fn with_crashes(mut self, crashes: CrashPlan) -> Self {
        self.crashes = crashes;
        self
    }

    /// Adds one degradation window (builder style).
    pub fn with_degradation(mut self, window: DegradeWindow) -> Self {
        self.degradations.push(window);
        self
    }

    /// Replaces the per-attempt transient failure rate (builder style).
    pub fn with_transient_failure_rate(mut self, rate: f64) -> Self {
        self.transient_failure_rate = rate;
        self
    }

    /// Sets the request deadline (builder style).
    pub fn with_deadline(mut self, seconds: f64) -> Self {
        self.deadline_seconds = Some(seconds);
        self
    }

    /// Replaces the retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the admission policy (builder style).
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Whether the plan injects no faults at all (handling knobs like
    /// deadlines or admission control may still be set).
    pub fn injects_nothing(&self) -> bool {
        matches!(self.crashes, CrashPlan::None)
            && self.degradations.is_empty()
            && self.transient_failure_rate == 0.0
    }

    /// Scales the plan's fault *intensity* by a non-negative factor — the
    /// knob [`try_fault_sweep`](crate::sweep::try_fault_sweep) grids.
    /// `Random` crash rates scale as `mtbf / intensity` (MTTR fixed), the
    /// transient failure rate scales linearly (clamped below 1), and
    /// intensity `0` removes every injected fault while keeping the
    /// handling policies. Scripted crashes and degradation windows do not
    /// scale (they are absolute schedules) and are kept as-is for any
    /// positive intensity.
    pub fn scaled(&self, intensity: f64) -> FaultPlan {
        let mut plan = self.clone();
        if intensity <= 0.0 {
            plan.crashes = CrashPlan::None;
            plan.degradations.clear();
            plan.transient_failure_rate = 0.0;
            return plan;
        }
        if let CrashPlan::Random {
            mtbf_seconds,
            mttr_seconds,
        } = plan.crashes
        {
            plan.crashes = CrashPlan::Random {
                mtbf_seconds: mtbf_seconds / intensity,
                mttr_seconds,
            };
        }
        plan.transient_failure_rate = (self.transient_failure_rate * intensity).min(0.95);
        plan
    }

    /// Checks the plan against `config` for structural problems, mirroring
    /// [`ServeConfig::validate`]: out-of-range device or class indices,
    /// non-finite or non-positive times, overlapping windows on one
    /// device, probabilities outside `[0, 1)`, a zero-attempt retry
    /// policy, or a deadline-aware admission policy without a deadline.
    ///
    /// # Errors
    ///
    /// Returns [`CiflowError::InvalidConfig`] describing the first problem
    /// found.
    pub fn validate(&self, config: &ServeConfig) -> Result<(), CiflowError> {
        let invalid = |message: String| Err(CiflowError::InvalidConfig { message });
        let num_devices = config.cluster.num_devices;
        match &self.crashes {
            CrashPlan::None => {}
            CrashPlan::Scripted(events) => {
                let mut per_device: Vec<Vec<(f64, f64)>> = vec![Vec::new(); num_devices];
                for event in events {
                    if event.device >= num_devices {
                        return invalid(format!(
                            "scripted crash targets device {} but the cluster has {num_devices} \
                             devices",
                            event.device
                        ));
                    }
                    if !event.at_seconds.is_finite() || event.at_seconds < 0.0 {
                        return invalid(format!(
                            "scripted crash time {} is not finite and non-negative",
                            event.at_seconds
                        ));
                    }
                    if !event.down_seconds.is_finite() || event.down_seconds <= 0.0 {
                        return invalid(format!(
                            "scripted crash down-time {} is not finite and positive",
                            event.down_seconds
                        ));
                    }
                    per_device[event.device]
                        .push((event.at_seconds, event.at_seconds + event.down_seconds));
                }
                for (device, windows) in per_device.iter_mut().enumerate() {
                    windows.sort_by(|a, b| a.0.total_cmp(&b.0));
                    for pair in windows.windows(2) {
                        if pair[1].0 < pair[0].1 {
                            return invalid(format!(
                                "scripted crash windows overlap on device {device}"
                            ));
                        }
                    }
                }
            }
            CrashPlan::Random {
                mtbf_seconds,
                mttr_seconds,
            } => {
                if !mtbf_seconds.is_finite() || *mtbf_seconds <= 0.0 {
                    return invalid(format!(
                        "crash MTBF {mtbf_seconds} is not finite and positive"
                    ));
                }
                if !mttr_seconds.is_finite() || *mttr_seconds <= 0.0 {
                    return invalid(format!(
                        "crash MTTR {mttr_seconds} is not finite and positive"
                    ));
                }
            }
        }
        let mut per_device: Vec<Vec<(f64, f64)>> = vec![Vec::new(); num_devices];
        for window in &self.degradations {
            if window.device >= num_devices {
                return invalid(format!(
                    "degradation window targets device {} but the cluster has {num_devices} \
                     devices",
                    window.device
                ));
            }
            if !window.start_seconds.is_finite() || window.start_seconds < 0.0 {
                return invalid(format!(
                    "degradation window start {} is not finite and non-negative",
                    window.start_seconds
                ));
            }
            if !window.duration_seconds.is_finite() || window.duration_seconds <= 0.0 {
                return invalid(format!(
                    "degradation window duration {} is not finite and positive",
                    window.duration_seconds
                ));
            }
            if !window.bandwidth_factor.is_finite()
                || window.bandwidth_factor <= 0.0
                || window.bandwidth_factor > 1.0
            {
                return invalid(format!(
                    "degradation bandwidth factor {} is not in (0, 1]",
                    window.bandwidth_factor
                ));
            }
            per_device[window.device].push((
                window.start_seconds,
                window.start_seconds + window.duration_seconds,
            ));
        }
        for (device, windows) in per_device.iter_mut().enumerate() {
            windows.sort_by(|a, b| a.0.total_cmp(&b.0));
            for pair in windows.windows(2) {
                if pair[1].0 < pair[0].1 {
                    return invalid(format!("degradation windows overlap on device {device}"));
                }
            }
        }
        if !self.transient_failure_rate.is_finite()
            || !(0.0..1.0).contains(&self.transient_failure_rate)
        {
            return invalid(format!(
                "transient failure rate {} is not in [0, 1)",
                self.transient_failure_rate
            ));
        }
        if let Some(deadline) = self.deadline_seconds {
            if !deadline.is_finite() || deadline <= 0.0 {
                return invalid(format!(
                    "request deadline {deadline} is not finite and positive"
                ));
            }
        }
        if self.retry.max_attempts == 0 {
            return invalid("retry policy allows zero attempts per request".to_string());
        }
        if !self.retry.backoff_base_seconds.is_finite() || self.retry.backoff_base_seconds < 0.0 {
            return invalid(format!(
                "retry backoff base {} is not finite and non-negative",
                self.retry.backoff_base_seconds
            ));
        }
        if !self.retry.backoff_cap_seconds.is_finite() || self.retry.backoff_cap_seconds < 0.0 {
            return invalid(format!(
                "retry backoff cap {} is not finite and non-negative",
                self.retry.backoff_cap_seconds
            ));
        }
        match self.admission {
            AdmissionPolicy::Open => {}
            AdmissionPolicy::ShedAboveDepth { max_queue_depth } => {
                if max_queue_depth == 0 {
                    return invalid("shed-above-depth threshold is zero".to_string());
                }
            }
            AdmissionPolicy::DegradeAboveDepth {
                degrade_depth,
                fallback_class,
                shed_depth,
            } => {
                if degrade_depth == 0 {
                    return invalid("degrade-above-depth threshold is zero".to_string());
                }
                if fallback_class >= config.classes.len() {
                    return invalid(format!(
                        "degradation fallback class {fallback_class} is out of range (the mix \
                         has {} classes)",
                        config.classes.len()
                    ));
                }
                if let Some(shed_at) = shed_depth {
                    if shed_at < degrade_depth {
                        return invalid(format!(
                            "shed depth {shed_at} is below the degrade depth {degrade_depth}"
                        ));
                    }
                }
            }
            AdmissionPolicy::DeadlineAware => {
                if self.deadline_seconds.is_none() {
                    return invalid(
                        "deadline-aware admission requires deadline_seconds".to_string(),
                    );
                }
            }
        }
        Ok(())
    }
}

/// Per-class service times the faulted simulation draws from: the baseline
/// per-class times, plus one re-derived row per degradation window.
pub(crate) struct ServiceTable {
    /// `base[class]` — service time at the configured bandwidth.
    pub(crate) base: Vec<f64>,
    /// `degraded[window][class]` — service time at
    /// `bandwidth * degradations[window].bandwidth_factor`, evaluated from
    /// the class's parametric timeline.
    pub(crate) degraded: Vec<Vec<f64>>,
}

impl ServiceTable {
    /// A table with no degradation rows (the fault-free case).
    pub(crate) fn base_only(service_seconds: &[f64]) -> Self {
        Self {
            base: service_seconds.to_vec(),
            degraded: Vec::new(),
        }
    }
}

/// Availability of one device over a faulted run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DeviceAvailability {
    /// Device index.
    pub device: usize,
    /// Crashes the device suffered.
    pub crashes: usize,
    /// Virtual seconds the device spent down.
    pub down_seconds: f64,
    /// Fraction of the makespan the device was up (1.0 = never down).
    pub availability: f64,
}

/// The outcome of one faulted serving run: the fault-free-shaped
/// [`ServeReport`] over the *completed* requests, plus the resilience
/// ledger — what was offered, lost, retried, shed, degraded, and wasted.
///
/// Conservation invariant:
/// `offered == serve.completed + timed_out + shed`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResilienceReport {
    /// The serving report over completed requests. Record ids keep their
    /// issue order but are no longer dense when requests timed out.
    pub serve: ServeReport,
    /// Arrivals the arrival process offered to the cluster.
    pub offered: usize,
    /// Requests that gave up: deadline expired before they could start, or
    /// the retry budget ran out.
    pub timed_out: usize,
    /// Arrivals rejected by admission control.
    pub shed: usize,
    /// Completions served as the downgraded fallback class.
    pub degraded: usize,
    /// Completions that finished after their deadline (they still count as
    /// completed, not as goodput).
    pub late: usize,
    /// Dispatch attempts beyond each request's first (failover and backoff
    /// retries alike, counted once per attempt).
    pub retries: usize,
    /// Attempts that failed transiently at completion.
    pub transient_failures: usize,
    /// In-flight attempts lost to device crashes.
    pub crash_losses: usize,
    /// Virtual device-seconds spent on work that was thrown away (partial
    /// executions lost to crashes plus fully-executed failed attempts).
    pub wasted_seconds: f64,
    /// *Useful* completions (on time, full fidelity) per virtual second —
    /// compare with `serve.throughput_rps`, which counts every completion.
    pub goodput_rps: f64,
    /// Per-device availability, indexed by device.
    pub availability: Vec<DeviceAvailability>,
}

impl ResilienceReport {
    /// Completions per virtual second, degraded and late ones included.
    pub fn throughput_rps(&self) -> f64 {
        self.serve.throughput_rps
    }

    /// Mean device availability across the cluster.
    pub fn mean_availability(&self) -> f64 {
        if self.availability.is_empty() {
            return 1.0;
        }
        self.availability
            .iter()
            .map(|d| d.availability)
            .sum::<f64>()
            / self.availability.len() as f64
    }

    /// Whether the arrival-conservation invariant holds (it always should;
    /// the property tests call this).
    pub fn conserves_arrivals(&self) -> bool {
        self.offered == self.serve.completed + self.timed_out + self.shed
    }

    /// Renders the report as one `ciflow.resilience_report.v1` JSON
    /// document with the serving report embedded verbatim.
    pub fn to_json(&self) -> String {
        let availability = self
            .availability
            .iter()
            .map(|d| {
                format!(
                    "{{\"device\":{},\"crashes\":{},\"down_seconds\":{},\"availability\":{}}}",
                    d.device, d.crashes, d.down_seconds, d.availability
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":\"ciflow.resilience_report.v1\",\"offered\":{},\"completed\":{},\
             \"timed_out\":{},\"shed\":{},\"degraded\":{},\"late\":{},\"retries\":{},\
             \"transient_failures\":{},\"crash_losses\":{},\"wasted_seconds\":{},\
             \"goodput_rps\":{},\"throughput_rps\":{},\"mean_availability\":{},\
             \"availability\":[{availability}],\"serve\":{}}}",
            self.offered,
            self.serve.completed,
            self.timed_out,
            self.shed,
            self.degraded,
            self.late,
            self.retries,
            self.transient_failures,
            self.crash_losses,
            self.wasted_seconds,
            self.goodput_rps,
            self.serve.throughput_rps,
            self.mean_availability(),
            self.serve.to_json()
        )
    }
}

impl std::fmt::Display for ResilienceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} offered -> {} ok ({} degraded, {} late) / {} timed out / {} shed; \
             {:.1} goodput vs {:.1} throughput req/s, {} retries, {:.2} ms wasted, \
             availability {:.1}%",
            self.offered,
            self.serve.completed,
            self.degraded,
            self.late,
            self.timed_out,
            self.shed,
            self.goodput_rps,
            self.serve.throughput_rps,
            self.retries,
            self.wasted_seconds * 1e3,
            self.mean_availability() * 100.0,
        )
    }
}

/// Runs one faulted serving simulation with the built-in strategy
/// registry. Convenience wrapper over [`try_fault_serve_in`] with a fresh
/// [`Session`].
///
/// # Errors
///
/// Returns [`CiflowError::InvalidConfig`] when the configuration fails
/// [`ServeConfig::validate`] or the plan fails [`FaultPlan::validate`],
/// and propagates schedule-construction errors.
pub fn try_fault_serve(
    config: &ServeConfig,
    plan: &FaultPlan,
    strategy: impl Into<StrategySpec>,
) -> Result<ResilienceReport, CiflowError> {
    try_fault_serve_in(&Session::new(), config, plan, strategy)
}

/// Runs one faulted serving simulation inside an existing [`Session`]
/// (custom strategy registries, shared schedule cache).
///
/// Baseline service times are measured exactly as
/// [`try_serve_in`](super::try_serve_in) measures them — one stats-only
/// engine run per
/// class — which is what makes the zero-fault replay bit-exact by
/// construction. Degradation windows additionally measure each class once
/// as a parametric timeline and evaluate it at the degraded bandwidth.
///
/// # Errors
///
/// Returns [`CiflowError::InvalidConfig`] for structurally invalid
/// configurations or plans and propagates schedule-construction errors.
pub fn try_fault_serve_in(
    session: &Session,
    config: &ServeConfig,
    plan: &FaultPlan,
    strategy: impl Into<StrategySpec>,
) -> Result<ResilienceReport, CiflowError> {
    config.validate()?;
    plan.validate(config)?;
    let spec: StrategySpec = strategy.into();

    let measured = crate::parallel::map(config.classes.clone(), |class| {
        let job = class.job(spec.clone()).with_rpu(config.cluster.rpu.clone());
        session.run_job(&job)
    });
    let mut base = Vec::with_capacity(measured.len());
    let mut strategy_name = spec.display_name();
    for output in measured {
        let output = output?;
        strategy_name = output.strategy.clone();
        base.push(output.stats.runtime_seconds);
    }

    let degraded = degraded_service_rows(session, config, plan, &spec)?;
    Ok(resilience_with_service_times(
        config,
        plan,
        strategy_name,
        &ServiceTable { base, degraded },
    ))
}

/// Evaluates one per-class service-time row per degradation window via the
/// parametric timelines, covering `[bandwidth * min_factor, bandwidth]`.
pub(crate) fn degraded_service_rows(
    session: &Session,
    config: &ServeConfig,
    plan: &FaultPlan,
    spec: &StrategySpec,
) -> Result<Vec<Vec<f64>>, CiflowError> {
    if plan.degradations.is_empty() {
        return Ok(Vec::new());
    }
    let bandwidth = config.cluster.rpu.dram_bandwidth_gbps;
    let min_factor = plan
        .degradations
        .iter()
        .map(|w| w.bandwidth_factor)
        .fold(1.0f64, f64::min);
    let measured = crate::parallel::map(config.classes.clone(), |class| {
        let job = class.job(spec.clone()).with_rpu(config.cluster.rpu.clone());
        session.run_analytic(&job, bandwidth * min_factor, bandwidth)
    });
    let mut timelines = Vec::with_capacity(measured.len());
    for output in measured {
        timelines.push(output?.timeline);
    }
    Ok(plan
        .degradations
        .iter()
        .map(|window| {
            timelines
                .iter()
                .map(|timeline| {
                    timeline
                        .evaluate(bandwidth * window.bandwidth_factor)
                        .runtime_seconds
                })
                .collect()
        })
        .collect())
}

/// The measurement-free half of [`try_fault_serve_in`]: plays the faulted
/// simulation against externally supplied service times. The fault sweep
/// ([`try_fault_sweep_in`](crate::sweep::try_fault_sweep_in)) derives the
/// whole table from parametric timelines and lands here, so a grid shares
/// one symbolic measurement per class.
pub(crate) fn resilience_with_service_times(
    config: &ServeConfig,
    plan: &FaultPlan,
    strategy: String,
    services: &ServiceTable,
) -> ResilienceReport {
    let (outcome, counters) = sim::simulate_resilient(config, plan, services);
    let serve = sim::finish(config, strategy, &services.base, outcome);
    let makespan = serve.makespan_seconds;
    let goodput_rps = if makespan > 0.0 {
        counters.useful as f64 / makespan
    } else {
        0.0
    };
    let availability = counters
        .device_faults
        .iter()
        .enumerate()
        .map(|(device, stats)| DeviceAvailability {
            device,
            crashes: stats.crashes,
            down_seconds: stats.down_seconds,
            availability: if makespan > 0.0 {
                (1.0 - stats.down_seconds / makespan).max(0.0)
            } else {
                1.0
            },
        })
        .collect();
    ResilienceReport {
        serve,
        offered: counters.offered,
        timed_out: counters.timed_out,
        shed: counters.shed,
        degraded: counters.degraded,
        late: counters.late,
        retries: counters.retries,
        transient_failures: counters.transient_failures,
        crash_losses: counters.crash_losses,
        wasted_seconds: counters.wasted_seconds,
        goodput_rps,
        availability,
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ArrivalProcess, RequestClass};
    use super::*;
    use crate::benchmark::HksBenchmark;

    fn base_config() -> ServeConfig {
        ServeConfig::new(
            2,
            RequestClass::standard_mix(HksBenchmark::ARK),
            ArrivalProcess::ClosedLoop {
                concurrency: 4,
                requests: 16,
            },
        )
    }

    #[test]
    fn empty_plan_is_valid_and_injects_nothing() {
        let plan = FaultPlan::none();
        plan.validate(&base_config()).expect("empty plan is valid");
        assert!(plan.injects_nothing());
    }

    #[test]
    fn invalid_plans_are_rejected_with_specific_messages() {
        let config = base_config();
        let cases: Vec<(FaultPlan, &str)> = vec![
            (
                FaultPlan::none().with_crashes(CrashPlan::Scripted(vec![CrashEvent {
                    device: 7,
                    at_seconds: 0.1,
                    down_seconds: 0.1,
                }])),
                "targets device 7",
            ),
            (
                FaultPlan::none().with_crashes(CrashPlan::Scripted(vec![
                    CrashEvent {
                        device: 0,
                        at_seconds: 0.1,
                        down_seconds: 0.2,
                    },
                    CrashEvent {
                        device: 0,
                        at_seconds: 0.2,
                        down_seconds: 0.1,
                    },
                ])),
                "overlap on device 0",
            ),
            (
                FaultPlan::none().with_crashes(CrashPlan::Random {
                    mtbf_seconds: 0.0,
                    mttr_seconds: 1.0,
                }),
                "MTBF",
            ),
            (
                FaultPlan::none().with_degradation(DegradeWindow {
                    device: 0,
                    start_seconds: 0.0,
                    duration_seconds: 1.0,
                    bandwidth_factor: 1.5,
                }),
                "not in (0, 1]",
            ),
            (
                FaultPlan::none().with_transient_failure_rate(1.0),
                "not in [0, 1)",
            ),
            (FaultPlan::none().with_deadline(-1.0), "deadline"),
            (
                FaultPlan::none().with_retry(RetryPolicy {
                    max_attempts: 0,
                    backoff_base_seconds: 0.0,
                    backoff_cap_seconds: 0.0,
                }),
                "zero attempts",
            ),
            (
                FaultPlan::none().with_admission(AdmissionPolicy::DegradeAboveDepth {
                    degrade_depth: 4,
                    fallback_class: 9,
                    shed_depth: None,
                }),
                "fallback class 9",
            ),
            (
                FaultPlan::none().with_admission(AdmissionPolicy::DeadlineAware),
                "requires deadline_seconds",
            ),
        ];
        for (plan, needle) in cases {
            match plan.validate(&config) {
                Err(CiflowError::InvalidConfig { message }) => assert!(
                    message.contains(needle),
                    "message {message:?} should mention {needle:?}"
                ),
                other => panic!("plan must be rejected ({needle:?}), got {other:?}"),
            }
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let retry = RetryPolicy::capped_exponential(5, 0.010, 0.060);
        assert_eq!(retry.backoff_seconds(1), 0.010);
        assert_eq!(retry.backoff_seconds(2), 0.020);
        assert_eq!(retry.backoff_seconds(3), 0.040);
        assert_eq!(retry.backoff_seconds(4), 0.060, "capped");
        assert_eq!(RetryPolicy::disabled().backoff_seconds(1), 0.0);
    }

    #[test]
    fn scaling_adjusts_random_rates_and_zero_clears_injection() {
        let plan = FaultPlan::none()
            .with_crashes(CrashPlan::Random {
                mtbf_seconds: 1.0,
                mttr_seconds: 0.25,
            })
            .with_transient_failure_rate(0.10)
            .with_deadline(0.5);
        let doubled = plan.scaled(2.0);
        match doubled.crashes {
            CrashPlan::Random { mtbf_seconds, .. } => assert_eq!(mtbf_seconds, 0.5),
            ref other => panic!("expected random crashes, got {other:?}"),
        }
        assert_eq!(doubled.transient_failure_rate, 0.20);
        let off = plan.scaled(0.0);
        assert!(off.injects_nothing());
        assert_eq!(off.deadline_seconds, Some(0.5), "handling knobs survive");
    }
}
