//! Dispatch policies: how queued requests are matched to idle devices.
//!
//! The simulator keeps one central queue; whenever a device is idle and the
//! queue is non-empty, the configured [`DispatchPolicy`] decides which
//! request runs where. Policies only choose *placement and order* — they
//! never alter a request's service time — so the total busy time a run
//! accumulates is policy-invariant; only waiting (and therefore latency and
//! makespan) changes between policies.

use serde::Serialize;

/// The built-in request-to-device matching disciplines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum DispatchPolicy {
    /// Strict arrival order; the head request takes the lowest-numbered idle
    /// device.
    Fifo,
    /// Strict arrival order; the head request takes the idle device with the
    /// least accumulated busy time (ties to the lowest index).
    LeastLoaded,
    /// Class-affinity batching: the head request prefers an idle device that
    /// last served its class; failing that, the least-loaded idle device
    /// serves the earliest queued request of *its* last class (out-of-order
    /// batching), falling back to the head. Keeps same-class requests
    /// flowing to the same device, which is what makes a warm schedule cache
    /// per device plausible at fleet scale.
    ClassAffinity,
}

impl DispatchPolicy {
    /// All built-in policies, in the order reports list them.
    pub fn all() -> [DispatchPolicy; 3] {
        [
            DispatchPolicy::Fifo,
            DispatchPolicy::LeastLoaded,
            DispatchPolicy::ClassAffinity,
        ]
    }
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchPolicy::Fifo => write!(f, "fifo"),
            DispatchPolicy::LeastLoaded => write!(f, "least-loaded"),
            DispatchPolicy::ClassAffinity => write!(f, "class-affinity"),
        }
    }
}
