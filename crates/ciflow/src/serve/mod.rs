//! Fleet-scale serving simulator: a served-traffic layer over the RPU
//! cluster model.
//!
//! The rest of the crate answers "how long does one key-switch workload take
//! on one RPU?". This module answers the next question up the stack: "what
//! throughput and latency does a *fleet* of RPUs sustain under a stream of
//! mixed requests?" — the serving view of the paper's design space.
//!
//! A serving run is described by a [`ServeConfig`]:
//!
//! * a [`ClusterConfig`] — `N` identical RPUs sharing one device
//!   configuration (bandwidth, MODOPS, channels, evk policy);
//! * a request mix — weighted [`RequestClass`]es built from the crate's
//!   workload presets (rotation batches, relinearizations, bootstrap
//!   key-switches, rescaling chains);
//! * an [`ArrivalProcess`] — open-loop Poisson-like traffic at a fixed rate,
//!   or a closed loop of fixed-concurrency clients;
//! * a [`DispatchPolicy`] — FIFO, least-loaded, or class-affinity batching;
//! * a `u64` seed.
//!
//! Requests never execute instruction-by-instruction inside the serving
//! loop. Each distinct class is executed **once**, stats-only, through the
//! regular [`Session`] path (hitting the session schedule cache), and the
//! resulting deterministic runtime becomes the class's service time. A
//! virtual-clock event simulation then plays the arrival stream against the
//! fleet — no wall-clock anywhere — so a [`ServeReport`] is a pure,
//! bit-reproducible function of the configuration and seed.
//!
//! ```
//! use ciflow::benchmark::HksBenchmark;
//! use ciflow::serve::{try_serve, ArrivalProcess, RequestClass, ServeConfig};
//!
//! let config = ServeConfig::new(
//!     4,
//!     RequestClass::standard_mix(HksBenchmark::ARK),
//!     ArrivalProcess::ClosedLoop { concurrency: 8, requests: 64 },
//! );
//! let report = try_serve(&config, "OC").unwrap();
//! assert_eq!(report.completed, 64);
//! assert!(report.throughput_rps > 0.0);
//! ```
//!
//! The fleet above is perfectly reliable; production fleets are not. The
//! fault layer runs the *same* event loop under a [`FaultPlan`] —
//! seeded device crashes and restarts, bandwidth-degradation windows,
//! transient per-attempt failures — handled by deadlines, capped-backoff
//! retries, crash failover, and admission control with graceful
//! degradation. [`try_fault_serve`] returns a [`ResilienceReport`]; a
//! zero-fault plan replays the plain [`ServeReport`] bit-for-bit.
//!
//! See `docs/SERVING.md` for the model in depth, and
//! [`try_serve_sweep`](crate::sweep::try_serve_sweep) /
//! [`try_fault_sweep`](crate::sweep::try_fault_sweep) for sweeping cluster
//! size, bandwidth, and fault intensity in one call.

mod arrival;
mod config;
mod dispatch;
mod fault;
mod report;
mod request;
mod sim;

pub use arrival::ArrivalProcess;
pub use config::{ClusterConfig, ServeConfig};
pub use dispatch::DispatchPolicy;
pub(crate) use fault::{degraded_service_rows, resilience_with_service_times, ServiceTable};
pub use fault::{
    try_fault_serve, try_fault_serve_in, AdmissionPolicy, CrashEvent, CrashPlan, DegradeWindow,
    DeviceAvailability, FaultPlan, ResilienceReport, RetryPolicy,
};
pub use report::{
    ClassUsage, DeviceUsage, LatencySummary, QueueSummary, RequestRecord, ServeReport,
};
pub use request::{ClassWork, RequestClass};

use crate::api::{Session, StrategySpec};
use crate::error::CiflowError;

/// Runs one serving simulation with the built-in strategy registry.
///
/// Convenience wrapper over [`try_serve_in`] with a fresh [`Session`]; when
/// running many configurations (or a sweep) share one session so class
/// schedules are built once.
///
/// # Errors
///
/// Returns [`CiflowError::InvalidConfig`] when the configuration fails
/// [`ServeConfig::validate`], or any error the underlying schedule
/// construction reports.
pub fn try_serve(
    config: &ServeConfig,
    strategy: impl Into<StrategySpec>,
) -> Result<ServeReport, CiflowError> {
    try_serve_in(&Session::new(), config, strategy)
}

/// Runs one serving simulation inside an existing [`Session`] (custom
/// strategy registries, shared schedule cache).
///
/// The session's own RPU configuration is ignored — every request runs on
/// the cluster's per-device [`RpuConfig`](rpu::RpuConfig) — but its schedule
/// cache and strategy registry are used, so repeated calls (a bandwidth
/// sweep, a policy comparison) re-plan each request class only when the
/// cached schedule cannot be reused.
///
/// # Errors
///
/// Returns [`CiflowError::InvalidConfig`] for structurally invalid
/// configurations and propagates schedule-construction errors.
pub fn try_serve_in(
    session: &Session,
    config: &ServeConfig,
    strategy: impl Into<StrategySpec>,
) -> Result<ServeReport, CiflowError> {
    config.validate()?;
    let spec: StrategySpec = strategy.into();

    // One stats-only engine run per distinct class; its deterministic
    // runtime is the class's service time for every request in the run.
    let measured = crate::parallel::map(config.classes.clone(), |class| {
        let job = class.job(spec.clone()).with_rpu(config.cluster.rpu.clone());
        session.run_job(&job)
    });
    let mut service_seconds = Vec::with_capacity(measured.len());
    let mut strategy_name = String::new();
    for output in measured {
        let output = output?;
        strategy_name = output.strategy.clone();
        service_seconds.push(output.stats.runtime_seconds);
    }

    Ok(serve_with_service_times(
        config,
        strategy_name,
        &service_seconds,
    ))
}

/// Runs the virtual-clock serving simulation against externally supplied
/// per-class service times (one entry per `config.classes` entry, in order).
///
/// This is the measurement-free half of [`try_serve_in`]: the analytic sweep
/// path ([`try_serve_sweep_in`](crate::sweep::try_serve_sweep_in)) evaluates
/// each class's [`ParametricTimeline`](rpu::ParametricTimeline) once per
/// bandwidth and hands the resulting (bit-identical) service times here, so
/// a whole cluster-size × bandwidth grid shares one symbolic measurement per
/// class.
pub(crate) fn serve_with_service_times(
    config: &ServeConfig,
    strategy: String,
    service_seconds: &[f64],
) -> ServeReport {
    let outcome = sim::simulate(config, service_seconds);
    sim::finish(config, strategy, service_seconds, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::HksBenchmark;

    #[test]
    fn closed_loop_run_completes_every_request() {
        let config = ServeConfig::new(
            2,
            RequestClass::standard_mix(HksBenchmark::ARK),
            ArrivalProcess::ClosedLoop {
                concurrency: 4,
                requests: 24,
            },
        );
        let report = try_serve(&config, "OC").expect("serving run succeeds");
        assert_eq!(report.completed, 24);
        assert_eq!(report.records.len(), 24);
        assert_eq!(report.devices.len(), 2);
        assert_eq!(
            report.devices.iter().map(|d| d.served).sum::<usize>(),
            24,
            "every request is attributed to a device"
        );
        assert!(report.makespan_seconds > 0.0);
        assert!(report.throughput_rps > 0.0);
        assert!(report.latency.p50_ms <= report.latency.p95_ms);
        assert!(report.latency.p95_ms <= report.latency.p99_ms);
        assert!(report.latency.p99_ms <= report.latency.max_ms);
    }

    #[test]
    fn invalid_configs_error_before_any_execution() {
        let config = ServeConfig::new(
            0,
            RequestClass::standard_mix(HksBenchmark::ARK),
            ArrivalProcess::ClosedLoop {
                concurrency: 1,
                requests: 1,
            },
        );
        assert!(matches!(
            try_serve(&config, "OC"),
            Err(CiflowError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn zero_duration_service_times_complete_without_dividing_by_zero() {
        // Degenerate but legal for the virtual clock: a class that takes no
        // time at all. Every request completes at its arrival instant, the
        // queue never forms, and no summary statistic divides by zero.
        let config = ServeConfig::new(
            1,
            vec![
                RequestClass::single(HksBenchmark::ARK, 0.5),
                RequestClass::relinearize(HksBenchmark::ARK, 0.5),
            ],
            ArrivalProcess::OpenLoop {
                rate_rps: 100.0,
                requests: 12,
            },
        );
        let report = serve_with_service_times(&config, "OC".to_string(), &[0.0, 0.0]);
        assert_eq!(report.completed, 12);
        assert!(report.makespan_seconds > 0.0, "arrivals still take time");
        assert!(report.throughput_rps.is_finite());
        // Arrivals pass through the queue for an instant (depth is sampled
        // after insertion, before same-instant dispatch) but accumulate no
        // waiting time.
        assert!(report.queue.max_depth <= 1);
        assert_eq!(
            report.queue.mean_depth, 0.0,
            "zero-width intervals add no area"
        );
        assert_eq!(report.latency.max_ms, 0.0);
        for record in &report.records {
            assert_eq!(record.wait_seconds, 0.0);
            assert_eq!(record.service_seconds, 0.0);
        }
        for device in &report.devices {
            assert_eq!(device.busy_seconds, 0.0);
            assert_eq!(device.utilization, 0.0);
        }

        // A closed loop of instant requests collapses to a single instant:
        // the makespan is zero and rates are reported as zero, not NaN.
        let closed = ServeConfig::new(
            1,
            vec![RequestClass::single(HksBenchmark::ARK, 1.0)],
            ArrivalProcess::ClosedLoop {
                concurrency: 2,
                requests: 8,
            },
        );
        let report = serve_with_service_times(&closed, "OC".to_string(), &[0.0]);
        assert_eq!(report.completed, 8);
        assert_eq!(report.makespan_seconds, 0.0);
        assert_eq!(
            report.throughput_rps, 0.0,
            "zero makespan reports zero throughput, not NaN or infinity"
        );
        assert!(report.queue.mean_depth.is_finite());
    }

    #[test]
    fn every_policy_completes_an_open_loop_run() {
        for policy in DispatchPolicy::all() {
            let config = ServeConfig::new(
                1,
                vec![
                    RequestClass::rotation_batch(HksBenchmark::ARK, 4, 0.5),
                    RequestClass::relinearize(HksBenchmark::ARK, 0.5),
                ],
                ArrivalProcess::OpenLoop {
                    rate_rps: 50.0,
                    requests: 16,
                },
            )
            .with_policy(policy);
            let report = try_serve(&config, "OC").expect("serving run succeeds");
            assert_eq!(report.completed, 16, "policy {policy} completes the run");
        }
    }
}
