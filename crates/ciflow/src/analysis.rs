//! Analytical model: DRAM traffic, arithmetic intensity and on-chip memory
//! requirements per dataflow (the quantities behind Tables II and III and the
//! §IV-D discussion).

use crate::benchmark::{HksBenchmark, MIB};
use crate::dataflow::Dataflow;
use crate::hks_shape::HksShape;
use crate::schedule::{build_schedule, Schedule, ScheduleConfig};
use rpu::EvkPolicy;
use serde::Serialize;

/// One row of the Table II analogue: DRAM traffic and arithmetic intensity of
/// a benchmark under one scheduling strategy.
#[derive(Debug, Clone, Serialize)]
pub struct TrafficRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Strategy short name (taken from the schedule, so it also covers
    /// custom strategies).
    pub dataflow: String,
    /// Total DRAM traffic in bytes (including streamed evks).
    pub dram_bytes: u64,
    /// Arithmetic intensity in modular operations per DRAM byte.
    pub arithmetic_intensity: f64,
    /// Total modular operations (dataflow independent).
    pub total_ops: u64,
    /// Peak on-chip data-memory residency in bytes.
    pub peak_on_chip_bytes: u64,
}

impl TrafficRow {
    /// DRAM traffic in binary megabytes (the unit of Table II).
    pub fn dram_mib(&self) -> f64 {
        self.dram_bytes as f64 / MIB as f64
    }
}

/// Computes the Table II analogue (DRAM transfers and arithmetic intensity
/// with 32 MB of data memory and streamed evks) for one benchmark under one
/// dataflow.
pub fn traffic_row(benchmark: HksBenchmark, dataflow: Dataflow) -> TrafficRow {
    let shape = HksShape::new(benchmark);
    let config = ScheduleConfig {
        data_memory_bytes: 32 * rpu::MIB,
        evk_policy: EvkPolicy::Streamed,
    };
    let schedule = build_schedule(dataflow, &shape, &config);
    summarize(benchmark, &schedule)
}

/// Summarizes an already-built schedule into a [`TrafficRow`]; the strategy
/// label comes from the schedule itself, so rows cannot desync from the
/// schedule they describe.
pub fn summarize(benchmark: HksBenchmark, schedule: &Schedule) -> TrafficRow {
    TrafficRow {
        benchmark: benchmark.name,
        dataflow: schedule.strategy.clone(),
        dram_bytes: schedule.dram_bytes(),
        arithmetic_intensity: schedule.arithmetic_intensity(),
        total_ops: schedule.total_ops(),
        peak_on_chip_bytes: schedule.peak_on_chip_bytes,
    }
}

/// The full Table II analogue: every benchmark under every dataflow.
pub fn table2_rows() -> Vec<TrafficRow> {
    let mut rows = Vec::new();
    for benchmark in HksBenchmark::all() {
        for dataflow in Dataflow::all() {
            rows.push(traffic_row(benchmark, dataflow));
        }
    }
    rows
}

/// Effect of the key-compression technique discussed in §IV-D (halving the
/// off-chip key traffic): returns the improved arithmetic intensity.
pub fn arithmetic_intensity_with_key_compression(row: &TrafficRow, benchmark: HksBenchmark) -> f64 {
    let compressed_bytes = row.dram_bytes - benchmark.evk_bytes() / 2;
    row.total_ops as f64 / compressed_bytes as f64
}

/// Minimum on-chip data memory (in bytes) for a dataflow to run without any
/// intermediate spills, determined by probing the schedule generator. The
/// probe uses the evk-on-chip policy so the answer reflects data buffers only
/// (key memory is accounted separately, as in the paper's 392 MB = 32 + 360
/// split).
pub fn min_memory_without_spills(benchmark: HksBenchmark, dataflow: Dataflow) -> u64 {
    let shape = HksShape::new(benchmark);
    // Binary search on the data-memory capacity between one tower and the
    // full temp-data footprint.
    let mut lo = benchmark.tower_bytes();
    let mut hi = benchmark.temp_data_bytes() + 4 * benchmark.tower_bytes();
    let spills = |capacity: u64| {
        let config = ScheduleConfig {
            data_memory_bytes: capacity,
            evk_policy: EvkPolicy::OnChip,
        };
        build_schedule(dataflow, &shape, &config).spill_bytes
    };
    if spills(hi) > 0 {
        // Should not happen, but fall back gracefully.
        return hi;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if spills(mid) == 0 {
            hi = mid;
        } else {
            lo = mid + benchmark.tower_bytes().max(1);
        }
    }
    hi
}

/// One row of the Table III analogue.
#[derive(Debug, Clone, Serialize)]
pub struct ParameterRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// log2 of the ring degree.
    pub log_n: u32,
    /// Live Q towers.
    pub q_towers: usize,
    /// Auxiliary P towers.
    pub p_towers: usize,
    /// Digits.
    pub dnum: usize,
    /// Digit width.
    pub alpha: usize,
    /// Evaluation key size in MiB.
    pub evk_mib: f64,
    /// Intermediate data footprint in MiB.
    pub temp_mib: f64,
}

/// The Table III analogue.
pub fn table3_rows() -> Vec<ParameterRow> {
    HksBenchmark::all()
        .into_iter()
        .map(|b| ParameterRow {
            benchmark: b.name,
            log_n: b.log_ring_degree,
            q_towers: b.q_towers,
            p_towers: b.p_towers,
            dnum: b.dnum,
            alpha: b.alpha(),
            evk_mib: b.evk_bytes() as f64 / MIB as f64,
            temp_mib: b.temp_data_bytes() as f64 / MIB as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_15_rows_with_constant_ops_per_benchmark() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 15);
        for benchmark in HksBenchmark::all() {
            let ops: Vec<u64> = rows
                .iter()
                .filter(|r| r.benchmark == benchmark.name)
                .map(|r| r.total_ops)
                .collect();
            assert_eq!(ops.len(), 3);
            assert!(ops.windows(2).all(|w| w[0] == w[1]), "{}", benchmark.name);
        }
    }

    #[test]
    fn oc_rows_have_best_intensity() {
        let rows = table2_rows();
        for benchmark in HksBenchmark::all() {
            let get = |d: Dataflow| {
                rows.iter()
                    .find(|r| r.benchmark == benchmark.name && r.dataflow == d.short_name())
                    .unwrap()
                    .arithmetic_intensity
            };
            assert!(get(Dataflow::OutputCentric) > get(Dataflow::MaxParallel));
            assert!(get(Dataflow::OutputCentric) > get(Dataflow::DigitCentric) - 1e-9);
        }
    }

    #[test]
    fn key_compression_improves_intensity() {
        let row = traffic_row(HksBenchmark::ARK, Dataflow::OutputCentric);
        let improved = arithmetic_intensity_with_key_compression(&row, HksBenchmark::ARK);
        assert!(improved > row.arithmetic_intensity);
    }

    #[test]
    fn min_memory_ordering_matches_paper_claims() {
        // The paper: MP needs ~675 MB for BTS3 to avoid excessive off-chip
        // traffic, DC needs ~255 MB (62% less), OC fits in far less. Require
        // OC < DC < MP for the multi-digit benchmarks without pinning exact
        // values.
        for benchmark in [HksBenchmark::BTS3, HksBenchmark::ARK] {
            let mp = min_memory_without_spills(benchmark, Dataflow::MaxParallel);
            let dc = min_memory_without_spills(benchmark, Dataflow::DigitCentric);
            let oc = min_memory_without_spills(benchmark, Dataflow::OutputCentric);
            assert!(oc < dc, "{}: OC {oc} vs DC {dc}", benchmark.name);
            assert!(dc < mp, "{}: DC {dc} vs MP {mp}", benchmark.name);
        }
    }

    #[test]
    fn bts3_mp_needs_hundreds_of_megabytes() {
        // Sanity-check the magnitude of the MP requirement for the largest
        // benchmark (paper: at least 675 MB including keys; our data-only
        // number must be in the hundreds of MiB).
        let mp = min_memory_without_spills(HksBenchmark::BTS3, Dataflow::MaxParallel);
        assert!(mp > 300 * MIB, "MP BTS3 min memory {} MiB", mp / MIB);
    }

    #[test]
    fn table3_matches_benchmark_constants() {
        let rows = table3_rows();
        assert_eq!(rows.len(), 5);
        let bts3 = rows.iter().find(|r| r.benchmark == "BTS3").unwrap();
        assert_eq!(bts3.alpha, 15);
        assert!((bts3.evk_mib - 360.0).abs() < 1e-9);
    }
}
