//! The Output-Centric (OC) schedule generator — the paper's proposal.
//!
//! OC computes one *output tower* of the key switch at a time (paper §IV-C,
//! Figure 2c). The ModUp phase is split into two sections:
//!
//! * **Section 1** produces the output towers in modulo `Q`. Output towers
//!   are processed grouped by the digit they belong to: for the group of
//!   digit `g`, the digit's own towers are bypassed while every *other* digit
//!   contributes one BConv *slice* per output tower (never the full `β`
//!   expansion). Only the `ℓ − α` INTT outputs of the other digits need to be
//!   resident at a time — 30 towers instead of 45 for BTS3 — which is what
//!   lets OC fit in a 32 MB data memory.
//! * **Section 2** produces the output towers in modulo `P`, for which every
//!   digit contributes a slice; it proceeds digit-by-digit, reusing the INTT
//!   outputs already on-chip and loading the final digit last, exactly as the
//!   paper describes.
//!
//! ModDown follows the same one-output-tower-at-a-time principle, which
//! removes the ModDown-P2 expansion entirely. The result is a dramatically
//! smaller intermediate working set and far less off-chip traffic, at an
//! identical total operation count.

use super::{Schedule, ScheduleBuilder, ScheduleConfig};
use crate::dataflow::Dataflow;
use crate::hks_shape::{HksShape, HksStage};
use rpu::{ComputeKind, TaskId};
use std::collections::HashMap;

/// Tracks which input towers have been INTT'd so far and the per-digit BConv
/// scaling tasks, so each is computed exactly once regardless of the order in
/// which output-tower groups request them.
struct ModUpState {
    intt_done: HashMap<usize, ()>,
    bypass_done: HashMap<usize, ()>,
    digit_scale: HashMap<usize, TaskId>,
    /// True when the data memory cannot hold both the evaluation-domain
    /// inputs and all INTT outputs at once; in that case the INTT outputs get
    /// priority (the paper's "prioritize storing the INTT outputs" rule) and
    /// the originals are reloaded for their single bypass use.
    tight: bool,
}

impl ModUpState {
    fn new(shape: &HksShape, config: &ScheduleConfig) -> Self {
        let resident_everything =
            (2 * shape.ell() as u64 + 8) * shape.tower_bytes() <= config.data_memory_bytes;
        Self {
            intt_done: HashMap::new(),
            bypass_done: HashMap::new(),
            digit_scale: HashMap::new(),
            tight: !resident_everything,
        }
    }

    /// Ensures tower `t`'s INTT output is available on-chip, computing it on
    /// first use and reloading it from DRAM if it was parked since. Returns a
    /// dependency for consumers.
    fn ensure_intt(&mut self, b: &mut ScheduleBuilder<'_>, shape: &HksShape, t: usize) -> TaskId {
        if !self.intt_done.contains_key(&t) {
            let dep = b.acquire(&format!("in[{t}]"), HksStage::ModUpIntt);
            let intt = b.compute(
                ComputeKind::Intt,
                shape.ntt_ops(),
                vec![dep],
                format!("intt in[{t}]"),
                HksStage::ModUpIntt,
            );
            if self.bypass_done.contains_key(&t) {
                // Both uses of the original tower are finished; free it.
                b.release(&format!("in[{t}]"));
            } else if self.tight {
                // The evaluation-domain original is only needed again for the
                // bypass in its own group; release it so INTT outputs get the
                // on-chip space, and accept one reload later.
                b.release(&format!("in[{t}]"));
                b.declare_dram_input(format!("in[{t}]"), shape.tower_bytes());
            }
            b.produce(
                format!("intt[{t}]"),
                shape.tower_bytes(),
                intt,
                HksStage::ModUpIntt,
            );
            self.intt_done.insert(t, ());
        }
        b.acquire(&format!("intt[{t}]"), HksStage::ModUpBconv)
    }

    /// Ensures the per-digit BConv scaling pass has been emitted and returns
    /// its task id.
    fn ensure_scale(
        &mut self,
        b: &mut ScheduleBuilder<'_>,
        shape: &HksShape,
        digit: usize,
        intt_deps: &[TaskId],
    ) -> TaskId {
        if let Some(&scale) = self.digit_scale.get(&digit) {
            return scale;
        }
        let scale = b.compute(
            ComputeKind::BasisConversion,
            shape.bconv_scale_ops(shape.digit_width(digit)),
            intt_deps.to_vec(),
            format!("bconv scale digit {digit}"),
            HksStage::ModUpBconv,
        );
        self.digit_scale.insert(digit, scale);
        scale
    }
}

/// Emits the contribution of digit `j` to output tower `t` and returns the
/// task producing the running accumulator for that tower.
#[allow(clippy::too_many_arguments)]
fn accumulate_digit(
    b: &mut ScheduleBuilder<'_>,
    shape: &HksShape,
    j: usize,
    t: usize,
    d_dep: TaskId,
    prev: Option<TaskId>,
) -> TaskId {
    let mut deps = vec![d_dep];
    deps.extend(b.acquire_evk(j, t, HksStage::ModUpApplyKey));
    let mul = b.compute(
        ComputeKind::PointwiseMul,
        2 * shape.pointwise_ops(),
        deps,
        format!("apply evk d{j} t{t}"),
        HksStage::ModUpApplyKey,
    );
    match prev {
        None => mul,
        Some(prev) => b.compute(
            ComputeKind::PointwiseAdd,
            2 * shape.pointwise_ops(),
            vec![mul, prev],
            format!("accumulate d{j} t{t}"),
            HksStage::ModUpReduce,
        ),
    }
}

/// Emits a BConv slice of digit `j` aimed at extended tower `t`, followed by
/// its NTT, returning the task that produces the evaluation-domain slice.
fn slice_and_ntt(
    b: &mut ScheduleBuilder<'_>,
    shape: &HksShape,
    state: &mut ModUpState,
    j: usize,
    t: usize,
) -> TaskId {
    let mut intt_deps = Vec::with_capacity(shape.digit_width(j));
    for s in shape.benchmark.digit_range(j) {
        intt_deps.push(state.ensure_intt(b, shape, s));
    }
    let scale = state.ensure_scale(b, shape, j, &intt_deps);
    let mut deps = intt_deps;
    deps.push(scale);
    let slice = b.compute(
        ComputeKind::BasisConversion,
        shape.bconv_slice_ops(shape.digit_width(j)),
        deps,
        format!("bconv slice d{j} -> t{t}"),
        HksStage::ModUpBconv,
    );
    b.compute(
        ComputeKind::Ntt,
        shape.ntt_ops(),
        vec![slice],
        format!("ntt d{j} -> t{t}"),
        HksStage::ModUpNtt,
    )
}

/// Builds the Output-Centric schedule for one hybrid key switch.
pub fn build_output_centric(shape: &HksShape, config: &ScheduleConfig) -> Schedule {
    let mut b = ScheduleBuilder::new(shape, config);
    let shape = *shape;
    let ell = shape.ell();
    let k = shape.k();
    let dnum = shape.dnum();
    let tower = shape.tower_bytes();
    let mut state = ModUpState::new(&shape, config);

    for t in 0..ell {
        b.declare_dram_input(format!("in[{t}]"), tower);
    }

    // ------------------------------------------------------------------
    // ModUp Section 1: output towers in modulo Q, grouped by owning digit.
    // ------------------------------------------------------------------
    for g in 0..dnum {
        // The INTT outputs of the group's own digit are not needed while its
        // outputs are being produced; when memory is tight, park any that are
        // resident to make room for the other digits' INTT outputs.
        if state.tight {
            for t in shape.benchmark.digit_range(g) {
                if b.is_resident(&format!("intt[{t}]")) {
                    b.park(&format!("intt[{t}]"), HksStage::ModUpIntt);
                }
            }
        }
        for t in shape.benchmark.digit_range(g) {
            let mut acc: Option<TaskId> = None;
            for j in 0..dnum {
                let d_dep = if j == g {
                    // Bypass: the original evaluation-domain tower.
                    b.acquire(&format!("in[{t}]"), HksStage::ModUpApplyKey)
                } else {
                    slice_and_ntt(&mut b, &shape, &mut state, j, t)
                };
                acc = Some(accumulate_digit(&mut b, &shape, j, t, d_dep, acc));
            }
            // The evaluation-domain original is dead after its bypass *if*
            // its INTT has already been taken; otherwise keep its DRAM copy
            // reachable (and, under memory pressure, drop the on-chip copy
            // without a store, since the DRAM copy is still valid).
            state.bypass_done.insert(t, ());
            if state.intt_done.contains_key(&t) {
                b.release(&format!("in[{t}]"));
            } else if state.tight {
                b.release(&format!("in[{t}]"));
                b.declare_dram_input(format!("in[{t}]"), tower);
            }
            // The finished modulo-Q accumulator towers are only needed again
            // at ModDown P4. Under memory pressure they are written back to
            // DRAM immediately (the paper: "only store back the accumulation
            // result") so the on-chip space stays available for the INTT
            // outputs; with ample memory they simply stay resident.
            let acc = acc.expect("at least one digit");
            b.produce(format!("acc0[{t}]"), tower, acc, HksStage::ModUpReduce);
            b.produce(format!("acc1[{t}]"), tower, acc, HksStage::ModUpReduce);
            if state.tight {
                b.park(&format!("acc0[{t}]"), HksStage::ModUpReduce);
                b.park(&format!("acc1[{t}]"), HksStage::ModUpReduce);
            }
        }
    }

    // ------------------------------------------------------------------
    // ModUp Section 2: output towers in modulo P, digit by digit. The first
    // dnum-1 digits' INTT outputs are mostly resident already; the final
    // digit is brought on-chip last (paper §IV-C).
    // ------------------------------------------------------------------
    let mut p_acc: Vec<Option<TaskId>> = vec![None; k];
    for j in 0..dnum {
        for (p_idx, acc_slot) in p_acc.iter_mut().enumerate() {
            let t = ell + p_idx;
            // If a previous digit's partial accumulator was spilled, bring it
            // back before adding this digit's contribution.
            let prev = match *acc_slot {
                Some(task) => Some(task),
                None if j > 0 => {
                    let p0 = b.acquire(&format!("pacc0[{p_idx}]"), HksStage::ModUpReduce);
                    let _p1 = b.acquire(&format!("pacc1[{p_idx}]"), HksStage::ModUpReduce);
                    Some(p0)
                }
                None => None,
            };
            let slice = slice_and_ntt(&mut b, &shape, &mut state, j, t);
            let acc = accumulate_digit(&mut b, &shape, j, t, slice, prev);
            *acc_slot = Some(acc);
            if j + 1 < dnum {
                b.release(&format!("pacc0[{p_idx}]"));
                b.release(&format!("pacc1[{p_idx}]"));
                b.produce(format!("pacc0[{p_idx}]"), tower, acc, HksStage::ModUpReduce);
                b.produce(format!("pacc1[{p_idx}]"), tower, acc, HksStage::ModUpReduce);
                // Invalidate the cached task handle if the buffer was spilled;
                // the next digit will acquire it again.
                if !b.is_resident(&format!("pacc0[{p_idx}]"))
                    || !b.is_resident(&format!("pacc1[{p_idx}]"))
                {
                    *acc_slot = None;
                }
            } else {
                b.release(&format!("pacc0[{p_idx}]"));
                b.release(&format!("pacc1[{p_idx}]"));
                b.produce(format!("acc0[{t}]"), tower, acc, HksStage::ModUpReduce);
                b.produce(format!("acc1[{t}]"), tower, acc, HksStage::ModUpReduce);
            }
        }
        // A digit's INTT outputs are dead once its Section-2 contribution has
        // been accumulated (Section 1 already consumed them).
        for t in shape.benchmark.digit_range(j) {
            b.release(&format!("intt[{t}]"));
        }
    }

    // ------------------------------------------------------------------
    // ModDown, one output polynomial and one output tower at a time. The K
    // auxiliary towers of the current polynomial are INTT'd once and kept
    // resident (K towers, not 2K); each output tower then needs only one
    // BConv slice, one NTT, and the combination with the corresponding
    // modulo-Q accumulator tower. The ModDown-P2 expansion never
    // materializes.
    // ------------------------------------------------------------------
    for poly in 0..2usize {
        let mut mdintt_deps = Vec::with_capacity(k);
        for i in 0..k {
            let name = format!("acc{poly}[{}]", ell + i);
            let dep = b.acquire(&name, HksStage::ModDownIntt);
            let intt = b.compute(
                ComputeKind::Intt,
                shape.ntt_ops(),
                vec![dep],
                format!("moddown intt c{poly} p-tower {i}"),
                HksStage::ModDownIntt,
            );
            b.release(&name);
            b.produce(
                format!("mdintt{poly}[{i}]"),
                tower,
                intt,
                HksStage::ModDownIntt,
            );
            mdintt_deps.push(intt);
        }
        let md_scale = b.compute(
            ComputeKind::BasisConversion,
            shape.bconv_scale_ops(k),
            mdintt_deps,
            format!("moddown bconv scale c{poly}"),
            HksStage::ModDownBconv,
        );
        for t in 0..ell {
            let mut deps = Vec::with_capacity(k + 1);
            for i in 0..k {
                deps.push(b.acquire(&format!("mdintt{poly}[{i}]"), HksStage::ModDownBconv));
            }
            deps.push(md_scale);
            let slice = b.compute(
                ComputeKind::BasisConversion,
                shape.bconv_slice_ops(k),
                deps,
                format!("moddown bconv slice c{poly} {t}"),
                HksStage::ModDownBconv,
            );
            let ntt = b.compute(
                ComputeKind::Ntt,
                shape.ntt_ops(),
                vec![slice],
                format!("moddown ntt c{poly} {t}"),
                HksStage::ModDownNtt,
            );
            let acc_dep = b.acquire(&format!("acc{poly}[{t}]"), HksStage::ModDownCombine);
            let combine = b.compute(
                ComputeKind::ScalarMul,
                2 * shape.pointwise_ops(),
                vec![ntt, acc_dep],
                format!("moddown combine c{poly} {t}"),
                HksStage::ModDownCombine,
            );
            b.release(&format!("acc{poly}[{t}]"));
            b.store_output(
                format!("out{poly}[{t}]"),
                tower,
                combine,
                HksStage::ModDownCombine,
            );
        }
        for i in 0..k {
            b.release(&format!("mdintt{poly}[{i}]"));
        }
    }

    b.finish(Dataflow::OutputCentric.short_name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::HksBenchmark;
    use crate::schedule::build_max_parallel;
    use rpu::EvkPolicy;

    fn streamed_32mb() -> ScheduleConfig {
        ScheduleConfig {
            data_memory_bytes: 32 * rpu::MIB,
            evk_policy: EvkPolicy::Streamed,
        }
    }

    #[test]
    fn oc_natural_working_set_is_far_smaller_than_mp() {
        // With unlimited capacity, the peak resident footprint reveals each
        // dataflow's natural working set. OC's must be a small fraction of
        // MP's — that is the paper's central claim.
        let unlimited = ScheduleConfig {
            data_memory_bytes: u64::MAX / 4,
            evk_policy: EvkPolicy::Streamed,
        };
        for bench in [HksBenchmark::BTS3, HksBenchmark::ARK, HksBenchmark::BTS2] {
            let shape = HksShape::new(bench);
            let oc = build_output_centric(&shape, &unlimited);
            let mp = build_max_parallel(&shape, &unlimited);
            assert!(
                oc.peak_on_chip_bytes * 3 <= mp.peak_on_chip_bytes * 2,
                "{}: OC peak {} vs MP peak {}",
                bench.name,
                oc.peak_on_chip_bytes,
                mp.peak_on_chip_bytes
            );
        }
    }

    #[test]
    fn oc_arithmetic_intensity_improvement_matches_table_ii_band() {
        // Table II reports OC improving arithmetic intensity by 1.43x-2.4x
        // over MP and 1.43x-1.98x over DC (with evks streamed and 32 MB of
        // data memory). Require every benchmark to land in a band around
        // those ratios.
        use crate::schedule::build_digit_centric;
        for bench in HksBenchmark::all() {
            let shape = HksShape::new(bench);
            let oc = build_output_centric(&shape, &streamed_32mb()).arithmetic_intensity();
            let mp = build_max_parallel(&shape, &streamed_32mb()).arithmetic_intensity();
            let dc = build_digit_centric(&shape, &streamed_32mb()).arithmetic_intensity();
            let vs_mp = oc / mp;
            let vs_dc = oc / dc;
            assert!(
                (1.3..=3.5).contains(&vs_mp),
                "{}: OC/MP AI ratio {vs_mp:.2} outside the expected band",
                bench.name
            );
            assert!(
                (1.05..=3.0).contains(&vs_dc),
                "{}: OC/DC AI ratio {vs_dc:.2} outside the expected band",
                bench.name
            );
        }
    }

    #[test]
    fn oc_never_materializes_the_bconv_expansion() {
        // No OC memory task may move a BConv intermediate: expansion buffers
        // simply do not exist in this schedule.
        let schedule = build_output_centric(&HksShape::new(HksBenchmark::BTS3), &streamed_32mb());
        for task in schedule.graph.tasks() {
            if task.is_memory() {
                assert!(
                    !task.label.contains("bconv"),
                    "unexpected BConv spill: {}",
                    task.label
                );
            }
        }
    }

    #[test]
    fn oc_section_structure_present() {
        let schedule = build_output_centric(&HksShape::new(HksBenchmark::ARK), &streamed_32mb());
        let slices = schedule
            .graph
            .tasks()
            .iter()
            .filter(|t| t.is_compute() && &*t.stage == "ModUp-P2" && t.label.contains("slice"))
            .count();
        let shape = HksShape::new(HksBenchmark::ARK);
        // Section 1: (dnum-1) slices per Q output tower; Section 2: dnum per
        // P output tower.
        let expected = (shape.dnum() - 1) * shape.ell() + shape.dnum() * shape.k();
        assert_eq!(slices, expected);
    }

    #[test]
    fn oc_intt_is_computed_exactly_once_per_tower() {
        for bench in HksBenchmark::all() {
            let shape = HksShape::new(bench);
            let schedule = build_output_centric(&shape, &streamed_32mb());
            let modup_intts = schedule
                .graph
                .tasks()
                .iter()
                .filter(|t| t.is_compute() && &*t.stage == "ModUp-P1")
                .count();
            assert_eq!(modup_intts, shape.ell(), "{}", bench.name);
        }
    }
}
