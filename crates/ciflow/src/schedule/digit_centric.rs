//! The Digit-Centric (DC) schedule generator.
//!
//! DC adopts a "one digit at a time" approach (paper §IV-B, Figure 2b): each
//! digit is loaded and carried through ModUp P1–P5 before the next digit is
//! touched, maximizing reuse of the digit's data. The per-digit BConv
//! expansion (`β` towers) and the running partial product (`2 × (ℓ+K)`
//! towers) still have to live somewhere: when they fit on-chip DC saves
//! bandwidth over MP, and when they do not (the large BTS2/BTS3 points) DC
//! converges towards MP — both behaviours the paper reports. This dataflow is
//! analogous to the one used by MAD (MICRO'23).

use super::{emit_moddown_stagewise, Schedule, ScheduleBuilder, ScheduleConfig};
use crate::dataflow::Dataflow;
use crate::hks_shape::{HksShape, HksStage};
use rpu::ComputeKind;

/// Builds the Digit-Centric schedule for one hybrid key switch.
pub fn build_digit_centric(shape: &HksShape, config: &ScheduleConfig) -> Schedule {
    // With a single digit there is nothing to iterate over: the paper notes
    // that MP and DC share the same implementation for BTS1. Reuse the MP
    // generator so the two schedules are bit-identical in that case.
    if shape.dnum() == 1 {
        let mut schedule = super::build_max_parallel(shape, config);
        schedule.strategy = Dataflow::DigitCentric.short_name().to_string();
        return schedule;
    }
    let mut b = ScheduleBuilder::new(shape, config);
    let shape = *shape;
    let ell = shape.ell();
    let dnum = shape.dnum();
    let tower = shape.tower_bytes();

    for t in 0..ell {
        b.declare_dram_input(format!("in[{t}]"), tower);
    }

    for j in 0..dnum {
        let alpha_j = shape.digit_width(j);
        let beta_j = shape.beta(j);
        let range = shape.benchmark.digit_range(j);

        // P1: load and INTT only this digit's towers.
        let mut digit_deps = Vec::with_capacity(alpha_j);
        for t in range.clone() {
            let dep = b.acquire(&format!("in[{t}]"), HksStage::ModUpIntt);
            let intt = b.compute(
                ComputeKind::Intt,
                shape.ntt_ops(),
                vec![dep],
                format!("intt d{j} in[{t}]"),
                HksStage::ModUpIntt,
            );
            b.produce(format!("intt[{t}]"), tower, intt, HksStage::ModUpIntt);
        }
        for t in range.clone() {
            digit_deps.push(b.acquire(&format!("intt[{t}]"), HksStage::ModUpBconv));
        }

        // P2 + P3: extend this digit and bring the extension back to the
        // evaluation domain.
        let scale = b.compute(
            ComputeKind::BasisConversion,
            shape.bconv_scale_ops(alpha_j),
            digit_deps.clone(),
            format!("bconv scale digit {j}"),
            HksStage::ModUpBconv,
        );
        for e in 0..beta_j {
            let mut deps = digit_deps.clone();
            deps.push(scale);
            let slice = b.compute(
                ComputeKind::BasisConversion,
                shape.bconv_slice_ops(alpha_j),
                deps,
                format!("bconv d{j} ext{e}"),
                HksStage::ModUpBconv,
            );
            b.produce(
                format!("bconv[{j}][{e}]"),
                tower,
                slice,
                HksStage::ModUpBconv,
            );
        }
        for e in 0..beta_j {
            let dep = b.acquire(&format!("bconv[{j}][{e}]"), HksStage::ModUpNtt);
            let ntt = b.compute(
                ComputeKind::Ntt,
                shape.ntt_ops(),
                vec![dep],
                format!("ntt d{j} ext{e}"),
                HksStage::ModUpNtt,
            );
            b.release(&format!("bconv[{j}][{e}]"));
            b.produce(format!("ext[{j}][{e}]"), tower, ntt, HksStage::ModUpNtt);
        }

        // P4 + P5: apply this digit's evk towers and fold the result into the
        // running accumulator.
        let mut ext_index = 0usize;
        for t in 0..shape.extended() {
            let d_dep = if t < ell && range.contains(&t) {
                b.acquire(&format!("in[{t}]"), HksStage::ModUpApplyKey)
            } else {
                let dep = b.acquire(&format!("ext[{j}][{ext_index}]"), HksStage::ModUpApplyKey);
                ext_index += 1;
                dep
            };
            let mut deps = vec![d_dep];
            deps.extend(b.acquire_evk(j, t, HksStage::ModUpApplyKey));
            let mul = b.compute(
                ComputeKind::PointwiseMul,
                2 * shape.pointwise_ops(),
                deps,
                format!("apply evk d{j} t{t}"),
                HksStage::ModUpApplyKey,
            );
            if j == 0 {
                b.produce(format!("acc0[{t}]"), tower, mul, HksStage::ModUpApplyKey);
                b.produce(format!("acc1[{t}]"), tower, mul, HksStage::ModUpApplyKey);
            } else {
                let acc0_dep = b.acquire(&format!("acc0[{t}]"), HksStage::ModUpReduce);
                let acc1_dep = b.acquire(&format!("acc1[{t}]"), HksStage::ModUpReduce);
                let add = b.compute(
                    ComputeKind::PointwiseAdd,
                    2 * shape.pointwise_ops(),
                    vec![mul, acc0_dep, acc1_dep],
                    format!("accumulate d{j} t{t}"),
                    HksStage::ModUpReduce,
                );
                b.release(&format!("acc0[{t}]"));
                b.release(&format!("acc1[{t}]"));
                b.produce(format!("acc0[{t}]"), tower, add, HksStage::ModUpReduce);
                b.produce(format!("acc1[{t}]"), tower, add, HksStage::ModUpReduce);
            }
        }

        // This digit's data is dead once its contribution is accumulated.
        for t in range {
            b.release(&format!("intt[{t}]"));
            b.release(&format!("in[{t}]"));
        }
        for e in 0..beta_j {
            b.release(&format!("ext[{j}][{e}]"));
        }
    }

    emit_moddown_stagewise(&mut b);
    b.finish(Dataflow::DigitCentric.short_name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::HksBenchmark;
    use crate::schedule::build_max_parallel;
    use rpu::EvkPolicy;

    fn streamed_32mb() -> ScheduleConfig {
        ScheduleConfig {
            data_memory_bytes: 32 * rpu::MIB,
            evk_policy: EvkPolicy::Streamed,
        }
    }

    #[test]
    fn dc_never_moves_more_than_mp() {
        for bench in HksBenchmark::all() {
            let shape = HksShape::new(bench);
            let dc = build_digit_centric(&shape, &streamed_32mb());
            let mp = build_max_parallel(&shape, &streamed_32mb());
            assert!(
                dc.dram_bytes() <= mp.dram_bytes(),
                "{}: DC {} vs MP {}",
                bench.name,
                dc.dram_bytes(),
                mp.dram_bytes()
            );
        }
    }

    #[test]
    fn dc_and_mp_coincide_for_single_digit_benchmarks() {
        // With one digit there is nothing to iterate over, so the paper notes
        // MP and DC share the same implementation; our generated traffic
        // should be very close (identical op counts, near-identical bytes).
        let shape = HksShape::new(HksBenchmark::BTS1);
        let dc = build_digit_centric(&shape, &streamed_32mb());
        let mp = build_max_parallel(&shape, &streamed_32mb());
        assert_eq!(dc.total_ops(), mp.total_ops());
        assert_eq!(dc.dram_bytes(), mp.dram_bytes());
        assert_eq!(dc.dataflow(), Some(crate::dataflow::Dataflow::DigitCentric));
    }

    #[test]
    fn dc_accumulator_requires_less_memory_for_small_benchmarks() {
        // ARK's accumulator (2 x 30 towers x 0.5 MiB = 30 MiB) almost fits;
        // its spill volume must be far below BTS3's.
        let ark = build_digit_centric(&HksShape::new(HksBenchmark::ARK), &streamed_32mb());
        let bts3 = build_digit_centric(&HksShape::new(HksBenchmark::BTS3), &streamed_32mb());
        assert!(ark.spill_bytes * 4 < bts3.spill_bytes);
    }
}
