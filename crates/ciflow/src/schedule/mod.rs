//! Schedule generation: turning an HKS shape into an RPU task graph under one
//! of the three dataflows.
//!
//! Every generator uses the same crate-internal `ScheduleBuilder`, which
//! combines a [`TaskGraph`] under construction with an [`OnChipTracker`] of the RPU's
//! data memory. The builder decides, buffer by buffer, whether an
//! intermediate stays resident (free reuse) or must be spilled to DRAM and
//! reloaded (extra memory tasks) — exactly the trade-off the paper's
//! dataflows manage differently.

mod digit_centric;
mod max_parallel;
mod output_centric;

pub use digit_centric::build_digit_centric;
pub use max_parallel::build_max_parallel;
pub use output_centric::build_output_centric;

use crate::dataflow::Dataflow;
use crate::hks_shape::{HksShape, HksStage};
use rpu::{
    AllocationOutcome, ComputeKind, EvkPolicy, MemoryDirection, OnChipTracker, TaskGraph, TaskId,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Memory-related knobs a schedule is generated against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleConfig {
    /// Capacity of the on-chip vector data memory in bytes (32 MB in the
    /// paper's evaluation).
    pub data_memory_bytes: u64,
    /// Whether evks are preloaded on-chip or streamed from DRAM.
    pub evk_policy: EvkPolicy,
}

impl ScheduleConfig {
    /// The paper's standard configuration: 32 MB of data memory.
    pub fn with_data_memory(data_memory_bytes: u64, evk_policy: EvkPolicy) -> Self {
        Self {
            data_memory_bytes,
            evk_policy,
        }
    }
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        Self {
            data_memory_bytes: 32 * rpu::MIB,
            evk_policy: EvkPolicy::OnChip,
        }
    }
}

/// Summary of a generated schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Short name of the strategy that generated it (`"MP"`, `"DC"`, `"OC"`,
    /// or the [`ScheduleStrategy::short_name`](crate::api::ScheduleStrategy::short_name)
    /// of a custom strategy).
    pub strategy: String,
    /// The task graph to execute.
    pub graph: TaskGraph,
    /// Peak bytes of data memory the schedule keeps resident.
    pub peak_on_chip_bytes: u64,
    /// Bytes written to DRAM because an intermediate did not fit.
    pub spill_bytes: u64,
}

impl Schedule {
    /// The built-in dataflow that generated this schedule, if it was one of
    /// the three paper dataflows (custom strategies return `None`).
    pub fn dataflow(&self) -> Option<Dataflow> {
        Dataflow::parse(&self.strategy)
    }

    /// Total DRAM traffic (loads + stores) in bytes.
    pub fn dram_bytes(&self) -> u64 {
        let (l, s) = self.graph.total_bytes();
        l + s
    }

    /// Total modular operations.
    pub fn total_ops(&self) -> u64 {
        self.graph.total_ops()
    }

    /// Arithmetic intensity in operations per DRAM byte (Table II metric).
    pub fn arithmetic_intensity(&self) -> f64 {
        self.graph.arithmetic_intensity()
    }

    /// DRAM traffic broken down by HKS stage label, in bytes. Useful for
    /// understanding where each dataflow spends its bandwidth.
    pub fn traffic_by_stage(&self) -> std::collections::BTreeMap<String, u64> {
        let mut map = std::collections::BTreeMap::new();
        for task in self.graph.tasks() {
            if task.is_memory() {
                *map.entry(task.stage.to_string()).or_insert(0) += task.bytes();
            }
        }
        map
    }

    /// Derives the channel-aware buffer placement for this schedule: the
    /// channel hints the generators encode in their canonical buffer labels,
    /// turned into a concrete [`ChannelMap`](rpu::ChannelMap) for
    /// `num_channels` memory pseudo-channels.
    ///
    /// Evk towers are pinned to their own contiguous channel group, sized
    /// proportionally to the share of DRAM traffic they move (at least one
    /// channel, never all of them), and every other buffer — input limbs,
    /// outputs, spills — is hashed over the remaining channels. The shares
    /// are computed from this schedule's whole task graph, so for a stitched
    /// (possibly heterogeneous) pipeline the split reflects the *union* of
    /// every kernel's traffic — one consistent placement even when the
    /// evk-vs-limb ratio changes as a rescaling chain's ℓ decays. This keeps
    /// the channels load-balanced under both evk policies while guaranteeing
    /// that cross-kernel evk prefetch in a fused pipeline never queues
    /// behind the current kernel's limb traffic. With one channel (or no
    /// evk traffic to segregate) it degenerates to the plain label hash, so
    /// `N = 1` engines behave exactly like the historical single queue.
    ///
    /// ```
    /// use ciflow::{build_schedule, Dataflow, HksBenchmark, HksShape, ScheduleConfig};
    /// use rpu::EvkPolicy;
    ///
    /// let config = ScheduleConfig::with_data_memory(32 * rpu::MIB, EvkPolicy::Streamed);
    /// let schedule = build_schedule(Dataflow::OutputCentric, &HksShape::new(HksBenchmark::ARK), &config);
    /// let map = schedule.channel_map(4);
    /// // Evk towers and input limbs land on disjoint channels.
    /// assert_ne!(map.channel_for("load evk[d0][t1]"), map.channel_for("load in[1]"));
    /// ```
    pub fn channel_map(&self, num_channels: usize) -> rpu::ChannelMap {
        let n = num_channels.max(1);
        if n == 1 {
            // The common single-channel path: skip the traffic scan.
            return rpu::ChannelMap::hashed(1);
        }
        let mut evk_bytes = 0u64;
        let mut total_bytes = 0u64;
        for task in self.graph.tasks() {
            if task.is_memory() {
                total_bytes += task.bytes();
                if task.label.contains("evk") {
                    evk_bytes += task.bytes();
                }
            }
        }
        if evk_bytes == 0 || evk_bytes == total_bytes {
            return rpu::ChannelMap::hashed(n);
        }
        let share = evk_bytes as f64 / total_bytes as f64;
        let evk_channels = ((n as f64 * share).round() as usize).clamp(1, n - 1);
        let split = n - evk_channels;
        rpu::ChannelMap::hashed(n)
            .with_pin("evk", split..n)
            .with_pin("", 0..split)
    }

    /// DRAM traffic broken down by buffer kind (evk, input, spill, output),
    /// in bytes.
    pub fn traffic_by_kind(&self) -> std::collections::BTreeMap<&'static str, u64> {
        let mut map = std::collections::BTreeMap::new();
        for task in self.graph.tasks() {
            if task.is_memory() {
                let kind = if task.label.contains("evk") {
                    "evk"
                } else if task.label.contains("load in[") {
                    "input"
                } else if task.label.starts_with("store out") {
                    "output"
                } else {
                    "intermediate"
                };
                *map.entry(kind).or_insert(0) += task.bytes();
            }
        }
        map
    }
}

/// Generates the schedule for a built-in dataflow.
///
/// Compatibility wrapper over the strategy API: delegates to
/// [`Dataflow::strategy`] and unwraps, which is safe because the built-in
/// strategies are infallible. For custom strategies (or fallible building),
/// use [`ScheduleStrategy::build`](crate::api::ScheduleStrategy::build)
/// directly or run jobs through a [`Session`](crate::api::Session).
pub fn build_schedule(dataflow: Dataflow, shape: &HksShape, config: &ScheduleConfig) -> Schedule {
    dataflow
        .strategy()
        .build(shape, config)
        .expect("built-in strategies are infallible")
}

/// Where a tracked buffer currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Residence {
    /// On-chip; the contained task produced or loaded it.
    OnChip(TaskId),
    /// In DRAM; the contained task (if any) stored it there. `None` means the
    /// buffer is an original input that has never been on-chip.
    InDram(Option<TaskId>),
}

/// Shared machinery for the three schedule generators.
pub(crate) struct ScheduleBuilder<'a> {
    shape: &'a HksShape,
    config: &'a ScheduleConfig,
    graph: TaskGraph,
    tracker: OnChipTracker,
    buffers: HashMap<String, (Residence, u64)>,
    spill_bytes: u64,
}

impl<'a> ScheduleBuilder<'a> {
    pub(crate) fn new(shape: &'a HksShape, config: &'a ScheduleConfig) -> Self {
        Self {
            shape,
            config,
            graph: TaskGraph::new(),
            tracker: OnChipTracker::new(config.data_memory_bytes),
            buffers: HashMap::new(),
            spill_bytes: 0,
        }
    }

    pub(crate) fn shape(&self) -> &HksShape {
        self.shape
    }

    /// Registers an input buffer that starts in DRAM (e.g. the key-switch
    /// input polynomial towers).
    pub(crate) fn declare_dram_input(&mut self, name: impl Into<String>, bytes: u64) {
        self.buffers
            .insert(name.into(), (Residence::InDram(None), bytes));
    }

    /// Returns a dependency on `name` being available on-chip, emitting a
    /// DRAM load if necessary. The buffer becomes resident if it fits;
    /// otherwise it is treated as streamed (usable by the next task but not
    /// retained).
    ///
    /// # Panics
    ///
    /// Panics if the buffer was never declared or produced — that is a
    /// generator bug.
    pub(crate) fn acquire(&mut self, name: &str, stage: HksStage) -> TaskId {
        let (residence, bytes) = *self
            .buffers
            .get(name)
            .unwrap_or_else(|| panic!("buffer {name} used before being declared or produced"));
        match residence {
            Residence::OnChip(task) => task,
            Residence::InDram(source) => {
                let deps = source.map(|t| vec![t]).unwrap_or_default();
                let load = self.graph.push_memory(
                    MemoryDirection::Load,
                    bytes,
                    deps,
                    format!("load {name}"),
                    stage.label(),
                );
                if self.tracker.allocate(name, bytes) == AllocationOutcome::OnChip {
                    self.buffers
                        .insert(name.to_string(), (Residence::OnChip(load), bytes));
                } else {
                    // Streamed through: remains in DRAM for any later use.
                    self.buffers
                        .insert(name.to_string(), (Residence::InDram(source), bytes));
                }
                load
            }
        }
    }

    /// Emits a compute task.
    pub(crate) fn compute(
        &mut self,
        kind: ComputeKind,
        ops: u64,
        deps: Vec<TaskId>,
        label: impl Into<rpu::Label>,
        stage: HksStage,
    ) -> TaskId {
        self.graph
            .push_compute(kind, ops, deps, label, stage.label())
    }

    /// Registers a buffer produced by `task`. If it fits on-chip it stays
    /// resident; otherwise a spill store is emitted and the buffer lives in
    /// DRAM until re-acquired.
    pub(crate) fn produce(
        &mut self,
        name: impl Into<String>,
        bytes: u64,
        task: TaskId,
        stage: HksStage,
    ) {
        let name = name.into();
        if self.tracker.allocate(&name, bytes) == AllocationOutcome::OnChip {
            self.buffers.insert(name, (Residence::OnChip(task), bytes));
        } else {
            let store = self.graph.push_memory(
                MemoryDirection::Store,
                bytes,
                vec![task],
                format!("spill {name}"),
                stage.label(),
            );
            self.spill_bytes += bytes;
            self.buffers
                .insert(name, (Residence::InDram(Some(store)), bytes));
        }
    }

    /// Releases a buffer whose value is no longer needed, freeing its
    /// on-chip space (no DRAM traffic).
    pub(crate) fn release(&mut self, name: &str) {
        if let Some((Residence::OnChip(_), _)) = self.buffers.get(name) {
            self.tracker.release(name);
        }
        self.buffers.remove(name);
    }

    /// Evicts a *live* buffer from on-chip memory while preserving its value:
    /// if it is resident, a spill store is emitted and the buffer is marked
    /// as living in DRAM so a later [`ScheduleBuilder::acquire`] reloads it.
    /// No-op if the buffer is already in DRAM or unknown.
    pub(crate) fn park(&mut self, name: &str, stage: HksStage) {
        if let Some((Residence::OnChip(task), bytes)) = self.buffers.get(name).copied() {
            let store = self.graph.push_memory(
                MemoryDirection::Store,
                bytes,
                vec![task],
                format!("park {name}"),
                stage.label(),
            );
            self.spill_bytes += bytes;
            self.tracker.release(name);
            self.buffers
                .insert(name.to_string(), (Residence::InDram(Some(store)), bytes));
        }
    }

    /// True if the named buffer is currently resident on-chip.
    pub(crate) fn is_resident(&self, name: &str) -> bool {
        matches!(self.buffers.get(name), Some((Residence::OnChip(_), _)))
    }

    /// Emits the final store of an output buffer to DRAM.
    pub(crate) fn store_output(
        &mut self,
        name: impl Into<String>,
        bytes: u64,
        dep: TaskId,
        stage: HksStage,
    ) -> TaskId {
        self.graph.push_memory(
            MemoryDirection::Store,
            bytes,
            vec![dep],
            format!("store {}", name.into()),
            stage.label(),
        )
    }

    /// Returns the dependencies required to have the evk towers for digit
    /// `digit`, extended tower index `tower` available. Under the on-chip
    /// policy this is free; under the streaming policy it emits a load of the
    /// `(b, a)` tower pair.
    pub(crate) fn acquire_evk(
        &mut self,
        digit: usize,
        tower: usize,
        stage: HksStage,
    ) -> Vec<TaskId> {
        match self.config.evk_policy {
            EvkPolicy::OnChip => Vec::new(),
            EvkPolicy::Streamed => {
                let bytes = self.shape.evk_tower_pair_bytes();
                let load = self.graph.push_memory(
                    MemoryDirection::Load,
                    bytes,
                    vec![],
                    format!("load evk[d{digit}][t{tower}]"),
                    stage.label(),
                );
                vec![load]
            }
        }
    }

    /// Finishes the schedule.
    pub(crate) fn finish(self, strategy: impl Into<String>) -> Schedule {
        Schedule {
            strategy: strategy.into(),
            peak_on_chip_bytes: self.tracker.peak(),
            spill_bytes: self.spill_bytes,
            graph: self.graph,
        }
    }
}

/// Emits the ModDown phase (shared by the MP and DC generators, which handle
/// it identically: stage by stage, one output polynomial at a time).
///
/// Expects buffers `acc0[t]` / `acc1[t]` (for `t` in `0..ℓ+K`, one tower per
/// output polynomial) to have been produced already. Emits the final output
/// stores.
pub(crate) fn emit_moddown_stagewise(b: &mut ScheduleBuilder<'_>) {
    let shape = *b.shape();
    let ell = shape.ell();
    let k = shape.k();
    let tower = shape.tower_bytes();

    for poly in 0..2usize {
        // P1: INTT of the K auxiliary towers of this polynomial.
        for i in 0..k {
            let name = format!("acc{poly}[{}]", ell + i);
            let dep = b.acquire(&name, HksStage::ModDownIntt);
            let intt = b.compute(
                ComputeKind::Intt,
                shape.ntt_ops(),
                vec![dep],
                format!("moddown intt c{poly} p-tower {i}"),
                HksStage::ModDownIntt,
            );
            b.release(&name);
            b.produce(
                format!("mdintt{poly}[{i}]"),
                tower,
                intt,
                HksStage::ModDownIntt,
            );
        }

        // P2: BConv from P to the ℓ live towers.
        let mut scale_deps = Vec::with_capacity(k);
        for i in 0..k {
            scale_deps.push(b.acquire(&format!("mdintt{poly}[{i}]"), HksStage::ModDownBconv));
        }
        let scale = b.compute(
            ComputeKind::BasisConversion,
            shape.bconv_scale_ops(k),
            scale_deps.clone(),
            format!("moddown bconv scale c{poly}"),
            HksStage::ModDownBconv,
        );
        for t in 0..ell {
            let mut deps = scale_deps.clone();
            deps.push(scale);
            let slice = b.compute(
                ComputeKind::BasisConversion,
                shape.bconv_slice_ops(k),
                deps,
                format!("moddown bconv slice c{poly} {t}"),
                HksStage::ModDownBconv,
            );
            b.produce(
                format!("mdconv{poly}[{t}]"),
                tower,
                slice,
                HksStage::ModDownBconv,
            );
        }

        // P3: NTT of the converted towers.
        for t in 0..ell {
            let dep = b.acquire(&format!("mdconv{poly}[{t}]"), HksStage::ModDownNtt);
            let ntt = b.compute(
                ComputeKind::Ntt,
                shape.ntt_ops(),
                vec![dep],
                format!("moddown ntt c{poly} {t}"),
                HksStage::ModDownNtt,
            );
            b.release(&format!("mdconv{poly}[{t}]"));
            b.produce(
                format!("mdntt{poly}[{t}]"),
                tower,
                ntt,
                HksStage::ModDownNtt,
            );
        }

        // P4: subtract, scale by P^{-1}, store the final outputs.
        for t in 0..ell {
            let acc_dep = b.acquire(&format!("acc{poly}[{t}]"), HksStage::ModDownCombine);
            let ntt_dep = b.acquire(&format!("mdntt{poly}[{t}]"), HksStage::ModDownCombine);
            let combine = b.compute(
                ComputeKind::ScalarMul,
                2 * shape.pointwise_ops(),
                vec![acc_dep, ntt_dep],
                format!("moddown combine c{poly} {t}"),
                HksStage::ModDownCombine,
            );
            b.release(&format!("acc{poly}[{t}]"));
            b.release(&format!("mdntt{poly}[{t}]"));
            b.store_output(
                format!("out{poly}[{t}]"),
                tower,
                combine,
                HksStage::ModDownCombine,
            );
        }
        // Release this polynomial's ModDown scratch.
        for i in 0..k {
            b.release(&format!("mdintt{poly}[{i}]"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::HksBenchmark;

    #[test]
    fn all_dataflows_charge_identical_compute_work() {
        // "The number of operations per HKS benchmark is independent of
        // dataflow" (paper §IV-D).
        for bench in HksBenchmark::all() {
            let shape = HksShape::new(bench);
            let config = ScheduleConfig::default();
            let expected = shape.total_ops();
            for dataflow in Dataflow::all() {
                let schedule = build_schedule(dataflow, &shape, &config);
                assert_eq!(
                    schedule.total_ops(),
                    expected,
                    "{} {dataflow}: op count diverges from the shape model",
                    bench.name
                );
            }
        }
    }

    #[test]
    fn output_centric_moves_least_data() {
        // Table II ordering: OC < DC <= MP for every benchmark when evks are
        // streamed with 32 MB of data memory.
        let config = ScheduleConfig {
            data_memory_bytes: 32 * rpu::MIB,
            evk_policy: EvkPolicy::Streamed,
        };
        for bench in HksBenchmark::all() {
            let shape = HksShape::new(bench);
            let mp = build_schedule(Dataflow::MaxParallel, &shape, &config).dram_bytes();
            let dc = build_schedule(Dataflow::DigitCentric, &shape, &config).dram_bytes();
            let oc = build_schedule(Dataflow::OutputCentric, &shape, &config).dram_bytes();
            assert!(
                oc < dc,
                "{}: OC ({oc}) must move less than DC ({dc})",
                bench.name
            );
            assert!(
                dc <= mp,
                "{}: DC ({dc}) must move at most MP ({mp})",
                bench.name
            );
        }
    }

    #[test]
    fn schedules_execute_without_deadlock() {
        let config = ScheduleConfig {
            data_memory_bytes: 32 * rpu::MIB,
            evk_policy: EvkPolicy::Streamed,
        };
        let engine = rpu::RpuEngine::new(rpu::RpuConfig::ciflow_baseline());
        for bench in [HksBenchmark::ARK, HksBenchmark::DPRIVE] {
            let shape = HksShape::new(bench);
            for dataflow in Dataflow::all() {
                let schedule = build_schedule(dataflow, &shape, &config);
                let result = engine
                    .execute(&schedule.graph)
                    .expect("schedule must execute");
                assert!(result.stats.runtime_seconds > 0.0);
            }
        }
    }

    #[test]
    fn unlimited_memory_eliminates_spills() {
        // With effectively unlimited on-chip memory no dataflow spills, and
        // DRAM traffic reduces to input + output (+ evk when streamed).
        let config = ScheduleConfig {
            data_memory_bytes: u64::MAX / 4,
            evk_policy: EvkPolicy::Streamed,
        };
        let shape = HksShape::new(HksBenchmark::ARK);
        for dataflow in Dataflow::all() {
            let schedule = build_schedule(dataflow, &shape, &config);
            assert_eq!(schedule.spill_bytes, 0, "{dataflow}");
            let expected = shape.input_bytes() + shape.output_bytes() + shape.evk_bytes();
            assert_eq!(schedule.dram_bytes(), expected, "{dataflow}");
        }
    }

    #[test]
    fn channel_map_segregates_evk_traffic_proportionally() {
        let shape = HksShape::new(HksBenchmark::ARK);
        let streamed = build_schedule(
            Dataflow::OutputCentric,
            &shape,
            &ScheduleConfig {
                data_memory_bytes: 32 * rpu::MIB,
                evk_policy: EvkPolicy::Streamed,
            },
        );
        let map = streamed.channel_map(8);
        // Every evk tower lands in one contiguous group, all limb traffic in
        // the other, and both groups are non-empty.
        let evk_channels: std::collections::BTreeSet<usize> = (0..shape.dnum())
            .flat_map(|d| (0..4).map(move |t| (d, t)))
            .map(|(d, t)| map.channel_for(&format!("load evk[d{d}][t{t}]")))
            .collect();
        let data_channels: std::collections::BTreeSet<usize> = (0..shape.ell())
            .map(|t| map.channel_for(&format!("load in[{t}]")))
            .collect();
        assert!(evk_channels.is_disjoint(&data_channels));
        assert!(!evk_channels.is_empty() && !data_channels.is_empty());
        // Spill/limb/output traffic shares the data group — fused kernel
        // prefixes do not change placement.
        assert!(data_channels.contains(&map.channel_for("k3:load in[0]")));

        // One channel, or no evk traffic to segregate: plain hashing.
        assert_eq!(streamed.channel_map(1), rpu::ChannelMap::hashed(1));
        let on_chip = build_schedule(Dataflow::OutputCentric, &shape, &ScheduleConfig::default());
        assert_eq!(on_chip.channel_map(8), rpu::ChannelMap::hashed(8));
    }

    #[test]
    fn on_chip_evk_policy_removes_key_traffic() {
        let shape = HksShape::new(HksBenchmark::ARK);
        let streamed = build_schedule(
            Dataflow::OutputCentric,
            &shape,
            &ScheduleConfig {
                data_memory_bytes: 32 * rpu::MIB,
                evk_policy: EvkPolicy::Streamed,
            },
        );
        let on_chip = build_schedule(
            Dataflow::OutputCentric,
            &shape,
            &ScheduleConfig {
                data_memory_bytes: 32 * rpu::MIB,
                evk_policy: EvkPolicy::OnChip,
            },
        );
        assert_eq!(
            streamed.dram_bytes() - on_chip.dram_bytes(),
            shape.evk_bytes(),
            "the traffic difference must be exactly the evk size"
        );
    }
}
