//! The Max-Parallel (MP) schedule generator.
//!
//! MP executes each HKS stage over *all* towers before starting the next
//! stage (paper §IV-A, Figure 2a). This exposes maximal parallelism but
//! materializes every stage's full output at once: the post-BConv extension
//! (`dnum × β` towers) and the post-Apply-Key partial products
//! (`2 × dnum × (ℓ+K)` towers) dwarf a 32 MB data memory, so most
//! intermediates spill to DRAM and are reloaded by the next stage. This is
//! the baseline dataflow used by prior accelerators such as Cheetah and HEAX.

use super::{emit_moddown_stagewise, Schedule, ScheduleBuilder, ScheduleConfig};
use crate::dataflow::Dataflow;
use crate::hks_shape::{HksShape, HksStage};
use rpu::ComputeKind;

/// Builds the Max-Parallel schedule for one hybrid key switch.
pub fn build_max_parallel(shape: &HksShape, config: &ScheduleConfig) -> Schedule {
    let mut b = ScheduleBuilder::new(shape, config);
    let shape = *shape;
    let ell = shape.ell();
    let dnum = shape.dnum();
    let tower = shape.tower_bytes();
    let two_towers = 2 * tower;

    // The key-switch input polynomial starts in DRAM, one tower per buffer.
    for t in 0..ell {
        b.declare_dram_input(format!("in[{t}]"), tower);
    }

    // ModUp P1: INTT every input tower.
    for t in 0..ell {
        let dep = b.acquire(&format!("in[{t}]"), HksStage::ModUpIntt);
        let intt = b.compute(
            ComputeKind::Intt,
            shape.ntt_ops(),
            vec![dep],
            format!("intt in[{t}]"),
            HksStage::ModUpIntt,
        );
        b.produce(format!("intt[{t}]"), tower, intt, HksStage::ModUpIntt);
    }

    // ModUp P2: basis-convert every digit from alpha to beta towers.
    for j in 0..dnum {
        let alpha_j = shape.digit_width(j);
        let beta_j = shape.beta(j);
        let mut digit_deps = Vec::with_capacity(alpha_j);
        for t in shape.benchmark.digit_range(j) {
            digit_deps.push(b.acquire(&format!("intt[{t}]"), HksStage::ModUpBconv));
        }
        let scale = b.compute(
            ComputeKind::BasisConversion,
            shape.bconv_scale_ops(alpha_j),
            digit_deps.clone(),
            format!("bconv scale digit {j}"),
            HksStage::ModUpBconv,
        );
        for e in 0..beta_j {
            let mut deps = digit_deps.clone();
            deps.push(scale);
            let slice = b.compute(
                ComputeKind::BasisConversion,
                shape.bconv_slice_ops(alpha_j),
                deps,
                format!("bconv d{j} ext{e}"),
                HksStage::ModUpBconv,
            );
            b.produce(
                format!("bconv[{j}][{e}]"),
                tower,
                slice,
                HksStage::ModUpBconv,
            );
        }
        // The INTT outputs of this digit are dead once its BConv is done.
        for t in shape.benchmark.digit_range(j) {
            b.release(&format!("intt[{t}]"));
        }
    }

    // ModUp P3: NTT every extended tower.
    for j in 0..dnum {
        for e in 0..shape.beta(j) {
            let dep = b.acquire(&format!("bconv[{j}][{e}]"), HksStage::ModUpNtt);
            let ntt = b.compute(
                ComputeKind::Ntt,
                shape.ntt_ops(),
                vec![dep],
                format!("ntt d{j} ext{e}"),
                HksStage::ModUpNtt,
            );
            b.release(&format!("bconv[{j}][{e}]"));
            b.produce(format!("ext[{j}][{e}]"), tower, ntt, HksStage::ModUpNtt);
        }
    }

    // ModUp P4: point-wise multiply each digit's extended polynomial with its
    // evk pair, over all ℓ+K towers.
    for j in 0..dnum {
        let range = shape.benchmark.digit_range(j);
        let mut ext_index = 0usize;
        for t in 0..shape.extended() {
            // D_j tower t is the bypassed original tower when t belongs to
            // this digit, otherwise the basis-extended tower.
            let d_dep = if t < ell && range.contains(&t) {
                b.acquire(&format!("in[{t}]"), HksStage::ModUpApplyKey)
            } else {
                let dep = b.acquire(&format!("ext[{j}][{ext_index}]"), HksStage::ModUpApplyKey);
                ext_index += 1;
                dep
            };
            let mut deps = vec![d_dep];
            deps.extend(b.acquire_evk(j, t, HksStage::ModUpApplyKey));
            let mul = b.compute(
                ComputeKind::PointwiseMul,
                2 * shape.pointwise_ops(),
                deps,
                format!("apply evk d{j} t{t}"),
                HksStage::ModUpApplyKey,
            );
            if dnum == 1 {
                // A single digit needs no reduction (the paper notes BTS1
                // lacks the Reduce step); the product is the accumulator.
                b.produce(format!("acc0[{t}]"), tower, mul, HksStage::ModUpApplyKey);
                b.produce(format!("acc1[{t}]"), tower, mul, HksStage::ModUpApplyKey);
            } else {
                b.produce(
                    format!("part[{j}][{t}]"),
                    two_towers,
                    mul,
                    HksStage::ModUpApplyKey,
                );
            }
        }
        // The extended towers of this digit and the bypassed originals are
        // dead after P4.
        for e in 0..shape.beta(j) {
            b.release(&format!("ext[{j}][{e}]"));
        }
        for t in range {
            b.release(&format!("in[{t}]"));
        }
    }

    // ModUp P5: reduce the dnum partial products per extended tower (skipped
    // entirely for single-digit parameter sets, which have no partial
    // products to reduce).
    for t in 0..shape.extended() {
        if dnum == 1 {
            break;
        }
        let mut deps = Vec::with_capacity(dnum);
        for j in 0..dnum {
            deps.push(b.acquire(&format!("part[{j}][{t}]"), HksStage::ModUpReduce));
        }
        let add = b.compute(
            ComputeKind::PointwiseAdd,
            2 * (dnum as u64 - 1) * shape.pointwise_ops(),
            deps,
            format!("reduce t{t}"),
            HksStage::ModUpReduce,
        );
        for j in 0..dnum {
            b.release(&format!("part[{j}][{t}]"));
        }
        b.produce(format!("acc0[{t}]"), tower, add, HksStage::ModUpReduce);
        b.produce(format!("acc1[{t}]"), tower, add, HksStage::ModUpReduce);
    }

    // ModDown P1-P4 (shared stage-wise implementation).
    emit_moddown_stagewise(&mut b);

    b.finish(Dataflow::MaxParallel.short_name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::HksBenchmark;
    use rpu::EvkPolicy;

    #[test]
    fn mp_spills_heavily_with_small_memory() {
        let shape = HksShape::new(HksBenchmark::BTS3);
        let small = build_max_parallel(
            &shape,
            &ScheduleConfig {
                data_memory_bytes: 32 * rpu::MIB,
                evk_policy: EvkPolicy::Streamed,
            },
        );
        let huge = build_max_parallel(
            &shape,
            &ScheduleConfig {
                data_memory_bytes: u64::MAX / 4,
                evk_policy: EvkPolicy::Streamed,
            },
        );
        assert!(small.spill_bytes > 0);
        assert_eq!(huge.spill_bytes, 0);
        assert!(small.dram_bytes() > huge.dram_bytes());
    }

    #[test]
    fn mp_task_counts_match_shape() {
        let shape = HksShape::new(HksBenchmark::ARK);
        let schedule = build_max_parallel(&shape, &ScheduleConfig::default());
        // INTT tasks: ell (ModUp) + K (ModDown, fused pairs) ... count compute
        // tasks by stage label instead of total.
        let intt_tasks = schedule
            .graph
            .tasks()
            .iter()
            .filter(|t| t.is_compute() && &*t.stage == "ModUp-P1")
            .count();
        assert_eq!(intt_tasks, shape.ell());
        let apply_key_tasks = schedule
            .graph
            .tasks()
            .iter()
            .filter(|t| t.is_compute() && &*t.stage == "ModUp-P4")
            .count();
        assert_eq!(apply_key_tasks, shape.dnum() * shape.extended());
    }

    #[test]
    fn single_digit_benchmark_skips_reduce_compute() {
        let shape = HksShape::new(HksBenchmark::BTS1);
        let schedule = build_max_parallel(&shape, &ScheduleConfig::default());
        let reduce_compute = schedule
            .graph
            .tasks()
            .iter()
            .filter(|t| t.is_compute() && &*t.stage == "ModUp-P5")
            .count();
        assert_eq!(reduce_compute, 0, "BTS1 lacks the ModUp Reduce step");
    }
}
