//! Placement and accounting pass (`P001`–`P003`, `A001`/`A002`).
//!
//! Checks the channel placement the schedule will actually run under —
//! resolved pin rules plus the hash fallback — against the schedule's real
//! memory traffic, and reconciles the builder's spill accounting against the
//! labeled spill/park tasks:
//!
//! * **`P001` shadowed pin rule** (Error): rules win in insertion order and
//!   match by substring, so a rule whose pattern *contains* an earlier rule's
//!   pattern can never fire — every label it would match is already claimed.
//!   [`ChannelMap::with_pin`](rpu::ChannelMap::with_pin) debug-asserts this
//!   at construction; the lint proves it for maps built in release mode or
//!   deserialized.
//! * **`P002` dead pin rule** (Warning): a reachable rule that matches none
//!   of this schedule's buffers — usually a typo in the pattern.
//! * **`P003` channel imbalance** (Warning): the placement concentrates
//!   traffic so heavily that one channel carries more than
//!   [`LintConfig::imbalance_ratio`] (default 4)× its fair share,
//!   forfeiting the head-of-line bypass benefit multiple channels exist to
//!   provide.
//! * **`A001`/`A002` spill reconciliation**: the builder's
//!   [`Schedule::spill_bytes`] vs the sum of `spill`/`park`-labeled store
//!   traffic. Labeled traffic *exceeding* the report is an Error (`A001` —
//!   the accounting undercounts DRAM traffic the engine will charge);
//!   a report exceeding the labels is only a Warning (`A002` — custom
//!   strategies may account spills without using the canonical verbs).

use rpu::channel::{canonical_label, split_label};
use rpu::verify::Diagnostic;
use rpu::RpuEngine;

use super::{codes, LintConfig};
use crate::schedule::Schedule;

/// Indices of rules that can never match because an earlier rule's pattern is
/// a substring of theirs. Pure so the lint is testable without constructing
/// an (asserted-against) shadowed [`rpu::ChannelMap`].
fn shadowed_rules(patterns: &[&str]) -> Vec<(usize, usize)> {
    let mut shadowed = Vec::new();
    for (later, pattern) in patterns.iter().enumerate() {
        if let Some(earlier) = patterns[..later]
            .iter()
            .position(|prior| pattern.contains(prior))
        {
            shadowed.push((later, earlier));
        }
    }
    shadowed
}

/// Runs the placement/accounting pass for `schedule` under `engine`'s
/// channel map and channel count. The imbalance thresholds come from
/// [`LintConfig`].
pub fn lint(schedule: &Schedule, engine: &RpuEngine, config: &LintConfig) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let map = engine.channel_map();
    let rules: Vec<(&str, &[usize])> = map.rules().collect();
    let patterns: Vec<&str> = rules.iter().map(|(p, _)| *p).collect();

    // P001: statically unreachable rules.
    for (later, earlier) in shadowed_rules(&patterns) {
        diagnostics.push(
            Diagnostic::error(
                codes::SHADOWED_PIN_RULE,
                format!(
                    "pin rule #{later} (pattern {:?}) can never match: rule #{earlier} \
                     (pattern {:?}) precedes it and matches a superset of its labels \
                     (rules win in insertion order)",
                    patterns[later], patterns[earlier],
                ),
            )
            .with_label(patterns[later].into()),
        );
    }

    // One walk over the memory tasks feeds P002 (per-rule match counts under
    // first-match semantics), P003 (per-channel byte totals) and A001/A002
    // (labeled spill/park traffic).
    let channels = map.num_channels();
    let mut rule_matches = vec![0usize; patterns.len()];
    let mut channel_bytes = vec![0u64; channels];
    let mut memory_tasks = 0usize;
    let mut labeled_spill_bytes = 0u64;
    for task in schedule.graph.tasks().iter().filter(|t| t.is_memory()) {
        memory_tasks += 1;
        channel_bytes[engine.channel_of(task)] += task.bytes();
        let canonical = canonical_label(&task.label);
        if let Some(hit) = patterns.iter().position(|p| canonical.contains(p)) {
            rule_matches[hit] += 1;
        }
        if matches!(split_label(&task.label).0, Some("spill") | Some("park")) {
            labeled_spill_bytes += task.bytes();
        }
    }

    // P002: reachable rules that matched nothing (vacuous without traffic).
    if memory_tasks > 0 {
        let shadowed: Vec<usize> = shadowed_rules(&patterns).iter().map(|&(j, _)| j).collect();
        for (at, matches) in rule_matches.iter().enumerate() {
            if *matches == 0 && !shadowed.contains(&at) {
                diagnostics.push(
                    Diagnostic::warning(
                        codes::DEAD_PIN_RULE,
                        format!(
                            "pin rule #{at} (pattern {:?}) matches none of the schedule's \
                             {memory_tasks} memory-task buffers",
                            patterns[at],
                        ),
                    )
                    .with_label(patterns[at].into()),
                );
            }
        }
    }

    // P003: one channel hoards the traffic.
    let total_bytes: u64 = channel_bytes.iter().sum();
    if channels > 1
        && memory_tasks >= config.imbalance_min_tasks_per_channel * channels
        && total_bytes > 0
    {
        let fair_share = total_bytes as f64 / channels as f64;
        let (worst, &max_bytes) = channel_bytes
            .iter()
            .enumerate()
            .max_by_key(|&(_, b)| *b)
            .expect("channels > 1");
        if max_bytes as f64 > config.imbalance_ratio * fair_share {
            diagnostics.push(Diagnostic::warning(
                codes::CHANNEL_IMBALANCE,
                format!(
                    "channel {worst} carries {max_bytes} of {total_bytes} B \
                     ({:.0}x its fair share across {channels} channels): the placement \
                     forfeits most of the head-of-line bypass benefit",
                    max_bytes as f64 / fair_share,
                ),
            ));
        }
    }

    // A001/A002: reconcile the builder's spill accounting.
    let reported = schedule.spill_bytes;
    if labeled_spill_bytes > reported {
        diagnostics.push(Diagnostic::error(
            codes::SPILL_UNDERREPORTED,
            format!(
                "spill/park tasks move {labeled_spill_bytes} B but the schedule reports \
                 spill_bytes = {reported}: the accounting undercounts DRAM traffic the \
                 engine will charge"
            ),
        ));
    } else if reported > labeled_spill_bytes {
        diagnostics.push(Diagnostic::warning(
            codes::SPILL_OVERREPORTED,
            format!(
                "schedule reports spill_bytes = {reported} but only {labeled_spill_bytes} B \
                 of spill/park-labeled traffic exists (coarse or custom accounting?)"
            ),
        ));
    }

    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu::{ChannelMap, MemoryDirection, RpuConfig, RpuEngine, TaskGraph};

    fn schedule(graph: TaskGraph, spill_bytes: u64) -> Schedule {
        Schedule {
            strategy: "test".into(),
            graph,
            peak_on_chip_bytes: 0,
            spill_bytes,
        }
    }

    fn engine_with(map: ChannelMap) -> RpuEngine {
        let channels = map.num_channels();
        RpuEngine::new(RpuConfig::ciflow_baseline().with_memory_channels(channels))
            .with_channel_map(map)
    }

    #[test]
    fn shadowing_detection_is_order_sensitive() {
        // "evk" after the catch-all can never match; before it, it can.
        assert_eq!(shadowed_rules(&["", "evk"]), vec![(1, 0)]);
        assert!(shadowed_rules(&["evk", ""]).is_empty());
        assert_eq!(shadowed_rules(&["in", "in["]), vec![(1, 0)]);
    }

    #[test]
    fn dead_rule_is_flagged_and_live_rules_are_not() {
        let mut g = TaskGraph::new();
        for t in 0..4 {
            g.push_memory(
                MemoryDirection::Load,
                100,
                vec![],
                format!("load in[{t}]"),
                "P1",
            );
        }
        let engine = engine_with(ChannelMap::hashed(2).with_pin("zzz-typo", [0]));
        let diagnostics = lint(&schedule(g, 0), &engine, &LintConfig::default());
        assert_eq!(diagnostics.len(), 1, "{diagnostics:?}");
        assert_eq!(diagnostics[0].code, codes::DEAD_PIN_RULE);
        assert!(diagnostics[0].message.contains("zzz-typo"));
    }

    #[test]
    fn pinning_everything_to_one_of_many_channels_is_imbalanced() {
        let mut g = TaskGraph::new();
        for t in 0..64 {
            g.push_memory(
                MemoryDirection::Load,
                1000,
                vec![],
                format!("load in[{t}]"),
                "P1",
            );
        }
        let engine = engine_with(ChannelMap::hashed(8).with_pin("", [0]));
        let diagnostics = lint(&schedule(g, 0), &engine, &LintConfig::default());
        assert!(
            diagnostics
                .iter()
                .any(|d| d.code == codes::CHANNEL_IMBALANCE),
            "{diagnostics:?}"
        );
    }

    #[test]
    fn hashed_placement_of_many_buffers_is_balanced() {
        let mut g = TaskGraph::new();
        for t in 0..64 {
            g.push_memory(
                MemoryDirection::Load,
                1000,
                vec![],
                format!("load in[{t}]"),
                "P1",
            );
        }
        let engine = engine_with(ChannelMap::hashed(4));
        assert!(lint(&schedule(g, 0), &engine, &LintConfig::default()).is_empty());
    }

    #[test]
    fn spill_accounting_reconciles_both_directions() {
        let mut g = TaskGraph::new();
        g.push_memory(MemoryDirection::Store, 150, vec![], "spill acc0[0]", "P1");
        g.push_memory(MemoryDirection::Store, 50, vec![], "park in[3]", "P1");
        g.push_memory(MemoryDirection::Load, 150, vec![], "load acc0[0]", "P1");
        g.push_memory(MemoryDirection::Load, 50, vec![], "load in[3]", "P1");
        let engine = engine_with(ChannelMap::hashed(1));

        // Exact accounting: clean.
        assert!(lint(&schedule(g.clone(), 200), &engine, &LintConfig::default()).is_empty());

        // Under-reporting is an error: the engine will move more spill bytes
        // than the schedule claims.
        let under = lint(&schedule(g.clone(), 100), &engine, &LintConfig::default());
        assert_eq!(under.len(), 1);
        assert_eq!(under[0].code, codes::SPILL_UNDERREPORTED);
        assert_eq!(under[0].severity, rpu::Severity::Error);

        // Over-reporting (e.g. a custom strategy with coarse labels) is only
        // a warning.
        let over = lint(&schedule(g, 300), &engine, &LintConfig::default());
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].code, codes::SPILL_OVERREPORTED);
        assert_eq!(over[0].severity, rpu::Severity::Warning);
    }
}
