//! Buffer-lifetime hazard pass (`B001`–`B003`).
//!
//! Reconstructs, per canonical buffer, the program-order sequence of memory
//! events touching it — using the same label vocabulary
//! ([`rpu::channel::split_label`]) the schedule builders emit and the
//! channel placement keys on — and checks each buffer's lifetime:
//!
//! * **`B001` load-before-store** (Error): a buffer that the schedule itself
//!   materializes (it has a `spill`/`park` write) is loaded *before* the
//!   first write. Program order is a valid witness here because validated
//!   graphs only depend backwards, so an earlier load can never be ordered
//!   after a later store. Buffers that begin life in DRAM (`in[...]`
//!   input limbs, `evk[...]` key towers) are exempt — their first load is
//!   the legitimate initial read.
//! * **`B002` dead store** (Warning): a `spill`/`park` write never followed
//!   by a reload of the same buffer — the value round-trips to DRAM for
//!   nothing (a `release` would have freed the space without traffic).
//! * **`B003` redundant load** (Note): consecutive loads of one buffer
//!   with no intervening write — each pair is a missed caching opportunity.
//!   Streamed evk towers reloaded by every kernel of a fused pipeline land
//!   here by design: this lint is the static signal for the ROADMAP's
//!   cross-kernel evk cache.

use rpu::channel::split_label;
use rpu::verify::Diagnostic;
use rpu::{TaskGraph, TaskId};
use std::collections::BTreeMap;

use super::codes;

/// One memory event on a buffer, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Load(TaskId),
    /// Any write verb: `store`, `spill` or `park`. The flag records whether
    /// it was a spill-family write (`spill`/`park`), the ones that promise a
    /// later reload.
    Write(TaskId, bool),
}

/// Buffers whose first load needs no prior write: key-switch inputs and evk
/// towers start life in DRAM.
fn starts_in_dram(buffer: &str) -> bool {
    buffer.starts_with("in[") || buffer.starts_with("evk[")
}

/// Runs the buffer-lifetime pass over a task graph.
pub fn lint(graph: &TaskGraph) -> Vec<Diagnostic> {
    // Canonical buffer -> program-ordered events. BTreeMap for deterministic
    // diagnostic order.
    let mut events: BTreeMap<&str, Vec<Event>> = BTreeMap::new();
    for task in graph.tasks().iter().filter(|t| t.is_memory()) {
        let (verb, buffer) = split_label(&task.label);
        let event = match verb {
            Some("load") => Event::Load(task.id),
            Some("store") => Event::Write(task.id, false),
            Some("spill") | Some("park") => Event::Write(task.id, true),
            // Custom strategies are free to label however they like; buffers
            // without the canonical verb vocabulary are not analyzable.
            _ => continue,
        };
        events.entry(buffer).or_default().push(event);
    }

    let mut diagnostics = Vec::new();
    for (buffer, events) in &events {
        let spilled = events.iter().any(|e| matches!(e, Event::Write(_, true)));
        let first_write = events.iter().find_map(|e| match e {
            Event::Write(t, _) => Some(*t),
            Event::Load(_) => None,
        });

        // B001: the schedule materializes this buffer itself (spill/park
        // write, not an original DRAM input), yet loads it before anything
        // wrote it — the load reads garbage.
        // Only the earliest offending load is reported; later pre-write
        // loads share the same root cause.
        if spilled && !starts_in_dram(buffer) {
            if let (Some(Event::Load(load)), Some(write)) = (events.first(), first_write) {
                diagnostics.push(
                    Diagnostic::error(
                        codes::LOAD_BEFORE_STORE,
                        format!(
                            "buffer `{buffer}` is loaded (task {load}) before its first \
                             write (task {write}): nothing has put it in DRAM yet"
                        ),
                    )
                    .with_tasks([*load, write])
                    .with_label(format!("load {buffer}").into()),
                );
            }
        }

        // B002: spill-family writes never reloaded.
        for (at, event) in events.iter().enumerate() {
            if let Event::Write(task, true) = event {
                let reloaded = events[at + 1..].iter().any(|e| matches!(e, Event::Load(_)));
                if !reloaded {
                    diagnostics.push(
                        Diagnostic::warning(
                            codes::DEAD_STORE,
                            format!(
                                "buffer `{buffer}` is spilled/parked (task {task}) but never \
                                 reloaded: the writeback is wasted traffic (release it instead)"
                            ),
                        )
                        .with_tasks([*task])
                        .with_label(format!("spill {buffer}").into()),
                    );
                    break; // one report per buffer
                }
            }
        }

        // B003: count load pairs with no intervening write.
        let mut redundant = 0usize;
        let mut witness: Option<(TaskId, TaskId)> = None;
        let mut last_load: Option<TaskId> = None;
        for event in events {
            match event {
                Event::Load(task) => {
                    if let Some(prev) = last_load {
                        redundant += 1;
                        witness.get_or_insert((prev, *task));
                    }
                    last_load = Some(*task);
                }
                Event::Write(..) => last_load = None,
            }
        }
        if let Some((first, second)) = witness {
            diagnostics.push(
                Diagnostic::note(
                    codes::REDUNDANT_LOAD,
                    format!(
                        "buffer `{buffer}` is reloaded {redundant} time(s) with no intervening \
                         write (first: tasks {first} then {second}): caching it on-chip would \
                         elide the repeat traffic"
                    ),
                )
                .with_tasks([first, second])
                .with_label(format!("load {buffer}").into()),
            );
        }
    }
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu::{MemoryDirection, TaskGraph};

    fn load(g: &mut TaskGraph, label: &str) -> TaskId {
        g.push_memory(MemoryDirection::Load, 100, vec![], label, "P1")
    }

    fn store(g: &mut TaskGraph, label: &str, deps: Vec<TaskId>) -> TaskId {
        g.push_memory(MemoryDirection::Store, 100, deps, label, "P1")
    }

    #[test]
    fn load_before_spill_of_an_intermediate_is_an_error() {
        let mut g = TaskGraph::new();
        let bad = load(&mut g, "load acc0[1]");
        let write = store(&mut g, "spill acc0[1]", vec![]);
        load(&mut g, "load acc0[1]"); // reload, so the spill is not also dead
        let diagnostics = lint(&g);
        assert_eq!(diagnostics.len(), 1, "{diagnostics:?}");
        assert_eq!(diagnostics[0].code, codes::LOAD_BEFORE_STORE);
        assert_eq!(diagnostics[0].tasks, vec![bad, write]);
    }

    #[test]
    fn dram_inputs_may_be_loaded_then_parked_then_reloaded() {
        // `in[1]` starts in DRAM: load -> park -> load is the legitimate
        // capacity-pressure pattern, not a hazard.
        let mut g = TaskGraph::new();
        let first = load(&mut g, "load in[1]");
        store(&mut g, "park in[1]", vec![first]);
        load(&mut g, "load in[1]");
        assert!(lint(&g).is_empty());
    }

    #[test]
    fn spill_never_reloaded_is_a_dead_store_warning() {
        let mut g = TaskGraph::new();
        store(&mut g, "spill acc1[3]", vec![]);
        let diagnostics = lint(&g);
        assert_eq!(diagnostics.len(), 1);
        assert_eq!(diagnostics[0].code, codes::DEAD_STORE);
        assert_eq!(diagnostics[0].severity, rpu::Severity::Warning);
    }

    #[test]
    fn repeated_loads_without_a_write_are_flagged_once_with_a_count() {
        let mut g = TaskGraph::new();
        load(&mut g, "k0:load evk[d0][t1]");
        load(&mut g, "k1:load evk[d0][t1]");
        load(&mut g, "k2:load evk[d0][t1]");
        let diagnostics = lint(&g);
        assert_eq!(diagnostics.len(), 1);
        assert_eq!(diagnostics[0].code, codes::REDUNDANT_LOAD);
        assert!(diagnostics[0].message.contains("2 time(s)"));
    }

    #[test]
    fn a_write_between_loads_clears_the_redundancy() {
        // spill -> load -> park -> load: every load follows a write, every
        // write is reloaded, and the intervening park clears B003.
        let mut g = TaskGraph::new();
        store(&mut g, "spill acc0[0]", vec![]);
        let reload = load(&mut g, "load acc0[0]");
        store(&mut g, "park acc0[0]", vec![reload]);
        load(&mut g, "load acc0[0]");
        assert!(lint(&g).is_empty());
    }

    #[test]
    fn final_output_stores_are_not_dead_stores() {
        let mut g = TaskGraph::new();
        store(&mut g, "store out1[0]", vec![]);
        assert!(lint(&g).is_empty());
    }

    #[test]
    fn unrecognized_labels_are_ignored() {
        let mut g = TaskGraph::new();
        load(&mut g, "reload working set (ModUp-P1)");
        store(&mut g, "writeback working set (ModUp-P1)", vec![]);
        assert!(lint(&g).is_empty());
    }
}
