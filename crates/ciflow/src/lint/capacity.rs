//! Capacity-safety pass (`C001`/`C002`).
//!
//! The schedule generators track residency with
//! [`rpu::OnChipTracker`] and record the high-water mark in
//! [`Schedule::peak_on_chip_bytes`]. This pass re-checks that mark against
//! the *target's* data memory — which matters because a schedule built for
//! one capacity can be cached and replayed against a smaller configuration,
//! where its working set silently no longer fits.

use rpu::verify::Diagnostic;
use rpu::RpuConfig;

use super::{codes, LintConfig};
use crate::schedule::Schedule;

/// Runs the capacity pass: peak residency vs `rpu.vector_memory_bytes`. The
/// near-capacity threshold comes from
/// [`LintConfig::near_capacity_fraction`].
pub fn lint(schedule: &Schedule, rpu: &RpuConfig, config: &LintConfig) -> Vec<Diagnostic> {
    let peak = schedule.peak_on_chip_bytes;
    let capacity = rpu.vector_memory_bytes;
    let mut diagnostics = Vec::new();
    if peak > capacity {
        diagnostics.push(Diagnostic::error(
            codes::CAPACITY_EXCEEDED,
            format!(
                "peak on-chip residency {peak} B exceeds the target's data memory \
                 {capacity} B: this schedule was built for a larger configuration \
                 and cannot execute faithfully on this one"
            ),
        ));
    } else if capacity > 0 && peak as f64 >= config.near_capacity_fraction * capacity as f64 {
        diagnostics.push(Diagnostic::note(
            codes::NEAR_CAPACITY,
            format!(
                "peak on-chip residency {peak} B is within {:.0}% of the {capacity} B data \
                 memory: small shape or policy changes may start spilling",
                100.0 * (1.0 - config.near_capacity_fraction),
            ),
        ));
    }
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu::TaskGraph;

    fn schedule_with_peak(peak: u64) -> Schedule {
        Schedule {
            strategy: "test".into(),
            graph: TaskGraph::new(),
            peak_on_chip_bytes: peak,
            spill_bytes: 0,
        }
    }

    #[test]
    fn over_capacity_is_an_error_and_near_capacity_a_note() {
        let rpu = RpuConfig::ciflow_baseline();
        let capacity = rpu.vector_memory_bytes;
        let config = LintConfig::default();

        let over = lint(&schedule_with_peak(capacity + 1), &rpu, &config);
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].code, codes::CAPACITY_EXCEEDED);
        assert_eq!(over[0].severity, rpu::Severity::Error);

        let near = lint(
            &schedule_with_peak(capacity - capacity / 100),
            &rpu,
            &config,
        );
        assert_eq!(near.len(), 1);
        assert_eq!(near[0].code, codes::NEAR_CAPACITY);
        assert_eq!(near[0].severity, rpu::Severity::Note);

        let comfortable = lint(&schedule_with_peak(capacity / 2), &rpu, &config);
        assert!(comfortable.is_empty());
    }

    #[test]
    fn near_capacity_threshold_is_tunable() {
        let rpu = RpuConfig::ciflow_baseline();
        let capacity = rpu.vector_memory_bytes;
        // A schedule at half capacity: clean by default, noted when the
        // configured headroom fraction drops below it.
        let schedule = schedule_with_peak(capacity / 2);
        assert!(lint(&schedule, &rpu, &LintConfig::default()).is_empty());
        let strict = LintConfig {
            near_capacity_fraction: 0.25,
            ..LintConfig::default()
        };
        let noted = lint(&schedule, &rpu, &strict);
        assert_eq!(noted.len(), 1);
        assert_eq!(noted[0].code, codes::NEAR_CAPACITY);
    }
}
