//! Kernel-boundary forwarding pass (`B004`/`B005`).
//!
//! A stitched multi-kernel pipeline chains kernel `i`'s output limbs
//! (`k{i}:store out1[t]`) into kernel `i+1`'s input limbs
//! (`k{i+1}:load in[t]`). The fused stitcher forwards chained towers
//! on-chip by splicing out *both* halves of the round trip; the back-to-back
//! stitcher keeps *both*. Either way the boundary must stay consistent: a
//! chained tower whose DRAM load survived but whose producing store was
//! elided would read data nothing ever wrote.
//!
//! * **`B004` half-forwarded boundary** (Error): for a chained tower
//!   `t < min(ℓ_producer, ℓ_consumer)`, the consumer's `load in[t]` is
//!   present but the producer's `store out1[t]` is not. The load's presence
//!   proves the tower was *not* forwarded on-chip, so the store is required.
//! * **`B005` unconsumed boundary store** (Warning): the mirror image — the
//!   producer stores a chained tower the consumer never loads. Correct
//!   data-wise (DRAM keeps it), but the writeback is dead traffic across
//!   this boundary. Only a Warning because a custom consumer strategy may
//!   load its inputs under non-canonical labels.
//!
//! Towers `t ≥ min(ℓ_p, ℓ_c)` are exempt: rescaling between kernels
//! legitimately drops top towers (producer stores them for the caller, the
//! consumer never wants them).

use rpu::verify::Diagnostic;
use rpu::TaskGraph;
use std::collections::HashSet;

use super::codes;
use crate::benchmark::HksBenchmark;
use crate::hks_shape::HksShape;

/// Runs the boundary pass over a stitched pipeline graph. `kernel_benchmarks`
/// is the per-kernel parameter ladder ([`crate::workload::WorkloadSchedule`]'s
/// `kernel_benchmarks`); boundaries are consecutive pairs.
pub fn lint(graph: &TaskGraph, kernel_benchmarks: &[HksBenchmark]) -> Vec<Diagnostic> {
    let labels: HashSet<&str> = graph
        .tasks()
        .iter()
        .filter(|t| t.is_memory())
        .map(|t| &*t.label)
        .collect();

    let mut diagnostics = Vec::new();
    for (producer, pair) in kernel_benchmarks.windows(2).enumerate() {
        let consumer = producer + 1;
        let chained = HksShape::new(pair[0])
            .ell()
            .min(HksShape::new(pair[1]).ell());
        for tower in 0..chained {
            let store = format!("k{producer}:store out1[{tower}]");
            let load = format!("k{consumer}:load in[{tower}]");
            let has_store = labels.contains(store.as_str());
            let has_load = labels.contains(load.as_str());
            if has_load && !has_store {
                diagnostics.push(
                    Diagnostic::error(
                        codes::HALF_FORWARDED_BOUNDARY,
                        format!(
                            "boundary k{producer}->k{consumer}: tower {tower} is loaded \
                             from DRAM (`{load}`) but the producing store (`{store}`) was \
                             elided — the load reads data nothing wrote"
                        ),
                    )
                    .with_label(load.into()),
                );
            } else if has_store && !has_load {
                diagnostics.push(
                    Diagnostic::warning(
                        codes::UNCONSUMED_BOUNDARY_STORE,
                        format!(
                            "boundary k{producer}->k{consumer}: tower {tower} is stored \
                             (`{store}`) but never loaded by the consumer — dead traffic \
                             across this boundary"
                        ),
                    )
                    .with_label(store.into()),
                );
            }
        }
    }
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu::{MemoryDirection, TaskGraph};

    fn two_kernels() -> [HksBenchmark; 2] {
        let b = HksBenchmark::all()[0];
        [b, b]
    }

    fn graph_with(labels: &[&str]) -> TaskGraph {
        let mut g = TaskGraph::new();
        for label in labels {
            g.push_memory(MemoryDirection::Load, 100, vec![], *label, "P1");
        }
        g
    }

    #[test]
    fn fully_forwarded_and_fully_materialized_boundaries_are_clean() {
        let kernels = two_kernels();
        // Forwarded: neither half present.
        assert!(lint(&graph_with(&[]), &kernels).is_empty());
        // Back-to-back: both halves present for every chained tower.
        let ell = HksShape::new(kernels[0]).ell();
        let mut labels = Vec::new();
        for t in 0..ell {
            labels.push(format!("k0:store out1[{t}]"));
            labels.push(format!("k1:load in[{t}]"));
        }
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        assert!(lint(&graph_with(&refs), &kernels).is_empty());
    }

    #[test]
    fn surviving_load_without_its_store_is_an_error() {
        let kernels = two_kernels();
        let diagnostics = lint(&graph_with(&["k1:load in[0]"]), &kernels);
        assert_eq!(diagnostics.len(), 1, "{diagnostics:?}");
        assert_eq!(diagnostics[0].code, codes::HALF_FORWARDED_BOUNDARY);
        assert_eq!(diagnostics[0].severity, rpu::Severity::Error);
    }

    #[test]
    fn store_without_a_consumer_load_is_a_warning() {
        let kernels = two_kernels();
        let diagnostics = lint(&graph_with(&["k0:store out1[2]"]), &kernels);
        assert_eq!(diagnostics.len(), 1);
        assert_eq!(diagnostics[0].code, codes::UNCONSUMED_BOUNDARY_STORE);
        assert_eq!(diagnostics[0].severity, rpu::Severity::Warning);
    }

    #[test]
    fn towers_beyond_the_chained_range_are_exempt() {
        let kernels = two_kernels();
        let ell = HksShape::new(kernels[0]).ell();
        // A store above min(ell_p, ell_c) is the caller's output, not a
        // boundary tower.
        let label = format!("k0:store out1[{ell}]");
        assert!(lint(&graph_with(&[label.as_str()]), &kernels).is_empty());
    }
}
