//! Performance pass (`R001`–`R004`).
//!
//! Runs the static bound analysis ([`rpu::bound::analyze`]) over the
//! schedule's task graph and turns its findings into diagnostics — every
//! `R` code is a *provable* statement about the schedule's roofline, not a
//! heuristic over traces:
//!
//! * **`R001` queue-order-dominated critical path** (Warning): the
//!   queue-augmented makespan bound exceeds every *unavoidable* bound (the
//!   true dependency path, the compute pipeline, the shared data path, the
//!   busiest channel) by more than [`LintConfig::queue_path_ratio`], and
//!   memory-channel queue-order edges sit on the binding path — the
//!   placement serializes transfers the dataflow never ordered and the
//!   hardware never required. Re-pinning the blamed channel's buffers (see
//!   [`rpu::ChannelMap::with_pin`]) can recover the gap. A schedule whose
//!   queue bound merely matches its data-path occupancy is bandwidth-bound,
//!   not placement-bound, and is not flagged.
//! * **`R002` late prefetch** (Note): a load whose dependencies allow it
//!   to issue far ahead of its deadline (slack at least
//!   [`LintConfig::prefetch_slack_fraction`] of the dependency bound) sits
//!   on the binding queue-augmented path *behind a queue-order edge* — its
//!   in-order queue position, not its data, is what makes it critical.
//!   Advisory: in a saturated stream, hoisting one load delays another, so
//!   the pass points at the opportunity without promising the win.
//! * **`R003` structural utilization ceiling** (Warning): the
//!   *placement-independent* roofline knee
//!   ([`rpu::bound::BoundAnalysis::dependency_knee`]) is
//!   [`RooflineKnee::AlwaysBandwidthSensitive`] *and* the traffic
//!   serialized with the full compute chain is at least
//!   [`LintConfig::ceiling_residual_fraction`] of the graph's total — a
//!   serial-chain shape where the idle lower bound stays positive at every
//!   bandwidth *no matter how the transfers are placed*. A ceiling that
//!   only the queue placement imposes (e.g. every single-channel streaming
//!   config) is `R001`'s territory, not a structural defect; a
//!   well-decoupled pipeline's vanishing head-of-pipeline prefetch residue
//!   does not trip this either.
//! * **`R004` bandwidth-insensitive operating point** (Note): the
//!   configured bandwidth sits at or above
//!   [`LintConfig::knee_headroom_ratio`] times the static roofline knee
//!   ([`RooflineKnee::effective_knee_gbps`]), so the makespan bound is
//!   already (asymptotically) pinned to the compute floor — faster DRAM
//!   provably cannot help this schedule. Not reported for schedules `R003`
//!   flags: their "knee" marks where the ceiling regime begins, not where
//!   bandwidth stops mattering.
//!
//! Structurally invalid graphs (forward or dangling dependencies) are the
//! structural pass's job (`S...` codes); this pass skips them rather than
//! bounding a graph the engine would reject.

use rpu::bound::{self, CriticalEdge, RooflineKnee};
use rpu::verify::Diagnostic;
use rpu::{MemoryDirection, RpuEngine, TaskGraph, TaskKind};

use super::{codes, LintConfig};

/// Runs the performance pass for `graph` under `engine`'s configuration and
/// placement. Thresholds come from [`LintConfig`].
pub fn lint(graph: &TaskGraph, engine: &RpuEngine, config: &LintConfig) -> Vec<Diagnostic> {
    let tasks = graph.tasks();
    let well_formed = tasks
        .iter()
        .enumerate()
        .all(|(at, t)| t.id == at && t.dependencies.iter().all(|&d| d < at));
    if tasks.is_empty() || !well_formed {
        return Vec::new();
    }

    let b = bound::analyze(engine, graph);
    let mut diagnostics = Vec::new();

    // The largest bound no placement change can move: the true dependency
    // path, the compute pipeline, the shared data path, the busiest channel.
    let unavoidable = b.channel_occupancy_seconds.iter().copied().fold(
        b.dependency_bound_seconds
            .max(b.compute_occupancy_seconds)
            .max(b.memory_occupancy_seconds),
        f64::max,
    );

    // R001: queue order dominates every unavoidable bound, with
    // memory-channel queue edges on the binding path to blame.
    if unavoidable > 0.0 && b.queue_bound_seconds > config.queue_path_ratio * unavoidable {
        let channels = engine.config().memory_channel_count();
        let mut per_channel = vec![0usize; channels];
        let mut blamed = Vec::new();
        for step in &b.queue_critical_path {
            if let CriticalEdge::QueueOrder {
                channel: Some(c), ..
            } = step.edge
            {
                per_channel[c] += 1;
                blamed.push(step.task);
            }
        }
        if let Some((worst, &count)) = per_channel
            .iter()
            .enumerate()
            .filter(|&(_, n)| *n > 0)
            .max_by_key(|&(_, n)| *n)
        {
            diagnostics.push(
                Diagnostic::warning(
                    codes::QUEUE_ORDER_CRITICAL,
                    format!(
                        "queue-order edges dominate the critical path: the in-order queues \
                         bound the makespan at {:.3} ms vs {:.3} ms from the largest \
                         placement-independent bound ({:.0}% of path edges are queue order; \
                         channel {worst} contributes {count}) — re-pinning channel \
                         {worst}'s buffers may recover the gap",
                        b.queue_bound_seconds * 1e3,
                        unavoidable * 1e3,
                        100.0 * b.queue_edge_fraction(),
                    ),
                )
                .with_tasks(blamed),
            );
        }
    }

    // R002: loads with large dependency slack that are nevertheless on the
    // binding queue-augmented path behind a queue-order edge.
    if b.dependency_bound_seconds > 0.0 {
        let min_slack = config.prefetch_slack_fraction * b.dependency_bound_seconds;
        for step in &b.queue_critical_path {
            let task = &tasks[step.task];
            let is_load = matches!(
                task.kind,
                TaskKind::Memory {
                    direction: MemoryDirection::Load,
                    ..
                }
            );
            if is_load
                && matches!(step.edge, CriticalEdge::QueueOrder { .. })
                && b.slack[task.id] >= min_slack
            {
                diagnostics.push(
                    Diagnostic::note(
                        codes::LATE_PREFETCH,
                        format!(
                            "load {:?} could issue at {:.3} ms ({:.3} ms of slack) but its \
                             in-order queue position holds it until {:.3} ms and puts it on \
                             the binding path — hoist it earlier in program order to \
                             prefetch",
                            task.label,
                            b.earliest_start[task.id] * 1e3,
                            b.slack[task.id] * 1e3,
                            b.queue_earliest_start[task.id] * 1e3,
                        ),
                    )
                    .with_tasks(vec![task.id])
                    .with_label(task.label.clone()),
                );
            }
        }
    }

    // R003 / R004: roofline classification.
    let (loaded, stored) = graph.total_bytes();
    let total_gb = (loaded + stored) as f64 / 1e9;
    let mut ceiling = false;
    if let RooflineKnee::AlwaysBandwidthSensitive { residual_gb, .. } = b.dependency_knee {
        if total_gb > 0.0 && residual_gb >= config.ceiling_residual_fraction * total_gb {
            ceiling = true;
            diagnostics.push(Diagnostic::warning(
                codes::UTILIZATION_CEILING,
                format!(
                    "structural utilization ceiling: {residual_gb:.3} GB of the schedule's \
                     {total_gb:.3} GB of DRAM traffic is serialized with the full \
                     {:.3} ms compute chain by the dependency structure itself, so the \
                     idle lower bound stays positive at every bandwidth and under every \
                     placement — only restructuring the dataflow to overlap transfers \
                     with compute can lift it",
                    b.compute_occupancy_seconds * 1e3,
                ),
            ));
        }
    }
    if !ceiling {
        if let Some(knee) = b.knee.effective_knee_gbps() {
            let bandwidth = engine.config().dram_bandwidth_gbps;
            if bandwidth >= knee * config.knee_headroom_ratio {
                diagnostics.push(Diagnostic::note(
                    codes::ABOVE_ROOFLINE_KNEE,
                    format!(
                        "configured bandwidth {bandwidth:.1} GB/s sits above the static \
                         roofline knee at {knee:.3} GB/s: the makespan bound is pinned to \
                         the compute floor here and faster DRAM provably cannot help this \
                         schedule"
                    ),
                ));
            }
        }
    }

    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu::{ComputeKind, EvkPolicy, RpuConfig};

    /// 1 Gop/s compute at `bandwidth_gbps`, one channel: durations are plain
    /// ratios, so thresholds are easy to reason about exactly.
    fn unit_config(bandwidth_gbps: f64) -> RpuConfig {
        RpuConfig {
            num_hples: 1,
            vector_length: 1,
            clock_ghz: 1.0,
            vector_memory_bytes: 1 << 30,
            key_memory_bytes: 0,
            scalar_memory_bytes: 0,
            dram_bandwidth_gbps: bandwidth_gbps,
            num_memory_channels: 1,
            modops_multiplier: 1.0,
            evk_policy: EvkPolicy::Streamed,
        }
    }

    fn engine(bandwidth_gbps: f64) -> RpuEngine {
        RpuEngine::new(unit_config(bandwidth_gbps))
    }

    #[test]
    fn a_queue_zigzag_that_beats_every_occupancy_trips_r001() {
        // Two independent load->compute pairs whose compute order is
        // *inverted* against the load order: cb must wait for load b at the
        // back of the memory queue, and ca then waits behind cb in the
        // compute queue, so the queues serialize all four tasks (4 s) while
        // every placement-independent bound is 2 s. (In-order program order
        // a, ca, b, cb would overlap load b with ca and cost only 3 s — the
        // intrinsic interleave the ratio gate deliberately tolerates.)
        let mut g = TaskGraph::new();
        let a = g.push_memory(MemoryDirection::Load, 1_000_000_000, vec![], "load a", "P1");
        let b = g.push_memory(MemoryDirection::Load, 1_000_000_000, vec![], "load b", "P1");
        g.push_compute(ComputeKind::Ntt, 1_000_000_000, vec![b], "cb", "P1");
        g.push_compute(ComputeKind::Ntt, 1_000_000_000, vec![a], "ca", "P1");
        let diagnostics = lint(&g, &engine(1.0), &LintConfig::default());
        let hit = diagnostics
            .iter()
            .find(|d| d.code == codes::QUEUE_ORDER_CRITICAL)
            .expect("zigzag must warn");
        assert!(hit.message.contains("channel 0"), "{hit:?}");
        // The ratio gate is tunable: an absurd threshold silences it.
        let lax = LintConfig {
            queue_path_ratio: 100.0,
            ..LintConfig::default()
        };
        assert!(lint(&g, &engine(1.0), &lax)
            .iter()
            .all(|d| d.code != codes::QUEUE_ORDER_CRITICAL));
    }

    #[test]
    fn pure_bandwidth_pressure_does_not_trip_r001() {
        // Eight independent loads on one channel serialize in the queue, but
        // the shared data path serializes them identically: the schedule is
        // bandwidth-bound, not placement-bound.
        let mut g = TaskGraph::new();
        for t in 0..8 {
            g.push_memory(
                MemoryDirection::Load,
                1_000_000_000,
                vec![],
                format!("load in[{t}]"),
                "P1",
            );
        }
        let diagnostics = lint(&g, &engine(1.0), &LintConfig::default());
        assert!(
            diagnostics
                .iter()
                .all(|d| d.code != codes::QUEUE_ORDER_CRITICAL),
            "{diagnostics:?}"
        );
    }

    #[test]
    fn a_slack_heavy_load_bound_by_queue_position_trips_r002() {
        // Two 4 GB streams feed 4 s computes; a 5 GB load the final join
        // needs is pushed last in program order, so the in-order queue makes
        // it the binding constraint despite ~3 s of dependency slack.
        let mut g = TaskGraph::new();
        let l1 = g.push_memory(MemoryDirection::Load, 4_000_000_000, vec![], "load a", "P1");
        let c1 = g.push_compute(ComputeKind::Ntt, 4_000_000_000, vec![l1], "ca", "P1");
        let l2 = g.push_memory(MemoryDirection::Load, 4_000_000_000, vec![], "load b", "P1");
        let c2 = g.push_compute(ComputeKind::Ntt, 4_000_000_000, vec![l2], "cb", "P1");
        let late = g.push_memory(
            MemoryDirection::Load,
            5_000_000_000,
            vec![],
            "load late",
            "P1",
        );
        g.push_compute(
            ComputeKind::PointwiseAdd,
            1_000,
            vec![c1, c2, late],
            "join",
            "P1",
        );
        let diagnostics = lint(&g, &engine(1.0), &LintConfig::default());
        let prefetch: Vec<_> = diagnostics
            .iter()
            .filter(|d| d.code == codes::LATE_PREFETCH)
            .collect();
        assert_eq!(prefetch.len(), 1, "{diagnostics:?}");
        assert_eq!(prefetch[0].tasks, vec![late]);
        // Advisory only: hoisting in a saturated stream is not a proven win.
        assert_eq!(prefetch[0].severity, rpu::Severity::Note);
        // Demanding even more slack silences it.
        let strict = LintConfig {
            prefetch_slack_fraction: 0.9,
            ..LintConfig::default()
        };
        assert!(lint(&g, &engine(1.0), &strict)
            .iter()
            .all(|d| d.code != codes::LATE_PREFETCH));
    }

    #[test]
    fn a_fully_serial_chain_trips_r003() {
        // load -> compute -> store, twice: every byte is serialized with the
        // compute chain, so no bandwidth reaches the compute floor.
        let mut g = TaskGraph::new();
        let mut prev = None;
        for stage in 0..2 {
            let load = g.push_memory(
                MemoryDirection::Load,
                1_000_000_000,
                prev.map(|p| vec![p]).unwrap_or_default(),
                format!("load {stage}"),
                "P1",
            );
            let c = g.push_compute(
                ComputeKind::Ntt,
                500_000_000,
                vec![load],
                format!("c {stage}"),
                "P1",
            );
            prev = Some(g.push_memory(
                MemoryDirection::Store,
                250_000_000,
                vec![c],
                format!("store {stage}"),
                "P1",
            ));
        }
        let diagnostics = lint(&g, &engine(1.0), &LintConfig::default());
        assert!(
            diagnostics
                .iter()
                .any(|d| d.code == codes::UTILIZATION_CEILING),
            "{diagnostics:?}"
        );
        // And the ceiling suppresses the above-knee note even at absurd
        // bandwidth: the regime boundary is not a real knee.
        let fast = lint(&g, &engine(1024.0), &LintConfig::default());
        assert!(fast.iter().any(|d| d.code == codes::UTILIZATION_CEILING));
        assert!(fast.iter().all(|d| d.code != codes::ABOVE_ROOFLINE_KNEE));
    }

    /// A decoupled pipeline: a tiny head prefetch feeds a 4 s compute chain
    /// while a 4 GB stream overlaps it entirely (feeding only the tail).
    fn decoupled_pipeline() -> TaskGraph {
        let mut g = TaskGraph::new();
        let head = g.push_memory(
            MemoryDirection::Load,
            100_000_000,
            vec![],
            "load head",
            "P1",
        );
        let mut prev = g.push_compute(ComputeKind::Ntt, 1_000_000_000, vec![head], "c0", "P1");
        for stage in 1..4 {
            prev = g.push_compute(
                ComputeKind::Ntt,
                1_000_000_000,
                vec![prev],
                format!("c{stage}"),
                "P1",
            );
        }
        let stream = g.push_memory(
            MemoryDirection::Load,
            4_000_000_000,
            vec![],
            "load stream",
            "P1",
        );
        g.push_compute(
            ComputeKind::PointwiseAdd,
            1_000,
            vec![prev, stream],
            "tail",
            "P1",
        );
        g
    }

    #[test]
    fn a_decoupled_pipeline_does_not_trip_r003() {
        // Only the 0.1 GB head prefetch is serialized with the compute
        // chain — 2% of the traffic, far below the 50% ceiling threshold.
        let diagnostics = lint(&decoupled_pipeline(), &engine(1.0), &LintConfig::default());
        assert!(
            diagnostics
                .iter()
                .all(|d| d.code != codes::UTILIZATION_CEILING),
            "{diagnostics:?}"
        );
        // Tightening the residual threshold below the head fraction flips it.
        let strict = LintConfig {
            ceiling_residual_fraction: 0.01,
            ..LintConfig::default()
        };
        assert!(lint(&decoupled_pipeline(), &engine(1.0), &strict)
            .iter()
            .any(|d| d.code == codes::UTILIZATION_CEILING));
    }

    #[test]
    fn bandwidth_above_the_knee_trips_r004_with_the_knee_value() {
        // A 1 s compute races a 2 GB load: exact knee at 2 GB/s. At 64 GB/s
        // the schedule is provably bandwidth-insensitive; at 1 GB/s not.
        let mut g = TaskGraph::new();
        let c = g.push_compute(ComputeKind::Ntt, 1_000_000_000, vec![], "c", "P1");
        let l = g.push_memory(MemoryDirection::Load, 2_000_000_000, vec![], "load x", "P1");
        g.push_compute(ComputeKind::PointwiseAdd, 0, vec![c, l], "join", "P1");
        let above = lint(&g, &engine(64.0), &LintConfig::default());
        let knee_note = above
            .iter()
            .find(|d| d.code == codes::ABOVE_ROOFLINE_KNEE)
            .expect("above-knee note");
        assert_eq!(knee_note.severity, rpu::Severity::Note);
        assert!(knee_note.message.contains("2.000 GB/s"), "{knee_note:?}");
        let below = lint(&g, &engine(1.0), &LintConfig::default());
        assert!(below.iter().all(|d| d.code != codes::ABOVE_ROOFLINE_KNEE));
        // Raising the headroom ratio pushes the gate past 64 GB/s.
        let strict = LintConfig {
            knee_headroom_ratio: 64.0,
            ..LintConfig::default()
        };
        assert!(lint(&g, &engine(64.0), &strict)
            .iter()
            .all(|d| d.code != codes::ABOVE_ROOFLINE_KNEE));
        // The decoupled pipeline has no exact knee, but past the point where
        // its bound tracks the compute floor the note still applies.
        let pipeline = lint(&decoupled_pipeline(), &engine(64.0), &LintConfig::default());
        assert!(
            pipeline
                .iter()
                .any(|d| d.code == codes::ABOVE_ROOFLINE_KNEE),
            "{pipeline:?}"
        );
    }

    #[test]
    fn malformed_graphs_are_left_to_the_structural_pass() {
        let mut tasks = TaskGraph::new();
        tasks.push_compute(ComputeKind::Ntt, 1, vec![], "c", "P1");
        let mut broken = tasks.tasks().to_vec();
        broken[0].dependencies = vec![5];
        let g = TaskGraph::from_tasks_unchecked(broken);
        assert!(lint(&g, &engine(1.0), &LintConfig::default()).is_empty());
        assert!(lint(&TaskGraph::new(), &engine(1.0), &LintConfig::default()).is_empty());
    }
}
