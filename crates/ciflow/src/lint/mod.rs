//! `ciflow::lint` — static verification of schedules before execution.
//!
//! Every correctness property of the simulator used to be enforced
//! *dynamically*: a malformed task graph surfaced as an
//! [`EngineError::Deadlock`](rpu::EngineError) mid-run, a forwarding splice
//! that dropped a needed store only showed up as wrong traffic totals, and a
//! channel pin rule that matched nothing failed silently. This module proves
//! the same properties *without executing*, emitting structured
//! [`Diagnostic`]s a caller can gate on — the discipline ordering-sensitive
//! memory systems apply to their consistency invariants.
//!
//! Five composable passes analyze a [`Schedule`] (its
//! [`TaskGraph`](rpu::TaskGraph), the derived [`ChannelMap`] and the target
//! [`RpuConfig`]):
//!
//! 1. **structural** ([`rpu::verify::lint_structural`]) — id mismatches,
//!    dangling/duplicate dependency edges, self and forward dependencies
//!    (`S001`–`S005`).
//! 2. **deadlock** ([`rpu::verify::lint_deadlock`]) — an abstract
//!    interpretation of the engine's per-channel in-order grant semantics:
//!    proves the queues cannot cross-block for this channel count and
//!    placement, subsuming the runtime deadlock check (`D001`).
//! 3. **buffer hazards** ([mod@buffer]) — per-buffer lifetime analysis over
//!    the canonical labels: loads of spilled buffers before any write,
//!    spills never reloaded, redundant back-to-back loads (`B001`–`B003`);
//!    plus the kernel-boundary forwarding check ([mod@pipeline],
//!    `B004`/`B005`).
//! 4. **capacity** ([mod@capacity]) — peak on-chip residency vs the target's
//!    data memory (`C001`/`C002`).
//! 5. **placement/accounting** ([mod@placement]) — unreachable or dead pin
//!    rules, pathological channel imbalance, and spill-traffic
//!    reconciliation (`P001`–`P003`, `A001`/`A002`).
//!
//! Entry points: [`lint_schedule`] for a single-kernel schedule,
//! [`lint_workload`] for a stitched pipeline (adds the boundary pass), and
//! [`Session::verify`](crate::api::Session::verify) to lint a whole queued
//! batch exactly as it would run. The `schedule_lint` binary (in
//! `ciflow-bench`) sweeps the preset gallery and exits nonzero on any
//! Error — CI runs it.
//!
//! Every code is catalogued with a minimal triggering example in
//! `docs/LINTS.md`.

use crate::benchmark::HksBenchmark;
use crate::schedule::Schedule;
use crate::workload::WorkloadSchedule;
use rpu::{ChannelMap, RpuConfig, RpuEngine};

pub use rpu::verify::{Diagnostic, Severity};

pub mod buffer;
pub mod capacity;
pub mod pipeline;
pub mod placement;

/// Stable codes for the schedule-level passes (the graph-level `S...`/`D001`
/// codes live in [`rpu::verify::codes`]).
pub mod codes {
    pub use rpu::verify::codes::*;

    /// A spilled/parked buffer is loaded before anything ever wrote it.
    pub const LOAD_BEFORE_STORE: &str = "B001";
    /// A spill/park store is never reloaded — wasted DRAM traffic.
    pub const DEAD_STORE: &str = "B002";
    /// The same buffer is loaded twice with no intervening write — a missed
    /// caching opportunity.
    pub const REDUNDANT_LOAD: &str = "B003";
    /// A kernel boundary loads a chained tower that was neither stored by
    /// the producer nor forwarded on-chip.
    pub const HALF_FORWARDED_BOUNDARY: &str = "B004";
    /// A producer stores a chained tower its consumer never loads.
    pub const UNCONSUMED_BOUNDARY_STORE: &str = "B005";
    /// Peak on-chip residency exceeds the target's data memory.
    pub const CAPACITY_EXCEEDED: &str = "C001";
    /// Peak on-chip residency is within 5% of the target's data memory.
    pub const NEAR_CAPACITY: &str = "C002";
    /// A pin rule can never match: an earlier rule's pattern is a substring
    /// of its pattern (rules win in insertion order).
    pub const SHADOWED_PIN_RULE: &str = "P001";
    /// A pin rule matches none of the schedule's buffers.
    pub const DEAD_PIN_RULE: &str = "P002";
    /// The placement concentrates traffic on few channels.
    pub const CHANNEL_IMBALANCE: &str = "P003";
    /// Labeled spill/park traffic exceeds the schedule's reported
    /// `spill_bytes` — the accounting under-counts real traffic.
    pub const SPILL_UNDERREPORTED: &str = "A001";
    /// Reported `spill_bytes` exceeds the labeled spill/park traffic.
    pub const SPILL_OVERREPORTED: &str = "A002";
}

/// The outcome of linting one schedule: every diagnostic from every pass, in
/// pass order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// All findings, most severe passes first within each pass's order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True when no pass found anything at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// The Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.of_severity(Severity::Error)
    }

    /// The Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.of_severity(Severity::Warning)
    }

    /// The Note-severity findings.
    pub fn notes(&self) -> impl Iterator<Item = &Diagnostic> {
        self.of_severity(Severity::Note)
    }

    fn of_severity(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// `(errors, warnings, notes)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.errors().count(),
            self.warnings().count(),
            self.notes().count(),
        )
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(f, "clean (no diagnostics)");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Lints a single-kernel schedule against the target configuration, deriving
/// the same channel placement [`Session`](crate::api::Session) would install
/// ([`Schedule::channel_map`]).
pub fn lint_schedule(schedule: &Schedule, rpu: &RpuConfig) -> LintReport {
    let map = schedule.channel_map(rpu.memory_channel_count());
    lint_with(schedule, &[], rpu, &map)
}

/// Lints a stitched workload pipeline: everything [`lint_schedule`] checks,
/// plus the per-boundary forwarding consistency pass over the kernel ladder.
pub fn lint_workload(pipeline: &WorkloadSchedule, rpu: &RpuConfig) -> LintReport {
    let map = pipeline.schedule.channel_map(rpu.memory_channel_count());
    lint_with(&pipeline.schedule, &pipeline.kernel_benchmarks, rpu, &map)
}

/// The fully-parameterized entry point: lints `schedule` as it would execute
/// on `rpu` under `channel_map`, with the kernel-boundary pass enabled when
/// `kernel_benchmarks` describes a multi-kernel pipeline. This is what
/// [`Session::verify`](crate::api::Session::verify) calls with the session's
/// cached plan and placement.
pub fn lint_with(
    schedule: &Schedule,
    kernel_benchmarks: &[HksBenchmark],
    rpu: &RpuConfig,
    channel_map: &ChannelMap,
) -> LintReport {
    let engine = RpuEngine::new(rpu.clone()).with_channel_map(channel_map.clone());
    let mut diagnostics = rpu::verify::lint_graph(&schedule.graph, &engine);
    diagnostics.extend(buffer::lint(&schedule.graph));
    diagnostics.extend(capacity::lint(schedule, rpu));
    diagnostics.extend(placement::lint(schedule, &engine));
    if kernel_benchmarks.len() > 1 {
        diagnostics.extend(pipeline::lint(&schedule.graph, kernel_benchmarks));
    }
    LintReport { diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::Dataflow;
    use crate::hks_shape::HksShape;
    use crate::schedule::{build_schedule, ScheduleConfig};
    use rpu::EvkPolicy;

    #[test]
    fn every_builtin_schedule_lints_without_errors() {
        for bench in HksBenchmark::all() {
            for dataflow in [
                Dataflow::MaxParallel,
                Dataflow::DigitCentric,
                Dataflow::OutputCentric,
            ] {
                for policy in [EvkPolicy::OnChip, EvkPolicy::Streamed] {
                    let config = ScheduleConfig::with_data_memory(32 * rpu::MIB, policy);
                    let schedule = build_schedule(dataflow, &HksShape::new(bench), &config);
                    for channels in [1, 2, 4, 8] {
                        let rpu = rpu::RpuConfig::ciflow_with_policy(policy)
                            .with_memory_channels(channels);
                        let report = lint_schedule(&schedule, &rpu);
                        assert!(
                            !report.has_errors(),
                            "{} {dataflow} {policy:?} x{channels}:\n{report}",
                            bench.name,
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_builtin_workload_pipeline_lints_without_errors() {
        use crate::workload::{build_workload, PipelineMode, Workload};

        let bench = HksBenchmark::all()[0];
        let workloads = [
            Workload::rotation_batch(bench, 3),
            Workload::mul_rot_block(bench, 2),
            Workload::bootstrap_key_switch(bench),
            Workload::rescaling_chain(bench, 3),
        ];
        for workload in &workloads {
            for mode in [PipelineMode::Fused, PipelineMode::BackToBack] {
                for dataflow in Dataflow::all() {
                    let config =
                        ScheduleConfig::with_data_memory(32 * rpu::MIB, EvkPolicy::Streamed);
                    let pipeline =
                        build_workload(workload, dataflow.strategy(), &config, mode).unwrap();
                    for channels in [1, 2, 4, 8] {
                        let rpu = rpu::RpuConfig::ciflow_baseline().with_memory_channels(channels);
                        let report = lint_workload(&pipeline, &rpu);
                        assert!(
                            !report.has_errors(),
                            "{} {dataflow} {mode:?} x{channels}:\n{report}",
                            workload.name,
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn report_formats_and_counts() {
        let report = LintReport {
            diagnostics: vec![
                Diagnostic::error(codes::CAPACITY_EXCEEDED, "too big"),
                Diagnostic::warning(codes::DEAD_STORE, "never reloaded"),
                Diagnostic::note(codes::NEAR_CAPACITY, "tight"),
            ],
        };
        assert_eq!(report.counts(), (1, 1, 1));
        assert!(report.has_errors());
        let text = report.to_string();
        assert!(text.contains("error[C001]") && text.contains("warning[B002]"));
        assert!(LintReport::default().is_clean());
        assert_eq!(LintReport::default().to_string(), "clean (no diagnostics)");
    }
}
