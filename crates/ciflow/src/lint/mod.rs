//! `ciflow::lint` — static verification of schedules before execution.
//!
//! Every correctness property of the simulator used to be enforced
//! *dynamically*: a malformed task graph surfaced as an
//! [`EngineError::Deadlock`](rpu::EngineError) mid-run, a forwarding splice
//! that dropped a needed store only showed up as wrong traffic totals, and a
//! channel pin rule that matched nothing failed silently. This module proves
//! the same properties *without executing*, emitting structured
//! [`Diagnostic`]s a caller can gate on — the discipline ordering-sensitive
//! memory systems apply to their consistency invariants.
//!
//! Six composable passes analyze a [`Schedule`] (its
//! [`TaskGraph`](rpu::TaskGraph), the derived [`ChannelMap`] and the target
//! [`RpuConfig`]):
//!
//! 1. **structural** ([`rpu::verify::lint_structural`]) — id mismatches,
//!    dangling/duplicate dependency edges, self and forward dependencies
//!    (`S001`–`S005`).
//! 2. **deadlock** ([`rpu::verify::lint_deadlock`]) — an abstract
//!    interpretation of the engine's per-channel in-order grant semantics:
//!    proves the queues cannot cross-block for this channel count and
//!    placement, subsuming the runtime deadlock check (`D001`).
//! 3. **buffer hazards** ([mod@buffer]) — per-buffer lifetime analysis over
//!    the canonical labels: loads of spilled buffers before any write,
//!    spills never reloaded, redundant back-to-back loads (`B001`–`B003`);
//!    plus the kernel-boundary forwarding check ([mod@pipeline],
//!    `B004`/`B005`).
//! 4. **capacity** ([mod@capacity]) — peak on-chip residency vs the target's
//!    data memory (`C001`/`C002`).
//! 5. **placement/accounting** ([mod@placement]) — unreachable or dead pin
//!    rules, pathological channel imbalance, and spill-traffic
//!    reconciliation (`P001`–`P003`, `A001`/`A002`).
//! 6. **performance** ([mod@perf]) — static roofline analysis over
//!    [`rpu::bound`]: queue-order-dominated critical paths, late
//!    prefetches, structural utilization ceilings and bandwidth
//!    overprovisioning above the knee (`R001`–`R004`, see `docs/BOUNDS.md`).
//!
//! Entry points: [`lint_schedule`] for a single-kernel schedule,
//! [`lint_workload`] for a stitched pipeline (adds the boundary pass), and
//! [`Session::verify`](crate::api::Session::verify) to lint a whole queued
//! batch exactly as it would run. Thresholds (capacity headroom, imbalance
//! ratio, the `R`-code ratios) are tunable through [`LintConfig`] via
//! [`lint_with_config`]; the plain entry points use [`LintConfig::default`],
//! which preserves the historical behaviour. The `schedule_lint` binary (in
//! `ciflow-bench`) sweeps the preset gallery and exits nonzero on any
//! Error (or, with `--deny-warnings`, any Warning) — CI runs it, archiving
//! the machine-readable `--json` report ([`LintReport::to_json`]).
//!
//! Every code is catalogued with a minimal triggering example in
//! `docs/LINTS.md`.

use crate::benchmark::HksBenchmark;
use crate::schedule::Schedule;
use crate::workload::WorkloadSchedule;
use rpu::{ChannelMap, RpuConfig, RpuEngine};
use serde::Serialize;

pub use rpu::verify::{Diagnostic, Severity};

pub mod buffer;
pub mod capacity;
pub mod perf;
pub mod pipeline;
pub mod placement;

/// Stable codes for the schedule-level passes (the graph-level `S...`/`D001`
/// codes live in [`rpu::verify::codes`]).
pub mod codes {
    pub use rpu::verify::codes::*;

    /// A spilled/parked buffer is loaded before anything ever wrote it.
    pub const LOAD_BEFORE_STORE: &str = "B001";
    /// A spill/park store is never reloaded — wasted DRAM traffic.
    pub const DEAD_STORE: &str = "B002";
    /// The same buffer is loaded twice with no intervening write — a missed
    /// caching opportunity.
    pub const REDUNDANT_LOAD: &str = "B003";
    /// A kernel boundary loads a chained tower that was neither stored by
    /// the producer nor forwarded on-chip.
    pub const HALF_FORWARDED_BOUNDARY: &str = "B004";
    /// A producer stores a chained tower its consumer never loads.
    pub const UNCONSUMED_BOUNDARY_STORE: &str = "B005";
    /// Peak on-chip residency exceeds the target's data memory.
    pub const CAPACITY_EXCEEDED: &str = "C001";
    /// Peak on-chip residency is within 5% of the target's data memory.
    pub const NEAR_CAPACITY: &str = "C002";
    /// A pin rule can never match: an earlier rule's pattern is a substring
    /// of its pattern (rules win in insertion order).
    pub const SHADOWED_PIN_RULE: &str = "P001";
    /// A pin rule matches none of the schedule's buffers.
    pub const DEAD_PIN_RULE: &str = "P002";
    /// The placement concentrates traffic on few channels.
    pub const CHANNEL_IMBALANCE: &str = "P003";
    /// Labeled spill/park traffic exceeds the schedule's reported
    /// `spill_bytes` — the accounting under-counts real traffic.
    pub const SPILL_UNDERREPORTED: &str = "A001";
    /// Reported `spill_bytes` exceeds the labeled spill/park traffic.
    pub const SPILL_OVERREPORTED: &str = "A002";
    /// The critical path is dominated by same-channel queue-order edges
    /// rather than true dependencies — the placement serializes work the
    /// dataflow does not require.
    pub const QUEUE_ORDER_CRITICAL: &str = "R001";
    /// A load is dependency-ready far ahead of its latest start yet its
    /// in-order queue position issues it too late — a missed prefetch.
    pub const LATE_PREFETCH: &str = "R002";
    /// Structural utilization ceiling: the critical path provably idles
    /// both the compute pipeline and the data path at *every* bandwidth.
    pub const UTILIZATION_CEILING: &str = "R003";
    /// The configured bandwidth sits above the static roofline knee — the
    /// schedule is bandwidth-insensitive here.
    pub const ABOVE_ROOFLINE_KNEE: &str = "R004";
}

/// Tunable thresholds for the lint passes. [`LintConfig::default`] matches
/// the historical hard-coded behaviour, so [`lint_schedule`] /
/// [`lint_workload`] / [`lint_with`] are unchanged; pass a custom
/// configuration through [`lint_with_config`] to tighten or relax a gate.
#[derive(Debug, Clone, PartialEq)]
pub struct LintConfig {
    /// Fraction of data memory above which `C002` notes thin headroom
    /// (default 0.95).
    pub near_capacity_fraction: f64,
    /// `max channel bytes / fair share` above which `P003` warns
    /// (default 4.0).
    pub imbalance_ratio: f64,
    /// Minimum memory tasks per channel before `P003` is meaningful
    /// (default 4).
    pub imbalance_min_tasks_per_channel: usize,
    /// Queue-augmented bound over the largest placement-independent bound,
    /// above which `R001` warns that queue-order edges dominate the critical
    /// path (default 1.75: the intrinsic load/compute interleave of the
    /// in-order queues costs the preset gallery up to ~1.5x on one channel,
    /// while a genuine serialization pathology — e.g. a load/compute zigzag
    /// that defeats all overlap — costs 2x or more).
    pub queue_path_ratio: f64,
    /// Fraction of the dependency bound a load's slack must reach — while
    /// its queue position still makes it critical — before `R002` flags a
    /// late prefetch (default 0.25).
    pub prefetch_slack_fraction: f64,
    /// Fraction of the graph's total DRAM traffic that must be serialized
    /// with the full compute chain before `R003` reports a structural
    /// utilization ceiling (default 0.5). Below it, the residue is a benign
    /// head-of-pipeline prefetch, not a ceiling.
    pub ceiling_residual_fraction: f64,
    /// `configured bandwidth / knee bandwidth` at or above which `R004`
    /// notes the schedule is bandwidth-insensitive (default 1.0).
    pub knee_headroom_ratio: f64,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            near_capacity_fraction: 0.95,
            imbalance_ratio: 4.0,
            imbalance_min_tasks_per_channel: 4,
            queue_path_ratio: 1.75,
            prefetch_slack_fraction: 0.25,
            ceiling_residual_fraction: 0.5,
            knee_headroom_ratio: 1.0,
        }
    }
}

/// The outcome of linting one schedule: every diagnostic from every pass, in
/// pass order.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct LintReport {
    /// All findings, most severe passes first within each pass's order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True when no pass found anything at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// The Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.of_severity(Severity::Error)
    }

    /// The Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.of_severity(Severity::Warning)
    }

    /// The Note-severity findings.
    pub fn notes(&self) -> impl Iterator<Item = &Diagnostic> {
        self.of_severity(Severity::Note)
    }

    fn of_severity(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// `(errors, warnings, notes)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.errors().count(),
            self.warnings().count(),
            self.notes().count(),
        )
    }

    /// The most severe finding's severity, or `None` for a clean report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// The distinct codes present, in first-occurrence order.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = Vec::new();
        for d in &self.diagnostics {
            if !codes.contains(&d.code) {
                codes.push(d.code);
            }
        }
        codes
    }

    /// Renders the report as a machine-readable JSON document
    /// (`ciflow.lint_report.v1`): counts plus one object per diagnostic
    /// with its code, severity, tasks, optional label and message. The
    /// `schedule_lint` binary's `--json` mode archives these from CI.
    pub fn to_json(&self) -> String {
        let (errors, warnings, notes) = self.counts();
        let mut out = String::with_capacity(128 + self.diagnostics.len() * 96);
        out.push_str(&format!(
            "{{\"schema\":\"ciflow.lint_report.v1\",\
             \"counts\":{{\"errors\":{errors},\"warnings\":{warnings},\"notes\":{notes}}},\
             \"diagnostics\":["
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let tasks = d
                .tasks
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let label = match &d.label {
                Some(label) => format!("\"{}\"", json_escape(label)),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"tasks\":[{tasks}],\
                 \"label\":{label},\"message\":\"{}\"}}",
                json_escape(d.code),
                d.severity,
                json_escape(&d.message),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(f, "clean (no diagnostics)");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Lints a single-kernel schedule against the target configuration, deriving
/// the same channel placement [`Session`](crate::api::Session) would install
/// ([`Schedule::channel_map`]).
pub fn lint_schedule(schedule: &Schedule, rpu: &RpuConfig) -> LintReport {
    let map = schedule.channel_map(rpu.memory_channel_count());
    lint_with(schedule, &[], rpu, &map)
}

/// Lints a stitched workload pipeline: everything [`lint_schedule`] checks,
/// plus the per-boundary forwarding consistency pass over the kernel ladder.
pub fn lint_workload(pipeline: &WorkloadSchedule, rpu: &RpuConfig) -> LintReport {
    let map = pipeline.schedule.channel_map(rpu.memory_channel_count());
    lint_with(&pipeline.schedule, &pipeline.kernel_benchmarks, rpu, &map)
}

/// The fully-parameterized entry point: lints `schedule` as it would execute
/// on `rpu` under `channel_map`, with the kernel-boundary pass enabled when
/// `kernel_benchmarks` describes a multi-kernel pipeline. This is what
/// [`Session::verify`](crate::api::Session::verify) calls with the session's
/// cached plan and placement.
pub fn lint_with(
    schedule: &Schedule,
    kernel_benchmarks: &[HksBenchmark],
    rpu: &RpuConfig,
    channel_map: &ChannelMap,
) -> LintReport {
    lint_with_config(
        schedule,
        kernel_benchmarks,
        rpu,
        channel_map,
        &LintConfig::default(),
    )
}

/// [`lint_with`] with explicit thresholds: every pass that gates on a ratio
/// or fraction reads it from `config` instead of a built-in constant.
pub fn lint_with_config(
    schedule: &Schedule,
    kernel_benchmarks: &[HksBenchmark],
    rpu: &RpuConfig,
    channel_map: &ChannelMap,
    config: &LintConfig,
) -> LintReport {
    let engine = RpuEngine::new(rpu.clone()).with_channel_map(channel_map.clone());
    let mut diagnostics = rpu::verify::lint_graph(&schedule.graph, &engine);
    diagnostics.extend(buffer::lint(&schedule.graph));
    diagnostics.extend(capacity::lint(schedule, rpu, config));
    diagnostics.extend(placement::lint(schedule, &engine, config));
    if kernel_benchmarks.len() > 1 {
        diagnostics.extend(pipeline::lint(&schedule.graph, kernel_benchmarks));
    }
    diagnostics.extend(perf::lint(&schedule.graph, &engine, config));
    LintReport { diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::Dataflow;
    use crate::hks_shape::HksShape;
    use crate::schedule::{build_schedule, ScheduleConfig};
    use rpu::EvkPolicy;

    #[test]
    fn every_builtin_schedule_lints_without_errors() {
        for bench in HksBenchmark::all() {
            for dataflow in [
                Dataflow::MaxParallel,
                Dataflow::DigitCentric,
                Dataflow::OutputCentric,
            ] {
                for policy in [EvkPolicy::OnChip, EvkPolicy::Streamed] {
                    let config = ScheduleConfig::with_data_memory(32 * rpu::MIB, policy);
                    let schedule = build_schedule(dataflow, &HksShape::new(bench), &config);
                    for channels in [1, 2, 4, 8] {
                        let rpu = rpu::RpuConfig::ciflow_with_policy(policy)
                            .with_memory_channels(channels);
                        let report = lint_schedule(&schedule, &rpu);
                        assert!(
                            !report.has_errors(),
                            "{} {dataflow} {policy:?} x{channels}:\n{report}",
                            bench.name,
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_builtin_workload_pipeline_lints_without_errors() {
        use crate::workload::{build_workload, PipelineMode, Workload};

        let bench = HksBenchmark::all()[0];
        let workloads = [
            Workload::rotation_batch(bench, 3),
            Workload::mul_rot_block(bench, 2),
            Workload::bootstrap_key_switch(bench),
            Workload::rescaling_chain(bench, 3),
        ];
        for workload in &workloads {
            for mode in [PipelineMode::Fused, PipelineMode::BackToBack] {
                for dataflow in Dataflow::all() {
                    let config =
                        ScheduleConfig::with_data_memory(32 * rpu::MIB, EvkPolicy::Streamed);
                    let pipeline =
                        build_workload(workload, dataflow.strategy(), &config, mode).unwrap();
                    for channels in [1, 2, 4, 8] {
                        let rpu = rpu::RpuConfig::ciflow_baseline().with_memory_channels(channels);
                        let report = lint_workload(&pipeline, &rpu);
                        assert!(
                            !report.has_errors(),
                            "{} {dataflow} {mode:?} x{channels}:\n{report}",
                            workload.name,
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn report_formats_and_counts() {
        let report = LintReport {
            diagnostics: vec![
                Diagnostic::error(codes::CAPACITY_EXCEEDED, "too big"),
                Diagnostic::warning(codes::DEAD_STORE, "never reloaded"),
                Diagnostic::note(codes::NEAR_CAPACITY, "tight"),
            ],
        };
        assert_eq!(report.counts(), (1, 1, 1));
        assert!(report.has_errors());
        let text = report.to_string();
        assert!(text.contains("error[C001]") && text.contains("warning[B002]"));
        assert!(LintReport::default().is_clean());
        assert_eq!(LintReport::default().to_string(), "clean (no diagnostics)");
    }

    #[test]
    fn max_severity_and_codes_summarize_the_report() {
        assert_eq!(LintReport::default().max_severity(), None);
        let report = LintReport {
            diagnostics: vec![
                Diagnostic::note(codes::NEAR_CAPACITY, "tight"),
                Diagnostic::warning(codes::DEAD_STORE, "never reloaded"),
                Diagnostic::warning(codes::DEAD_STORE, "again"),
            ],
        };
        assert_eq!(report.max_severity(), Some(Severity::Warning));
        // Distinct codes in first-occurrence order, duplicates folded.
        assert_eq!(
            report.codes(),
            vec![codes::NEAR_CAPACITY, codes::DEAD_STORE]
        );
    }

    #[test]
    fn json_report_follows_the_schema_and_escapes_content() {
        let report = LintReport {
            diagnostics: vec![
                Diagnostic::error(codes::CAPACITY_EXCEEDED, "peak \"quoted\"\nline")
                    .with_tasks([3, 7])
                    .with_label("load in[0]".into()),
                Diagnostic::note(codes::NEAR_CAPACITY, "tight"),
            ],
        };
        let json = report.to_json();
        // Schema envelope and counts.
        assert!(json.starts_with("{\"schema\":\"ciflow.lint_report.v1\""));
        assert!(json.contains("\"counts\":{\"errors\":1,\"warnings\":0,\"notes\":1}"));
        // Per-diagnostic fields, with escaping applied.
        assert!(json.contains("\"code\":\"C001\""));
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"tasks\":[3,7]"));
        assert!(json.contains("\"label\":\"load in[0]\""));
        assert!(json.contains("peak \\\"quoted\\\"\\nline"));
        assert!(json.contains("\"label\":null"));
        // Structural sanity: balanced braces/brackets and even quote count
        // once escapes are stripped.
        let stripped = json.replace("\\\"", "").replace("\\\\", "");
        assert_eq!(stripped.matches('{').count(), stripped.matches('}').count());
        assert_eq!(stripped.matches('[').count(), stripped.matches(']').count());
        assert_eq!(stripped.matches('"').count() % 2, 0);
        assert!(json.ends_with("]}"));
        let empty = LintReport::default().to_json();
        assert!(empty.contains("\"diagnostics\":[]"));
    }
}
