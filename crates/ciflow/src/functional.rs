//! Functional validation of the Output-Centric decomposition.
//!
//! The schedule generators only reorder *when* each slice of work happens;
//! they assume that computing hybrid key switching one output tower at a time
//! yields the same ciphertext as the reference stage-by-stage implementation
//! in the `ckks` crate. This module proves that assumption by actually
//! computing the key switch output-tower-by-output-tower with per-tower basis
//! conversion slices and comparing against [`ckks::keyswitch::hybrid_key_switch`].

use crate::error::CiflowError;
use ckks::context::CkksContext;
use ckks::keys::EvaluationKey;
use hemath::basis::BasisConverter;
use hemath::poly::{Representation, RnsBasis, RnsPolynomial};
use std::sync::Arc;

/// Hybrid key switching computed in Output-Centric order: one output tower at
/// a time, using a single-target basis-conversion slice per (digit, tower)
/// pair, exactly as the OC dataflow schedules it.
///
/// Returns `(k0, k1)` over the live `Q` towers, identical (bit for bit) to
/// the reference implementation.
///
/// # Panics
///
/// Panics on the precondition failures that
/// [`try_output_centric_key_switch`] reports as errors.
pub fn output_centric_key_switch(
    ctx: &CkksContext,
    d: &RnsPolynomial,
    level: usize,
    evk: &EvaluationKey,
) -> (RnsPolynomial, RnsPolynomial) {
    try_output_centric_key_switch(ctx, d, level, evk).expect("valid key-switch input")
}

/// [`output_centric_key_switch`] with typed precondition errors instead of
/// panics, for use on library paths.
///
/// # Errors
///
/// Returns [`CiflowError::InvalidConfig`] if `d` is not in the evaluation
/// domain over the live towers of `level`, or if the evaluation key's digit
/// count disagrees with the context parameters.
pub fn try_output_centric_key_switch(
    ctx: &CkksContext,
    d: &RnsPolynomial,
    level: usize,
    evk: &EvaluationKey,
) -> Result<(RnsPolynomial, RnsPolynomial), CiflowError> {
    if d.representation() != Representation::Evaluation {
        return Err(CiflowError::InvalidConfig {
            message: format!(
                "key-switch input must be in the evaluation domain, found {:?}",
                d.representation()
            ),
        });
    }
    if d.tower_count() != level + 1 {
        return Err(CiflowError::InvalidConfig {
            message: format!(
                "key-switch input has {} towers but level {level} requires {}",
                d.tower_count(),
                level + 1
            ),
        });
    }
    if evk.digit_count() != ctx.params().dnum() {
        return Err(CiflowError::InvalidConfig {
            message: format!(
                "evaluation key has {} digits but the parameters use dnum = {}",
                evk.digit_count(),
                ctx.params().dnum()
            ),
        });
    }
    let params = ctx.params();
    let n = params.ring_degree();
    let live_digits = params.live_digits(level);
    let k = params.aux_tower_count();
    let extended = level + 1 + k;

    // Precompute, per digit: the coefficient-domain (INTT'd) digit towers and
    // a single-target BasisConverter per extended output tower.
    let mut digit_coeffs: Vec<Vec<Vec<u64>>> = Vec::with_capacity(live_digits);
    for j in 0..live_digits {
        let range = params.digit_towers(j, level);
        let towers: Vec<Vec<u64>> = range
            .clone()
            .map(|i| {
                let mut tower = d.tower(i).to_vec();
                ctx.basis_q().ntt_table(i).inverse(&mut tower);
                tower
            })
            .collect();
        digit_coeffs.push(towers);
    }

    // Per-digit evk restricted to the level.
    let evk_digits: Vec<_> = (0..live_digits)
        .map(|j| evk.digit_at_level(ctx, j, level))
        .collect();

    // Accumulators over the extended basis, filled one tower at a time.
    let mut acc0_towers: Vec<Vec<u64>> = Vec::with_capacity(extended);
    let mut acc1_towers: Vec<Vec<u64>> = Vec::with_capacity(extended);

    // Modulus of extended-basis tower index `t`.
    let tower_modulus = |t: usize| {
        if t <= level {
            ctx.basis_q().moduli()[t]
        } else {
            ctx.basis_p().moduli()[t - level - 1]
        }
    };
    let tower_basis = |t: usize| -> Arc<RnsBasis> {
        if t <= level {
            Arc::new(ctx.basis_q().subset(&[t]))
        } else {
            Arc::new(ctx.basis_p().subset(&[t - level - 1]))
        }
    };

    for t in 0..extended {
        let modulus = tower_modulus(t);
        let mut acc0 = vec![0u64; n];
        let mut acc1 = vec![0u64; n];
        for j in 0..live_digits {
            let range = params.digit_towers(j, level);
            // D_j[t]: the bypassed original tower when t belongs to digit j,
            // otherwise a one-tower basis-conversion slice followed by an NTT.
            let d_tower: Vec<u64> = if t <= level && range.contains(&t) {
                d.tower(t).to_vec()
            } else {
                let digit_indices: Vec<usize> = range.clone().collect();
                let source = Arc::new(ctx.basis_q().subset(&digit_indices));
                let target = tower_basis(t);
                let converter = BasisConverter::new(source, target);
                let mut slice = converter.convert_towers(&digit_coeffs[j]).remove(0);
                if t <= level {
                    ctx.basis_q().ntt_table(t).forward(&mut slice);
                } else {
                    ctx.basis_p().ntt_table(t - level - 1).forward(&mut slice);
                }
                slice
            };
            // Apply the evk towers and accumulate (ModUp P4 + P5 for this
            // single output tower).
            let (b_j, a_j) = &evk_digits[j];
            let b_tower = b_j.tower(t);
            let a_tower = a_j.tower(t);
            for c in 0..n {
                acc0[c] = modulus.mul_add(d_tower[c], b_tower[c], acc0[c]);
                acc1[c] = modulus.mul_add(d_tower[c], a_tower[c], acc1[c]);
            }
        }
        acc0_towers.push(acc0);
        acc1_towers.push(acc1);
    }

    // ModDown (reference implementation): assemble the extended polynomials
    // and reduce. The OC ordering of ModDown is a pure reordering of the same
    // per-tower arithmetic, so reusing the reference here keeps the
    // comparison focused on the ModUp decomposition.
    let extended_basis = ctx.basis_qp_at_level(level);
    let acc0 = RnsPolynomial::from_towers(
        extended_basis.clone(),
        acc0_towers,
        Representation::Evaluation,
    );
    let acc1 = RnsPolynomial::from_towers(extended_basis, acc1_towers, Representation::Evaluation);
    let k0 = ckks::keyswitch::moddown(ctx, &acc0, level);
    let k1 = ckks::keyswitch::moddown(ctx, &acc1, level);
    Ok((k0, k1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckks::keys::{EvaluationKeyKind, KeyGenerator};
    use ckks::params::CkksParametersBuilder;
    use hemath::sampler::sample_uniform;
    use rand::SeedableRng;

    fn context(dnum: usize, towers: usize) -> Arc<CkksContext> {
        let params = CkksParametersBuilder::new()
            .ring_degree(1 << 7)
            .q_tower_bits(vec![36; towers])
            .p_tower_bits(vec![45, 45])
            .dnum(dnum)
            .scale_bits(36)
            .build()
            .unwrap();
        CkksContext::new(params).unwrap()
    }

    #[test]
    fn output_centric_matches_reference_bit_for_bit() {
        for (dnum, towers) in [(1usize, 2usize), (2, 4), (3, 6)] {
            let ctx = context(dnum, towers);
            let mut rng = rand::rngs::StdRng::seed_from_u64(31 + dnum as u64);
            let keygen = KeyGenerator::new(ctx.clone());
            let sk = keygen.secret_key(&mut rng);
            let sk_prime = keygen.secret_key(&mut rng);
            let ksk = keygen.key_switching_key(
                &mut rng,
                &sk,
                &sk_prime.evaluation_form_qp(),
                EvaluationKeyKind::Relinearization,
            );
            let level = ctx.params().max_level();
            let d = sample_uniform(
                &mut rng,
                ctx.basis_q_at_level(level),
                Representation::Evaluation,
            );
            let (ref0, ref1) = ckks::keyswitch::hybrid_key_switch(&ctx, &d, level, &ksk);
            let (oc0, oc1) = output_centric_key_switch(&ctx, &d, level, &ksk);
            assert_eq!(ref0, oc0, "dnum={dnum}: c0 mismatch");
            assert_eq!(ref1, oc1, "dnum={dnum}: c1 mismatch");
        }
    }

    #[test]
    fn invalid_inputs_yield_typed_errors() {
        use crate::error::CiflowError;
        let ctx = context(2, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        let sk_prime = keygen.secret_key(&mut rng);
        let ksk = keygen.key_switching_key(
            &mut rng,
            &sk,
            &sk_prime.evaluation_form_qp(),
            EvaluationKeyKind::Relinearization,
        );
        let level = ctx.params().max_level();
        // Wrong representation: coefficient-domain input.
        let d = sample_uniform(
            &mut rng,
            ctx.basis_q_at_level(level),
            Representation::Coefficient,
        );
        let err = try_output_centric_key_switch(&ctx, &d, level, &ksk).unwrap_err();
        assert!(matches!(err, CiflowError::InvalidConfig { .. }), "{err}");
        // Wrong tower count for the level.
        let d = sample_uniform(
            &mut rng,
            ctx.basis_q_at_level(level - 1),
            Representation::Evaluation,
        );
        let err = try_output_centric_key_switch(&ctx, &d, level, &ksk).unwrap_err();
        assert!(err.to_string().contains("towers"), "{err}");
    }

    #[test]
    fn output_centric_matches_reference_at_lower_level() {
        let ctx = context(3, 6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        let sk_prime = keygen.secret_key(&mut rng);
        let ksk = keygen.key_switching_key(
            &mut rng,
            &sk,
            &sk_prime.evaluation_form_qp(),
            EvaluationKeyKind::Relinearization,
        );
        for level in [1usize, 3] {
            let d = sample_uniform(
                &mut rng,
                ctx.basis_q_at_level(level),
                Representation::Evaluation,
            );
            let (ref0, ref1) = ckks::keyswitch::hybrid_key_switch(&ctx, &d, level, &ksk);
            let (oc0, oc1) = output_centric_key_switch(&ctx, &d, level, &ksk);
            assert_eq!(ref0, oc0, "level={level}");
            assert_eq!(ref1, oc1, "level={level}");
        }
    }
}
