//! End-to-end execution of one HKS kernel on the RPU model.

use crate::benchmark::HksBenchmark;
use crate::dataflow::Dataflow;
use crate::error::CiflowError;
use crate::schedule::Schedule;
use rpu::{ExecutionStats, ExecutionTrace, RpuConfig, TraceMode};
use serde::Serialize;
use std::sync::Arc;

/// Everything needed to run one benchmark under one dataflow on one RPU
/// configuration.
#[derive(Debug, Clone)]
pub struct HksRun {
    /// Which parameter point to run.
    pub benchmark: HksBenchmark,
    /// Which dataflow schedules it.
    pub dataflow: Dataflow,
    /// The hardware configuration (bandwidth, MODOPS, memories, evk policy).
    pub rpu: RpuConfig,
}

/// The outcome of one run.
#[derive(Debug, Clone)]
pub struct HksRunResult {
    /// The run description.
    pub benchmark: &'static str,
    /// The dataflow used.
    pub dataflow: Dataflow,
    /// The RPU configuration the run actually executed on.
    pub rpu: RpuConfig,
    /// Execution statistics (runtime, idle fractions, traffic).
    pub stats: ExecutionStats,
    /// Per-task trace (for timing diagrams).
    pub trace: ExecutionTrace,
    /// The schedule that was executed (shared with the session's schedule
    /// cache).
    pub schedule: Arc<Schedule>,
}

/// Compact, serializable summary of a run (used by the benchmark harnesses).
#[derive(Debug, Clone, Serialize)]
pub struct HksRunSummary {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Strategy short name.
    pub dataflow: String,
    /// Off-chip bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// MODOPS multiplier.
    pub modops: f64,
    /// Whether evks were streamed.
    pub evk_streamed: bool,
    /// Runtime in milliseconds.
    pub runtime_ms: f64,
    /// Compute idle fraction.
    pub compute_idle: f64,
    /// DRAM traffic in MiB.
    pub dram_mib: f64,
    /// Arithmetic intensity in ops/byte.
    pub arithmetic_intensity: f64,
}

impl HksRunResult {
    /// Builds the serializable summary of the run. The configuration columns
    /// (bandwidth, MODOPS, evk placement) come from the configuration the run
    /// actually executed on — callers can no longer hand in a mismatched
    /// `RpuConfig` and silently misreport them.
    pub fn summary(&self) -> HksRunSummary {
        HksRunSummary {
            benchmark: self.benchmark,
            dataflow: self.dataflow.short_name().to_string(),
            bandwidth_gbps: self.rpu.dram_bandwidth_gbps,
            modops: self.rpu.modops_multiplier,
            evk_streamed: self.rpu.evk_policy == rpu::EvkPolicy::Streamed,
            runtime_ms: self.stats.runtime_ms(),
            compute_idle: self.stats.compute_idle_fraction(),
            dram_mib: self.stats.total_bytes() as f64 / rpu::MIB as f64,
            arithmetic_intensity: self.stats.arithmetic_intensity(),
        }
    }
}

impl HksRun {
    /// Creates a run description with the paper's baseline RPU configuration.
    pub fn new(benchmark: HksBenchmark, dataflow: Dataflow) -> Self {
        Self {
            benchmark,
            dataflow,
            rpu: RpuConfig::ciflow_baseline(),
        }
    }

    /// Replaces the RPU configuration.
    pub fn with_rpu(mut self, rpu: RpuConfig) -> Self {
        self.rpu = rpu;
        self
    }

    /// Builds the schedule and executes it on the RPU engine.
    ///
    /// Compatibility wrapper: delegates to the session API
    /// ([`Session::run_one`](crate::api::Session::run_one)), so the
    /// `RpuConfig` → `ScheduleConfig` derivation lives in exactly one place.
    ///
    /// # Errors
    ///
    /// Propagates the full [`CiflowError`] hierarchy: strategy resolution,
    /// schedule construction, and engine failures all surface as typed
    /// errors (never a panic).
    pub fn execute(&self) -> Result<HksRunResult, CiflowError> {
        self.execute_in(&crate::api::Session::new())
    }

    /// [`HksRun::execute`] resolving the dataflow through `session`'s
    /// strategy registry (the run's own `RpuConfig` still applies).
    ///
    /// # Errors
    ///
    /// Propagates the job's [`CiflowError`].
    pub fn execute_in(&self, session: &crate::api::Session) -> Result<HksRunResult, CiflowError> {
        // The legacy result type always carries a trace, so ask for one
        // regardless of the session's trace mode.
        let output = session.run_job_with(
            &crate::api::Job::new(self.benchmark, self.dataflow).with_rpu(self.rpu.clone()),
            TraceMode::Full,
        )?;
        Ok(HksRunResult {
            benchmark: self.benchmark.name,
            dataflow: self.dataflow,
            rpu: output.rpu,
            stats: output.stats,
            trace: output.trace.expect("traced session returns a trace"),
            schedule: output.schedule,
        })
    }
}

/// Convenience helper: runtime in milliseconds of one benchmark under one
/// dataflow at the given bandwidth, with all other parameters at the paper's
/// baseline.
///
/// # Panics
///
/// Panics if the generated schedule cannot be executed (generator bug).
pub fn runtime_ms(
    benchmark: HksBenchmark,
    dataflow: Dataflow,
    bandwidth_gbps: f64,
    evk_policy: rpu::EvkPolicy,
) -> f64 {
    let rpu = RpuConfig::ciflow_with_policy(evk_policy).with_bandwidth(bandwidth_gbps);
    HksRun::new(benchmark, dataflow)
        .with_rpu(rpu)
        .execute()
        .expect("schedule must execute")
        .stats
        .runtime_ms()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu::EvkPolicy;

    #[test]
    fn ark_oc_runs_and_reports_sane_numbers() {
        let result = HksRun::new(HksBenchmark::ARK, Dataflow::OutputCentric)
            .execute()
            .unwrap();
        assert!(result.stats.runtime_ms() > 0.1);
        assert!(result.stats.runtime_ms() < 1000.0);
        assert!(result.stats.total_ops > 0);
        assert!(!result.trace.records().is_empty());
        let summary = result.summary();
        assert_eq!(summary.benchmark, "ARK");
        assert_eq!(summary.dataflow, "OC");
        assert!(!summary.evk_streamed);
    }

    #[test]
    fn summary_reports_the_configuration_the_run_used() {
        // Regression: summary() used to take a caller-supplied RpuConfig that
        // could silently disagree with the configuration the run executed on.
        let rpu = RpuConfig::ciflow_streaming()
            .with_bandwidth(25.6)
            .with_modops(2.0);
        let result = HksRun::new(HksBenchmark::DPRIVE, Dataflow::OutputCentric)
            .with_rpu(rpu.clone())
            .execute()
            .unwrap();
        assert_eq!(result.rpu, rpu);
        let summary = result.summary();
        assert_eq!(summary.bandwidth_gbps, 25.6);
        assert_eq!(summary.modops, 2.0);
        assert!(summary.evk_streamed);
    }

    #[test]
    fn execute_propagates_session_errors_instead_of_panicking() {
        // Regression: a non-engine CiflowError out of the session used to hit
        // an `unreachable!` in the compat wrapper. An empty registry makes
        // strategy resolution fail; the error must surface as a typed Err.
        let session =
            crate::api::Session::new().with_registry(crate::api::StrategyRegistry::empty());
        let error = HksRun::new(HksBenchmark::ARK, Dataflow::OutputCentric)
            .execute_in(&session)
            .unwrap_err();
        assert!(matches!(
            error,
            crate::error::CiflowError::UnknownStrategy { .. }
        ));
    }

    #[test]
    fn oc_beats_mp_at_low_bandwidth() {
        // The qualitative core of Figure 4: at DDR4-class bandwidth OC is
        // substantially faster than MP.
        for benchmark in [HksBenchmark::ARK, HksBenchmark::DPRIVE] {
            let mp = runtime_ms(benchmark, Dataflow::MaxParallel, 8.0, EvkPolicy::OnChip);
            let oc = runtime_ms(benchmark, Dataflow::OutputCentric, 8.0, EvkPolicy::OnChip);
            assert!(
                oc * 1.5 < mp,
                "{}: OC {oc:.2} ms vs MP {mp:.2} ms at 8 GB/s",
                benchmark.name
            );
        }
    }

    #[test]
    fn dataflows_converge_at_very_high_bandwidth() {
        // With 1 TB/s the kernel is compute bound and the dataflow no longer
        // matters much (paper §IV: "with unlimited on-chip memory / high
        // bandwidth the performance gap decreases significantly").
        let mp = runtime_ms(
            HksBenchmark::ARK,
            Dataflow::MaxParallel,
            1000.0,
            EvkPolicy::OnChip,
        );
        let oc = runtime_ms(
            HksBenchmark::ARK,
            Dataflow::OutputCentric,
            1000.0,
            EvkPolicy::OnChip,
        );
        let ratio = mp / oc;
        assert!(
            (0.8..=1.3).contains(&ratio),
            "MP {mp:.3} ms vs OC {oc:.3} ms at 1 TB/s (ratio {ratio:.2})"
        );
    }

    #[test]
    fn runtime_decreases_with_bandwidth() {
        let mut last = f64::INFINITY;
        for bw in [8.0, 16.0, 32.0, 64.0, 128.0] {
            let t = runtime_ms(
                HksBenchmark::DPRIVE,
                Dataflow::MaxParallel,
                bw,
                EvkPolicy::OnChip,
            );
            assert!(
                t <= last * 1.0001,
                "runtime must not increase with bandwidth"
            );
            last = t;
        }
    }
}
