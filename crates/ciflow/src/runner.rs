//! End-to-end execution of one HKS kernel on the RPU model.

use crate::benchmark::HksBenchmark;
use crate::dataflow::Dataflow;
use crate::schedule::Schedule;
use rpu::{EngineError, ExecutionStats, ExecutionTrace, RpuConfig};
use serde::Serialize;

/// Everything needed to run one benchmark under one dataflow on one RPU
/// configuration.
#[derive(Debug, Clone)]
pub struct HksRun {
    /// Which parameter point to run.
    pub benchmark: HksBenchmark,
    /// Which dataflow schedules it.
    pub dataflow: Dataflow,
    /// The hardware configuration (bandwidth, MODOPS, memories, evk policy).
    pub rpu: RpuConfig,
}

/// The outcome of one run.
#[derive(Debug, Clone)]
pub struct HksRunResult {
    /// The run description.
    pub benchmark: &'static str,
    /// The dataflow used.
    pub dataflow: Dataflow,
    /// Execution statistics (runtime, idle fractions, traffic).
    pub stats: ExecutionStats,
    /// Per-task trace (for timing diagrams).
    pub trace: ExecutionTrace,
    /// The schedule that was executed.
    pub schedule: Schedule,
}

/// Compact, serializable summary of a run (used by the benchmark harnesses).
#[derive(Debug, Clone, Serialize)]
pub struct HksRunSummary {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Strategy short name.
    pub dataflow: String,
    /// Off-chip bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// MODOPS multiplier.
    pub modops: f64,
    /// Whether evks were streamed.
    pub evk_streamed: bool,
    /// Runtime in milliseconds.
    pub runtime_ms: f64,
    /// Compute idle fraction.
    pub compute_idle: f64,
    /// DRAM traffic in MiB.
    pub dram_mib: f64,
    /// Arithmetic intensity in ops/byte.
    pub arithmetic_intensity: f64,
}

impl HksRunResult {
    /// Builds the serializable summary for a given configuration.
    pub fn summary(&self, rpu: &RpuConfig) -> HksRunSummary {
        HksRunSummary {
            benchmark: self.benchmark,
            dataflow: self.dataflow.short_name().to_string(),
            bandwidth_gbps: rpu.dram_bandwidth_gbps,
            modops: rpu.modops_multiplier,
            evk_streamed: rpu.evk_policy == rpu::EvkPolicy::Streamed,
            runtime_ms: self.stats.runtime_ms(),
            compute_idle: self.stats.compute_idle_fraction(),
            dram_mib: self.stats.total_bytes() as f64 / rpu::MIB as f64,
            arithmetic_intensity: self.stats.arithmetic_intensity(),
        }
    }
}

impl HksRun {
    /// Creates a run description with the paper's baseline RPU configuration.
    pub fn new(benchmark: HksBenchmark, dataflow: Dataflow) -> Self {
        Self {
            benchmark,
            dataflow,
            rpu: RpuConfig::ciflow_baseline(),
        }
    }

    /// Replaces the RPU configuration.
    pub fn with_rpu(mut self, rpu: RpuConfig) -> Self {
        self.rpu = rpu;
        self
    }

    /// Builds the schedule and executes it on the RPU engine.
    ///
    /// Compatibility wrapper: delegates to the session API
    /// ([`Session::run_one`](crate::api::Session::run_one)), so the
    /// `RpuConfig` → `ScheduleConfig` derivation lives in exactly one place.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] if the schedule cannot be executed (which
    /// would indicate a generator bug).
    pub fn execute(&self) -> Result<HksRunResult, EngineError> {
        let output = crate::api::Session::new()
            .with_rpu(self.rpu.clone())
            .run_one(self.benchmark, self.dataflow)
            .map_err(|error| match error {
                crate::error::CiflowError::Engine(e) => e,
                other => unreachable!("built-in dataflow runs only fail in the engine: {other}"),
            })?;
        Ok(HksRunResult {
            benchmark: self.benchmark.name,
            dataflow: self.dataflow,
            stats: output.stats,
            trace: output.trace,
            schedule: output.schedule,
        })
    }
}

/// Convenience helper: runtime in milliseconds of one benchmark under one
/// dataflow at the given bandwidth, with all other parameters at the paper's
/// baseline.
///
/// # Panics
///
/// Panics if the generated schedule cannot be executed (generator bug).
pub fn runtime_ms(
    benchmark: HksBenchmark,
    dataflow: Dataflow,
    bandwidth_gbps: f64,
    evk_policy: rpu::EvkPolicy,
) -> f64 {
    let rpu = RpuConfig::ciflow_with_policy(evk_policy).with_bandwidth(bandwidth_gbps);
    HksRun::new(benchmark, dataflow)
        .with_rpu(rpu)
        .execute()
        .expect("schedule must execute")
        .stats
        .runtime_ms()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu::EvkPolicy;

    #[test]
    fn ark_oc_runs_and_reports_sane_numbers() {
        let result = HksRun::new(HksBenchmark::ARK, Dataflow::OutputCentric)
            .execute()
            .unwrap();
        assert!(result.stats.runtime_ms() > 0.1);
        assert!(result.stats.runtime_ms() < 1000.0);
        assert!(result.stats.total_ops > 0);
        assert!(!result.trace.records().is_empty());
        let summary = result.summary(&RpuConfig::ciflow_baseline());
        assert_eq!(summary.benchmark, "ARK");
        assert_eq!(summary.dataflow, "OC");
        assert!(!summary.evk_streamed);
    }

    #[test]
    fn oc_beats_mp_at_low_bandwidth() {
        // The qualitative core of Figure 4: at DDR4-class bandwidth OC is
        // substantially faster than MP.
        for benchmark in [HksBenchmark::ARK, HksBenchmark::DPRIVE] {
            let mp = runtime_ms(benchmark, Dataflow::MaxParallel, 8.0, EvkPolicy::OnChip);
            let oc = runtime_ms(benchmark, Dataflow::OutputCentric, 8.0, EvkPolicy::OnChip);
            assert!(
                oc * 1.5 < mp,
                "{}: OC {oc:.2} ms vs MP {mp:.2} ms at 8 GB/s",
                benchmark.name
            );
        }
    }

    #[test]
    fn dataflows_converge_at_very_high_bandwidth() {
        // With 1 TB/s the kernel is compute bound and the dataflow no longer
        // matters much (paper §IV: "with unlimited on-chip memory / high
        // bandwidth the performance gap decreases significantly").
        let mp = runtime_ms(
            HksBenchmark::ARK,
            Dataflow::MaxParallel,
            1000.0,
            EvkPolicy::OnChip,
        );
        let oc = runtime_ms(
            HksBenchmark::ARK,
            Dataflow::OutputCentric,
            1000.0,
            EvkPolicy::OnChip,
        );
        let ratio = mp / oc;
        assert!(
            (0.8..=1.3).contains(&ratio),
            "MP {mp:.3} ms vs OC {oc:.3} ms at 1 TB/s (ratio {ratio:.2})"
        );
    }

    #[test]
    fn runtime_decreases_with_bandwidth() {
        let mut last = f64::INFINITY;
        for bw in [8.0, 16.0, 32.0, 64.0, 128.0] {
            let t = runtime_ms(
                HksBenchmark::DPRIVE,
                Dataflow::MaxParallel,
                bw,
                EvkPolicy::OnChip,
            );
            assert!(
                t <= last * 1.0001,
                "runtime must not increase with bandwidth"
            );
            last = t;
        }
    }
}
