//! The CiFlow dataflow taxonomy.
//!
//! [`Dataflow`] enumerates the three dataflows the *paper* compares. It is
//! kept as a convenient, `Copy` handle for the built-ins — but it is a thin
//! shim: each variant delegates to its [`ScheduleStrategy`] implementation
//! via [`Dataflow::strategy`], and the open-ended API
//! ([`StrategyRegistry`](crate::api::StrategyRegistry) /
//! [`Session`](crate::api::Session)) is where new dataflows plug in without
//! touching this enum.

use crate::api::{
    DigitCentricStrategy, MaxParallelStrategy, OutputCentricStrategy, ScheduleStrategy,
};
use serde::{Deserialize, Serialize};

/// The three HKS dataflows the paper proposes and compares (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// **Max-Parallel (MP)** — prioritize kernel parallelism at all costs:
    /// run each stage over *all* towers before starting the next stage.
    /// Used by prior work (Cheetah, HEAX) and the paper's baseline. Its
    /// BConv intermediates are enormous, so with a small on-chip memory it
    /// spills heavily.
    MaxParallel,
    /// **Digit-Centric (DC)** — process one digit at a time through all of
    /// ModUp P1–P5 before moving to the next digit, maximizing reuse of that
    /// digit's data. Analogous to the dataflow in MAD (MICRO'23).
    DigitCentric,
    /// **Output-Centric (OC)** — the paper's proposal: compute one *output
    /// tower* at a time so the BConv expansion never materializes, keep the
    /// INTT outputs resident for reuse, and accumulate partial products
    /// on-chip.
    OutputCentric,
}

impl Dataflow {
    /// All dataflows in the order the paper presents them.
    pub fn all() -> [Dataflow; 3] {
        [
            Dataflow::MaxParallel,
            Dataflow::DigitCentric,
            Dataflow::OutputCentric,
        ]
    }

    /// The [`ScheduleStrategy`] implementation behind this dataflow — the
    /// single dispatch point from the closed enum into the open strategy API.
    pub fn strategy(&self) -> &'static dyn ScheduleStrategy {
        match self {
            Dataflow::MaxParallel => &MaxParallelStrategy,
            Dataflow::DigitCentric => &DigitCentricStrategy,
            Dataflow::OutputCentric => &OutputCentricStrategy,
        }
    }

    /// The short name used in tables and figures.
    pub fn short_name(&self) -> &'static str {
        match self {
            Dataflow::MaxParallel => "MP",
            Dataflow::DigitCentric => "DC",
            Dataflow::OutputCentric => "OC",
        }
    }

    /// A one-sentence description of the scheduling strategy.
    pub fn description(&self) -> &'static str {
        self.strategy().description()
    }

    /// Parses a short or long name.
    pub fn parse(name: &str) -> Option<Dataflow> {
        match name.to_ascii_lowercase().as_str() {
            "mp" | "max-parallel" | "maxparallel" => Some(Dataflow::MaxParallel),
            "dc" | "digit-centric" | "digitcentric" => Some(Dataflow::DigitCentric),
            "oc" | "output-centric" | "outputcentric" => Some(Dataflow::OutputCentric),
            _ => None,
        }
    }
}

impl std::fmt::Display for Dataflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for d in Dataflow::all() {
            assert_eq!(Dataflow::parse(d.short_name()), Some(d));
            assert_eq!(Dataflow::parse(&d.short_name().to_lowercase()), Some(d));
        }
        assert_eq!(Dataflow::parse("bogus"), None);
        assert_eq!(
            Dataflow::parse("output-centric"),
            Some(Dataflow::OutputCentric)
        );
    }

    #[test]
    fn descriptions_are_distinct() {
        let set: std::collections::HashSet<_> = Dataflow::all()
            .iter()
            .map(super::Dataflow::description)
            .collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn display_uses_short_name() {
        assert_eq!(Dataflow::MaxParallel.to_string(), "MP");
        assert_eq!(Dataflow::OutputCentric.to_string(), "OC");
    }
}
