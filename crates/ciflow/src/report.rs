//! Plain-text and CSV rendering of tables and figure series.

use crate::analysis::{ParameterRow, TrafficRow};
use crate::sweep::{OcBaseRow, SaturationRow, SweepSeries};

/// Renders a markdown table from a header and rows of cells.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in header {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Renders the Table II analogue (DRAM traffic and arithmetic intensity).
///
/// The strategy columns are derived from the rows in first-seen order, so
/// custom registered strategies render alongside the paper's MP/DC/OC
/// instead of silently vanishing.
pub fn render_table2(rows: &[TrafficRow]) -> String {
    fn first_seen<'a>(
        rows: &'a [TrafficRow],
        key: impl Fn(&'a TrafficRow) -> &'a str,
    ) -> Vec<&'a str> {
        let mut seen = Vec::new();
        for r in rows {
            let k = key(r);
            if !seen.contains(&k) {
                seen.push(k);
            }
        }
        seen
    }
    let benchmarks = first_seen(rows, |r| r.benchmark);
    let strategies = first_seen(rows, |r| r.dataflow.as_str());
    let mut grouped: Vec<Vec<String>> = Vec::new();
    for bench in benchmarks {
        let mut cells = vec![bench.to_string()];
        for dataflow in &strategies {
            if let Some(r) = rows
                .iter()
                .find(|r| r.benchmark == bench && r.dataflow == *dataflow)
            {
                cells.push(format!("{:.0}", r.dram_mib()));
                cells.push(format!("{:.2}", r.arithmetic_intensity));
            } else {
                cells.push("-".into());
                cells.push("-".into());
            }
        }
        grouped.push(cells);
    }
    let mut header = vec!["Benchmark".to_string()];
    for s in &strategies {
        header.push(format!("{s} MiB"));
        header.push(format!("{s} AI"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    markdown_table(&header_refs, &grouped)
}

/// Renders the Table III analogue (benchmark parameters).
pub fn render_table3(rows: &[ParameterRow]) -> String {
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                format!("2^{}", r.log_n),
                r.q_towers.to_string(),
                r.p_towers.to_string(),
                r.dnum.to_string(),
                r.alpha.to_string(),
                format!("{:.0} MiB", r.evk_mib),
                format!("{:.0} MiB", r.temp_mib),
            ]
        })
        .collect();
    markdown_table(
        &[
            "Benchmark",
            "N",
            "k_l",
            "k_p",
            "dnum",
            "alpha",
            "evk size",
            "temp data",
        ],
        &cells,
    )
}

/// Renders the Table IV analogue (OCbase bandwidth and speedups).
pub fn render_table4(rows: &[OcBaseRow]) -> String {
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                format!("{:.1}", r.ocbase_gbps),
                format!("{:.2}x", r.saved_bandwidth),
                format!("{:.2}", r.oc_ms),
                format!("{:.2}", r.mp_ms),
                format!("{:.2}x", r.oc_speedup),
            ]
        })
        .collect();
    markdown_table(
        &[
            "Benchmark",
            "OCbase (GB/s)",
            "Saved BW",
            "OC (ms)",
            "MP (ms)",
            "OC speedup",
        ],
        &cells,
    )
}

/// Renders the Table V analogue (configurations matching ARK's saturation
/// point).
pub fn render_table5(rows: &[SaturationRow]) -> String {
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{:.2}", r.bandwidth_gbps),
                format!("{:.2}x", r.modops),
                format!("{:.2}x", r.relative_bandwidth),
            ]
        })
        .collect();
    markdown_table(&["Dataflow", "BW (GB/s)", "MODOPS", "Rel. BW"], &cells)
}

/// Renders one or more sweep series as CSV: one bandwidth column followed by
/// one runtime column per series.
///
/// # Panics
///
/// Panics if the series do not share identical bandwidth points.
pub fn render_sweep_csv(series: &[SweepSeries]) -> String {
    assert!(!series.is_empty(), "need at least one series");
    let mut out = String::from("bandwidth_gbps");
    for s in series {
        out.push_str(&format!(
            ",{}_{}{}",
            s.benchmark,
            s.dataflow,
            if s.evk_streamed { "_streamed" } else { "" }
        ));
    }
    out.push('\n');
    let reference = &series[0].points;
    for (i, p) in reference.iter().enumerate() {
        out.push_str(&format!("{}", p.bandwidth_gbps));
        for s in series {
            assert_eq!(
                s.points[i].bandwidth_gbps, p.bandwidth_gbps,
                "series must share bandwidth points"
            );
            out.push_str(&format!(",{:.4}", s.points[i].runtime_ms));
        }
        out.push('\n');
    }
    out
}

/// Renders a sweep as an ASCII chart (log-x bandwidth, linear-y runtime),
/// handy for eyeballing figure shapes in a terminal.
pub fn render_sweep_ascii(series: &[SweepSeries], width: usize, height: usize) -> String {
    if series.is_empty() || series[0].points.is_empty() {
        return String::from("(no data)\n");
    }
    let max_runtime = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.runtime_ms))
        .fold(0.0f64, f64::max);
    let mut grid = vec![vec![' '; width]; height];
    let n_points = series[0].points.len();
    for (si, s) in series.iter().enumerate() {
        let marker = char::from(b'A' + (si % 26) as u8);
        for (i, p) in s.points.iter().enumerate() {
            let x = if n_points > 1 {
                i * (width - 1) / (n_points - 1)
            } else {
                0
            };
            let y = ((p.runtime_ms / max_runtime) * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x] = marker;
        }
    }
    let mut out = String::new();
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    for (si, s) in series.iter().enumerate() {
        let marker = char::from(b'A' + (si % 26) as u8);
        out.push_str(&format!("{marker}: {} {}\n", s.benchmark, s.dataflow));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{table2_rows, table3_rows};
    use crate::benchmark::HksBenchmark;
    use crate::dataflow::Dataflow;
    use crate::sweep::{bandwidth_sweep, SweepPoint};
    use rpu::EvkPolicy;

    #[test]
    fn markdown_table_shape() {
        let table = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("| a |"));
        assert!(lines[2].contains("| 1 |"));
    }

    #[test]
    fn table_renderers_produce_rows_for_all_benchmarks() {
        let t2 = render_table2(&table2_rows());
        let t3 = render_table3(&table3_rows());
        for b in HksBenchmark::all() {
            assert!(t2.contains(b.name), "table2 missing {}", b.name);
            assert!(t3.contains(b.name), "table3 missing {}", b.name);
        }
        assert!(t2.lines().next().unwrap().contains("MP MiB"));
    }

    #[test]
    fn table2_renders_custom_strategy_columns() {
        // Regression: the renderer used to hard-code ["MP", "DC", "OC"],
        // silently dropping rows from custom registered strategies.
        let mut rows = table2_rows();
        let mut custom = rows[0].clone();
        custom.dataflow = "ZZ".to_string();
        custom.dram_bytes = 123 * 1024 * 1024;
        rows.push(custom);
        let table = render_table2(&rows);
        let header = table.lines().next().unwrap().to_string();
        assert!(
            header.contains("ZZ MiB") && header.contains("ZZ AI"),
            "{header}"
        );
        let first_row = table.lines().nth(2).unwrap();
        assert!(first_row.contains("123"), "{first_row}");
        // Benchmarks without a ZZ row render placeholders, not nothing.
        assert!(table.lines().nth(3).unwrap().contains(" - "));
    }

    #[test]
    fn sweep_csv_has_header_and_rows() {
        let s = bandwidth_sweep(
            HksBenchmark::ARK,
            Dataflow::OutputCentric,
            &[8.0, 16.0],
            EvkPolicy::OnChip,
            1.0,
        );
        let csv = render_sweep_csv(std::slice::from_ref(&s));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("bandwidth_gbps,ARK_OC"));
    }

    #[test]
    fn ascii_chart_contains_markers() {
        let series = SweepSeries {
            benchmark: "ARK",
            dataflow: "OC".to_string(),
            evk_streamed: false,
            modops: 1.0,
            points: vec![
                SweepPoint {
                    bandwidth_gbps: 8.0,
                    runtime_ms: 10.0,
                },
                SweepPoint {
                    bandwidth_gbps: 64.0,
                    runtime_ms: 2.0,
                },
            ],
        };
        let chart = render_sweep_ascii(&[series], 20, 5);
        assert!(chart.contains('A'));
        assert!(chart.contains("A: ARK OC"));
    }
}
