//! Name → strategy resolution.

use super::strategy::{
    DigitCentricStrategy, MaxParallelStrategy, OutputCentricStrategy, ScheduleStrategy,
};
use crate::error::CiflowError;
use std::sync::Arc;

/// An ordered collection of [`ScheduleStrategy`] implementations, resolvable
/// by full or short name (case-insensitive).
///
/// The registry is the one place that knows which dataflows exist: the
/// [`Session`](crate::api::Session) resolves job strategies through it, and
/// the legacy [`Dataflow`](crate::dataflow::Dataflow) enum is a thin shim
/// over the built-in entries. Registering a new strategy makes it available
/// to every consumer without touching this crate.
#[derive(Clone)]
pub struct StrategyRegistry {
    entries: Vec<Arc<dyn ScheduleStrategy>>,
}

impl std::fmt::Debug for StrategyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrategyRegistry")
            .field("strategies", &self.short_names())
            .finish()
    }
}

impl Default for StrategyRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

impl StrategyRegistry {
    /// An empty registry (no strategies at all).
    pub fn empty() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// A registry holding the three paper dataflows, in the order the paper
    /// presents them: MP, DC, OC.
    pub fn builtin() -> Self {
        let mut registry = Self::empty();
        let builtins: [Arc<dyn ScheduleStrategy>; 3] = [
            Arc::new(MaxParallelStrategy),
            Arc::new(DigitCentricStrategy),
            Arc::new(OutputCentricStrategy),
        ];
        for strategy in builtins {
            registry
                .register(strategy)
                .expect("built-in strategy names cannot collide");
        }
        registry
    }

    /// Registers a strategy.
    ///
    /// # Errors
    ///
    /// Returns [`CiflowError::DuplicateStrategy`] if a registered strategy
    /// already answers to the new strategy's full or short name.
    pub fn register(&mut self, strategy: Arc<dyn ScheduleStrategy>) -> Result<(), CiflowError> {
        for taken in [strategy.short_name(), strategy.name()] {
            if self.lookup(taken).is_some() {
                return Err(CiflowError::DuplicateStrategy {
                    name: taken.to_string(),
                });
            }
        }
        self.entries.push(strategy);
        Ok(())
    }

    /// Resolves a strategy by full or short name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`CiflowError::UnknownStrategy`] (listing the registered
    /// names) when nothing matches.
    pub fn get(&self, name: &str) -> Result<Arc<dyn ScheduleStrategy>, CiflowError> {
        self.lookup(name)
            .cloned()
            .ok_or_else(|| CiflowError::UnknownStrategy {
                name: name.to_string(),
                known: self.short_names(),
            })
    }

    /// True if `name` resolves to a registered strategy.
    pub fn contains(&self, name: &str) -> bool {
        self.lookup(name).is_some()
    }

    /// The registered strategies, in registration order.
    pub fn strategies(&self) -> impl Iterator<Item = &Arc<dyn ScheduleStrategy>> {
        self.entries.iter()
    }

    /// The short names of every registered strategy, in registration order.
    pub fn short_names(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|s| s.short_name().to_string())
            .collect()
    }

    /// Number of registered strategies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no strategies are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn lookup(&self, name: &str) -> Option<&Arc<dyn ScheduleStrategy>> {
        self.entries.iter().find(|s| {
            s.short_name().eq_ignore_ascii_case(name) || s.name().eq_ignore_ascii_case(name)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hks_shape::HksShape;
    use crate::schedule::{Schedule, ScheduleConfig};

    struct Toy;

    impl ScheduleStrategy for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn short_name(&self) -> &str {
            "TY"
        }
        fn build(
            &self,
            shape: &HksShape,
            config: &ScheduleConfig,
        ) -> Result<Schedule, CiflowError> {
            MaxParallelStrategy.build(shape, config)
        }
    }

    #[test]
    fn builtin_registry_resolves_by_any_name_case_insensitively() {
        let registry = StrategyRegistry::builtin();
        assert_eq!(registry.len(), 3);
        assert_eq!(registry.short_names(), vec!["MP", "DC", "OC"]);
        for name in ["MP", "mp", "max-parallel", "OC", "output-centric", "dc"] {
            assert!(registry.contains(name), "{name}");
        }
        assert!(!registry.contains("bogus"));
        let err = registry.get("bogus").err().expect("lookup must fail");
        assert!(err.to_string().contains("OC"), "{err}");
    }

    #[test]
    fn registration_rejects_duplicates() {
        let mut registry = StrategyRegistry::builtin();
        registry.register(Arc::new(Toy)).unwrap();
        assert_eq!(registry.len(), 4);
        assert!(matches!(
            registry.register(Arc::new(Toy)),
            Err(CiflowError::DuplicateStrategy { .. })
        ));
        assert!(matches!(
            registry.register(Arc::new(MaxParallelStrategy)),
            Err(CiflowError::DuplicateStrategy { .. })
        ));
    }
}
