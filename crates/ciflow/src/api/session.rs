//! Builder-style batch execution of HKS runs on the RPU model.

use super::registry::StrategyRegistry;
use super::strategy::ScheduleStrategy;
use crate::benchmark::HksBenchmark;
use crate::dataflow::Dataflow;
use crate::error::CiflowError;
use crate::hks_shape::HksShape;
use crate::schedule::{Schedule, ScheduleConfig};
use crate::workload::{build_workload, PipelineMode, Workload};
use rpu::analytic::ParametricTimeline;
use rpu::{
    BoundAnalysis, ChannelMap, EvkPolicy, ExecutionStats, ExecutionTrace, RpuConfig, RpuEngine,
    TraceMode,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// How a job names its strategy: by registry name or as an inline object.
#[derive(Clone)]
pub enum StrategySpec {
    /// Resolved through the session's [`StrategyRegistry`] at run time.
    Named(String),
    /// Used directly, bypassing the registry.
    Inline(Arc<dyn ScheduleStrategy>),
}

impl std::fmt::Debug for StrategySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategySpec::Named(name) => write!(f, "Named({name:?})"),
            StrategySpec::Inline(s) => write!(f, "Inline({:?})", s.short_name()),
        }
    }
}

impl From<&str> for StrategySpec {
    fn from(name: &str) -> Self {
        StrategySpec::Named(name.to_string())
    }
}

impl From<String> for StrategySpec {
    fn from(name: String) -> Self {
        StrategySpec::Named(name)
    }
}

impl From<Dataflow> for StrategySpec {
    fn from(dataflow: Dataflow) -> Self {
        StrategySpec::Named(dataflow.short_name().to_string())
    }
}

impl From<Arc<dyn ScheduleStrategy>> for StrategySpec {
    fn from(strategy: Arc<dyn ScheduleStrategy>) -> Self {
        StrategySpec::Inline(strategy)
    }
}

impl StrategySpec {
    /// The name this spec would be displayed under: the requested registry
    /// name, or the inline strategy's short name.
    pub fn display_name(&self) -> String {
        match self {
            StrategySpec::Named(name) => name.clone(),
            StrategySpec::Inline(s) => s.short_name().to_string(),
        }
    }
}

/// What a job asks the schedule layer to build: one kernel at a parameter
/// point, or a pipeline over an expanded kernel ladder. Together with the
/// strategy and the [`ScheduleConfig`] knobs this fully determines the built
/// schedule, so it is the work half of a [`ScheduleKey`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum WorkKey {
    /// A single key switch of one benchmark.
    Single(HksBenchmark),
    /// A workload pipeline: the expanded per-kernel benchmark ladder plus the
    /// stitching mode. `build_workload` depends on the workload only through
    /// these (the name is cosmetic), so two workloads expanding to the same
    /// ladder share a cache entry by design.
    Pipeline(Vec<HksBenchmark>, PipelineMode),
}

/// Cache key of one built schedule template: everything schedule construction
/// reads. Bandwidth, MODOPS and channel count are deliberately absent — they
/// shape execution, not the schedule — which is exactly why one template
/// serves every point of a bandwidth sweep.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ScheduleKey {
    /// Identity of the strategy *object* (the thin part of its `Arc`
    /// pointer). Names are not used: two inline strategies may share a short
    /// name. The cached entry holds the `Arc` alive, so the address cannot be
    /// recycled while the key exists.
    strategy: usize,
    evk_policy: EvkPolicy,
    data_memory_bytes: u64,
    work: WorkKey,
}

impl ScheduleKey {
    fn new(strategy: &Arc<dyn ScheduleStrategy>, config: &ScheduleConfig, work: WorkKey) -> Self {
        Self {
            strategy: Arc::as_ptr(strategy) as *const () as usize,
            evk_policy: config.evk_policy,
            data_memory_bytes: config.data_memory_bytes,
            work,
        }
    }
}

/// Cache key of one derived [`ParametricTimeline`] within a plan: everything
/// *besides* the schedule that shapes the timeline. Bandwidth itself is the
/// timeline's free variable; only the analyzed range is keyed (by bits, so
/// identical ranges hit and NaN can never poison the key).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TimelineKey {
    channels: usize,
    modops_bits: u64,
    lo_bits: u64,
    hi_bits: u64,
}

/// A built schedule template plus everything derived from it that timing
/// parameters cannot change: pipeline metadata and the per-channel-count
/// buffer placement maps.
struct CachedPlan {
    /// Keeps the keyed strategy alive so its address (the cache key) cannot
    /// be reused by a different strategy while this entry exists.
    _strategy: Arc<dyn ScheduleStrategy>,
    schedule: Arc<Schedule>,
    kernels: usize,
    kernel_benchmarks: Vec<HksBenchmark>,
    forwarded_bytes: u64,
    /// Channel maps derived from the schedule, keyed by channel count —
    /// [`Schedule::channel_map`] scans the whole graph, so jobs sharing a
    /// schedule must not re-derive it (see `Session::run_job`).
    channel_maps: Mutex<HashMap<usize, ChannelMap>>,
    /// Parametric timelines derived from the schedule
    /// ([`Session::run_analytic`]), keyed by the non-bandwidth knobs —
    /// deriving one costs a handful of symbolic executions, so jobs sharing
    /// a schedule share the piecewise description too.
    timelines: Mutex<HashMap<TimelineKey, Arc<ParametricTimeline>>>,
}

impl CachedPlan {
    fn channel_map(&self, num_channels: usize) -> ChannelMap {
        let mut maps = self
            .channel_maps
            .lock()
            .expect("channel-map cache poisoned");
        maps.entry(num_channels)
            .or_insert_with(|| self.schedule.channel_map(num_channels))
            .clone()
    }

    fn timeline(
        &self,
        rpu: &RpuConfig,
        lo_gbps: f64,
        hi_gbps: f64,
    ) -> Result<Arc<ParametricTimeline>, rpu::EngineError> {
        let key = TimelineKey {
            channels: rpu.memory_channel_count(),
            modops_bits: rpu.modops_per_second().to_bits(),
            lo_bits: lo_gbps.to_bits(),
            hi_bits: hi_gbps.to_bits(),
        };
        if let Some(timeline) = self
            .timelines
            .lock()
            .expect("timeline cache poisoned")
            .get(&key)
        {
            return Ok(Arc::clone(timeline));
        }
        let engine = RpuEngine::new(rpu.clone())
            .with_channel_map(self.channel_map(rpu.memory_channel_count()));
        let timeline = Arc::new(engine.analyze(&self.schedule.graph, lo_gbps, hi_gbps)?);
        Ok(Arc::clone(
            self.timelines
                .lock()
                .expect("timeline cache poisoned")
                .entry(key)
                .or_insert(timeline),
        ))
    }
}

/// The session-level schedule cache, shared (via `Arc`) by clones of a
/// session and by every job of a batch.
type ScheduleCache = Arc<Mutex<HashMap<ScheduleKey, Arc<CachedPlan>>>>;

/// A multi-kernel workload attached to a [`Job`]: the pipeline description
/// plus the mode its kernels are stitched under.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// The kernel sequence to pipeline.
    pub workload: Workload,
    /// Fused pipeline or back-to-back baseline.
    pub mode: PipelineMode,
}

/// One unit of work in a [`Session`] batch: a benchmark scheduled by a
/// strategy, optionally on a job-specific RPU configuration. A job runs
/// either one HKS kernel (the default) or a whole multi-kernel
/// [`Workload`] pipeline.
#[derive(Debug, Clone)]
pub struct Job {
    /// The parameter point to run.
    pub benchmark: HksBenchmark,
    /// The strategy that schedules it.
    pub strategy: StrategySpec,
    /// Overrides the session RPU configuration when set.
    pub rpu: Option<RpuConfig>,
    /// Optional caller-supplied label, reported back in [`JobResult`].
    pub label: Option<String>,
    /// When set, the job runs this multi-kernel pipeline instead of a single
    /// key switch.
    pub workload: Option<WorkloadSpec>,
}

impl Job {
    /// A job running `benchmark` under `strategy` on the session RPU.
    pub fn new(benchmark: HksBenchmark, strategy: impl Into<StrategySpec>) -> Self {
        Self {
            benchmark,
            strategy: strategy.into(),
            rpu: None,
            label: None,
            workload: None,
        }
    }

    /// A job running a multi-kernel `workload` pipeline under `strategy` in
    /// the given [`PipelineMode`].
    pub fn workload(
        workload: Workload,
        strategy: impl Into<StrategySpec>,
        mode: PipelineMode,
    ) -> Self {
        Self {
            benchmark: workload.benchmark,
            strategy: strategy.into(),
            rpu: None,
            label: None,
            workload: Some(WorkloadSpec { workload, mode }),
        }
    }

    /// Runs this job on its own RPU configuration instead of the session's.
    pub fn with_rpu(mut self, rpu: RpuConfig) -> Self {
        self.rpu = Some(rpu);
        self
    }

    /// Attaches a caller-supplied label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The parameter point the job actually runs: a workload job always runs
    /// its workload's benchmark, even if the (public) `benchmark` field was
    /// mutated to disagree.
    pub fn effective_benchmark(&self) -> HksBenchmark {
        self.workload
            .as_ref()
            .map(|spec| spec.workload.benchmark)
            .unwrap_or(self.benchmark)
    }

    fn strategy_name(&self) -> String {
        self.strategy.display_name()
    }
}

/// The outcome of a *symbolic* job run: the schedule-derived
/// [`ParametricTimeline`] plus the same scheduling metadata a [`JobOutput`]
/// carries, minus the single-bandwidth `stats`/`trace` — those are produced
/// on demand by evaluating the timeline at a bandwidth of interest.
#[derive(Debug, Clone)]
pub struct AnalyticOutput {
    /// The parameter point that was scheduled.
    pub benchmark: HksBenchmark,
    /// Short name of the strategy that scheduled it.
    pub strategy: String,
    /// The RPU configuration the timeline was derived from. Its
    /// `dram_bandwidth_gbps` is the anchor, not a restriction — evaluation
    /// is valid anywhere in [`AnalyticOutput::bandwidth_range_gbps`], and
    /// falls back to the engine (still bit-exact) outside it.
    pub rpu: RpuConfig,
    /// The schedule the timeline describes, shared with the session cache.
    pub schedule: Arc<Schedule>,
    /// Number of HKS kernel invocations the schedule covered.
    pub kernels: usize,
    /// The parameter point of each kernel invocation, in execution order.
    pub kernel_benchmarks: Vec<HksBenchmark>,
    /// DRAM traffic eliminated by on-chip forwarding, in bytes.
    pub forwarded_bytes: u64,
    /// The piecewise-linear timeline; shared with the session's plan cache,
    /// so repeated analytic runs of an identically-keyed job are lookups.
    pub timeline: Arc<ParametricTimeline>,
}

impl AnalyticOutput {
    /// The bandwidth interval (GB/s) the timeline's segments cover.
    pub fn bandwidth_range_gbps(&self) -> (f64, f64) {
        self.timeline.bandwidth_range_gbps()
    }

    /// Execution statistics at `bandwidth_gbps` — bit-identical to running
    /// the job through the event engine at that bandwidth.
    pub fn stats_at(&self, bandwidth_gbps: f64) -> ExecutionStats {
        self.timeline.evaluate(bandwidth_gbps)
    }

    /// Runtime in milliseconds at `bandwidth_gbps`.
    pub fn runtime_ms_at(&self, bandwidth_gbps: f64) -> f64 {
        self.stats_at(bandwidth_gbps).runtime_ms()
    }
}

/// The successful outcome of one job.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The parameter point that ran.
    pub benchmark: HksBenchmark,
    /// Short name of the strategy that scheduled it.
    pub strategy: String,
    /// The RPU configuration the job executed on.
    pub rpu: RpuConfig,
    /// Aggregate execution statistics (runtime, idle fractions, traffic).
    pub stats: ExecutionStats,
    /// Per-task trace (for timing diagrams). `None` unless the session ran
    /// with [`TraceMode::Full`] (see [`Session::with_trace`]) — stats-only
    /// execution skips the per-task record allocation entirely.
    pub trace: Option<ExecutionTrace>,
    /// The schedule that was executed, shared with the session's schedule
    /// cache: jobs differing only in timing parameters (bandwidth, MODOPS,
    /// channel count) hand back the same `Arc`.
    pub schedule: Arc<Schedule>,
    /// Number of HKS kernel invocations the schedule covered (1 for a plain
    /// job, the pipeline length for a workload job). Always equals
    /// `kernel_benchmarks.len()`.
    pub kernels: usize,
    /// The parameter point of each kernel invocation, in execution order —
    /// the per-kernel shape ladder of a heterogeneous pipeline (a plain job
    /// reports its single benchmark; a homogeneous workload repeats one).
    pub kernel_benchmarks: Vec<HksBenchmark>,
    /// DRAM traffic the fusion layer eliminated by forwarding the chained
    /// polynomial on-chip, in bytes (0 for plain jobs and back-to-back
    /// pipelines).
    pub forwarded_bytes: u64,
}

impl JobOutput {
    /// Runtime in milliseconds.
    pub fn runtime_ms(&self) -> f64 {
        self.stats.runtime_ms()
    }

    /// Runtime in milliseconds amortized per HKS kernel invocation.
    pub fn runtime_ms_per_kernel(&self) -> f64 {
        self.stats.runtime_ms() / self.kernels as f64
    }

    /// Total DRAM traffic in MiB.
    pub fn dram_mib(&self) -> f64 {
        self.stats.total_bytes() as f64 / rpu::MIB as f64
    }

    /// The static bound analysis of the schedule this job executed, on the
    /// configuration it executed on — same engine, same channel placement.
    /// See [`rpu::bound::analyze`].
    pub fn bound_analysis(&self) -> BoundAnalysis {
        let engine = RpuEngine::new(self.rpu.clone())
            .with_channel_map(self.schedule.channel_map(self.rpu.memory_channel_count()));
        engine.bounds(&self.schedule.graph)
    }

    /// Achieved-vs-bound efficiency: the provable makespan lower bound
    /// divided by the achieved runtime. 1.0 means the run hit the static
    /// bound exactly; lower values quantify contention the bound cannot
    /// see (see `docs/BOUNDS.md`).
    pub fn bound_efficiency(&self) -> f64 {
        self.bound_analysis().efficiency(self.stats.runtime_seconds)
    }

    /// The compact serializable summary used by the benchmark harnesses.
    pub fn summary(&self) -> crate::runner::HksRunSummary {
        crate::runner::HksRunSummary {
            benchmark: self.benchmark.name,
            dataflow: self.strategy.clone(),
            bandwidth_gbps: self.rpu.dram_bandwidth_gbps,
            modops: self.rpu.modops_multiplier,
            evk_streamed: self.rpu.evk_policy == rpu::EvkPolicy::Streamed,
            runtime_ms: self.stats.runtime_ms(),
            compute_idle: self.stats.compute_idle_fraction(),
            dram_mib: self.dram_mib(),
            arithmetic_intensity: self.stats.arithmetic_intensity(),
        }
    }
}

/// One entry of a [`BatchOutcome`]: the job description plus its result.
#[derive(Debug)]
pub struct JobResult {
    /// Label identifying the job (caller-supplied or generated).
    pub label: String,
    /// The parameter point of the job.
    pub benchmark: HksBenchmark,
    /// The strategy name the job requested.
    pub strategy: String,
    /// The result: output on success, a typed error otherwise.
    pub outcome: Result<JobOutput, CiflowError>,
}

/// One entry of a [`Session::verify`] sweep: the job description plus its
/// static-analysis outcome.
#[derive(Debug)]
pub struct VerifyResult {
    /// Label identifying the job (caller-supplied or generated).
    pub label: String,
    /// The parameter point of the job.
    pub benchmark: HksBenchmark,
    /// The strategy name the job requested.
    pub strategy: String,
    /// The lint report, or the error that prevented building the schedule.
    pub outcome: Result<crate::lint::LintReport, CiflowError>,
}

impl VerifyResult {
    /// True when the schedule was built and linted with no Error-severity
    /// findings (warnings and notes are allowed).
    pub fn is_ok(&self) -> bool {
        matches!(&self.outcome, Ok(report) if !report.has_errors())
    }
}

/// One entry of a [`Session::bounds`] sweep: the job description plus its
/// static bound analysis.
#[derive(Debug)]
pub struct BoundsResult {
    /// Label identifying the job (caller-supplied or generated).
    pub label: String,
    /// The parameter point of the job.
    pub benchmark: HksBenchmark,
    /// The strategy name the job requested.
    pub strategy: String,
    /// The bound analysis, or the error that prevented building the
    /// schedule.
    pub outcome: Result<BoundAnalysis, CiflowError>,
}

impl BoundsResult {
    /// True when the schedule was built and analyzed.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// The per-job results of one [`Session::run`] batch, in submission order.
#[derive(Debug, Default)]
pub struct BatchOutcome {
    /// One entry per submitted job, in submission order.
    pub results: Vec<JobResult>,
}

impl BatchOutcome {
    /// Number of jobs in the batch.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True if the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// True if every job succeeded.
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(|r| r.outcome.is_ok())
    }

    /// The successful outputs, in submission order.
    pub fn successes(&self) -> impl Iterator<Item = &JobOutput> {
        self.results.iter().filter_map(|r| r.outcome.as_ref().ok())
    }

    /// The failed jobs as `(label, error)` pairs, in submission order.
    pub fn failures(&self) -> impl Iterator<Item = (&str, &CiflowError)> {
        self.results
            .iter()
            .filter_map(|r| r.outcome.as_ref().err().map(|e| (r.label.as_str(), e)))
    }

    /// Unwraps every job into its output.
    ///
    /// # Errors
    ///
    /// Returns the first failure (by submission order) if any job failed.
    pub fn into_outputs(self) -> Result<Vec<JobOutput>, CiflowError> {
        self.results.into_iter().map(|r| r.outcome).collect()
    }
}

/// A builder-style batch runner: configure an RPU and a strategy registry,
/// queue jobs, and execute them all — in parallel across cores when the
/// default `parallel` feature is enabled.
///
/// ## Schedule caching
///
/// Sessions memoize built schedules: jobs that agree on strategy, parameter
/// point (or workload ladder and pipeline mode), evk policy and data-memory
/// size share one built [`Schedule`] — including its derived channel maps —
/// no matter how their bandwidth, MODOPS multiplier or channel count differ.
/// A bandwidth sweep therefore builds its task graph once, not once per
/// point. The cache assumes strategies are *deterministic* (same shape and
/// config in, same schedule out), which every reasonable strategy is; a
/// deliberately randomized strategy can opt out with
/// [`Session::without_schedule_cache`].
///
/// ## Tracing
///
/// Batch execution is statistics-only by default; ask for per-task traces
/// with [`Session::with_trace`] when you need timing diagrams.
///
/// See the [module docs](crate::api) for an end-to-end example.
#[derive(Clone)]
pub struct Session {
    rpu: RpuConfig,
    registry: StrategyRegistry,
    jobs: Vec<Job>,
    trace: TraceMode,
    cache: Option<ScheduleCache>,
    cache_lint: bool,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("rpu", &self.rpu)
            .field("registry", &self.registry)
            .field("jobs", &self.jobs)
            .field("trace", &self.trace)
            .field(
                "cached_schedules",
                &self
                    .cache
                    .as_ref()
                    .map(|c| c.lock().map(|m| m.len()).unwrap_or(0)),
            )
            .finish()
    }
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// A session on the paper's baseline RPU with the built-in strategies.
    pub fn new() -> Self {
        Self {
            rpu: RpuConfig::ciflow_baseline(),
            registry: StrategyRegistry::builtin(),
            jobs: Vec::new(),
            trace: TraceMode::StatsOnly,
            cache: Some(Arc::new(Mutex::new(HashMap::new()))),
            cache_lint: true,
        }
    }

    /// Replaces the session RPU configuration (jobs without their own
    /// configuration run on this one).
    pub fn with_rpu(mut self, rpu: RpuConfig) -> Self {
        self.rpu = rpu;
        self
    }

    /// Selects how much per-task detail jobs record: [`TraceMode::Full`]
    /// attaches an [`ExecutionTrace`] to every [`JobOutput`],
    /// [`TraceMode::StatsOnly`] (the default) skips the per-task records —
    /// measurably cheaper for sweeps that only read aggregate numbers.
    pub fn with_trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// Disables the session's schedule cache: every job rebuilds its
    /// schedule from scratch. Only needed for strategies that are not
    /// deterministic functions of `(shape, config)`.
    pub fn without_schedule_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Disables the debug-build lint check on freshly built schedules.
    ///
    /// Debug builds lint every schedule template the session builds
    /// ([`crate::lint::lint_with`]) and panic on an Error-severity finding,
    /// so a broken strategy fails loudly and early at its construction site
    /// rather than as a mid-run engine error. A strategy that *intentionally*
    /// produces diagnostics (e.g. a test fixture exercising the runtime
    /// deadlock path) can opt out with this. Release builds never pay for
    /// the check.
    pub fn without_cache_lint(mut self) -> Self {
        self.cache_lint = false;
        self
    }

    /// Replaces the strategy registry wholesale.
    pub fn with_registry(mut self, registry: StrategyRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Registers an additional strategy with the session's registry.
    ///
    /// # Errors
    ///
    /// Returns [`CiflowError::DuplicateStrategy`] if the name is taken.
    pub fn register(mut self, strategy: Arc<dyn ScheduleStrategy>) -> Result<Self, CiflowError> {
        self.registry.register(strategy)?;
        Ok(self)
    }

    /// The session's RPU configuration.
    pub fn rpu(&self) -> &RpuConfig {
        &self.rpu
    }

    /// The session's strategy registry.
    pub fn registry(&self) -> &StrategyRegistry {
        &self.registry
    }

    /// Queues one `(benchmark, strategy)` job on the session RPU.
    pub fn job(mut self, benchmark: HksBenchmark, strategy: impl Into<StrategySpec>) -> Self {
        self.jobs.push(Job::new(benchmark, strategy));
        self
    }

    /// Queues one fully-described [`Job`].
    pub fn push(mut self, job: Job) -> Self {
        self.jobs.push(job);
        self
    }

    /// Queues many jobs at once.
    pub fn jobs(mut self, jobs: impl IntoIterator<Item = Job>) -> Self {
        self.jobs.extend(jobs);
        self
    }

    /// Number of queued jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Executes every queued job and returns per-job results in submission
    /// order.
    ///
    /// With the default `parallel` feature the jobs fan out across all cores
    /// through a shared work queue; job isolation is preserved either way —
    /// a failing (or even panicking) strategy produces an `Err` entry for its
    /// job and leaves the rest of the batch untouched.
    pub fn run(&self) -> BatchOutcome {
        self.warm_schedule_cache();
        let indexed: Vec<&Job> = self.jobs.iter().collect();
        let results = crate::parallel::map(indexed, |job| JobResult {
            label: self.job_label(job),
            benchmark: job.effective_benchmark(),
            strategy: job.strategy_name(),
            outcome: self.run_job_isolated(job),
        });
        BatchOutcome { results }
    }

    /// Pre-builds the schedule template of every *distinct* [`ScheduleKey`]
    /// in the queued batch (in parallel), so the subsequent fan-out hits the
    /// cache instead of racing to build the same template on every worker.
    /// Build and resolution failures are swallowed here — the owning job
    /// re-encounters them and reports them as its own result.
    fn warm_schedule_cache(&self) {
        if self.cache.is_none() {
            return;
        }
        let mut seen = std::collections::HashSet::new();
        let distinct: Vec<&Job> = self
            .jobs
            .iter()
            .filter(|job| {
                let Ok(strategy) = self.job_strategy(job) else {
                    return false;
                };
                let config = self.job_schedule_config(job);
                seen.insert(ScheduleKey::new(&strategy, &config, Self::work_key(job)))
            })
            .collect();
        if distinct.len() > 1 || self.jobs.len() > distinct.len() {
            crate::parallel::map(distinct, |job| {
                let _ = catch_unwind(AssertUnwindSafe(|| self.plan_for(job)));
            });
        }
    }

    /// Resolves the strategy a job names (or carries inline).
    fn job_strategy(&self, job: &Job) -> Result<Arc<dyn ScheduleStrategy>, CiflowError> {
        match &job.strategy {
            StrategySpec::Named(name) => self.registry.get(name),
            StrategySpec::Inline(strategy) => Ok(Arc::clone(strategy)),
        }
    }

    /// The schedule-affecting knobs of the configuration a job runs on.
    fn job_schedule_config(&self, job: &Job) -> ScheduleConfig {
        let rpu = job.rpu.as_ref().unwrap_or(&self.rpu);
        ScheduleConfig {
            data_memory_bytes: rpu.vector_memory_bytes,
            evk_policy: rpu.evk_policy,
        }
    }

    /// The work half of a job's schedule key.
    fn work_key(job: &Job) -> WorkKey {
        match &job.workload {
            Some(spec) => WorkKey::Pipeline(spec.workload.kernel_benchmarks(), spec.mode),
            None => WorkKey::Single(job.benchmark),
        }
    }

    /// Returns the job's built schedule plan, from the cache when an
    /// identically-keyed job already built it (or is pre-built by
    /// [`Session::run`]'s warm-up pass), building and inserting it otherwise.
    fn plan_for(&self, job: &Job) -> Result<Arc<CachedPlan>, CiflowError> {
        let strategy = self.job_strategy(job)?;
        let config = self.job_schedule_config(job);
        let Some(cache) = &self.cache else {
            let plan = Arc::new(self.build_plan(job, &strategy, &config)?);
            self.debug_lint_plan(job, &plan);
            return Ok(plan);
        };
        let key = ScheduleKey::new(&strategy, &config, Self::work_key(job));
        if let Some(plan) = cache.lock().expect("schedule cache poisoned").get(&key) {
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(self.build_plan(job, &strategy, &config)?);
        self.debug_lint_plan(job, &plan);
        // First insert wins, so concurrent cold builders converge on one
        // shared plan (and one shared `Arc<Schedule>` identity).
        Ok(Arc::clone(
            cache
                .lock()
                .expect("schedule cache poisoned")
                .entry(key)
                .or_insert(plan),
        ))
    }

    /// Actually builds a job's schedule template (cache miss path).
    fn build_plan(
        &self,
        job: &Job,
        strategy: &Arc<dyn ScheduleStrategy>,
        config: &ScheduleConfig,
    ) -> Result<CachedPlan, CiflowError> {
        let (schedule, kernels, kernel_benchmarks, forwarded_bytes) = match &job.workload {
            Some(spec) => {
                let pipeline =
                    build_workload(&spec.workload, strategy.as_ref(), config, spec.mode)?;
                (
                    pipeline.schedule,
                    pipeline.kernels,
                    pipeline.kernel_benchmarks,
                    pipeline.forwarded_bytes,
                )
            }
            None => {
                let shape = HksShape::new(job.benchmark);
                (strategy.build(&shape, config)?, 1, vec![job.benchmark], 0)
            }
        };
        Ok(CachedPlan {
            _strategy: Arc::clone(strategy),
            schedule: Arc::new(schedule),
            kernels,
            kernel_benchmarks,
            forwarded_bytes,
            channel_maps: Mutex::new(HashMap::new()),
            timelines: Mutex::new(HashMap::new()),
        })
    }

    /// Debug-build guard on the schedule-build path: lint every freshly
    /// built plan against the job's target and panic on Error-severity
    /// findings, so broken strategies are caught where the schedule is
    /// constructed. Compiled out of release builds; opt out with
    /// [`Session::without_cache_lint`].
    fn debug_lint_plan(&self, job: &Job, plan: &CachedPlan) {
        if cfg!(debug_assertions) && self.cache_lint {
            let rpu = job.rpu.as_ref().unwrap_or(&self.rpu);
            let map = plan.channel_map(rpu.memory_channel_count());
            let report = crate::lint::lint_with(&plan.schedule, &plan.kernel_benchmarks, rpu, &map);
            debug_assert!(
                !report.has_errors(),
                "strategy {} built a schedule that fails `ciflow::lint` (disable with \
                 Session::without_cache_lint if intentional):\n{report}",
                plan.schedule.strategy,
            );
        }
    }

    /// Statically verifies one job's schedule — structural, deadlock,
    /// buffer-hazard, capacity and placement passes — against the
    /// configuration it would execute on, *without running it*. Builds (or
    /// fetches from the schedule cache) exactly the plan and channel map
    /// [`Session::run_job`] would use.
    ///
    /// # Errors
    ///
    /// Propagates strategy-resolution or schedule-construction failures; a
    /// schedule that merely *lints badly* is an `Ok` report with errors in
    /// it, so callers can gate on [`LintReport::has_errors`](crate::lint::LintReport::has_errors).
    pub fn verify_job(&self, job: &Job) -> Result<crate::lint::LintReport, CiflowError> {
        let plan = self.plan_for(job)?;
        let rpu = job.rpu.as_ref().unwrap_or(&self.rpu);
        let map = plan.channel_map(rpu.memory_channel_count());
        Ok(crate::lint::lint_with(
            &plan.schedule,
            &plan.kernel_benchmarks,
            rpu,
            &map,
        ))
    }

    /// Statically verifies every queued job (in submission order) without
    /// executing any of them: the batch-shaped counterpart of
    /// [`Session::run`], with a [`LintReport`](crate::lint::LintReport) where
    /// the stats would be. Panicking strategies fail their own entry, like
    /// in `run`.
    pub fn verify(&self) -> Vec<VerifyResult> {
        self.jobs
            .iter()
            .map(|job| VerifyResult {
                label: self.job_label(job),
                benchmark: job.effective_benchmark(),
                strategy: job.strategy_name(),
                outcome: match catch_unwind(AssertUnwindSafe(|| self.verify_job(job))) {
                    Ok(outcome) => outcome,
                    Err(payload) => Err(CiflowError::StrategyPanicked {
                        strategy: job.strategy_name(),
                        message: panic_message(payload.as_ref()),
                    }),
                },
            })
            .collect()
    }

    /// Statically bounds one job: the provable makespan lower bound,
    /// critical path, slack and roofline knee of exactly the plan and
    /// placement [`Session::run_job`] would execute, *without running it*
    /// (see [`rpu::bound::analyze`] and `docs/BOUNDS.md`).
    ///
    /// # Errors
    ///
    /// Propagates strategy-resolution or schedule-construction failures.
    pub fn bounds_job(&self, job: &Job) -> Result<BoundAnalysis, CiflowError> {
        let plan = self.plan_for(job)?;
        let rpu = job.rpu.as_ref().unwrap_or(&self.rpu);
        let engine = RpuEngine::new(rpu.clone())
            .with_channel_map(plan.channel_map(rpu.memory_channel_count()));
        Ok(engine.bounds(&plan.schedule.graph))
    }

    /// Statically bounds every queued job (in submission order) without
    /// executing any of them: the batch-shaped counterpart of
    /// [`Session::run`], with a [`BoundAnalysis`] where the stats would be.
    /// Panicking strategies fail their own entry, like in `run`.
    pub fn bounds(&self) -> Vec<BoundsResult> {
        self.jobs
            .iter()
            .map(|job| BoundsResult {
                label: self.job_label(job),
                benchmark: job.effective_benchmark(),
                strategy: job.strategy_name(),
                outcome: match catch_unwind(AssertUnwindSafe(|| self.bounds_job(job))) {
                    Ok(outcome) => outcome,
                    Err(payload) => Err(CiflowError::StrategyPanicked {
                        strategy: job.strategy_name(),
                        message: panic_message(payload.as_ref()),
                    }),
                },
            })
            .collect()
    }

    /// Executes a single job immediately (no panic isolation, no queueing).
    ///
    /// # Errors
    ///
    /// Returns the job's [`CiflowError`] on strategy-resolution, schedule
    /// construction, or execution failure.
    pub fn run_job(&self, job: &Job) -> Result<JobOutput, CiflowError> {
        self.run_job_with(job, self.trace)
    }

    /// [`Session::run_job`] with an explicit trace mode, overriding the
    /// session's. Lets callers that always need a trace (the legacy
    /// [`HksRun`](crate::runner::HksRun) path) avoid cloning the session
    /// just to flip the mode.
    pub(crate) fn run_job_with(
        &self,
        job: &Job,
        trace_mode: TraceMode,
    ) -> Result<JobOutput, CiflowError> {
        let rpu = job.rpu.clone().unwrap_or_else(|| self.rpu.clone());
        let plan = self.plan_for(job)?;
        // Channel-aware placement: the schedule's label-encoded channel
        // hints become the engine's buffer-to-channel map (a no-op for the
        // default single-channel configuration). The map is derived once per
        // (plan, channel count) and cached with the plan — jobs sharing a
        // schedule no longer re-scan the graph per job.
        let engine = RpuEngine::new(rpu.clone())
            .with_channel_map(plan.channel_map(rpu.memory_channel_count()));
        let (stats, trace) = match trace_mode {
            TraceMode::Full => {
                let result = engine.execute(&plan.schedule.graph)?;
                (result.stats, Some(result.trace))
            }
            TraceMode::StatsOnly => (engine.execute_stats(&plan.schedule.graph)?, None),
        };
        Ok(JobOutput {
            benchmark: job.effective_benchmark(),
            strategy: plan.schedule.strategy.clone(),
            rpu,
            stats,
            trace,
            schedule: Arc::clone(&plan.schedule),
            kernels: plan.kernels,
            kernel_benchmarks: plan.kernel_benchmarks.clone(),
            forwarded_bytes: plan.forwarded_bytes,
        })
    }

    /// Runs a job *symbolically* over a bandwidth range instead of at one
    /// bandwidth: builds (or fetches) the same cached schedule plan
    /// [`Session::run_job`] would use, derives its piecewise-linear
    /// [`ParametricTimeline`] once, and returns it for closed-form
    /// evaluation at any bandwidth — bit-identical to running the job with
    /// that bandwidth swapped in (see `docs/ANALYTIC.md`). Timelines are
    /// cached with the plan, so repeated analytic runs of an
    /// identically-keyed job cost one lookup.
    ///
    /// # Errors
    ///
    /// Returns [`CiflowError::InvalidConfig`] for an invalid range
    /// (non-finite, non-positive, or `lo > hi`), and otherwise propagates
    /// the same strategy-resolution, schedule-construction and engine errors
    /// as [`Session::run_job`].
    pub fn run_analytic(
        &self,
        job: &Job,
        lo_gbps: f64,
        hi_gbps: f64,
    ) -> Result<AnalyticOutput, CiflowError> {
        if !(lo_gbps.is_finite() && hi_gbps.is_finite() && lo_gbps > 0.0 && lo_gbps <= hi_gbps) {
            return Err(CiflowError::InvalidConfig {
                message: format!(
                    "analytic bandwidth range [{lo_gbps}, {hi_gbps}] GB/s must be finite, \
                     positive and ordered"
                ),
            });
        }
        let rpu = job.rpu.clone().unwrap_or_else(|| self.rpu.clone());
        let plan = self.plan_for(job)?;
        let timeline = plan.timeline(&rpu, lo_gbps, hi_gbps)?;
        Ok(AnalyticOutput {
            benchmark: job.effective_benchmark(),
            strategy: plan.schedule.strategy.clone(),
            rpu,
            schedule: Arc::clone(&plan.schedule),
            kernels: plan.kernels,
            kernel_benchmarks: plan.kernel_benchmarks.clone(),
            forwarded_bytes: plan.forwarded_bytes,
            timeline,
        })
    }

    /// Convenience: queue nothing, run one `(benchmark, strategy)` pair on
    /// the session RPU, and return its output.
    ///
    /// # Errors
    ///
    /// Propagates the job's [`CiflowError`].
    pub fn run_one(
        &self,
        benchmark: HksBenchmark,
        strategy: impl Into<StrategySpec>,
    ) -> Result<JobOutput, CiflowError> {
        self.run_job(&Job::new(benchmark, strategy))
    }

    /// Convenience: run one multi-kernel workload pipeline on the session RPU
    /// and return its output.
    ///
    /// # Errors
    ///
    /// Propagates the job's [`CiflowError`].
    pub fn run_workload(
        &self,
        workload: Workload,
        strategy: impl Into<StrategySpec>,
        mode: PipelineMode,
    ) -> Result<JobOutput, CiflowError> {
        self.run_job(&Job::workload(workload, strategy, mode))
    }

    fn job_label(&self, job: &Job) -> String {
        if let Some(label) = &job.label {
            return label.clone();
        }
        let rpu = job.rpu.as_ref().unwrap_or(&self.rpu);
        let work = match &job.workload {
            Some(spec) => format!("{} [{}]", spec.workload.name, spec.mode),
            None => job.benchmark.name.to_string(),
        };
        format!(
            "{work}/{}@{}GB/s",
            job.strategy_name(),
            rpu.dram_bandwidth_gbps
        )
    }

    /// [`Session::run_job`] with a panic boundary: a strategy that panics
    /// fails its own job instead of tearing down the batch.
    fn run_job_isolated(&self, job: &Job) -> Result<JobOutput, CiflowError> {
        match catch_unwind(AssertUnwindSafe(|| self.run_job(job))) {
            Ok(result) => result,
            Err(payload) => Err(CiflowError::StrategyPanicked {
                strategy: job.strategy_name(),
                message: panic_message(payload.as_ref()),
            }),
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu::EvkPolicy;

    #[test]
    fn verify_lints_queued_jobs_without_executing() {
        use crate::workload::{PipelineMode, Workload};

        let session = Session::new()
            .job(HksBenchmark::ARK, Dataflow::OutputCentric)
            .push(
                Job::workload(
                    Workload::rescaling_chain(HksBenchmark::BTS2, 3),
                    Dataflow::MaxParallel,
                    PipelineMode::Fused,
                )
                .with_rpu(RpuConfig::ciflow_baseline().with_memory_channels(4)),
            )
            .job(HksBenchmark::ARK, "zig-zag");
        let results = session.verify();
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok(), "{:?}", results[0].outcome);
        assert!(results[1].is_ok(), "{:?}", results[1].outcome);
        // Unresolvable strategies fail their entry, like in `run`.
        assert!(!results[2].is_ok());
        assert!(matches!(
            results[2].outcome,
            Err(CiflowError::UnknownStrategy { .. })
        ));

        // verify_job reuses the session's schedule cache: the subsequent run
        // hands back the very same Arc'd schedule the verification linted.
        let job = Job::new(HksBenchmark::ARK, Dataflow::OutputCentric);
        let report = session.verify_job(&job).unwrap();
        assert!(!report.has_errors(), "{report}");
        let output = session.run_job(&job).unwrap();
        assert_eq!(output.strategy, "OC");
    }

    #[test]
    fn single_job_matches_legacy_runner() {
        let session = Session::new();
        let output = session
            .run_one(HksBenchmark::ARK, Dataflow::OutputCentric)
            .unwrap();
        let legacy = crate::runner::HksRun::new(HksBenchmark::ARK, Dataflow::OutputCentric)
            .execute()
            .unwrap();
        assert_eq!(output.stats, legacy.stats);
        assert_eq!(output.schedule, legacy.schedule);
        assert_eq!(output.strategy, "OC");
    }

    #[test]
    fn batch_runs_every_dataflow_benchmark_pair() {
        let mut session =
            Session::new().with_rpu(RpuConfig::ciflow_baseline().with_bandwidth(32.0));
        for benchmark in HksBenchmark::all() {
            for dataflow in Dataflow::all() {
                session = session.job(benchmark, dataflow);
            }
        }
        assert_eq!(session.job_count(), 15);
        let outcome = session.run();
        assert_eq!(outcome.len(), 15);
        assert!(
            outcome.all_ok(),
            "failures: {:?}",
            outcome.failures().count()
        );
        // Submission order is preserved.
        assert_eq!(outcome.results[0].strategy, "MP");
        assert_eq!(outcome.results[2].strategy, "OC");
        assert_eq!(outcome.results[0].benchmark, HksBenchmark::BTS1);
        for output in outcome.successes() {
            assert!(output.runtime_ms() > 0.0);
        }
    }

    #[test]
    fn unknown_strategy_fails_its_job_only() {
        let outcome = Session::new()
            .job(HksBenchmark::ARK, "OC")
            .job(HksBenchmark::ARK, "zig-zag")
            .run();
        assert_eq!(outcome.len(), 2);
        assert!(outcome.results[0].outcome.is_ok());
        assert!(matches!(
            outcome.results[1].outcome,
            Err(CiflowError::UnknownStrategy { .. })
        ));
        assert!(!outcome.all_ok());
        assert_eq!(outcome.successes().count(), 1);
        assert_eq!(outcome.failures().count(), 1);
    }

    #[test]
    fn per_job_rpu_overrides_the_session_rpu() {
        let outcome = Session::new()
            .with_rpu(RpuConfig::ciflow_baseline().with_bandwidth(64.0))
            .push(Job::new(HksBenchmark::ARK, "OC"))
            .push(
                Job::new(HksBenchmark::ARK, "OC")
                    .with_rpu(RpuConfig::ciflow_baseline().with_bandwidth(8.0))
                    .with_label("slow-memory"),
            )
            .run();
        let outputs: Vec<&JobOutput> = outcome.successes().collect();
        assert_eq!(outputs.len(), 2);
        assert!(outputs[1].runtime_ms() > outputs[0].runtime_ms());
        assert_eq!(outcome.results[1].label, "slow-memory");
    }

    #[test]
    fn panicking_strategy_is_contained() {
        struct Exploding;
        impl ScheduleStrategy for Exploding {
            fn name(&self) -> &str {
                "exploding"
            }
            fn short_name(&self) -> &str {
                "BOOM"
            }
            fn build(
                &self,
                _shape: &HksShape,
                _config: &ScheduleConfig,
            ) -> Result<Schedule, CiflowError> {
                panic!("kaboom");
            }
        }
        let outcome = Session::new()
            .register(Arc::new(Exploding))
            .unwrap()
            .job(HksBenchmark::ARK, "BOOM")
            .job(HksBenchmark::ARK, "OC")
            .run();
        assert!(matches!(
            &outcome.results[0].outcome,
            Err(CiflowError::StrategyPanicked { message, .. }) if message.contains("kaboom")
        ));
        assert!(outcome.results[1].outcome.is_ok());
    }

    #[test]
    fn workload_jobs_run_in_batches_alongside_single_jobs() {
        let workload = Workload::rotation_batch(HksBenchmark::ARK, 4);
        let outcome = Session::new()
            .with_rpu(RpuConfig::ciflow_baseline().with_bandwidth(12.8))
            .job(HksBenchmark::ARK, "OC")
            .push(Job::workload(workload.clone(), "OC", PipelineMode::Fused))
            .push(Job::workload(workload, "OC", PipelineMode::BackToBack))
            .run();
        assert!(
            outcome.all_ok(),
            "failures: {:?}",
            outcome.failures().count()
        );
        let outputs: Vec<&JobOutput> = outcome.successes().collect();
        assert_eq!(outputs[0].kernels, 1);
        assert_eq!(outputs[1].kernels, 4);
        assert_eq!(outputs[2].kernels, 4);
        // Per-kernel shapes and forwarding are reported back.
        assert_eq!(outputs[0].kernel_benchmarks, vec![HksBenchmark::ARK]);
        assert_eq!(outputs[1].kernel_benchmarks, vec![HksBenchmark::ARK; 4]);
        assert_eq!(outputs[0].forwarded_bytes, 0);
        assert!(outputs[1].forwarded_bytes > 0, "fused ARK chain forwards");
        assert_eq!(outputs[2].forwarded_bytes, 0, "back-to-back never forwards");
        // The fused pipeline beats back-to-back, and per-kernel amortized
        // runtime beats the standalone kernel.
        assert!(outputs[1].runtime_ms() < outputs[2].runtime_ms());
        assert!(outputs[1].runtime_ms_per_kernel() < outputs[0].runtime_ms());
        assert!(outcome.results[1].label.contains("[fused]"));
        assert!(outcome.results[2].label.contains("[back-to-back]"));
    }

    #[test]
    fn streaming_policy_flows_into_schedule_config() {
        let output = Session::new()
            .with_rpu(RpuConfig::ciflow_streaming())
            .run_one(HksBenchmark::ARK, "OC")
            .unwrap();
        assert_eq!(output.rpu.evk_policy, EvkPolicy::Streamed);
        // Streamed evks appear as DRAM traffic in the schedule.
        let on_chip = Session::new().run_one(HksBenchmark::ARK, "OC").unwrap();
        assert!(output.schedule.dram_bytes() > on_chip.schedule.dram_bytes());
    }
}
