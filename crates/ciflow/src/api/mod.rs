//! The public session API: pluggable schedule strategies, a strategy
//! registry, and parallel batch execution.
//!
//! The CiFlow paper's contribution is a *comparison of dataflows* — so the
//! reproduction's API is organized around making dataflows pluggable rather
//! than enumerated. Three pieces:
//!
//! * [`ScheduleStrategy`] — the trait a dataflow implements: give it an
//!   [`HksShape`](crate::hks_shape::HksShape) and a
//!   [`ScheduleConfig`](crate::schedule::ScheduleConfig), get back a
//!   [`Schedule`](crate::schedule::Schedule) (or a typed error). The three
//!   paper dataflows ([`MaxParallelStrategy`], [`DigitCentricStrategy`],
//!   [`OutputCentricStrategy`]) are ordinary implementations with no special
//!   status; out-of-crate strategies plug in identically.
//! * [`StrategyRegistry`] — name → strategy resolution, pre-populated with
//!   the built-ins and open to registration.
//! * [`Session`] — owns an [`RpuConfig`](rpu::RpuConfig) and a registry,
//!   accepts one-or-many [`Job`]s, and executes them as a batch: in parallel
//!   across all cores (with the default `parallel` feature), each job
//!   reporting its own `Result` — a panicking strategy fails its job, not
//!   the batch.
//!
//! ```
//! use ciflow::api::Session;
//! use ciflow::{Dataflow, HksBenchmark};
//!
//! let outcome = Session::new()
//!     .job(HksBenchmark::ARK, Dataflow::OutputCentric)
//!     .job(HksBenchmark::ARK, "MP") // names resolve through the registry
//!     .run();
//! assert!(outcome.all_ok());
//! let oc = &outcome.results[0].outcome.as_ref().unwrap();
//! assert!(oc.runtime_ms() > 0.0);
//! ```

mod registry;
mod session;
mod strategy;

pub use registry::StrategyRegistry;
pub use session::{
    AnalyticOutput, BatchOutcome, BoundsResult, Job, JobOutput, JobResult, Session, StrategySpec,
    VerifyResult, WorkloadSpec,
};
pub use strategy::{
    DigitCentricStrategy, MaxParallelStrategy, OutputCentricStrategy, ScheduleStrategy,
};
