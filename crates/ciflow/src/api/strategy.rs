//! The [`ScheduleStrategy`] trait and the three built-in dataflow strategies.

use crate::error::CiflowError;
use crate::hks_shape::HksShape;
use crate::schedule::{build_digit_centric, build_max_parallel, build_output_centric};
use crate::schedule::{Schedule, ScheduleConfig};

/// A pluggable HKS scheduling strategy (a *dataflow*, in the paper's terms).
///
/// Implementors turn the per-stage geometry of one hybrid key switch into an
/// RPU task graph, deciding the order of ModUp/ModDown work and which
/// intermediates stay in the on-chip data memory. The three paper dataflows
/// implement this trait; new dataflows plug in through
/// [`StrategyRegistry::register`](crate::api::StrategyRegistry::register)
/// without touching anything in this crate.
///
/// Implementations must be `Send + Sync`: a [`Session`](crate::api::Session)
/// batch invokes them from multiple worker threads.
pub trait ScheduleStrategy: Send + Sync {
    /// The full, human-readable name (e.g. `"output-centric"`).
    fn name(&self) -> &str;

    /// The short name used in tables, figures and
    /// [`Schedule::strategy`](crate::schedule::Schedule::strategy) labels
    /// (e.g. `"OC"`). Must be unique within a registry.
    fn short_name(&self) -> &str;

    /// A one-sentence description of the scheduling approach.
    fn description(&self) -> &str {
        ""
    }

    /// Builds the task-graph schedule for one hybrid key switch.
    ///
    /// # Errors
    ///
    /// Returns a [`CiflowError`] if the strategy cannot schedule this shape
    /// under this configuration (the built-in strategies never fail; custom
    /// strategies may, e.g. when they require a minimum memory capacity).
    fn build(&self, shape: &HksShape, config: &ScheduleConfig) -> Result<Schedule, CiflowError>;
}

/// **Max-Parallel (MP)** — run each stage over *all* towers before starting
/// the next stage (the baseline of prior accelerators; huge intermediates).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxParallelStrategy;

impl ScheduleStrategy for MaxParallelStrategy {
    fn name(&self) -> &str {
        "max-parallel"
    }

    fn short_name(&self) -> &str {
        "MP"
    }

    fn description(&self) -> &str {
        "stage-by-stage over all towers; maximal parallelism, maximal intermediate state"
    }

    fn build(&self, shape: &HksShape, config: &ScheduleConfig) -> Result<Schedule, CiflowError> {
        Ok(build_max_parallel(shape, config))
    }
}

/// **Digit-Centric (DC)** — carry one digit through all of ModUp P1–P5
/// before the next digit, maximizing reuse of the loaded digit (MAD-style).
#[derive(Debug, Clone, Copy, Default)]
pub struct DigitCentricStrategy;

impl ScheduleStrategy for DigitCentricStrategy {
    fn name(&self) -> &str {
        "digit-centric"
    }

    fn short_name(&self) -> &str {
        "DC"
    }

    fn description(&self) -> &str {
        "one digit at a time through ModUp P1-P5; reuses the loaded digit"
    }

    fn build(&self, shape: &HksShape, config: &ScheduleConfig) -> Result<Schedule, CiflowError> {
        Ok(build_digit_centric(shape, config))
    }
}

/// **Output-Centric (OC)** — the paper's proposal: compute one output tower
/// at a time so the BConv expansion never materializes.
#[derive(Debug, Clone, Copy, Default)]
pub struct OutputCentricStrategy;

impl ScheduleStrategy for OutputCentricStrategy {
    fn name(&self) -> &str {
        "output-centric"
    }

    fn short_name(&self) -> &str {
        "OC"
    }

    fn description(&self) -> &str {
        "one output tower at a time; compresses the intermediate working set and reuses INTT outputs"
    }

    fn build(&self, shape: &HksShape, config: &ScheduleConfig) -> Result<Schedule, CiflowError> {
        Ok(build_output_centric(shape, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::HksBenchmark;

    #[test]
    fn builtin_strategies_label_their_schedules() {
        let shape = HksShape::new(HksBenchmark::ARK);
        let config = ScheduleConfig::default();
        let cases: [(&dyn ScheduleStrategy, &str); 3] = [
            (&MaxParallelStrategy, "MP"),
            (&DigitCentricStrategy, "DC"),
            (&OutputCentricStrategy, "OC"),
        ];
        for (strategy, short) in cases {
            let schedule = strategy.build(&shape, &config).unwrap();
            assert_eq!(schedule.strategy, short);
            assert_eq!(strategy.short_name(), short);
            assert!(!strategy.description().is_empty());
            assert!(schedule.total_ops() > 0);
        }
    }
}
