//! Multi-kernel workload pipelines: chained HKS invocations fused into one
//! task graph.
//!
//! The paper evaluates single HKS kernels, but its headline argument — the
//! dataflow decides whether key switching is bandwidth- or compute-bound —
//! matters most in real CKKS programs where many key switches chain
//! back-to-back: rotation batches, relinearize+rescale sequences, the
//! key-switch backbone of bootstrapping. A [`Workload`] describes such a
//! sequence of kernel steps over one Table III parameter point;
//! [`build_workload`] turns it into a single fused task graph by stitching
//! per-kernel schedules together with
//! [`TaskGraph::append_offset`](rpu::TaskGraph::append_offset).
//!
//! Two pipeline modes are compared:
//!
//! * [`PipelineMode::BackToBack`] — the unfused baseline: every kernel waits
//!   for the previous kernel to fully drain (a barrier between kernels),
//!   which is what running each kernel as its own engine invocation would
//!   measure.
//! * [`PipelineMode::Fused`] — cross-kernel dependencies are expressed at
//!   buffer granularity, so the decoupled memory queue prefetches kernel
//!   *i+1*'s evk towers and input limbs under kernel *i*'s compute. When the
//!   chained ciphertext polynomial fits in the data memory, its DRAM
//!   round-trip (the producing kernel's output store and the consuming
//!   kernel's input load) is elided entirely: the value is forwarded
//!   on-chip.
//!
//! Fusion keys on the canonical buffer labels every
//! [`ScheduleBuilder`](crate::schedule)-based strategy emits (`load in[t]`,
//! `store out1[t]`). A custom strategy that does not use those labels still
//! runs correctly — its kernels are chained through a conservative barrier —
//! it just forgoes the overlap.

use crate::api::ScheduleStrategy;
use crate::benchmark::HksBenchmark;
use crate::error::CiflowError;
use crate::hks_shape::HksShape;
use crate::schedule::{Schedule, ScheduleConfig};
use rpu::{AppendAction, Task, TaskGraph, TaskId};
use serde::Serialize;
use std::collections::HashMap;

/// One step of a workload: how many chained HKS invocations it expands to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum KernelStep {
    /// A single hybrid key switch.
    KeySwitch,
    /// A batch of `count` chained rotations — each rotation applies its
    /// Galois automorphism and key-switches the rotated polynomial (the
    /// dominant pattern in CKKS matrix-vector products and bootstrapping's
    /// CoeffToSlot/SlotToCoeff stages).
    RotationBatch {
        /// Number of rotations in the batch.
        count: usize,
    },
    /// A relinearization after a ciphertext-ciphertext multiply: one key
    /// switch of the quadratic component.
    Relinearize,
}

impl KernelStep {
    /// Number of HKS kernel invocations this step expands to.
    ///
    /// ```
    /// use ciflow::KernelStep;
    /// assert_eq!(KernelStep::KeySwitch.hks_count(), 1);
    /// assert_eq!(KernelStep::Relinearize.hks_count(), 1);
    /// assert_eq!(KernelStep::RotationBatch { count: 6 }.hks_count(), 6);
    /// ```
    pub fn hks_count(&self) -> usize {
        match self {
            KernelStep::KeySwitch | KernelStep::Relinearize => 1,
            KernelStep::RotationBatch { count } => *count,
        }
    }
}

/// How the kernels of a workload are scheduled relative to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PipelineMode {
    /// Kernels are fused into one pipeline: cross-kernel dependencies at
    /// buffer granularity, memory-queue prefetch of the next kernel under the
    /// current kernel's compute, and on-chip forwarding of the chained
    /// polynomial when it fits.
    Fused,
    /// Kernels run back-to-back with a full barrier between them — the
    /// unfused baseline.
    BackToBack,
}

impl std::fmt::Display for PipelineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineMode::Fused => write!(f, "fused"),
            PipelineMode::BackToBack => write!(f, "back-to-back"),
        }
    }
}

/// A named sequence of kernel steps over one benchmark parameter point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Workload {
    /// Human-readable workload name (used in job labels and reports).
    pub name: String,
    /// The Table III parameter point every kernel runs at.
    pub benchmark: HksBenchmark,
    steps: Vec<KernelStep>,
}

impl Workload {
    /// An empty workload; add steps with [`Workload::step`]. A workload with
    /// no steps is rejected by [`build_workload`] — every pipeline must
    /// contain at least one kernel invocation.
    ///
    /// ```
    /// use ciflow::{HksBenchmark, KernelStep, Workload};
    /// let w = Workload::new("mvp-row", HksBenchmark::ARK)
    ///     .step(KernelStep::Relinearize)
    ///     .step(KernelStep::RotationBatch { count: 3 });
    /// assert_eq!(w.hks_invocations(), 4);
    /// assert_eq!(w.steps().len(), 2);
    /// ```
    pub fn new(name: impl Into<String>, benchmark: HksBenchmark) -> Self {
        Self {
            name: name.into(),
            benchmark,
            steps: Vec::new(),
        }
    }

    /// Appends one step (builder style; see [`Workload::new`] for an
    /// example).
    pub fn step(mut self, step: KernelStep) -> Self {
        self.steps.push(step);
        self
    }

    /// The steps in execution order.
    pub fn steps(&self) -> &[KernelStep] {
        &self.steps
    }

    /// Total number of HKS kernel invocations across all steps — always the
    /// sum of [`KernelStep::hks_count`] over [`Workload::steps`], and the
    /// value reported back as
    /// [`JobOutput::kernels`](crate::api::JobOutput::kernels) after a run.
    pub fn hks_invocations(&self) -> usize {
        self.steps.iter().map(KernelStep::hks_count).sum()
    }

    /// Preset: a batch of `count` chained rotations.
    ///
    /// ```
    /// use ciflow::{HksBenchmark, Workload};
    /// let w = Workload::rotation_batch(HksBenchmark::ARK, 8);
    /// assert_eq!(w.hks_invocations(), 8);
    /// assert!(w.name.contains("rot8"));
    /// ```
    pub fn rotation_batch(benchmark: HksBenchmark, count: usize) -> Self {
        Self::new(format!("rot{count}-{}", benchmark.name), benchmark)
            .step(KernelStep::RotationBatch { count })
    }

    /// Preset: a multiply-relinearize-rotate inner loop (one relinearization
    /// followed by a small rotation batch), the body of an encrypted
    /// matrix-vector product.
    pub fn mul_rot_block(benchmark: HksBenchmark, rotations: usize) -> Self {
        Self::new(format!("mulrot{rotations}-{}", benchmark.name), benchmark)
            .step(KernelStep::Relinearize)
            .step(KernelStep::RotationBatch { count: rotations })
    }

    /// Preset: the key-switch backbone of one CKKS bootstrapping iteration —
    /// a CoeffToSlot rotation batch, the EvalMod relinearization, and a
    /// SlotToCoeff rotation batch, each batch followed by its own
    /// relinearization.
    pub fn bootstrap_key_switch(benchmark: HksBenchmark) -> Self {
        Self::new(format!("bts-ks-{}", benchmark.name), benchmark)
            .step(KernelStep::RotationBatch { count: 6 })
            .step(KernelStep::Relinearize)
            .step(KernelStep::RotationBatch { count: 6 })
            .step(KernelStep::Relinearize)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} x {} HKS)",
            self.name,
            self.benchmark.name,
            self.hks_invocations()
        )
    }
}

/// A fused (or deliberately unfused) multi-kernel schedule plus its pipeline
/// metadata.
///
/// The stitched [`schedule`](Self::schedule) carries the channel hints of
/// its per-kernel template: task labels keep their canonical buffer names
/// (with a `k<i>:` kernel prefix), so
/// [`Schedule::channel_map`] places evk prefetch
/// and limb writebacks on disjoint memory channels for any channel count —
/// the cross-kernel overlap the multi-channel memory model exists for.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSchedule {
    /// The stitched schedule: one task graph covering every kernel.
    pub schedule: Schedule,
    /// Number of HKS kernel invocations in the pipeline. Always equals the
    /// workload's [`Workload::hks_invocations`].
    pub kernels: usize,
    /// The pipeline mode the graph was stitched under.
    pub mode: PipelineMode,
    /// DRAM traffic eliminated by on-chip forwarding, in bytes (0 when
    /// unfused or when the chained polynomial does not fit on-chip).
    /// Invariant: `kernels * template_bytes - forwarded_bytes` equals the
    /// stitched graph's total DRAM traffic.
    pub forwarded_bytes: u64,
}

/// The dependencies one kernel exposes to its successor.
struct Boundary {
    /// Every sink of the kernel (for the back-to-back barrier).
    terminals: Vec<TaskId>,
    /// Per output tower: the tasks standing for `store out1[t]` (the store
    /// itself, or — when elided — the compute task producing the tower).
    forward: HashMap<usize, Vec<TaskId>>,
}

/// Parses the tower index out of a canonical buffer label such as
/// `store out1[12]` or `load in[3]`, given its prefix.
fn tower_index(label: &str, prefix: &str) -> Option<usize> {
    label.strip_prefix(prefix)?.strip_suffix(']')?.parse().ok()
}

/// True for the loads of the kernel's chained input polynomial.
fn is_input_load(task: &Task) -> bool {
    task.is_memory() && tower_index(&task.label, "load in[").is_some()
}

/// The tower a `store out1[t]` task writes, if this is one.
fn forwarded_store_tower(task: &Task) -> Option<usize> {
    if task.is_memory() {
        tower_index(&task.label, "store out1[")
    } else {
        None
    }
}

/// Builds the pipeline schedule for a workload under one strategy.
///
/// Every kernel invocation uses the schedule the strategy generates for the
/// workload's benchmark; kernel *i+1*'s input is kernel *i*'s second output
/// polynomial (the key-switched component a rotation or relinearization
/// chains on). In [`PipelineMode::Fused`] mode the graphs are stitched at
/// buffer granularity; in [`PipelineMode::BackToBack`] mode a barrier
/// separates consecutive kernels.
///
/// # Errors
///
/// Returns [`CiflowError::InvalidConfig`] for a workload with zero kernel
/// invocations, propagates the strategy's build error, and reports
/// [`CiflowError::Graph`] if stitching produces an inconsistent graph (a
/// fusion-layer bug).
pub fn build_workload(
    workload: &Workload,
    strategy: &dyn ScheduleStrategy,
    config: &ScheduleConfig,
    mode: PipelineMode,
) -> Result<WorkloadSchedule, CiflowError> {
    let kernels = workload.hks_invocations();
    if kernels == 0 {
        return Err(CiflowError::InvalidConfig {
            message: format!(
                "workload {:?} contains no kernel invocations",
                workload.name
            ),
        });
    }
    let shape = HksShape::new(workload.benchmark);
    let kernel = strategy.build(&shape, config)?;

    // Per-kernel boundary structure, computed once on the template graph.
    let kernel_terminals = kernel.graph.terminal_tasks();
    let forward_stores: HashMap<usize, TaskId> = kernel
        .graph
        .tasks()
        .iter()
        .filter_map(|t| forwarded_store_tower(t).map(|tower| (tower, t.id)))
        .collect();
    // Buffer-granular stitching needs the canonical input-load labels; a
    // strategy without them chains through a conservative barrier instead.
    let input_loads = kernel
        .graph
        .tasks()
        .iter()
        .filter(|t| is_input_load(t))
        .count();
    let canonical = input_loads > 0;
    // On-chip forwarding requires the canonical per-tower output stores and a
    // chained polynomial no larger than half the data memory. Forwarding is
    // capacity-neutral relative to the per-kernel residency the tracker
    // already accounts for: the producing kernel pins each `out1[t]` tower in
    // the slots freed by the very combine that releases `acc0[t]`/`acc1[t]`,
    // and the consuming kernel's working set charges `in[]` regardless of
    // whether it arrives by DRAM load or by forwarding. The half-capacity
    // bound keeps the boundary overlap (producer's ModDown tail running
    // concurrently with the consumer's ModUp ramp) within the configured
    // memory. Forwarding also requires exactly one load per input tower: a
    // template with capacity-pressure *reloads* of `in[t]` re-reads data it
    // evicted mid-kernel, and under forwarding that DRAM copy would not
    // exist — such kernels chain through their stores instead.
    let forwarding = mode == PipelineMode::Fused
        && canonical
        && input_loads == shape.ell()
        && forward_stores.len() == shape.ell()
        && 2 * shape.input_bytes() <= config.data_memory_bytes;

    let mut graph = TaskGraph::new();
    let mut prev: Option<Boundary> = None;
    for i in 0..kernels {
        let last = i + 1 == kernels;
        let prefix = if kernels == 1 {
            String::new()
        } else {
            format!("k{i}:")
        };
        let appended = graph
            .append_offset(&kernel.graph, &prefix, |task| {
                if let Some(boundary) = &prev {
                    if mode == PipelineMode::BackToBack || !canonical {
                        if task.dependencies.is_empty() {
                            return AppendAction::Keep {
                                extra_deps: boundary.terminals.clone(),
                            };
                        }
                    } else if is_input_load(task) {
                        // The chained input: forwarded on-chip, or loaded
                        // after the producing kernel's store, or (for
                        // non-canonical strategies) barriered.
                        let tower = tower_index(&task.label, "load in[");
                        let producers = tower
                            .and_then(|t| boundary.forward.get(&t))
                            .unwrap_or(&boundary.terminals)
                            .clone();
                        return if forwarding {
                            AppendAction::Splice {
                                extra_deps: producers,
                            }
                        } else {
                            AppendAction::Keep {
                                extra_deps: producers,
                            }
                        };
                    }
                }
                if forwarding && !last && forwarded_store_tower(task).is_some() {
                    // The chained polynomial never round-trips through DRAM:
                    // elide its store, consumers chain on its producer.
                    return AppendAction::Splice {
                        extra_deps: Vec::new(),
                    };
                }
                AppendAction::keep()
            })
            .map_err(CiflowError::Graph)?;

        let terminals: Vec<TaskId> = {
            let mut ids: Vec<TaskId> = kernel_terminals
                .iter()
                .flat_map(|&old| appended.resolve(old).iter().copied())
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        };
        let forward = forward_stores
            .iter()
            .map(|(&tower, &old)| (tower, appended.resolve(old).to_vec()))
            .collect();
        prev = Some(Boundary { terminals, forward });
    }

    let (kernel_loaded, kernel_stored) = kernel.graph.total_bytes();
    let (loaded, stored) = graph.total_bytes();
    let forwarded_bytes = kernels as u64 * (kernel_loaded + kernel_stored) - (loaded + stored);
    // The pipeline's peak residency equals the per-kernel peak: the forwarded
    // polynomial reuses space both adjacent kernels already account for (see
    // the forwarding-eligibility comment above), so it never pushes the
    // pipeline past the capacity the kernel schedule was generated against.
    let peak_on_chip_bytes = kernel.peak_on_chip_bytes;
    Ok(WorkloadSchedule {
        schedule: Schedule {
            strategy: kernel.strategy.clone(),
            graph,
            peak_on_chip_bytes,
            spill_bytes: kernels as u64 * kernel.spill_bytes,
        },
        kernels,
        mode,
        forwarded_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::Dataflow;
    use rpu::{EvkPolicy, RpuConfig, RpuEngine};

    fn config(evk_policy: EvkPolicy) -> ScheduleConfig {
        ScheduleConfig {
            data_memory_bytes: 32 * rpu::MIB,
            evk_policy,
        }
    }

    fn build(
        benchmark: HksBenchmark,
        dataflow: Dataflow,
        evk_policy: EvkPolicy,
        count: usize,
        mode: PipelineMode,
    ) -> WorkloadSchedule {
        build_workload(
            &Workload::rotation_batch(benchmark, count),
            dataflow.strategy(),
            &config(evk_policy),
            mode,
        )
        .unwrap()
    }

    #[test]
    fn workload_presets_count_their_kernels() {
        assert_eq!(
            Workload::rotation_batch(HksBenchmark::ARK, 8).hks_invocations(),
            8
        );
        assert_eq!(
            Workload::mul_rot_block(HksBenchmark::ARK, 3).hks_invocations(),
            4
        );
        assert_eq!(
            Workload::bootstrap_key_switch(HksBenchmark::DPRIVE).hks_invocations(),
            14
        );
        let display = Workload::rotation_batch(HksBenchmark::ARK, 8).to_string();
        assert!(
            display.contains("ARK") && display.contains('8'),
            "{display}"
        );
    }

    #[test]
    fn empty_workload_is_rejected() {
        let err = build_workload(
            &Workload::new("empty", HksBenchmark::ARK),
            Dataflow::OutputCentric.strategy(),
            &config(EvkPolicy::OnChip),
            PipelineMode::Fused,
        )
        .unwrap_err();
        assert!(matches!(err, CiflowError::InvalidConfig { .. }));
    }

    #[test]
    fn pipelines_conserve_compute_work() {
        // Fusion rearranges memory traffic, never the modular operations.
        let shape = HksShape::new(HksBenchmark::ARK);
        for mode in [PipelineMode::Fused, PipelineMode::BackToBack] {
            for dataflow in Dataflow::all() {
                let ws = build(HksBenchmark::ARK, dataflow, EvkPolicy::Streamed, 5, mode);
                assert_eq!(ws.kernels, 5);
                assert_eq!(ws.schedule.total_ops(), 5 * shape.total_ops(), "{dataflow}");
            }
        }
    }

    #[test]
    fn fused_pipelines_move_no_more_data_than_unfused() {
        for benchmark in HksBenchmark::all() {
            for dataflow in Dataflow::all() {
                let fused = build(
                    benchmark,
                    dataflow,
                    EvkPolicy::Streamed,
                    4,
                    PipelineMode::Fused,
                );
                let unfused = build(
                    benchmark,
                    dataflow,
                    EvkPolicy::Streamed,
                    4,
                    PipelineMode::BackToBack,
                );
                assert!(
                    fused.schedule.dram_bytes() <= unfused.schedule.dram_bytes(),
                    "{} {dataflow}",
                    benchmark.name
                );
                assert_eq!(unfused.forwarded_bytes, 0);
            }
        }
    }

    #[test]
    fn forwarding_elides_the_boundary_round_trip_when_it_fits() {
        // ARK's chained polynomial (12 MiB) fits in half the 32 MiB data
        // memory: each of the 3 interior boundaries of a 4-kernel pipeline
        // saves one store plus one load of the polynomial.
        let shape = HksShape::new(HksBenchmark::ARK);
        let fused = build(
            HksBenchmark::ARK,
            Dataflow::OutputCentric,
            EvkPolicy::OnChip,
            4,
            PipelineMode::Fused,
        );
        assert_eq!(fused.forwarded_bytes, 3 * 2 * shape.input_bytes());
        // BTS3's polynomial (45 MiB) cannot stay resident: nothing forwarded,
        // but the stitched dependencies still chain the kernels.
        let bts3 = build(
            HksBenchmark::BTS3,
            Dataflow::OutputCentric,
            EvkPolicy::OnChip,
            4,
            PipelineMode::Fused,
        );
        assert_eq!(bts3.forwarded_bytes, 0);
    }

    #[test]
    fn forwarding_is_refused_when_the_template_reloads_its_input() {
        // Regression: at a capacity just over 2x the input (forwarding
        // nominally eligible), the OC generator runs in tight mode and
        // re-loads evicted `in[t]` towers mid-kernel. Splicing those reloads
        // would elide traffic the schedule's own tracker requires, so
        // forwarding must be refused; the fused pipeline still chains through
        // its boundary stores and moves exactly as much data as back-to-back.
        let shape = HksShape::new(HksBenchmark::ARK);
        let tight = ScheduleConfig {
            data_memory_bytes: 2 * shape.input_bytes() + shape.tower_bytes(),
            evk_policy: EvkPolicy::OnChip,
        };
        let workload = Workload::rotation_batch(HksBenchmark::ARK, 3);
        let fused = build_workload(
            &workload,
            Dataflow::OutputCentric.strategy(),
            &tight,
            PipelineMode::Fused,
        )
        .unwrap();
        assert_eq!(fused.forwarded_bytes, 0);
        let unfused = build_workload(
            &workload,
            Dataflow::OutputCentric.strategy(),
            &tight,
            PipelineMode::BackToBack,
        )
        .unwrap();
        assert_eq!(fused.schedule.dram_bytes(), unfused.schedule.dram_bytes());
    }

    #[test]
    fn pipeline_peak_residency_never_exceeds_the_data_memory() {
        // Regression: forwarding must not claim more on-chip residency than
        // the capacity the kernel schedules were generated against.
        for benchmark in HksBenchmark::all() {
            for dataflow in Dataflow::all() {
                for mode in [PipelineMode::Fused, PipelineMode::BackToBack] {
                    let ws = build(benchmark, dataflow, EvkPolicy::OnChip, 4, mode);
                    assert!(
                        ws.schedule.peak_on_chip_bytes <= 32 * rpu::MIB,
                        "{} {dataflow} {mode}: peak {} MiB exceeds the 32 MiB data memory",
                        benchmark.name,
                        ws.schedule.peak_on_chip_bytes / rpu::MIB
                    );
                }
            }
        }
    }

    #[test]
    fn pipelines_execute_without_deadlock_under_every_strategy() {
        let engine = RpuEngine::new(RpuConfig::ciflow_baseline().with_bandwidth(12.8));
        for benchmark in [HksBenchmark::ARK, HksBenchmark::BTS3] {
            for dataflow in Dataflow::all() {
                for mode in [PipelineMode::Fused, PipelineMode::BackToBack] {
                    let ws = build(benchmark, dataflow, EvkPolicy::Streamed, 3, mode);
                    // The stitched graph must satisfy the same invariants as a
                    // generated one.
                    rpu::TaskGraph::from_tasks(ws.schedule.graph.tasks().to_vec()).unwrap();
                    let result = engine.execute(&ws.schedule.graph).unwrap();
                    assert!(result.stats.runtime_seconds > 0.0);
                }
            }
        }
    }

    #[test]
    fn fused_pipeline_beats_back_to_back() {
        // The acceptance claim: at DDR4-class bandwidth, OC pipelines on ARK
        // and DPRIVE run faster fused than back-to-back, with a lower
        // compute-idle fraction.
        for benchmark in [HksBenchmark::ARK, HksBenchmark::DPRIVE] {
            for evk_policy in [EvkPolicy::OnChip, EvkPolicy::Streamed] {
                let engine =
                    RpuEngine::new(RpuConfig::ciflow_with_policy(evk_policy).with_bandwidth(12.8));
                let fused = build(
                    benchmark,
                    Dataflow::OutputCentric,
                    evk_policy,
                    8,
                    PipelineMode::Fused,
                );
                let unfused = build(
                    benchmark,
                    Dataflow::OutputCentric,
                    evk_policy,
                    8,
                    PipelineMode::BackToBack,
                );
                let fused_stats = engine.execute(&fused.schedule.graph).unwrap().stats;
                let unfused_stats = engine.execute(&unfused.schedule.graph).unwrap().stats;
                assert!(
                    fused_stats.runtime_ms() < unfused_stats.runtime_ms(),
                    "{} {evk_policy}: fused {:.2} ms vs unfused {:.2} ms",
                    benchmark.name,
                    fused_stats.runtime_ms(),
                    unfused_stats.runtime_ms()
                );
                assert!(
                    fused_stats.compute_idle_fraction() < unfused_stats.compute_idle_fraction(),
                    "{} {evk_policy}: fused idle {:.3} vs unfused idle {:.3}",
                    benchmark.name,
                    fused_stats.compute_idle_fraction(),
                    unfused_stats.compute_idle_fraction()
                );
            }
        }
    }

    #[test]
    fn back_to_back_matches_separate_kernel_executions() {
        // The unfused pipeline is the honest baseline: its runtime must match
        // the sum of independent per-kernel runs to within rounding.
        let engine = RpuEngine::new(RpuConfig::ciflow_baseline().with_bandwidth(12.8));
        let single = Dataflow::OutputCentric
            .strategy()
            .build(
                &HksShape::new(HksBenchmark::ARK),
                &config(EvkPolicy::OnChip),
            )
            .unwrap();
        let single_ms = engine.execute(&single.graph).unwrap().stats.runtime_ms();
        let unfused = build(
            HksBenchmark::ARK,
            Dataflow::OutputCentric,
            EvkPolicy::OnChip,
            6,
            PipelineMode::BackToBack,
        );
        let pipeline_ms = engine
            .execute(&unfused.schedule.graph)
            .unwrap()
            .stats
            .runtime_ms();
        let ratio = pipeline_ms / (6.0 * single_ms);
        assert!(
            (0.99..=1.01).contains(&ratio),
            "pipeline {pipeline_ms:.3} ms vs 6 x {single_ms:.3} ms (ratio {ratio:.4})"
        );
    }
}
