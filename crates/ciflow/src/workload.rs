//! Multi-kernel workload pipelines: chained HKS invocations fused into one
//! task graph.
//!
//! The paper evaluates single HKS kernels, but its headline argument — the
//! dataflow decides whether key switching is bandwidth- or compute-bound —
//! matters most in real CKKS programs where many key switches chain
//! back-to-back: rotation batches, relinearize+rescale sequences, the
//! key-switch backbone of bootstrapping. A [`Workload`] describes such a
//! sequence of kernel steps; [`build_workload`] turns it into a single fused
//! task graph by stitching per-kernel schedules together with
//! [`TaskGraph::append_offset`](rpu::TaskGraph::append_offset).
//!
//! Workloads may be **heterogeneous**: every step can carry its own
//! [`HksBenchmark`] parameter point (defaulting to the workload's), because
//! real CKKS programs *rescale* between kernels — each multiply-rescale level
//! drops one prime from the modulus chain, so the live tower count ℓ shrinks
//! as the chain progresses. The [`Workload::rescaling_chain`] preset derives
//! exactly that descending-ℓ ladder from a starting point, and
//! [`build_workload`] re-derives the chaining at *every* kernel boundary:
//! only the towers that survive into the consumer's (smaller) basis are
//! forwarded or loaded, the rest keep their ordinary output stores, and
//! forwarding eligibility plus the elided traffic are recomputed per boundary
//! instead of assuming one shared kernel template.
//!
//! Two pipeline modes are compared:
//!
//! * [`PipelineMode::BackToBack`] — the unfused baseline: every kernel waits
//!   for the previous kernel to fully drain (a barrier between kernels),
//!   which is what running each kernel as its own engine invocation would
//!   measure.
//! * [`PipelineMode::Fused`] — cross-kernel dependencies are expressed at
//!   buffer granularity, so the decoupled memory queue prefetches kernel
//!   *i+1*'s evk towers and input limbs under kernel *i*'s compute. When the
//!   chained ciphertext polynomial fits in the data memory, its DRAM
//!   round-trip (the producing kernel's output store and the consuming
//!   kernel's input load) is elided entirely: the value is forwarded
//!   on-chip.
//!
//! Fusion keys on the canonical buffer labels every
//! [`ScheduleBuilder`](crate::schedule)-based strategy emits (`load in[t]`,
//! `store out1[t]`). A custom strategy that does not use those labels still
//! runs correctly — its kernels are chained through a conservative barrier —
//! it just forgoes the overlap.

use crate::api::ScheduleStrategy;
use crate::benchmark::HksBenchmark;
use crate::error::CiflowError;
use crate::hks_shape::HksShape;
use crate::schedule::{Schedule, ScheduleConfig};
use rpu::{AppendAction, Task, TaskGraph, TaskId};
use serde::Serialize;
use std::collections::HashMap;

/// One step of a workload: how many chained HKS invocations it expands to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum KernelStep {
    /// A single hybrid key switch.
    KeySwitch,
    /// A batch of `count` chained rotations — each rotation applies its
    /// Galois automorphism and key-switches the rotated polynomial (the
    /// dominant pattern in CKKS matrix-vector products and bootstrapping's
    /// CoeffToSlot/SlotToCoeff stages).
    RotationBatch {
        /// Number of rotations in the batch.
        count: usize,
    },
    /// A relinearization after a ciphertext-ciphertext multiply: one key
    /// switch of the quadratic component.
    Relinearize,
}

impl KernelStep {
    /// Number of HKS kernel invocations this step expands to.
    ///
    /// ```
    /// use ciflow::KernelStep;
    /// assert_eq!(KernelStep::KeySwitch.hks_count(), 1);
    /// assert_eq!(KernelStep::Relinearize.hks_count(), 1);
    /// assert_eq!(KernelStep::RotationBatch { count: 6 }.hks_count(), 6);
    /// ```
    pub fn hks_count(&self) -> usize {
        match self {
            KernelStep::KeySwitch | KernelStep::Relinearize => 1,
            KernelStep::RotationBatch { count } => *count,
        }
    }
}

/// One entry of a workload: a [`KernelStep`] plus the parameter point it runs
/// at (`None` means the workload's default benchmark).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WorkloadStep {
    /// What the step does.
    pub step: KernelStep,
    /// The step's own parameter point, or `None` to inherit the workload's.
    pub benchmark: Option<HksBenchmark>,
}

impl WorkloadStep {
    /// The parameter point this step runs at, given the workload default.
    pub fn benchmark_or(&self, default: HksBenchmark) -> HksBenchmark {
        self.benchmark.unwrap_or(default)
    }

    /// Number of HKS kernel invocations this step expands to.
    pub fn hks_count(&self) -> usize {
        self.step.hks_count()
    }
}

/// How the kernels of a workload are scheduled relative to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum PipelineMode {
    /// Kernels are fused into one pipeline: cross-kernel dependencies at
    /// buffer granularity, memory-queue prefetch of the next kernel under the
    /// current kernel's compute, and on-chip forwarding of the chained
    /// polynomial when it fits.
    Fused,
    /// Kernels run back-to-back with a full barrier between them — the
    /// unfused baseline.
    BackToBack,
}

impl std::fmt::Display for PipelineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineMode::Fused => write!(f, "fused"),
            PipelineMode::BackToBack => write!(f, "back-to-back"),
        }
    }
}

/// A named sequence of kernel steps, each at its own (or the default)
/// benchmark parameter point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Workload {
    /// Human-readable workload name (used in job labels and reports).
    pub name: String,
    /// The default Table III parameter point a step runs at unless it carries
    /// its own (see [`Workload::step_at`]).
    pub benchmark: HksBenchmark,
    steps: Vec<WorkloadStep>,
}

impl Workload {
    /// An empty workload; add steps with [`Workload::step`] or
    /// [`Workload::step_at`]. A workload with no kernel invocations is
    /// rejected by [`build_workload`] — every pipeline must contain at least
    /// one kernel.
    ///
    /// ```
    /// use ciflow::{HksBenchmark, KernelStep, Workload};
    /// let w = Workload::new("mvp-row", HksBenchmark::ARK)
    ///     .step(KernelStep::Relinearize)
    ///     .step(KernelStep::RotationBatch { count: 3 });
    /// assert_eq!(w.hks_invocations(), 4);
    /// assert_eq!(w.steps().len(), 2);
    /// ```
    pub fn new(name: impl Into<String>, benchmark: HksBenchmark) -> Self {
        Self {
            name: name.into(),
            benchmark,
            steps: Vec::new(),
        }
    }

    /// Appends one step at the workload's default parameter point (builder
    /// style; see [`Workload::new`] for an example).
    pub fn step(mut self, step: KernelStep) -> Self {
        self.steps.push(WorkloadStep {
            step,
            benchmark: None,
        });
        self
    }

    /// Appends one step at its own parameter point — how heterogeneous
    /// pipelines (e.g. rescaling chains, where ℓ shrinks between kernels)
    /// are described.
    ///
    /// ```
    /// use ciflow::{HksBenchmark, KernelStep, Workload};
    /// let w = Workload::new("square-then-rotate", HksBenchmark::ARK)
    ///     .step(KernelStep::Relinearize)
    ///     .step_at(
    ///         KernelStep::RotationBatch { count: 2 },
    ///         HksBenchmark::ARK.at_q_towers(23),
    ///     );
    /// assert_eq!(w.kernel_benchmarks().iter().map(|b| b.q_towers).collect::<Vec<_>>(),
    ///            vec![24, 23, 23]);
    /// assert!(w.is_heterogeneous());
    /// ```
    pub fn step_at(mut self, step: KernelStep, benchmark: HksBenchmark) -> Self {
        self.steps.push(WorkloadStep {
            step,
            benchmark: Some(benchmark),
        });
        self
    }

    /// The steps in execution order.
    pub fn steps(&self) -> &[WorkloadStep] {
        &self.steps
    }

    /// Total number of HKS kernel invocations across all steps — always the
    /// sum of [`KernelStep::hks_count`] over [`Workload::steps`], and the
    /// value reported back as
    /// [`JobOutput::kernels`](crate::api::JobOutput::kernels) after a run.
    pub fn hks_invocations(&self) -> usize {
        self.steps.iter().map(WorkloadStep::hks_count).sum()
    }

    /// The parameter point of every kernel invocation, in execution order
    /// (each step expanded by its [`KernelStep::hks_count`]). This is the
    /// per-kernel shape ladder reported back as
    /// [`JobOutput::kernel_benchmarks`](crate::api::JobOutput::kernel_benchmarks).
    pub fn kernel_benchmarks(&self) -> Vec<HksBenchmark> {
        self.steps
            .iter()
            .flat_map(|s| std::iter::repeat_n(s.benchmark_or(self.benchmark), s.hks_count()))
            .collect()
    }

    /// True if any step runs at a parameter point different from the
    /// workload's default.
    pub fn is_heterogeneous(&self) -> bool {
        self.steps
            .iter()
            .any(|s| s.benchmark.is_some_and(|b| b != self.benchmark))
    }

    /// Preset: a batch of `count` chained rotations.
    ///
    /// ```
    /// use ciflow::{HksBenchmark, Workload};
    /// let w = Workload::rotation_batch(HksBenchmark::ARK, 8);
    /// assert_eq!(w.hks_invocations(), 8);
    /// assert!(w.name.contains("rot8"));
    /// ```
    pub fn rotation_batch(benchmark: HksBenchmark, count: usize) -> Self {
        Self::new(format!("rot{count}-{}", benchmark.name), benchmark)
            .step(KernelStep::RotationBatch { count })
    }

    /// Preset: a multiply-relinearize-rotate inner loop (one relinearization
    /// followed by a small rotation batch), the body of an encrypted
    /// matrix-vector product.
    pub fn mul_rot_block(benchmark: HksBenchmark, rotations: usize) -> Self {
        Self::new(format!("mulrot{rotations}-{}", benchmark.name), benchmark)
            .step(KernelStep::Relinearize)
            .step(KernelStep::RotationBatch { count: rotations })
    }

    /// Preset: the key-switch backbone of one CKKS bootstrapping iteration —
    /// a CoeffToSlot rotation batch, the EvalMod relinearization, and a
    /// SlotToCoeff rotation batch, each batch followed by its own
    /// relinearization.
    pub fn bootstrap_key_switch(benchmark: HksBenchmark) -> Self {
        Self::new(format!("bts-ks-{}", benchmark.name), benchmark)
            .step(KernelStep::RotationBatch { count: 6 })
            .step(KernelStep::Relinearize)
            .step(KernelStep::RotationBatch { count: 6 })
            .step(KernelStep::Relinearize)
    }

    /// Preset: a chain of `levels` multiply-relinearize-rescale steps at
    /// descending ℓ — the whole-program shape of evaluating a degree-`levels`
    /// polynomial. Step `i` runs at
    /// [`at_q_towers(ℓ₀ − i)`](HksBenchmark::at_q_towers) of the starting
    /// point, so the working set shrinks one tower per level exactly as the
    /// modulus chain drains (clamped at ℓ = 1 for chains deeper than the
    /// starting level budget).
    ///
    /// ```
    /// use ciflow::{HksBenchmark, Workload};
    /// let w = Workload::rescaling_chain(HksBenchmark::ARK, 4);
    /// assert_eq!(w.kernel_benchmarks().iter().map(|b| b.q_towers).collect::<Vec<_>>(),
    ///            vec![24, 23, 22, 21]);
    /// assert!(w.is_heterogeneous());
    /// ```
    pub fn rescaling_chain(benchmark: HksBenchmark, levels: usize) -> Self {
        let mut workload = Self::new(format!("rescale{levels}-{}", benchmark.name), benchmark);
        for i in 0..levels {
            let point = benchmark.at_q_towers(benchmark.q_towers.saturating_sub(i));
            workload = workload.step_at(KernelStep::Relinearize, point);
        }
        workload
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} x {} HKS)",
            self.name,
            self.benchmark.name,
            self.hks_invocations()
        )
    }
}

/// A fused (or deliberately unfused) multi-kernel schedule plus its pipeline
/// metadata.
///
/// The stitched [`schedule`](Self::schedule) carries the channel hints of
/// its per-kernel templates: task labels keep their canonical buffer names
/// (with a `k<i>:` kernel prefix), so
/// [`Schedule::channel_map`] places evk prefetch
/// and limb writebacks on disjoint memory channels for any channel count —
/// derived from the union of every step's traffic, since heterogeneous steps
/// contribute different evk-vs-limb shares.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSchedule {
    /// The stitched schedule: one task graph covering every kernel.
    pub schedule: Schedule,
    /// Number of HKS kernel invocations in the pipeline. Always equals the
    /// workload's [`Workload::hks_invocations`].
    pub kernels: usize,
    /// The parameter point of each kernel invocation, in execution order
    /// (always equals the workload's [`Workload::kernel_benchmarks`]).
    pub kernel_benchmarks: Vec<HksBenchmark>,
    /// The pipeline mode the graph was stitched under.
    pub mode: PipelineMode,
    /// Total DRAM traffic eliminated by on-chip forwarding, in bytes (0 when
    /// unfused or when no boundary's chained polynomial fits on-chip).
    /// Always the sum of [`boundary_forwarded_bytes`](Self::boundary_forwarded_bytes),
    /// and always equal to the sum of the per-kernel template traffic minus
    /// the stitched graph's total DRAM traffic.
    pub forwarded_bytes: u64,
    /// DRAM traffic eliminated at each kernel boundary (`kernels − 1`
    /// entries; entry `i` covers the boundary between kernel `i` and kernel
    /// `i+1`). At a rescaling boundary only the towers surviving into the
    /// consumer's smaller basis are forwarded, so entries shrink as ℓ decays.
    pub boundary_forwarded_bytes: Vec<u64>,
}

/// The dependencies one kernel exposes to its successor.
struct Boundary {
    /// Every sink of the kernel (for the back-to-back barrier).
    terminals: Vec<TaskId>,
    /// Per output tower: the tasks standing for `store out1[t]` (the store
    /// itself, or — when elided — the compute task producing the tower).
    forward: HashMap<usize, Vec<TaskId>>,
}

/// One kernel's schedule template plus the boundary structure derived from
/// it. Built once per distinct parameter point of the workload.
struct KernelTemplate {
    shape: HksShape,
    schedule: Schedule,
    /// The template graph's sinks.
    terminals: Vec<TaskId>,
    /// Per output tower: the template's `store out1[t]` task.
    forward_stores: HashMap<usize, TaskId>,
    /// Number of `load in[t]` tasks in the template.
    input_loads: usize,
}

impl KernelTemplate {
    fn build(
        benchmark: HksBenchmark,
        strategy: &dyn ScheduleStrategy,
        config: &ScheduleConfig,
    ) -> Result<Self, CiflowError> {
        let shape = HksShape::new(benchmark);
        let schedule = strategy.build(&shape, config)?;
        let terminals = schedule.graph.terminal_tasks();
        let forward_stores = schedule
            .graph
            .tasks()
            .iter()
            .filter_map(|t| forwarded_store_tower(t).map(|tower| (tower, t.id)))
            .collect();
        let input_loads = schedule
            .graph
            .tasks()
            .iter()
            .filter(|t| is_input_load(t))
            .count();
        Ok(Self {
            shape,
            schedule,
            terminals,
            forward_stores,
            input_loads,
        })
    }

    /// Buffer-granular stitching needs the canonical input-load labels; a
    /// strategy without them chains through a conservative barrier instead.
    fn has_canonical_inputs(&self) -> bool {
        self.input_loads > 0
    }
}

/// Parses the tower index out of a canonical buffer label such as
/// `store out1[12]` or `load in[3]`, given its prefix.
fn tower_index(label: &str, prefix: &str) -> Option<usize> {
    label.strip_prefix(prefix)?.strip_suffix(']')?.parse().ok()
}

/// True for the loads of the kernel's chained input polynomial.
fn is_input_load(task: &Task) -> bool {
    task.is_memory() && tower_index(&task.label, "load in[").is_some()
}

/// The tower a `store out1[t]` task writes, if this is one.
fn forwarded_store_tower(task: &Task) -> Option<usize> {
    if task.is_memory() {
        tower_index(&task.label, "store out1[")
    } else {
        None
    }
}

/// Decides whether the chained polynomial can be forwarded on-chip across
/// the boundary from `producer` to `consumer`.
///
/// On-chip forwarding requires the producer's canonical per-tower output
/// stores, the consumer's canonical input loads, and a chained polynomial no
/// larger than half the data memory. Forwarding is capacity-neutral relative
/// to the per-kernel residency the tracker already accounts for: the
/// producing kernel pins each surviving `out1[t]` tower in the slots freed by
/// the very combine that releases `acc0[t]`/`acc1[t]`, and the consuming
/// kernel's working set charges `in[]` regardless of whether it arrives by
/// DRAM load or by forwarding. The half-capacity bound keeps the boundary
/// overlap (producer's ModDown tail running concurrently with the consumer's
/// ModUp ramp) within the configured memory — measured against the
/// *consumer's* input polynomial, which at a rescaling boundary is the
/// smaller of the two and exactly what stays resident.
///
/// Forwarding also requires exactly one load per consumer input tower: a
/// template with capacity-pressure *reloads* of `in[t]` re-reads data it
/// evicted mid-kernel, and under forwarding that DRAM copy would not exist —
/// such kernels chain through their stores instead. Finally, the consumer's
/// basis must be a prefix of the producer's output (`ℓ_c ≤ ℓ_p`, equal tower
/// sizes): a rescaling boundary drops trailing towers, it never invents new
/// ones, and towers of different ring degrees are not interchangeable.
fn forwarding_eligible(
    producer: &KernelTemplate,
    consumer: &KernelTemplate,
    config: &ScheduleConfig,
) -> bool {
    consumer.input_loads == consumer.shape.ell()
        && producer.forward_stores.len() == producer.shape.ell()
        && consumer.shape.ell() <= producer.shape.ell()
        && consumer.shape.tower_bytes() == producer.shape.tower_bytes()
        && 2 * consumer.shape.input_bytes() <= config.data_memory_bytes
}

/// Builds the pipeline schedule for a workload under one strategy.
///
/// Every kernel invocation uses the schedule the strategy generates for its
/// step's benchmark (the workload's default unless the step carries its
/// own); kernel *i+1*'s input is kernel *i*'s second output polynomial (the
/// key-switched component a rotation or relinearization chains on). In
/// [`PipelineMode::Fused`] mode the graphs are stitched at buffer
/// granularity, with chaining re-derived at every boundary — at a rescaling
/// boundary where the consumer runs at a smaller ℓ, only the surviving
/// towers are forwarded or chained, and the dropped towers keep their
/// ordinary output stores. In [`PipelineMode::BackToBack`] mode a barrier
/// separates consecutive kernels.
///
/// # Errors
///
/// Returns [`CiflowError::InvalidConfig`] for a workload with zero kernel
/// invocations (no steps, or steps that expand to nothing such as
/// `RotationBatch { count: 0 }`), propagates the strategy's build error, and
/// reports [`CiflowError::Graph`] if stitching produces an inconsistent
/// graph (a fusion-layer bug).
pub fn build_workload(
    workload: &Workload,
    strategy: &dyn ScheduleStrategy,
    config: &ScheduleConfig,
    mode: PipelineMode,
) -> Result<WorkloadSchedule, CiflowError> {
    let kernel_benchmarks = workload.kernel_benchmarks();
    let kernels = kernel_benchmarks.len();
    if kernels == 0 {
        return Err(CiflowError::InvalidConfig {
            message: format!(
                "workload {:?} contains no kernel invocations",
                workload.name
            ),
        });
    }

    // One template per distinct parameter point (a homogeneous pipeline
    // builds exactly one, like the old single-template path).
    let mut templates: HashMap<HksBenchmark, KernelTemplate> = HashMap::new();
    for &benchmark in &kernel_benchmarks {
        if let std::collections::hash_map::Entry::Vacant(slot) = templates.entry(benchmark) {
            slot.insert(KernelTemplate::build(benchmark, strategy, config)?);
        }
    }
    let template_of = |i: usize| &templates[&kernel_benchmarks[i]];

    // Forwarding eligibility, re-derived per boundary: producer i, consumer
    // i+1.
    let forwarding_at: Vec<bool> = (0..kernels.saturating_sub(1))
        .map(|i| {
            mode == PipelineMode::Fused
                && forwarding_eligible(template_of(i), template_of(i + 1), config)
        })
        .collect();

    let mut graph = TaskGraph::new();
    let mut prev: Option<Boundary> = None;
    let mut boundary_forwarded_bytes = vec![0u64; kernels.saturating_sub(1)];
    for i in 0..kernels {
        let tpl = template_of(i);
        let prefix = if kernels == 1 {
            String::new()
        } else {
            format!("k{i}:")
        };
        let inbound_forwarding = i > 0 && forwarding_at[i - 1];
        let outbound_forwarding = i + 1 < kernels && forwarding_at[i];
        // The towers that survive into the next kernel's (possibly smaller)
        // basis; everything above keeps its ordinary output store.
        let surviving = if outbound_forwarding {
            template_of(i + 1).shape.ell()
        } else {
            0
        };
        let canonical = tpl.has_canonical_inputs();
        // Bytes elided at this kernel's inbound/outbound boundary, counted
        // off the actual spliced tasks.
        let mut inbound_elided = 0u64;
        let mut outbound_elided = 0u64;
        let appended = graph
            .append_offset(&tpl.schedule.graph, &prefix, |task| {
                if let Some(boundary) = &prev {
                    if mode == PipelineMode::BackToBack || !canonical {
                        if task.dependencies.is_empty() {
                            return AppendAction::Keep {
                                extra_deps: boundary.terminals.clone(),
                            };
                        }
                    } else if is_input_load(task) {
                        // The chained input: forwarded on-chip, or loaded
                        // after the producing kernel's store, or (for
                        // non-canonical producers) chained on its terminals.
                        let tower = tower_index(&task.label, "load in[");
                        let producers = tower
                            .and_then(|t| boundary.forward.get(&t))
                            .unwrap_or(&boundary.terminals)
                            .clone();
                        return if inbound_forwarding {
                            inbound_elided += task.bytes();
                            AppendAction::Splice {
                                extra_deps: producers,
                            }
                        } else {
                            AppendAction::Keep {
                                extra_deps: producers,
                            }
                        };
                    }
                }
                if let Some(t) = forwarded_store_tower(task) {
                    if t < surviving {
                        // The chained polynomial never round-trips through
                        // DRAM: elide its store, consumers chain on its
                        // producer. Towers at or above `surviving` are
                        // dropped by the boundary rescale and store normally.
                        outbound_elided += task.bytes();
                        return AppendAction::Splice {
                            extra_deps: Vec::new(),
                        };
                    }
                }
                AppendAction::keep()
            })
            .map_err(CiflowError::Graph)?;
        if i > 0 {
            boundary_forwarded_bytes[i - 1] += inbound_elided;
        }
        if i + 1 < kernels {
            boundary_forwarded_bytes[i] += outbound_elided;
        }

        let terminals: Vec<TaskId> = {
            let mut ids: Vec<TaskId> = tpl
                .terminals
                .iter()
                .flat_map(|&old| appended.resolve(old).iter().copied())
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        };
        let forward = tpl
            .forward_stores
            .iter()
            .map(|(&tower, &old)| (tower, appended.resolve(old).to_vec()))
            .collect();
        prev = Some(Boundary { terminals, forward });
    }

    // Accumulated per boundary, never derived by one big subtraction: with
    // heterogeneous templates the per-kernel traffic varies, and
    // `kernels * template_bytes − actual` would underflow. The invariant
    // still holds and is checked: the per-kernel template traffic minus the
    // stitched traffic is exactly the forwarded total.
    let forwarded_bytes: u64 = boundary_forwarded_bytes.iter().sum();
    let mut template_traffic = 0u64;
    let mut peak_on_chip_bytes = 0u64;
    let mut spill_bytes = 0u64;
    for &benchmark in &kernel_benchmarks {
        let tpl = &templates[&benchmark];
        let (loaded, stored) = tpl.schedule.graph.total_bytes();
        template_traffic += loaded + stored;
        // The pipeline's peak residency equals the largest per-kernel peak:
        // the forwarded polynomial reuses space both adjacent kernels already
        // account for (see `forwarding_eligible`), so it never pushes the
        // pipeline past the capacity any kernel schedule was generated
        // against.
        peak_on_chip_bytes = peak_on_chip_bytes.max(tpl.schedule.peak_on_chip_bytes);
        spill_bytes += tpl.schedule.spill_bytes;
    }
    let (loaded, stored) = graph.total_bytes();
    debug_assert_eq!(
        template_traffic,
        loaded + stored + forwarded_bytes,
        "per-boundary forwarding accounting diverged from the stitched graph"
    );

    let strategy_name = templates[&kernel_benchmarks[0]].schedule.strategy.clone();
    Ok(WorkloadSchedule {
        schedule: Schedule {
            strategy: strategy_name,
            graph,
            peak_on_chip_bytes,
            spill_bytes,
        },
        kernels,
        kernel_benchmarks,
        mode,
        forwarded_bytes,
        boundary_forwarded_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::Dataflow;
    use rpu::{EvkPolicy, RpuConfig, RpuEngine};

    fn config(evk_policy: EvkPolicy) -> ScheduleConfig {
        ScheduleConfig {
            data_memory_bytes: 32 * rpu::MIB,
            evk_policy,
        }
    }

    fn build(
        benchmark: HksBenchmark,
        dataflow: Dataflow,
        evk_policy: EvkPolicy,
        count: usize,
        mode: PipelineMode,
    ) -> WorkloadSchedule {
        build_workload(
            &Workload::rotation_batch(benchmark, count),
            dataflow.strategy(),
            &config(evk_policy),
            mode,
        )
        .unwrap()
    }

    #[test]
    fn workload_presets_count_their_kernels() {
        assert_eq!(
            Workload::rotation_batch(HksBenchmark::ARK, 8).hks_invocations(),
            8
        );
        assert_eq!(
            Workload::mul_rot_block(HksBenchmark::ARK, 3).hks_invocations(),
            4
        );
        assert_eq!(
            Workload::bootstrap_key_switch(HksBenchmark::DPRIVE).hks_invocations(),
            14
        );
        assert_eq!(
            Workload::rescaling_chain(HksBenchmark::ARK, 5).hks_invocations(),
            5
        );
        let display = Workload::rotation_batch(HksBenchmark::ARK, 8).to_string();
        assert!(
            display.contains("ARK") && display.contains('8'),
            "{display}"
        );
    }

    #[test]
    fn rescaling_chain_derives_a_descending_ladder() {
        let chain = Workload::rescaling_chain(HksBenchmark::DPRIVE, 4);
        let ells: Vec<usize> = chain
            .kernel_benchmarks()
            .iter()
            .map(|b| b.q_towers)
            .collect();
        assert_eq!(ells, vec![26, 25, 24, 23]);
        assert!(chain.is_heterogeneous());
        assert!(!Workload::rotation_batch(HksBenchmark::ARK, 4).is_heterogeneous());
        // A chain deeper than the level budget clamps at ℓ = 1 instead of
        // deriving a nonsensical zero-tower point.
        let deep = Workload::rescaling_chain(HksBenchmark::ARK, 30);
        let last = *deep.kernel_benchmarks().last().unwrap();
        assert_eq!(last.q_towers, 1);
        assert!(last.dnum >= 1);
    }

    #[test]
    fn empty_workload_is_rejected() {
        let err = build_workload(
            &Workload::new("empty", HksBenchmark::ARK),
            Dataflow::OutputCentric.strategy(),
            &config(EvkPolicy::OnChip),
            PipelineMode::Fused,
        )
        .unwrap_err();
        assert!(matches!(err, CiflowError::InvalidConfig { .. }));
        // A workload whose only step expands to zero kernels is just as
        // empty: no degenerate zero-task schedule may escape.
        let err = build_workload(
            &Workload::rotation_batch(HksBenchmark::ARK, 0),
            Dataflow::OutputCentric.strategy(),
            &config(EvkPolicy::OnChip),
            PipelineMode::BackToBack,
        )
        .unwrap_err();
        assert!(matches!(err, CiflowError::InvalidConfig { .. }));
    }

    #[test]
    fn pipelines_conserve_compute_work() {
        // Fusion rearranges memory traffic, never the modular operations.
        let shape = HksShape::new(HksBenchmark::ARK);
        for mode in [PipelineMode::Fused, PipelineMode::BackToBack] {
            for dataflow in Dataflow::all() {
                let ws = build(HksBenchmark::ARK, dataflow, EvkPolicy::Streamed, 5, mode);
                assert_eq!(ws.kernels, 5);
                assert_eq!(ws.schedule.total_ops(), 5 * shape.total_ops(), "{dataflow}");
            }
        }
    }

    #[test]
    fn heterogeneous_pipelines_conserve_per_kernel_compute_work() {
        let chain = Workload::rescaling_chain(HksBenchmark::ARK, 4);
        let expected: u64 = chain
            .kernel_benchmarks()
            .iter()
            .map(|&b| HksShape::new(b).total_ops())
            .sum();
        for mode in [PipelineMode::Fused, PipelineMode::BackToBack] {
            for dataflow in Dataflow::all() {
                let ws = build_workload(
                    &chain,
                    dataflow.strategy(),
                    &config(EvkPolicy::Streamed),
                    mode,
                )
                .unwrap();
                assert_eq!(ws.schedule.total_ops(), expected, "{dataflow} {mode}");
                assert_eq!(ws.kernel_benchmarks, chain.kernel_benchmarks());
            }
        }
    }

    #[test]
    fn fused_pipelines_move_no_more_data_than_unfused() {
        for benchmark in HksBenchmark::all() {
            for dataflow in Dataflow::all() {
                let fused = build(
                    benchmark,
                    dataflow,
                    EvkPolicy::Streamed,
                    4,
                    PipelineMode::Fused,
                );
                let unfused = build(
                    benchmark,
                    dataflow,
                    EvkPolicy::Streamed,
                    4,
                    PipelineMode::BackToBack,
                );
                assert!(
                    fused.schedule.dram_bytes() <= unfused.schedule.dram_bytes(),
                    "{} {dataflow}",
                    benchmark.name
                );
                assert_eq!(unfused.forwarded_bytes, 0);
                assert!(unfused.boundary_forwarded_bytes.iter().all(|&b| b == 0));
            }
        }
    }

    #[test]
    fn forwarding_elides_the_boundary_round_trip_when_it_fits() {
        // ARK's chained polynomial (12 MiB) fits in half the 32 MiB data
        // memory: each of the 3 interior boundaries of a 4-kernel pipeline
        // saves one store plus one load of the polynomial.
        let shape = HksShape::new(HksBenchmark::ARK);
        let fused = build(
            HksBenchmark::ARK,
            Dataflow::OutputCentric,
            EvkPolicy::OnChip,
            4,
            PipelineMode::Fused,
        );
        assert_eq!(fused.forwarded_bytes, 3 * 2 * shape.input_bytes());
        assert_eq!(
            fused.boundary_forwarded_bytes,
            vec![2 * shape.input_bytes(); 3]
        );
        // BTS3's polynomial (45 MiB) cannot stay resident: nothing forwarded,
        // but the stitched dependencies still chain the kernels.
        let bts3 = build(
            HksBenchmark::BTS3,
            Dataflow::OutputCentric,
            EvkPolicy::OnChip,
            4,
            PipelineMode::Fused,
        );
        assert_eq!(bts3.forwarded_bytes, 0);
    }

    #[test]
    fn rescaling_boundary_forwards_only_the_surviving_towers() {
        // At the boundary from ℓ_p to ℓ_c < ℓ_p, the consumer chains on (and
        // the fused pipeline elides) exactly its own ℓ_c input towers; the
        // producer's dropped towers keep their output stores.
        let chain = Workload::rescaling_chain(HksBenchmark::ARK, 3);
        let fused = build_workload(
            &chain,
            Dataflow::OutputCentric.strategy(),
            &config(EvkPolicy::OnChip),
            PipelineMode::Fused,
        )
        .unwrap();
        let ells: Vec<u64> = chain
            .kernel_benchmarks()
            .iter()
            .map(|b| b.q_towers as u64)
            .collect();
        let tower = HksBenchmark::ARK.tower_bytes();
        // Boundary i elides one store + one load of the consumer's ℓ towers.
        assert_eq!(
            fused.boundary_forwarded_bytes,
            vec![2 * ells[1] * tower, 2 * ells[2] * tower]
        );
        assert_eq!(
            fused.forwarded_bytes,
            fused.boundary_forwarded_bytes.iter().sum::<u64>()
        );
        // The traffic invariant against the unfused baseline.
        let unfused = build_workload(
            &chain,
            Dataflow::OutputCentric.strategy(),
            &config(EvkPolicy::OnChip),
            PipelineMode::BackToBack,
        )
        .unwrap();
        assert_eq!(
            fused.schedule.dram_bytes() + fused.forwarded_bytes,
            unfused.schedule.dram_bytes()
        );
    }

    #[test]
    fn heterogeneous_back_to_back_does_not_underflow_forwarding_accounting() {
        // Regression: the old accounting was a single unsigned subtraction
        // `kernels * template_bytes − actual`, which underflowed (panicking
        // in debug, absurd numbers in release) as soon as per-kernel traffic
        // varied. An ascending chain makes every kernel's traffic differ.
        let ascending = Workload::new("ascend", HksBenchmark::ARK.at_q_towers(20))
            .step_at(KernelStep::KeySwitch, HksBenchmark::ARK.at_q_towers(20))
            .step_at(KernelStep::KeySwitch, HksBenchmark::ARK.at_q_towers(22))
            .step_at(KernelStep::KeySwitch, HksBenchmark::ARK);
        for mode in [PipelineMode::Fused, PipelineMode::BackToBack] {
            let ws = build_workload(
                &ascending,
                Dataflow::OutputCentric.strategy(),
                &config(EvkPolicy::Streamed),
                mode,
            )
            .unwrap();
            // An ascending boundary cannot forward (the consumer needs towers
            // the producer never had), so both modes move identical data.
            assert_eq!(ws.forwarded_bytes, 0, "{mode}");
        }
    }

    #[test]
    fn forwarding_is_refused_when_the_template_reloads_its_input() {
        // Regression: at a capacity just over 2x the input (forwarding
        // nominally eligible), the OC generator runs in tight mode and
        // re-loads evicted `in[t]` towers mid-kernel. Splicing those reloads
        // would elide traffic the schedule's own tracker requires, so
        // forwarding must be refused; the fused pipeline still chains through
        // its boundary stores and moves exactly as much data as back-to-back.
        let shape = HksShape::new(HksBenchmark::ARK);
        let tight = ScheduleConfig {
            data_memory_bytes: 2 * shape.input_bytes() + shape.tower_bytes(),
            evk_policy: EvkPolicy::OnChip,
        };
        let workload = Workload::rotation_batch(HksBenchmark::ARK, 3);
        let fused = build_workload(
            &workload,
            Dataflow::OutputCentric.strategy(),
            &tight,
            PipelineMode::Fused,
        )
        .unwrap();
        assert_eq!(fused.forwarded_bytes, 0);
        let unfused = build_workload(
            &workload,
            Dataflow::OutputCentric.strategy(),
            &tight,
            PipelineMode::BackToBack,
        )
        .unwrap();
        assert_eq!(fused.schedule.dram_bytes(), unfused.schedule.dram_bytes());
    }

    #[test]
    fn pipeline_peak_residency_never_exceeds_the_data_memory() {
        // Regression: forwarding must not claim more on-chip residency than
        // the capacity the kernel schedules were generated against.
        for benchmark in HksBenchmark::all() {
            for dataflow in Dataflow::all() {
                for mode in [PipelineMode::Fused, PipelineMode::BackToBack] {
                    let ws = build(benchmark, dataflow, EvkPolicy::OnChip, 4, mode);
                    assert!(
                        ws.schedule.peak_on_chip_bytes <= 32 * rpu::MIB,
                        "{} {dataflow} {mode}: peak {} MiB exceeds the 32 MiB data memory",
                        benchmark.name,
                        ws.schedule.peak_on_chip_bytes / rpu::MIB
                    );
                }
            }
        }
    }

    #[test]
    fn pipelines_execute_without_deadlock_under_every_strategy() {
        let engine = RpuEngine::new(RpuConfig::ciflow_baseline().with_bandwidth(12.8));
        for benchmark in [HksBenchmark::ARK, HksBenchmark::BTS3] {
            for dataflow in Dataflow::all() {
                for mode in [PipelineMode::Fused, PipelineMode::BackToBack] {
                    let ws = build(benchmark, dataflow, EvkPolicy::Streamed, 3, mode);
                    // The stitched graph must satisfy the same invariants as a
                    // generated one.
                    rpu::TaskGraph::from_tasks(ws.schedule.graph.tasks().to_vec()).unwrap();
                    let result = engine.execute(&ws.schedule.graph).unwrap();
                    assert!(result.stats.runtime_seconds > 0.0);
                }
            }
        }
    }

    #[test]
    fn rescaling_chains_execute_under_every_strategy() {
        let engine = RpuEngine::new(RpuConfig::ciflow_baseline().with_bandwidth(12.8));
        let chain = Workload::rescaling_chain(HksBenchmark::ARK, 4);
        for dataflow in Dataflow::all() {
            for mode in [PipelineMode::Fused, PipelineMode::BackToBack] {
                let ws = build_workload(
                    &chain,
                    dataflow.strategy(),
                    &config(EvkPolicy::Streamed),
                    mode,
                )
                .unwrap();
                rpu::TaskGraph::from_tasks(ws.schedule.graph.tasks().to_vec()).unwrap();
                let result = engine.execute(&ws.schedule.graph).unwrap();
                assert!(result.stats.runtime_seconds > 0.0, "{dataflow} {mode}");
            }
        }
    }

    #[test]
    fn fused_pipeline_beats_back_to_back() {
        // The acceptance claim: at DDR4-class bandwidth, OC pipelines on ARK
        // and DPRIVE run faster fused than back-to-back, with a lower
        // compute-idle fraction.
        for benchmark in [HksBenchmark::ARK, HksBenchmark::DPRIVE] {
            for evk_policy in [EvkPolicy::OnChip, EvkPolicy::Streamed] {
                let engine =
                    RpuEngine::new(RpuConfig::ciflow_with_policy(evk_policy).with_bandwidth(12.8));
                let fused = build(
                    benchmark,
                    Dataflow::OutputCentric,
                    evk_policy,
                    8,
                    PipelineMode::Fused,
                );
                let unfused = build(
                    benchmark,
                    Dataflow::OutputCentric,
                    evk_policy,
                    8,
                    PipelineMode::BackToBack,
                );
                let fused_stats = engine.execute(&fused.schedule.graph).unwrap().stats;
                let unfused_stats = engine.execute(&unfused.schedule.graph).unwrap().stats;
                assert!(
                    fused_stats.runtime_ms() < unfused_stats.runtime_ms(),
                    "{} {evk_policy}: fused {:.2} ms vs unfused {:.2} ms",
                    benchmark.name,
                    fused_stats.runtime_ms(),
                    unfused_stats.runtime_ms()
                );
                assert!(
                    fused_stats.compute_idle_fraction() < unfused_stats.compute_idle_fraction(),
                    "{} {evk_policy}: fused idle {:.3} vs unfused idle {:.3}",
                    benchmark.name,
                    fused_stats.compute_idle_fraction(),
                    unfused_stats.compute_idle_fraction()
                );
            }
        }
    }

    #[test]
    fn back_to_back_matches_separate_kernel_executions() {
        // The unfused pipeline is the honest baseline: its runtime must match
        // the sum of independent per-kernel runs to within rounding.
        let engine = RpuEngine::new(RpuConfig::ciflow_baseline().with_bandwidth(12.8));
        let single = Dataflow::OutputCentric
            .strategy()
            .build(
                &HksShape::new(HksBenchmark::ARK),
                &config(EvkPolicy::OnChip),
            )
            .unwrap();
        let single_ms = engine.execute(&single.graph).unwrap().stats.runtime_ms();
        let unfused = build(
            HksBenchmark::ARK,
            Dataflow::OutputCentric,
            EvkPolicy::OnChip,
            6,
            PipelineMode::BackToBack,
        );
        let pipeline_ms = engine
            .execute(&unfused.schedule.graph)
            .unwrap()
            .stats
            .runtime_ms();
        let ratio = pipeline_ms / (6.0 * single_ms);
        assert!(
            (0.99..=1.01).contains(&ratio),
            "pipeline {pipeline_ms:.3} ms vs 6 x {single_ms:.3} ms (ratio {ratio:.4})"
        );
    }

    #[test]
    fn heterogeneous_back_to_back_matches_separate_kernel_executions() {
        // Same honesty check for a rescaling chain: the barriered pipeline
        // must cost the sum of its (different-sized) kernels.
        let engine = RpuEngine::new(RpuConfig::ciflow_baseline().with_bandwidth(12.8));
        let chain = Workload::rescaling_chain(HksBenchmark::ARK, 3);
        let sum_ms: f64 = chain
            .kernel_benchmarks()
            .iter()
            .map(|&b| {
                let schedule = Dataflow::OutputCentric
                    .strategy()
                    .build(&HksShape::new(b), &config(EvkPolicy::OnChip))
                    .unwrap();
                engine.execute(&schedule.graph).unwrap().stats.runtime_ms()
            })
            .sum();
        let unfused = build_workload(
            &chain,
            Dataflow::OutputCentric.strategy(),
            &config(EvkPolicy::OnChip),
            PipelineMode::BackToBack,
        )
        .unwrap();
        let pipeline_ms = engine
            .execute(&unfused.schedule.graph)
            .unwrap()
            .stats
            .runtime_ms();
        let ratio = pipeline_ms / sum_ms;
        assert!(
            (0.99..=1.01).contains(&ratio),
            "pipeline {pipeline_ms:.3} ms vs sum {sum_ms:.3} ms (ratio {ratio:.4})"
        );
    }
}
