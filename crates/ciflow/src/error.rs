//! The workspace-unifying error type for the CiFlow library paths.
//!
//! Every fallible operation in the public API — strategy lookup, schedule
//! construction, RPU execution, and the functional CKKS validation paths —
//! reports through [`CiflowError`], which wraps the per-crate error types
//! ([`rpu::EngineError`], [`rpu::TaskGraphError`], [`hemath::HemathError`],
//! [`ckks::CkksError`]) so a batch driver can hold per-job results without
//! ever unwinding. The panicking convenience helpers (`runtime_ms`, …) remain
//! available for scripts and tests, but are now thin wrappers over the
//! `Result`-returning API.

use rpu::{EngineError, TaskGraphError};

/// Any error raised on a CiFlow library path.
#[derive(Debug, Clone, PartialEq)]
pub enum CiflowError {
    /// A strategy name did not match anything in the registry.
    UnknownStrategy {
        /// The requested name.
        name: String,
        /// The names the registry does know, for the error message.
        known: Vec<String>,
    },
    /// A strategy with the same short name is already registered.
    DuplicateStrategy {
        /// The conflicting short name.
        name: String,
    },
    /// A job or configuration was structurally invalid.
    InvalidConfig {
        /// Human-readable description of the problem.
        message: String,
    },
    /// A strategy failed to produce a schedule.
    ScheduleBuild {
        /// Short name of the strategy that failed.
        strategy: String,
        /// Human-readable description of the failure.
        message: String,
    },
    /// A strategy panicked while building or executing; the panic was caught
    /// at the session boundary so the rest of the batch could proceed.
    StrategyPanicked {
        /// Short name of the offending strategy.
        strategy: String,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The RPU engine rejected the schedule.
    Engine(EngineError),
    /// A task graph was structurally invalid.
    Graph(TaskGraphError),
    /// The RNS/NTT arithmetic substrate failed.
    Math(hemath::HemathError),
    /// The CKKS functional reference failed.
    Ckks(ckks::CkksError),
}

impl std::fmt::Display for CiflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CiflowError::UnknownStrategy { name, known } => {
                write!(
                    f,
                    "unknown strategy {name:?}; registered: {}",
                    known.join(", ")
                )
            }
            CiflowError::DuplicateStrategy { name } => {
                write!(f, "a strategy named {name:?} is already registered")
            }
            CiflowError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            CiflowError::ScheduleBuild { strategy, message } => {
                write!(
                    f,
                    "strategy {strategy} failed to build a schedule: {message}"
                )
            }
            CiflowError::StrategyPanicked { strategy, message } => {
                write!(f, "strategy {strategy} panicked: {message}")
            }
            CiflowError::Engine(e) => write!(f, "engine error: {e}"),
            CiflowError::Graph(e) => write!(f, "task graph error: {e}"),
            CiflowError::Math(e) => write!(f, "arithmetic error: {e}"),
            CiflowError::Ckks(e) => write!(f, "ckks error: {e}"),
        }
    }
}

impl std::error::Error for CiflowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CiflowError::Engine(e) => Some(e),
            CiflowError::Graph(e) => Some(e),
            CiflowError::Math(e) => Some(e),
            CiflowError::Ckks(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for CiflowError {
    fn from(e: EngineError) -> Self {
        CiflowError::Engine(e)
    }
}

impl From<TaskGraphError> for CiflowError {
    fn from(e: TaskGraphError) -> Self {
        CiflowError::Graph(e)
    }
}

impl From<hemath::HemathError> for CiflowError {
    fn from(e: hemath::HemathError) -> Self {
        CiflowError::Math(e)
    }
}

impl From<ckks::CkksError> for CiflowError {
    fn from(e: ckks::CkksError) -> Self {
        CiflowError::Ckks(e)
    }
}

impl From<ckks::ops::OpsError> for CiflowError {
    fn from(e: ckks::ops::OpsError) -> Self {
        CiflowError::Ckks(e.into())
    }
}

impl From<hemath::poly::RnsError> for CiflowError {
    fn from(e: hemath::poly::RnsError) -> Self {
        CiflowError::Math(e.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative_and_sources_chain() {
        let unknown = CiflowError::UnknownStrategy {
            name: "zig-zag".into(),
            known: vec!["MP".into(), "DC".into(), "OC".into()],
        };
        let text = unknown.to_string();
        assert!(text.contains("zig-zag") && text.contains("OC"), "{text}");

        let engine: CiflowError = rpu::EngineError::Deadlock {
            compute_head: Some(3),
            memory_heads: vec![(0, 7)],
            head_labels: vec![(3, "ntt x".into()), (7, "load y".into())],
            wait_chain: vec![(3, "ntt x".into()), (7, "load y".into())],
        }
        .into();
        assert!(std::error::Error::source(&engine).is_some());
        let text = engine.to_string();
        // The runtime report names the stuck heads and cites the matching
        // static lint code so dynamic and static diagnoses align.
        assert!(text.contains("deadlock"), "{text}");
        assert!(text.contains("load y") && text.contains("D001"), "{text}");

        let math: CiflowError =
            hemath::HemathError::from(hemath::poly::RnsError::BasisMismatch).into();
        assert!(matches!(math, CiflowError::Math(_)));
    }
}
