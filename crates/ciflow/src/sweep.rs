//! Parameter sweeps: the drivers behind Figures 4–9 and Tables IV–V.
//!
//! Every sweep is built on the [`Session`] batch API:
//! the sampled points become jobs, the batch fans out across all cores, and
//! failures surface as typed [`CiflowError`]s instead of panics. The
//! historical panicking entry points (`bandwidth_sweep`, `runtime_with`, …)
//! remain as thin wrappers over the `try_*` functions — the built-in
//! strategies never fail, so the wrappers only panic on a genuine simulator
//! bug. Sweeps also accept *custom* strategies: pass an inline
//! [`StrategySpec`], or resolve a registered name through your own session
//! with [`try_bandwidth_sweep_in`].

use crate::api::{Job, Session, StrategySpec};
use crate::benchmark::HksBenchmark;
use crate::dataflow::Dataflow;
use crate::error::CiflowError;
use crate::serve::{DispatchPolicy, FaultPlan, ServeConfig};
use crate::workload::{PipelineMode, Workload};
use rpu::{EvkPolicy, RpuConfig, RpuEngine};
use serde::Serialize;

/// The off-chip bandwidths (GB/s) swept in Figure 4, spanning DDR4 through
/// HBM3 as in the paper.
pub const BANDWIDTH_LADDER: [f64; 10] = [
    8.0, 12.8, 16.0, 25.6, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
];

/// The MODOPS multipliers swept in Figure 8.
pub const MODOPS_LADDER: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// The memory-channel counts swept by the multi-channel ablation. `1`
/// reproduces the classic single-queue memory model; real HBM parts expose
/// 8–32 pseudo-channels.
pub const CHANNEL_LADDER: [usize; 4] = [1, 2, 4, 8];

/// The reference bandwidth of the paper's baseline (MP, evks on-chip).
pub const BASELINE_BANDWIDTH_GBPS: f64 = 64.0;

/// One point of a runtime-vs-bandwidth series.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SweepPoint {
    /// Off-chip bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// HKS runtime in milliseconds.
    pub runtime_ms: f64,
}

/// A runtime-vs-bandwidth series for one benchmark and strategy.
#[derive(Debug, Clone, Serialize)]
pub struct SweepSeries {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Strategy short name.
    pub dataflow: String,
    /// Whether evks were streamed from DRAM.
    pub evk_streamed: bool,
    /// MODOPS multiplier used.
    pub modops: f64,
    /// The sampled points, in increasing bandwidth order.
    pub points: Vec<SweepPoint>,
}

/// The RPU configuration of one sweep sample.
fn sweep_rpu(evk_policy: EvkPolicy, bandwidth_gbps: f64, modops: f64) -> RpuConfig {
    RpuConfig::ciflow_with_policy(evk_policy)
        .with_bandwidth(bandwidth_gbps)
        .with_modops(modops)
}

/// Runs a runtime-vs-bandwidth sweep (one Figure 4/5/6 curve) for a built-in
/// or [inline](StrategySpec::Inline) strategy, executing all points as one
/// parallel batch. Names are resolved against the *built-in* registry — to
/// sweep a strategy registered in your own session, use
/// [`try_bandwidth_sweep_in`].
///
/// # Errors
///
/// Returns the first failing point's [`CiflowError`] (unknown strategy,
/// schedule failure, engine rejection).
pub fn try_bandwidth_sweep(
    benchmark: HksBenchmark,
    strategy: impl Into<StrategySpec>,
    bandwidths: &[f64],
    evk_policy: EvkPolicy,
    modops: f64,
) -> Result<SweepSeries, CiflowError> {
    try_bandwidth_sweep_in(
        &Session::new(),
        benchmark,
        strategy,
        bandwidths,
        evk_policy,
        modops,
    )
}

/// [`try_bandwidth_sweep`] resolving strategy names through `session`'s
/// registry, so custom strategies registered with
/// [`Session::register`](crate::api::Session::register) can be swept by name.
/// Only the registry is taken from `session`; each point runs on the paper's
/// RPU for `evk_policy` at its own bandwidth.
///
/// # Errors
///
/// Returns the first failing point's [`CiflowError`].
pub fn try_bandwidth_sweep_in(
    session: &Session,
    benchmark: HksBenchmark,
    strategy: impl Into<StrategySpec>,
    bandwidths: &[f64],
    evk_policy: EvkPolicy,
    modops: f64,
) -> Result<SweepSeries, CiflowError> {
    sweep_series(
        session,
        benchmark.name,
        &strategy.into(),
        bandwidths,
        evk_policy,
        modops,
        |spec| Job::new(benchmark, spec),
    )
}

/// Shared core of the bandwidth sweeps: runs one job per bandwidth point as a
/// parallel batch (resolving names through `session`'s registry) and
/// assembles the [`SweepSeries`].
fn sweep_series(
    session: &Session,
    benchmark: &'static str,
    spec: &StrategySpec,
    bandwidths: &[f64],
    evk_policy: EvkPolicy,
    modops: f64,
    job: impl Fn(StrategySpec) -> Job,
) -> Result<SweepSeries, CiflowError> {
    let sweep_session = Session::new()
        .with_registry(session.registry().clone())
        .jobs(
            bandwidths
                .iter()
                .map(|&bw| job(spec.clone()).with_rpu(sweep_rpu(evk_policy, bw, modops))),
        );
    let outputs = sweep_session.run().into_outputs()?;
    let dataflow = outputs
        .first()
        .map(|o| o.strategy.clone())
        .unwrap_or_else(|| spec.display_name());
    let points = bandwidths
        .iter()
        .zip(&outputs)
        .map(|(&bw, output)| SweepPoint {
            bandwidth_gbps: bw,
            runtime_ms: output.runtime_ms(),
        })
        .collect();
    Ok(SweepSeries {
        benchmark,
        dataflow,
        evk_streamed: evk_policy == EvkPolicy::Streamed,
        modops,
        points,
    })
}

/// Runs a runtime-vs-bandwidth sweep of a multi-kernel [`Workload`] pipeline
/// (fused or back-to-back), executing all points as one parallel batch.
/// Strategy names resolve against the built-in registry — use
/// [`try_workload_sweep_in`] for custom registries.
///
/// # Errors
///
/// Returns the first failing point's [`CiflowError`].
pub fn try_workload_sweep(
    workload: &Workload,
    strategy: impl Into<StrategySpec>,
    bandwidths: &[f64],
    evk_policy: EvkPolicy,
    modops: f64,
    mode: PipelineMode,
) -> Result<SweepSeries, CiflowError> {
    try_workload_sweep_in(
        &Session::new(),
        workload,
        strategy,
        bandwidths,
        evk_policy,
        modops,
        mode,
    )
}

/// [`try_workload_sweep`] resolving strategy names through `session`'s
/// registry. Only the registry is taken from `session`; each point runs on
/// the paper's RPU for `evk_policy` at its own bandwidth.
///
/// # Errors
///
/// Returns the first failing point's [`CiflowError`].
#[allow(clippy::too_many_arguments)]
pub fn try_workload_sweep_in(
    session: &Session,
    workload: &Workload,
    strategy: impl Into<StrategySpec>,
    bandwidths: &[f64],
    evk_policy: EvkPolicy,
    modops: f64,
    mode: PipelineMode,
) -> Result<SweepSeries, CiflowError> {
    sweep_series(
        session,
        workload.benchmark.name,
        &strategy.into(),
        bandwidths,
        evk_policy,
        modops,
        |spec| Job::workload(workload.clone(), spec, mode),
    )
}

/// Validates the bandwidths of a sweep ladder: every entry must be finite
/// and strictly positive (a zero or negative bandwidth has no physical
/// meaning and would divide durations by zero).
fn validate_bandwidths(bandwidths: &[f64], context: &str) -> Result<(), CiflowError> {
    for &bw in bandwidths {
        if !bw.is_finite() || bw <= 0.0 {
            return Err(CiflowError::InvalidConfig {
                message: format!("{context}: bandwidth {bw} GB/s must be finite and positive"),
            });
        }
    }
    Ok(())
}

/// Validates an analytic bandwidth ladder and returns its `(min, max)`.
///
/// Ladder semantics, shared by every analytic entry point and pinned by the
/// degenerate-input regression tests: the ladder may be unsorted and may
/// contain duplicates — points are evaluated pointwise in the order given,
/// and equal bandwidths produce bit-identical rows — but it must be
/// non-empty (a single-point ladder is fine) and every entry must be finite
/// and strictly positive.
fn analytic_range(bandwidths: &[f64], context: &str) -> Result<(f64, f64), CiflowError> {
    validate_bandwidths(bandwidths, context)?;
    let Some(&first) = bandwidths.first() else {
        return Err(CiflowError::InvalidConfig {
            message: format!("{context}: bandwidth ladder is empty"),
        });
    };
    let lo = bandwidths.iter().copied().fold(first, f64::min);
    let hi = bandwidths.iter().copied().fold(first, f64::max);
    Ok((lo, hi))
}

/// A bandwidth sweep evaluated in closed form: the ladder's points come from
/// one piecewise-linear [`ParametricTimeline`](rpu::ParametricTimeline)
/// instead of one engine run per point, with runtimes bit-identical to the
/// engine path (see `docs/ANALYTIC.md`).
#[derive(Debug, Clone, Serialize)]
pub struct AnalyticSweep {
    /// The evaluated series — same shape and bit-identical runtimes as
    /// [`try_workload_sweep`] over the same ladder.
    pub series: SweepSeries,
    /// Number of event-order segments the timeline stitched together over
    /// the ladder's bandwidth range.
    pub segments: usize,
    /// Bandwidths (GB/s) strictly inside the range at which the engine's
    /// event order changes — the kinks of the piecewise-linear runtime
    /// curve.
    pub breakpoints_gbps: Vec<f64>,
    /// The provable makespan lower bound (ms) at each ladder point, in
    /// ladder order — the static roofline under the `runtime_ms` curve
    /// ([`rpu::bound::analyze`], `docs/BOUNDS.md`). Soundness guarantees
    /// `bound_ms[i] <= points[i].runtime_ms` at every point.
    pub bound_ms: Vec<f64>,
    /// The effective static roofline knee (GB/s) of the bound, when it has
    /// one ([`rpu::RooflineKnee::effective_knee_gbps`]): above this
    /// bandwidth the bound is pinned to the compute floor — exactly flat at
    /// a true crossover, or tracking the floor plus a vanishing serialized
    /// residue for always-bandwidth-sensitive schedules. `None` for
    /// degenerate (no-compute or no-traffic) schedules. Always at or below
    /// the bandwidth where the *engine's* runtime flattens.
    pub knee_gbps: Option<f64>,
}

/// Runs a runtime-vs-bandwidth sweep of a [`Workload`] pipeline in closed
/// form: one symbolic execution covers the ladder's whole bandwidth range,
/// and each point is an interval lookup plus an affine replay — no event
/// loop per point. Results are bit-identical to [`try_workload_sweep`].
/// Strategy names resolve against the built-in registry — use
/// [`try_analytic_sweep_in`] for custom registries.
///
/// # Errors
///
/// Returns [`CiflowError::InvalidConfig`] for an empty ladder or a
/// non-finite/non-positive bandwidth (see [`try_analytic_sweep_in`] for the
/// full ladder semantics), and otherwise propagates the same errors as
/// [`try_workload_sweep`].
pub fn try_analytic_sweep(
    workload: &Workload,
    strategy: impl Into<StrategySpec>,
    bandwidths: &[f64],
    evk_policy: EvkPolicy,
    modops: f64,
    mode: PipelineMode,
) -> Result<AnalyticSweep, CiflowError> {
    try_analytic_sweep_in(
        &Session::new(),
        workload,
        strategy,
        bandwidths,
        evk_policy,
        modops,
        mode,
    )
}

/// [`try_analytic_sweep`] resolving strategy names through `session`'s
/// registry and reusing its schedule **and timeline** caches: repeating a
/// sweep (or sweeping a different ladder inside the same bandwidth range)
/// re-uses the cached [`ParametricTimeline`](rpu::ParametricTimeline)
/// outright.
///
/// Ladder semantics: unsorted ladders and duplicates are allowed and
/// evaluated pointwise in the order given (duplicates produce bit-identical
/// rows); an empty ladder or any non-finite/non-positive entry is rejected
/// with [`CiflowError::InvalidConfig`].
///
/// # Errors
///
/// Returns [`CiflowError::InvalidConfig`] for a degenerate ladder, or the
/// first failing point's error.
#[allow(clippy::too_many_arguments)]
pub fn try_analytic_sweep_in(
    session: &Session,
    workload: &Workload,
    strategy: impl Into<StrategySpec>,
    bandwidths: &[f64],
    evk_policy: EvkPolicy,
    modops: f64,
    mode: PipelineMode,
) -> Result<AnalyticSweep, CiflowError> {
    let (lo, hi) = analytic_range(bandwidths, "analytic bandwidth sweep")?;
    let job = Job::workload(workload.clone(), strategy.into(), mode)
        .with_rpu(sweep_rpu(evk_policy, lo, modops));
    let output = session.run_analytic(&job, lo, hi)?;
    let points = bandwidths
        .iter()
        .zip(output.timeline.evaluate_many(bandwidths))
        .map(|(&bw, stats)| SweepPoint {
            bandwidth_gbps: bw,
            runtime_ms: stats.runtime_ms(),
        })
        .collect();
    // The static bound curve under the runtime curve, on the same ladder.
    // One full analysis derives the knee (it is bandwidth-independent — a
    // property of the bound's affine pieces); the dense per-point values
    // come from `bound_curve`, which shares one placement layout across the
    // ladder so the curve stays cheap next to the closed-form evaluation it
    // annotates.
    let map = output
        .schedule
        .channel_map(output.rpu.memory_channel_count());
    let engine = RpuEngine::new(sweep_rpu(evk_policy, lo, modops)).with_channel_map(map);
    let knee_gbps = engine
        .bounds(&output.schedule.graph)
        .knee
        .effective_knee_gbps();
    let bound_ms: Vec<f64> = rpu::bound::bound_curve(&engine, &output.schedule.graph, bandwidths)
        .iter()
        .map(|&seconds| seconds * 1e3)
        .collect();
    Ok(AnalyticSweep {
        series: SweepSeries {
            benchmark: workload.benchmark.name,
            dataflow: output.strategy.clone(),
            evk_streamed: evk_policy == EvkPolicy::Streamed,
            modops,
            points,
        },
        segments: output.timeline.segments().len(),
        breakpoints_gbps: output.timeline.breakpoints_gbps(),
        bound_ms,
        knee_gbps,
    })
}

/// The closed-form counterpart of [`try_heterogeneous_sweep`]: both pipeline
/// modes of a heterogeneous workload are executed symbolically once, and the
/// whole ladder is evaluated from the two timelines — bit-identical to the
/// engine path. Strategy names resolve against the built-in registry — use
/// [`try_heterogeneous_analytic_sweep_in`] for custom registries.
///
/// # Errors
///
/// Returns [`CiflowError::InvalidConfig`] for a degenerate ladder (see
/// [`try_analytic_sweep_in`]) or a workload with no kernel invocations, or
/// the first failing point's error.
pub fn try_heterogeneous_analytic_sweep(
    workload: &Workload,
    strategy: impl Into<StrategySpec>,
    bandwidths: &[f64],
    evk_policy: EvkPolicy,
) -> Result<HeterogeneousSweep, CiflowError> {
    try_heterogeneous_analytic_sweep_in(&Session::new(), workload, strategy, bandwidths, evk_policy)
}

/// [`try_heterogeneous_analytic_sweep`] resolving strategy names through
/// `session`'s registry and reusing its schedule and timeline caches.
///
/// # Errors
///
/// Returns [`CiflowError::InvalidConfig`] for a degenerate ladder, or the
/// first failing point's error.
pub fn try_heterogeneous_analytic_sweep_in(
    session: &Session,
    workload: &Workload,
    strategy: impl Into<StrategySpec>,
    bandwidths: &[f64],
    evk_policy: EvkPolicy,
) -> Result<HeterogeneousSweep, CiflowError> {
    let (lo, hi) = analytic_range(bandwidths, "heterogeneous analytic sweep")?;
    let spec: StrategySpec = strategy.into();
    let job_for = |mode| {
        Job::workload(workload.clone(), spec.clone(), mode).with_rpu(sweep_rpu(evk_policy, lo, 1.0))
    };
    let b2b = session.run_analytic(&job_for(PipelineMode::BackToBack), lo, hi)?;
    let fused = session.run_analytic(&job_for(PipelineMode::Fused), lo, hi)?;
    let b2b_stats = b2b.timeline.evaluate_many(bandwidths);
    let fused_stats = fused.timeline.evaluate_many(bandwidths);
    let points = bandwidths
        .iter()
        .enumerate()
        .map(|(i, &bw)| HeterogeneousSweepPoint {
            bandwidth_gbps: bw,
            fused_ms: fused_stats[i].runtime_ms(),
            back_to_back_ms: b2b_stats[i].runtime_ms(),
            fused_idle: fused_stats[i].compute_idle_fraction(),
            back_to_back_idle: b2b_stats[i].compute_idle_fraction(),
            forwarded_bytes: fused.forwarded_bytes,
        })
        .collect();
    Ok(HeterogeneousSweep {
        workload: workload.name.clone(),
        dataflow: b2b.strategy.clone(),
        kernel_towers: b2b.kernel_benchmarks.iter().map(|b| b.q_towers).collect(),
        points,
    })
}

/// One point of a heterogeneous-pipeline sweep: the same (typically
/// rescaling) chain at one bandwidth, fused vs back-to-back.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct HeterogeneousSweepPoint {
    /// Off-chip bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Fused pipeline runtime in milliseconds.
    pub fused_ms: f64,
    /// Back-to-back baseline runtime in milliseconds.
    pub back_to_back_ms: f64,
    /// Compute-idle fraction of the fused run.
    pub fused_idle: f64,
    /// Compute-idle fraction of the back-to-back run.
    pub back_to_back_idle: f64,
    /// DRAM bytes the fused pipeline eliminated by on-chip forwarding
    /// (always `back_to_back` traffic minus `fused` traffic).
    pub forwarded_bytes: u64,
}

/// A fused-vs-back-to-back sweep of one heterogeneous workload across a
/// bandwidth ladder, plus the per-kernel tower ladder the chain runs at.
#[derive(Debug, Clone, Serialize)]
pub struct HeterogeneousSweep {
    /// The workload's name.
    pub workload: String,
    /// Strategy short name.
    pub dataflow: String,
    /// Live tower count ℓ of each kernel invocation, in execution order —
    /// the descending ladder of a rescaling chain.
    pub kernel_towers: Vec<usize>,
    /// The sampled points, in the bandwidth order given.
    pub points: Vec<HeterogeneousSweepPoint>,
}

/// Runs a heterogeneous [`Workload`] pipeline (per-step parameter points,
/// e.g. [`Workload::rescaling_chain`]) across a bandwidth ladder, fused and
/// back-to-back, as one parallel batch. Strategy names resolve against the
/// built-in registry — use [`try_heterogeneous_sweep_in`] for custom
/// registries.
///
/// # Errors
///
/// Returns the first failing point's [`CiflowError`] — including
/// [`CiflowError::InvalidConfig`] for a workload with no kernel
/// invocations.
pub fn try_heterogeneous_sweep(
    workload: &Workload,
    strategy: impl Into<StrategySpec>,
    bandwidths: &[f64],
    evk_policy: EvkPolicy,
) -> Result<HeterogeneousSweep, CiflowError> {
    try_heterogeneous_sweep_in(&Session::new(), workload, strategy, bandwidths, evk_policy)
}

/// [`try_heterogeneous_sweep`] resolving strategy names through `session`'s
/// registry. Only the registry is taken from `session`; each point runs on
/// the paper's RPU for `evk_policy` at its own bandwidth.
///
/// # Errors
///
/// Returns the first failing point's [`CiflowError`].
pub fn try_heterogeneous_sweep_in(
    session: &Session,
    workload: &Workload,
    strategy: impl Into<StrategySpec>,
    bandwidths: &[f64],
    evk_policy: EvkPolicy,
) -> Result<HeterogeneousSweep, CiflowError> {
    let spec: StrategySpec = strategy.into();
    let sweep_session = Session::new()
        .with_registry(session.registry().clone())
        .jobs(bandwidths.iter().flat_map(|&bw| {
            [PipelineMode::BackToBack, PipelineMode::Fused].map(|mode| {
                Job::workload(workload.clone(), spec.clone(), mode)
                    .with_rpu(sweep_rpu(evk_policy, bw, 1.0))
            })
        }));
    let outputs = sweep_session.run().into_outputs()?;
    let dataflow = outputs
        .first()
        .map(|o| o.strategy.clone())
        .unwrap_or_else(|| spec.display_name());
    let kernel_towers = outputs
        .first()
        .map(|o| o.kernel_benchmarks.iter().map(|b| b.q_towers).collect())
        .unwrap_or_default();
    let points = bandwidths
        .iter()
        .zip(outputs.chunks_exact(2))
        .map(|(&bw, pair)| HeterogeneousSweepPoint {
            bandwidth_gbps: bw,
            fused_ms: pair[1].runtime_ms(),
            back_to_back_ms: pair[0].runtime_ms(),
            fused_idle: pair[1].stats.compute_idle_fraction(),
            back_to_back_idle: pair[0].stats.compute_idle_fraction(),
            forwarded_bytes: pair[1].forwarded_bytes,
        })
        .collect();
    Ok(HeterogeneousSweep {
        workload: workload.name.clone(),
        dataflow,
        kernel_towers,
        points,
    })
}

/// One point of a memory-channel-count sweep: the same workload pipeline on
/// the same aggregate bandwidth, split over a growing number of in-order
/// pseudo-channels.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ChannelSweepPoint {
    /// Number of memory channels the aggregate bandwidth was split over.
    pub channels: usize,
    /// Pipeline runtime in milliseconds.
    pub runtime_ms: f64,
    /// Compute-idle fraction of the run.
    pub compute_idle: f64,
    /// Channel load imbalance (busiest channel / mean; 1.0 = perfectly
    /// balanced).
    pub memory_imbalance: f64,
}

/// Runs a [`Workload`] pipeline across a ladder of memory-channel counts at
/// one fixed aggregate bandwidth, as one parallel batch. The aggregate
/// bandwidth never changes — each point only re-partitions it over more
/// in-order pseudo-channels — so any runtime/idle improvement is pure
/// head-of-line-blocking relief from channel-aware data placement.
///
/// Degenerate inputs (pinned by the regression tests): a non-finite or
/// non-positive `bandwidth_gbps` is rejected with
/// [`CiflowError::InvalidConfig`]; an empty `channel_counts` ladder yields
/// an empty result; duplicate or unsorted channel counts are evaluated
/// pointwise in the order given (duplicates produce bit-identical rows);
/// a channel count of `0` is clamped to one channel by
/// [`RpuConfig::with_memory_channels`].
///
/// # Errors
///
/// Returns the first failing point's [`CiflowError`].
pub fn try_channel_sweep(
    workload: &Workload,
    strategy: impl Into<StrategySpec>,
    bandwidth_gbps: f64,
    evk_policy: EvkPolicy,
    channel_counts: &[usize],
    mode: PipelineMode,
) -> Result<Vec<ChannelSweepPoint>, CiflowError> {
    validate_bandwidths(&[bandwidth_gbps], "channel sweep")?;
    let spec: StrategySpec = strategy.into();
    let session = Session::new().jobs(channel_counts.iter().map(|&channels| {
        Job::workload(workload.clone(), spec.clone(), mode)
            .with_rpu(sweep_rpu(evk_policy, bandwidth_gbps, 1.0).with_memory_channels(channels))
    }));
    let outputs = session.run().into_outputs()?;
    Ok(channel_counts
        .iter()
        .zip(&outputs)
        .map(|(&channels, output)| ChannelSweepPoint {
            channels,
            runtime_ms: output.runtime_ms(),
            compute_idle: output.stats.compute_idle_fraction(),
            memory_imbalance: output.stats.memory_channel_imbalance(),
        })
        .collect())
}

/// Runs a runtime-vs-bandwidth sweep for a built-in dataflow.
///
/// # Panics
///
/// Panics if a schedule cannot be executed (a simulator bug).
pub fn bandwidth_sweep(
    benchmark: HksBenchmark,
    dataflow: Dataflow,
    bandwidths: &[f64],
    evk_policy: EvkPolicy,
    modops: f64,
) -> SweepSeries {
    try_bandwidth_sweep(benchmark, dataflow, bandwidths, evk_policy, modops)
        .expect("built-in dataflow sweeps are infallible")
}

/// Runtime of one configuration with an explicit MODOPS multiplier.
///
/// # Errors
///
/// Returns a [`CiflowError`] if the strategy is unknown or the schedule
/// cannot be built or executed.
pub fn try_runtime_with(
    benchmark: HksBenchmark,
    strategy: impl Into<StrategySpec>,
    bandwidth_gbps: f64,
    evk_policy: EvkPolicy,
    modops: f64,
) -> Result<f64, CiflowError> {
    let output = Session::new()
        .with_rpu(sweep_rpu(evk_policy, bandwidth_gbps, modops))
        .run_one(benchmark, strategy)?;
    Ok(output.runtime_ms())
}

/// Runtime of one configuration with an explicit MODOPS multiplier.
///
/// # Panics
///
/// Panics if the generated schedule cannot be executed (a simulator bug).
pub fn runtime_with(
    benchmark: HksBenchmark,
    dataflow: Dataflow,
    bandwidth_gbps: f64,
    evk_policy: EvkPolicy,
    modops: f64,
) -> f64 {
    try_runtime_with(benchmark, dataflow, bandwidth_gbps, evk_policy, modops)
        .expect("built-in dataflow runs are infallible")
}

/// The paper's baseline runtime for a benchmark: MP with evks on-chip at
/// 64 GB/s.
pub fn baseline_runtime_ms(benchmark: HksBenchmark) -> f64 {
    crate::runner::runtime_ms(
        benchmark,
        Dataflow::MaxParallel,
        BASELINE_BANDWIDTH_GBPS,
        EvkPolicy::OnChip,
    )
}

/// Finds the minimum bandwidth (by bisection, within `[lo, hi]` GB/s) at
/// which the configuration achieves `target_ms` or better. Returns `hi` if
/// even the upper bound cannot reach the target.
///
/// # Errors
///
/// Propagates the first probe failure.
pub fn try_min_bandwidth_for_runtime(
    benchmark: HksBenchmark,
    strategy: impl Into<StrategySpec>,
    evk_policy: EvkPolicy,
    modops: f64,
    target_ms: f64,
    lo: f64,
    hi: f64,
) -> Result<f64, CiflowError> {
    let spec: StrategySpec = strategy.into();
    let probe = |bw: f64| try_runtime_with(benchmark, spec.clone(), bw, evk_policy, modops);
    let mut lo = lo;
    let mut hi = hi;
    if probe(hi)? > target_ms {
        return Ok(hi);
    }
    if probe(lo)? <= target_ms {
        return Ok(lo);
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if probe(mid)? <= target_ms {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 0.05 {
            break;
        }
    }
    Ok(hi)
}

/// Bisection for the minimum bandwidth reaching `target_ms` (built-in
/// dataflows; panics on simulator bugs). See
/// [`try_min_bandwidth_for_runtime`].
#[allow(clippy::too_many_arguments)]
pub fn min_bandwidth_for_runtime(
    benchmark: HksBenchmark,
    dataflow: Dataflow,
    evk_policy: EvkPolicy,
    modops: f64,
    target_ms: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    try_min_bandwidth_for_runtime(benchmark, dataflow, evk_policy, modops, target_ms, lo, hi)
        .expect("built-in dataflow bisections are infallible")
}

/// One row of the Table IV analogue.
#[derive(Debug, Clone, Serialize)]
pub struct OcBaseRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Bandwidth at which OC matches the baseline (GB/s).
    pub ocbase_gbps: f64,
    /// Bandwidth saving relative to the 64 GB/s baseline.
    pub saved_bandwidth: f64,
    /// OC runtime at the OCbase bandwidth (ms).
    pub oc_ms: f64,
    /// MP runtime at the OCbase bandwidth (ms).
    pub mp_ms: f64,
    /// OC speedup over MP at the OCbase bandwidth.
    pub oc_speedup: f64,
}

/// Computes the Table IV analogue for one benchmark: the bandwidth at which
/// OC (evks on-chip) matches the MP baseline at 64 GB/s, the bandwidth
/// saving, and the OC-vs-MP speedup at that point.
pub fn ocbase_row(benchmark: HksBenchmark) -> OcBaseRow {
    let baseline = baseline_runtime_ms(benchmark);
    // The paper picks OCbase from the discrete ladder; do the same so the
    // "saved bandwidth" factors are comparable.
    let mut ocbase = BASELINE_BANDWIDTH_GBPS;
    for &bw in &BANDWIDTH_LADDER {
        if bw > BASELINE_BANDWIDTH_GBPS {
            break;
        }
        if runtime_with(
            benchmark,
            Dataflow::OutputCentric,
            bw,
            EvkPolicy::OnChip,
            1.0,
        ) <= baseline
        {
            ocbase = bw;
            break;
        }
    }
    let oc_ms = runtime_with(
        benchmark,
        Dataflow::OutputCentric,
        ocbase,
        EvkPolicy::OnChip,
        1.0,
    );
    let mp_ms = runtime_with(
        benchmark,
        Dataflow::MaxParallel,
        ocbase,
        EvkPolicy::OnChip,
        1.0,
    );
    OcBaseRow {
        benchmark: benchmark.name,
        ocbase_gbps: ocbase,
        saved_bandwidth: BASELINE_BANDWIDTH_GBPS / ocbase,
        oc_ms,
        mp_ms,
        oc_speedup: mp_ms / oc_ms,
    }
}

/// The full Table IV analogue (rows computed in parallel).
pub fn table4_rows() -> Vec<OcBaseRow> {
    crate::parallel::map(HksBenchmark::all().to_vec(), ocbase_row)
}

/// One bar group of the Figure 7 analogue: the bandwidth OC needs when
/// streaming evks to match its own evk-on-chip performance at `ocbase_gbps`.
#[derive(Debug, Clone, Serialize)]
pub struct StreamingEquivalenceRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// OCbase bandwidth with evks on-chip (GB/s).
    pub ocbase_gbps: f64,
    /// Runtime at that point with evks on-chip (ms).
    pub on_chip_ms: f64,
    /// Bandwidth needed to match that runtime while streaming evks (GB/s).
    pub equivalent_streaming_gbps: f64,
    /// Extra bandwidth factor paid for streaming.
    pub extra_bandwidth: f64,
    /// SRAM saving obtained by streaming (392 MB → 32 MB = 12.25×).
    pub sram_saving: f64,
}

/// Computes the Figure 7 analogue for one benchmark.
pub fn streaming_equivalence_row(benchmark: HksBenchmark) -> StreamingEquivalenceRow {
    let ocbase = ocbase_row(benchmark).ocbase_gbps;
    let on_chip_ms = runtime_with(
        benchmark,
        Dataflow::OutputCentric,
        ocbase,
        EvkPolicy::OnChip,
        1.0,
    );
    let equivalent = min_bandwidth_for_runtime(
        benchmark,
        Dataflow::OutputCentric,
        EvkPolicy::Streamed,
        1.0,
        on_chip_ms,
        ocbase,
        1024.0,
    );
    let on_chip = RpuConfig::ciflow_baseline();
    let streaming = RpuConfig::ciflow_streaming();
    StreamingEquivalenceRow {
        benchmark: benchmark.name,
        ocbase_gbps: ocbase,
        on_chip_ms,
        equivalent_streaming_gbps: equivalent,
        extra_bandwidth: equivalent / ocbase,
        sram_saving: (on_chip.vector_memory_bytes + on_chip.key_memory_bytes) as f64
            / (streaming.vector_memory_bytes + streaming.key_memory_bytes) as f64,
    }
}

/// One row of the Table V analogue: the bandwidth each dataflow needs at 2×
/// MODOPS to match ARK's saturation-point performance.
#[derive(Debug, Clone, Serialize)]
pub struct SaturationRow {
    /// Dataflow short name (or "Sat. Point" for the reference).
    pub label: &'static str,
    /// Required bandwidth (GB/s).
    pub bandwidth_gbps: f64,
    /// MODOPS multiplier.
    pub modops: f64,
    /// Bandwidth relative to the saturation point's 128 GB/s.
    pub relative_bandwidth: f64,
}

/// ARK's saturation point: the bandwidth beyond which OC (evks on-chip, 1×
/// MODOPS) no longer improves — the paper identifies 128 GB/s.
pub fn ark_saturation_point() -> (f64, f64) {
    let bw = 128.0;
    let runtime = runtime_with(
        HksBenchmark::ARK,
        Dataflow::OutputCentric,
        bw,
        EvkPolicy::OnChip,
        1.0,
    );
    (bw, runtime)
}

/// The Table V analogue: required bandwidth for OC/DC/MP at 2× MODOPS to
/// match ARK's saturation-point runtime.
pub fn table5_rows() -> Vec<SaturationRow> {
    let (sat_bw, sat_runtime) = ark_saturation_point();
    let mut rows = vec![SaturationRow {
        label: "Sat. Point",
        bandwidth_gbps: sat_bw,
        modops: 1.0,
        relative_bandwidth: 1.0,
    }];
    let dataflow_rows = crate::parallel::map(
        vec![
            ("OC", Dataflow::OutputCentric),
            ("DC", Dataflow::DigitCentric),
            ("MP", Dataflow::MaxParallel),
        ],
        |(label, dataflow)| {
            let bw = min_bandwidth_for_runtime(
                HksBenchmark::ARK,
                dataflow,
                EvkPolicy::OnChip,
                2.0,
                sat_runtime,
                4.0,
                1024.0,
            );
            SaturationRow {
                label,
                bandwidth_gbps: bw,
                modops: 2.0,
                relative_bandwidth: bw / sat_bw,
            }
        },
    );
    rows.extend(dataflow_rows);
    rows
}

/// A MODOPS sweep series (one Figure 8 curve): runtime vs bandwidth at a
/// fixed MODOPS multiplier for ARK under OC with evks on-chip.
pub fn modops_sweep(benchmark: HksBenchmark, modops: f64, bandwidths: &[f64]) -> SweepSeries {
    bandwidth_sweep(
        benchmark,
        Dataflow::OutputCentric,
        bandwidths,
        EvkPolicy::OnChip,
        modops,
    )
}

/// One point of the Figure 9 analogue: a `(bandwidth, MODOPS)` pair that
/// matches a target runtime with evks streamed.
#[derive(Debug, Clone, Serialize)]
pub struct EquivalentConfig {
    /// MODOPS multiplier.
    pub modops: f64,
    /// Bandwidth needed at that multiplier (GB/s).
    pub bandwidth_gbps: f64,
}

/// Finds, for each MODOPS multiplier, the bandwidth needed to match a target
/// runtime while streaming evks (the Figure 9 analysis). Multipliers are
/// searched in parallel.
pub fn equivalent_configs(
    benchmark: HksBenchmark,
    target_ms: f64,
    modops_ladder: &[f64],
) -> Vec<EquivalentConfig> {
    crate::parallel::map(modops_ladder.to_vec(), |m| EquivalentConfig {
        modops: m,
        bandwidth_gbps: min_bandwidth_for_runtime(
            benchmark,
            Dataflow::OutputCentric,
            EvkPolicy::Streamed,
            m,
            target_ms,
            2.0,
            1024.0,
        ),
    })
}

/// One point of a serving sweep: one cluster size at one per-device
/// bandwidth, summarized. The full [`ServeReport`](crate::serve::ServeReport)
/// (per-request records, per-device usage) is deliberately not retained —
/// a sweep touches many points and only needs the headline numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ServeSweepPoint {
    /// Number of devices in the cluster at this point.
    pub num_devices: usize,
    /// Per-device DRAM bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Completed requests per virtual second.
    pub throughput_rps: f64,
    /// Mean device utilization (1.0 = no device ever idle).
    pub mean_utilization: f64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Largest queue depth the point observed.
    pub max_queue_depth: usize,
}

/// A serving sweep over cluster sizes × per-device bandwidths for one
/// strategy, one dispatch policy and one seed.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeSweep {
    /// Strategy short name.
    pub strategy: String,
    /// Dispatch policy every point used.
    pub policy: DispatchPolicy,
    /// Arrival seed every point used.
    pub seed: u64,
    /// Sampled points: cluster sizes in the order given, each size swept
    /// across the bandwidths in the order given (size-major).
    pub points: Vec<ServeSweepPoint>,
}

/// Sweeps the serving simulator over `cluster_sizes` × `bandwidths`, holding
/// the request mix, arrival process, dispatch policy and seed of `base`
/// fixed. `base.cluster.num_devices` and the per-device bandwidth are
/// overridden at every point; everything else (including the rest of the
/// RPU configuration) is taken from `base`. Strategy names resolve against
/// the built-in registry — use [`try_serve_sweep_in`] for custom registries.
///
/// Every point re-seeds its arrival process from `base.seed`, so the sweep
/// is bit-reproducible and two calls with equal inputs compare equal.
///
/// # Errors
///
/// Returns [`CiflowError::InvalidConfig`] for an empty size or bandwidth
/// ladder, or the first failing point's error (invalid configuration,
/// unknown strategy, schedule failure).
pub fn try_serve_sweep(
    base: &ServeConfig,
    strategy: impl Into<StrategySpec>,
    cluster_sizes: &[usize],
    bandwidths: &[f64],
) -> Result<ServeSweep, CiflowError> {
    try_serve_sweep_in(&Session::new(), base, strategy, cluster_sizes, bandwidths)
}

/// [`try_serve_sweep`] resolving strategy names through `session`'s registry
/// and reusing its schedule cache — the request-class schedules are built
/// once and shared by every point of the sweep (bandwidth is not part of
/// the schedule cache key).
///
/// Service times are measured *symbolically*: each request class is executed
/// once as a [`ParametricTimeline`](rpu::ParametricTimeline) covering the
/// whole bandwidth ladder, and every grid point evaluates the timelines in
/// closed form — bit-identical to measuring each point through the engine,
/// but the measurement cost is per class instead of per class × point.
///
/// # Errors
///
/// Returns [`CiflowError::InvalidConfig`] for an empty size or bandwidth
/// ladder or a non-finite/non-positive bandwidth, or the first failing
/// point's error.
pub fn try_serve_sweep_in(
    session: &Session,
    base: &ServeConfig,
    strategy: impl Into<StrategySpec>,
    cluster_sizes: &[usize],
    bandwidths: &[f64],
) -> Result<ServeSweep, CiflowError> {
    let spec: StrategySpec = strategy.into();
    if cluster_sizes.is_empty() {
        return Err(CiflowError::InvalidConfig {
            message: "serving sweep has an empty cluster-size ladder".to_string(),
        });
    }
    if bandwidths.is_empty() {
        return Err(CiflowError::InvalidConfig {
            message: "serving sweep has an empty bandwidth ladder".to_string(),
        });
    }
    let (lo, hi) = analytic_range(bandwidths, "serving sweep")?;
    // Surface structural configuration errors before measuring anything,
    // exactly as the per-point path would at its first grid point.
    let mut probe = base.clone();
    probe.cluster.num_devices = cluster_sizes[0];
    probe.validate()?;

    // One symbolic run per distinct class; each timeline serves every grid
    // point of the sweep.
    let measured = crate::parallel::map(base.classes.clone(), |class| {
        let job = class.job(spec.clone()).with_rpu(base.cluster.rpu.clone());
        session.run_analytic(&job, lo, hi)
    });
    let mut timelines = Vec::with_capacity(measured.len());
    let mut strategy_name = spec.display_name();
    for output in measured {
        let output = output?;
        strategy_name = output.strategy.clone();
        timelines.push(output.timeline);
    }

    let grid: Vec<(usize, f64)> = cluster_sizes
        .iter()
        .flat_map(|&n| bandwidths.iter().map(move |&bw| (n, bw)))
        .collect();
    let reports =
        crate::parallel::map(grid, |(num_devices, bandwidth)| -> Result<_, CiflowError> {
            let mut config = base.clone();
            config.cluster.num_devices = num_devices;
            config.cluster.rpu = base.cluster.rpu.clone().with_bandwidth(bandwidth);
            config.validate()?;
            let service_seconds: Vec<f64> = timelines
                .iter()
                .map(|timeline| timeline.evaluate(bandwidth).runtime_seconds)
                .collect();
            Ok(crate::serve::serve_with_service_times(
                &config,
                strategy_name.clone(),
                &service_seconds,
            ))
        });
    let mut points = Vec::with_capacity(reports.len());
    for report in reports {
        let report = report?;
        strategy_name = report.strategy.clone();
        points.push(ServeSweepPoint {
            num_devices: report.num_devices,
            bandwidth_gbps: report.bandwidth_gbps,
            throughput_rps: report.throughput_rps,
            mean_utilization: report.mean_utilization(),
            p50_ms: report.latency.p50_ms,
            p95_ms: report.latency.p95_ms,
            p99_ms: report.latency.p99_ms,
            max_queue_depth: report.queue.max_depth,
        });
    }
    Ok(ServeSweep {
        strategy: strategy_name,
        policy: base.policy,
        seed: base.seed,
        points,
    })
}

/// One point of a fault sweep: one cluster size at one fault intensity,
/// summarized. Like [`ServeSweepPoint`], the full
/// [`ResilienceReport`](crate::serve::ResilienceReport) is not retained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultSweepPoint {
    /// Fault-intensity multiplier this point ran under (see
    /// [`FaultPlan::scaled`]).
    pub intensity: f64,
    /// Number of devices in the cluster at this point.
    pub num_devices: usize,
    /// Arrivals offered to the cluster.
    pub offered: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests that timed out (deadline or retry budget).
    pub timed_out: usize,
    /// Arrivals shed by admission control.
    pub shed: usize,
    /// Completions served as the downgraded fallback class.
    pub degraded: usize,
    /// Dispatch attempts beyond each request's first.
    pub retries: usize,
    /// Useful completions per virtual second.
    pub goodput_rps: f64,
    /// All completions per virtual second.
    pub throughput_rps: f64,
    /// Mean device availability over the makespan.
    pub mean_availability: f64,
    /// Device-seconds of discarded work.
    pub wasted_seconds: f64,
    /// 99th-percentile latency over completed requests, in milliseconds.
    pub p99_ms: f64,
}

/// A fault sweep over fault intensities × cluster sizes for one strategy,
/// one base [`FaultPlan`], one dispatch policy and one seed.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultSweep {
    /// Strategy short name.
    pub strategy: String,
    /// Dispatch policy every point used.
    pub policy: DispatchPolicy,
    /// Arrival seed every point used.
    pub seed: u64,
    /// Sampled points: cluster sizes in the order given, each size swept
    /// across the intensities in the order given (size-major).
    pub points: Vec<FaultSweepPoint>,
}

/// Sweeps the faulted serving simulator over `intensities` ×
/// `cluster_sizes`, holding the request mix, arrival process, dispatch
/// policy, seed, per-device bandwidth, and the *shape* of `base_plan`
/// fixed. Each point runs `base_plan.scaled(intensity)` (see
/// [`FaultPlan::scaled`]: random crash rates and the transient-failure
/// rate scale; intensity `0` is the fault-free bound with the handling
/// policies still on). Strategy names resolve against the built-in
/// registry — use [`try_fault_sweep_in`] for custom registries.
///
/// # Errors
///
/// Returns [`CiflowError::InvalidConfig`] for an empty intensity or size
/// ladder, a non-finite/negative intensity, or the first failing point's
/// error (e.g. a scripted crash or degradation window targeting a device
/// a smaller cluster does not have).
pub fn try_fault_sweep(
    base: &ServeConfig,
    base_plan: &FaultPlan,
    strategy: impl Into<StrategySpec>,
    intensities: &[f64],
    cluster_sizes: &[usize],
) -> Result<FaultSweep, CiflowError> {
    try_fault_sweep_in(
        &Session::new(),
        base,
        base_plan,
        strategy,
        intensities,
        cluster_sizes,
    )
}

/// [`try_fault_sweep`] resolving strategy names through `session`'s
/// registry and reusing its schedule cache. Baseline service times are
/// measured once per class through the engine (exactly as
/// [`try_fault_serve_in`](crate::serve::try_fault_serve_in) measures them)
/// and degraded rows once per class through the parametric timelines; the
/// whole grid replays those tables.
///
/// # Errors
///
/// Returns [`CiflowError::InvalidConfig`] for an empty or invalid ladder,
/// or the first failing point's error.
pub fn try_fault_sweep_in(
    session: &Session,
    base: &ServeConfig,
    base_plan: &FaultPlan,
    strategy: impl Into<StrategySpec>,
    intensities: &[f64],
    cluster_sizes: &[usize],
) -> Result<FaultSweep, CiflowError> {
    let spec: StrategySpec = strategy.into();
    if intensities.is_empty() {
        return Err(CiflowError::InvalidConfig {
            message: "fault sweep has an empty intensity ladder".to_string(),
        });
    }
    for &intensity in intensities {
        if !intensity.is_finite() || intensity < 0.0 {
            return Err(CiflowError::InvalidConfig {
                message: format!("fault intensity {intensity} is not finite and non-negative"),
            });
        }
    }
    if cluster_sizes.is_empty() {
        return Err(CiflowError::InvalidConfig {
            message: "fault sweep has an empty cluster-size ladder".to_string(),
        });
    }
    // Surface structural problems before measuring anything, exactly as the
    // per-point path would at its first grid point.
    let mut probe = base.clone();
    probe.cluster.num_devices = cluster_sizes[0];
    probe.validate()?;
    base_plan.validate(&probe)?;

    // One engine run per class for the baseline service times, one
    // timeline per class for the degraded rows; every grid point replays
    // these tables.
    let measured = crate::parallel::map(base.classes.clone(), |class| {
        let job = class.job(spec.clone()).with_rpu(base.cluster.rpu.clone());
        session.run_job(&job)
    });
    let mut base_service = Vec::with_capacity(measured.len());
    let mut strategy_name = spec.display_name();
    for output in measured {
        let output = output?;
        strategy_name = output.strategy.clone();
        base_service.push(output.stats.runtime_seconds);
    }
    let degraded = crate::serve::degraded_service_rows(session, base, base_plan, &spec)?;
    let services = crate::serve::ServiceTable {
        base: base_service,
        degraded,
    };

    let grid: Vec<(usize, f64)> = cluster_sizes
        .iter()
        .flat_map(|&n| intensities.iter().map(move |&i| (n, i)))
        .collect();
    let reports =
        crate::parallel::map(grid, |(num_devices, intensity)| -> Result<_, CiflowError> {
            let mut config = base.clone();
            config.cluster.num_devices = num_devices;
            config.validate()?;
            let plan = base_plan.scaled(intensity);
            plan.validate(&config)?;
            Ok((
                intensity,
                crate::serve::resilience_with_service_times(
                    &config,
                    &plan,
                    strategy_name.clone(),
                    &services,
                ),
            ))
        });
    let mut points = Vec::with_capacity(reports.len());
    for report in reports {
        let (intensity, report) = report?;
        points.push(FaultSweepPoint {
            intensity,
            num_devices: report.serve.num_devices,
            offered: report.offered,
            completed: report.serve.completed,
            timed_out: report.timed_out,
            shed: report.shed,
            degraded: report.degraded,
            retries: report.retries,
            goodput_rps: report.goodput_rps,
            throughput_rps: report.serve.throughput_rps,
            mean_availability: report.mean_availability(),
            wasted_seconds: report.wasted_seconds,
            p99_ms: report.serve.latency.p99_ms,
        });
    }
    Ok(FaultSweep {
        strategy: strategy_name,
        policy: base.policy,
        seed: base.seed,
        points,
    })
}

/// One point of an on-chip-memory ablation: DRAM traffic and runtime as a
/// function of the data-memory capacity.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MemorySweepPoint {
    /// Data-memory capacity in MiB.
    pub data_memory_mib: u64,
    /// Total DRAM traffic in MiB.
    pub dram_mib: f64,
    /// Runtime in milliseconds at the configured bandwidth.
    pub runtime_ms: f64,
    /// Bytes spilled because intermediates did not fit.
    pub spill_mib: f64,
}

/// Ablation study (not a paper figure, but implied by §IV/§V-D): sweep the
/// on-chip data-memory capacity and report how much DRAM traffic and runtime
/// each dataflow pays at each size. This exposes the capacity at which each
/// dataflow stops spilling — the quantity behind the paper's 675 MB (MP) /
/// 255 MB (DC) / 32 MB (OC) discussion. Capacities run as one parallel batch.
pub fn memory_sweep(
    benchmark: HksBenchmark,
    dataflow: Dataflow,
    capacities_mib: &[u64],
    bandwidth_gbps: f64,
) -> Vec<MemorySweepPoint> {
    let session = Session::new().jobs(capacities_mib.iter().map(|&mib| {
        Job::new(benchmark, dataflow).with_rpu(
            RpuConfig::ciflow_streaming()
                .with_bandwidth(bandwidth_gbps)
                .with_vector_memory(mib * rpu::MIB),
        )
    }));
    let outputs = session
        .run()
        .into_outputs()
        .expect("built-in dataflow sweeps are infallible");
    capacities_mib
        .iter()
        .zip(outputs)
        .map(|(&mib, output)| MemorySweepPoint {
            data_memory_mib: mib,
            dram_mib: output.schedule.dram_bytes() as f64 / rpu::MIB as f64,
            runtime_ms: output.runtime_ms(),
            spill_mib: output.schedule.spill_bytes as f64 / rpu::MIB as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_series_is_monotone() {
        let series = bandwidth_sweep(
            HksBenchmark::DPRIVE,
            Dataflow::OutputCentric,
            &[8.0, 16.0, 32.0, 64.0],
            EvkPolicy::OnChip,
            1.0,
        );
        assert_eq!(series.points.len(), 4);
        for w in series.points.windows(2) {
            assert!(w[1].runtime_ms <= w[0].runtime_ms * 1.0001);
        }
    }

    #[test]
    fn workload_sweep_is_monotone_and_fused_dominates() {
        let workload = Workload::rotation_batch(HksBenchmark::ARK, 4);
        let bandwidths = [8.0, 16.0, 32.0];
        let fused = try_workload_sweep(
            &workload,
            Dataflow::OutputCentric,
            &bandwidths,
            EvkPolicy::OnChip,
            1.0,
            PipelineMode::Fused,
        )
        .unwrap();
        let unfused = try_workload_sweep(
            &workload,
            Dataflow::OutputCentric,
            &bandwidths,
            EvkPolicy::OnChip,
            1.0,
            PipelineMode::BackToBack,
        )
        .unwrap();
        assert_eq!(fused.points.len(), 3);
        for w in fused.points.windows(2) {
            assert!(w[1].runtime_ms <= w[0].runtime_ms * 1.0001);
        }
        for (f, u) in fused.points.iter().zip(&unfused.points) {
            assert!(f.runtime_ms <= u.runtime_ms, "at {} GB/s", f.bandwidth_gbps);
        }
    }

    #[test]
    fn analytic_sweep_is_bit_identical_to_the_engine_path() {
        let workload = Workload::rotation_batch(HksBenchmark::ARK, 4);
        // Unsorted with a duplicate: evaluated pointwise, in order.
        let ladder = [64.0, 8.0, 16.0, 8.0, 128.0];
        for mode in [PipelineMode::Fused, PipelineMode::BackToBack] {
            let engine = try_workload_sweep(
                &workload,
                Dataflow::OutputCentric,
                &ladder,
                EvkPolicy::Streamed,
                1.0,
                mode,
            )
            .unwrap();
            let analytic = try_analytic_sweep(
                &workload,
                Dataflow::OutputCentric,
                &ladder,
                EvkPolicy::Streamed,
                1.0,
                mode,
            )
            .unwrap();
            assert_eq!(analytic.series.dataflow, engine.dataflow);
            assert_eq!(analytic.series.points.len(), engine.points.len());
            for (a, e) in analytic.series.points.iter().zip(&engine.points) {
                assert_eq!(a.bandwidth_gbps, e.bandwidth_gbps);
                assert_eq!(
                    a.runtime_ms.to_bits(),
                    e.runtime_ms.to_bits(),
                    "at {} GB/s ({mode:?})",
                    a.bandwidth_gbps
                );
            }
            // The duplicate ladder entries produced bit-identical rows.
            assert_eq!(
                analytic.series.points[1].runtime_ms.to_bits(),
                analytic.series.points[3].runtime_ms.to_bits()
            );
            assert!(analytic.segments >= 1);
            for &bp in &analytic.breakpoints_gbps {
                assert!(bp > 8.0 && bp < 128.0, "interior breakpoint {bp}");
            }
            // The static bound curve sits under the runtime curve at every
            // ladder point (soundness), one bound per point.
            assert_eq!(analytic.bound_ms.len(), analytic.series.points.len());
            for (bound, point) in analytic.bound_ms.iter().zip(&analytic.series.points) {
                assert!(
                    *bound <= point.runtime_ms,
                    "bound {bound} ms > runtime {} ms at {} GB/s ({mode:?})",
                    point.runtime_ms,
                    point.bandwidth_gbps
                );
                assert!(*bound > 0.0);
            }
        }
    }
    #[test]
    fn heterogeneous_analytic_sweep_matches_the_engine_path() {
        let chain = Workload::rescaling_chain(HksBenchmark::ARK, 3);
        let ladder = [8.0, 16.0, 64.0];
        let engine =
            try_heterogeneous_sweep(&chain, Dataflow::OutputCentric, &ladder, EvkPolicy::OnChip)
                .unwrap();
        let analytic = try_heterogeneous_analytic_sweep(
            &chain,
            Dataflow::OutputCentric,
            &ladder,
            EvkPolicy::OnChip,
        )
        .unwrap();
        assert_eq!(analytic.dataflow, engine.dataflow);
        assert_eq!(analytic.kernel_towers, engine.kernel_towers);
        for (a, e) in analytic.points.iter().zip(&engine.points) {
            assert_eq!(a.bandwidth_gbps, e.bandwidth_gbps);
            assert_eq!(a.fused_ms.to_bits(), e.fused_ms.to_bits());
            assert_eq!(a.back_to_back_ms.to_bits(), e.back_to_back_ms.to_bits());
            assert_eq!(a.fused_idle.to_bits(), e.fused_idle.to_bits());
            assert_eq!(a.back_to_back_idle.to_bits(), e.back_to_back_idle.to_bits());
            assert_eq!(a.forwarded_bytes, e.forwarded_bytes);
        }
    }

    #[test]
    fn analytic_sweep_rejects_degenerate_ladders() {
        let workload = Workload::rotation_batch(HksBenchmark::ARK, 2);
        let run = |ladder: &[f64]| {
            try_analytic_sweep(
                &workload,
                Dataflow::OutputCentric,
                ladder,
                EvkPolicy::OnChip,
                1.0,
                PipelineMode::Fused,
            )
        };
        // Empty, zero, negative and non-finite ladders are all rejected.
        for bad in [
            &[] as &[f64],
            &[0.0],
            &[64.0, 0.0],
            &[-8.0],
            &[f64::NAN],
            &[f64::INFINITY],
        ] {
            assert!(
                matches!(run(bad), Err(CiflowError::InvalidConfig { .. })),
                "ladder {bad:?} must be rejected"
            );
        }
        // A single-point ladder is legal and matches the engine.
        let single = run(&[25.6]).unwrap();
        assert_eq!(single.series.points.len(), 1);
        assert!(single.breakpoints_gbps.is_empty());
        let engine = try_workload_sweep(
            &workload,
            Dataflow::OutputCentric,
            &[25.6],
            EvkPolicy::OnChip,
            1.0,
            PipelineMode::Fused,
        )
        .unwrap();
        assert_eq!(
            single.series.points[0].runtime_ms.to_bits(),
            engine.points[0].runtime_ms.to_bits()
        );
    }

    #[test]
    fn channel_sweep_rejects_invalid_bandwidths() {
        let workload = Workload::rotation_batch(HksBenchmark::ARK, 2);
        for bad in [0.0, -64.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    try_channel_sweep(
                        &workload,
                        Dataflow::OutputCentric,
                        bad,
                        EvkPolicy::OnChip,
                        &CHANNEL_LADDER,
                        PipelineMode::Fused,
                    ),
                    Err(CiflowError::InvalidConfig { .. })
                ),
                "bandwidth {bad} must be rejected"
            );
        }
        // An empty channel ladder is an empty sweep, not an error.
        let empty = try_channel_sweep(
            &workload,
            Dataflow::OutputCentric,
            64.0,
            EvkPolicy::OnChip,
            &[],
            PipelineMode::Fused,
        )
        .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn heterogeneous_sweep_reports_the_ladder_and_forwarding() {
        let chain = Workload::rescaling_chain(HksBenchmark::ARK, 3);
        let sweep = try_heterogeneous_sweep(
            &chain,
            Dataflow::OutputCentric,
            &[8.0, 16.0],
            EvkPolicy::OnChip,
        )
        .unwrap();
        assert_eq!(sweep.kernel_towers, vec![24, 23, 22]);
        assert_eq!(sweep.dataflow, "OC");
        assert_eq!(sweep.points.len(), 2);
        for point in &sweep.points {
            assert!(point.fused_ms <= point.back_to_back_ms * 1.0001);
            assert!(point.forwarded_bytes > 0, "ARK chains fit on-chip");
        }
        // An empty workload surfaces the typed error instead of a panic.
        let empty = Workload::new("empty", HksBenchmark::ARK);
        assert!(matches!(
            try_heterogeneous_sweep(&empty, Dataflow::OutputCentric, &[8.0], EvkPolicy::OnChip),
            Err(crate::error::CiflowError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn workload_sweep_reports_unknown_strategies() {
        let result = try_workload_sweep(
            &Workload::rotation_batch(HksBenchmark::ARK, 2),
            "not-a-strategy",
            &[8.0],
            EvkPolicy::OnChip,
            1.0,
            PipelineMode::Fused,
        );
        assert!(matches!(
            result,
            Err(crate::error::CiflowError::UnknownStrategy { .. })
        ));
    }

    #[test]
    fn try_sweep_reports_unknown_strategies() {
        let result = try_bandwidth_sweep(
            HksBenchmark::ARK,
            "not-a-strategy",
            &[8.0, 16.0],
            EvkPolicy::OnChip,
            1.0,
        );
        assert!(matches!(
            result,
            Err(crate::error::CiflowError::UnknownStrategy { .. })
        ));
    }

    #[test]
    fn ocbase_saves_bandwidth_for_every_benchmark() {
        // Table IV: OC matches the MP 64 GB/s baseline at 2x-8x less
        // bandwidth. Require at least a 2x saving everywhere and a larger
        // saving for ARK than for BTS1/BTS3 (the paper's extremes).
        let rows = table4_rows();
        for row in &rows {
            assert!(
                row.saved_bandwidth >= 2.0,
                "{}: saved bandwidth {:.2}",
                row.benchmark,
                row.saved_bandwidth
            );
            assert!(row.oc_speedup >= 1.0, "{}", row.benchmark);
        }
        let ark = rows.iter().find(|r| r.benchmark == "ARK").unwrap();
        let bts3 = rows.iter().find(|r| r.benchmark == "BTS3").unwrap();
        assert!(ark.saved_bandwidth >= bts3.saved_bandwidth);
        // Headline claim: the best speedup is substantial (paper: 4.16x).
        let best = rows.iter().map(|r| r.oc_speedup).fold(0.0, f64::max);
        assert!(best > 2.0, "best OC speedup {best:.2}");
    }

    #[test]
    fn streaming_needs_modest_extra_bandwidth() {
        // Figure 7: streaming evks costs roughly 1.3x-3x extra bandwidth while
        // saving 12.25x SRAM.
        let row = streaming_equivalence_row(HksBenchmark::ARK);
        assert!((row.sram_saving - 12.25).abs() < 1e-9);
        assert!(row.extra_bandwidth >= 1.0);
        assert!(
            row.extra_bandwidth <= 6.0,
            "extra bandwidth {:.2}",
            row.extra_bandwidth
        );
    }

    #[test]
    fn doubling_modops_reduces_required_bandwidth() {
        // Figure 9 intuition: with more compute, the same performance needs
        // less bandwidth only once compute-bound; conversely at a fixed
        // bandwidth the runtime improves (or stays equal) with more MODOPS.
        let slow = runtime_with(
            HksBenchmark::ARK,
            Dataflow::OutputCentric,
            256.0,
            EvkPolicy::OnChip,
            1.0,
        );
        let fast = runtime_with(
            HksBenchmark::ARK,
            Dataflow::OutputCentric,
            256.0,
            EvkPolicy::OnChip,
            2.0,
        );
        assert!(fast < slow);
        let (_, sat_runtime) = ark_saturation_point();
        let configs = equivalent_configs(HksBenchmark::ARK, sat_runtime * 1.02, &[1.0, 2.0]);
        assert!(configs[1].bandwidth_gbps <= configs[0].bandwidth_gbps);
    }

    #[test]
    fn memory_sweep_traffic_is_monotone_in_capacity() {
        // More on-chip memory can only remove spills, never add them.
        let points = memory_sweep(
            HksBenchmark::ARK,
            Dataflow::MaxParallel,
            &[8, 16, 32, 64, 256],
            64.0,
        );
        for w in points.windows(2) {
            assert!(w[1].dram_mib <= w[0].dram_mib + 1e-9);
            assert!(w[1].spill_mib <= w[0].spill_mib + 1e-9);
        }
        // OC needs far less capacity than MP to reach the spill-free floor.
        let oc = memory_sweep(HksBenchmark::ARK, Dataflow::OutputCentric, &[32], 64.0);
        let mp = memory_sweep(HksBenchmark::ARK, Dataflow::MaxParallel, &[32], 64.0);
        assert!(oc[0].spill_mib < mp[0].spill_mib);
    }

    #[test]
    fn table5_mp_needs_more_bandwidth_than_oc() {
        let rows = table5_rows();
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.label == label)
                .unwrap()
                .bandwidth_gbps
        };
        assert!(get("OC") <= get("DC"));
        assert!(get("DC") <= get("MP"));
    }
}
