//! Internal fan-out helper shared by [`api::Session`](crate::api::Session)
//! batches and the sweep drivers.

/// Maps `f` over `items` using every core (order-preserving) when the
/// `parallel` feature is enabled, sequentially otherwise.
#[cfg(feature = "parallel")]
pub(crate) fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use rayon::prelude::*;
    items.into_par_iter().map(f).collect()
}

/// Sequential fallback used when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub(crate) fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    F: Fn(T) -> R,
{
    items.into_iter().map(f).collect()
}
