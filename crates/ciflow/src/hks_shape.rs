//! The stage-by-stage geometry and cost of one hybrid key switch.
//!
//! [`HksShape`] turns a benchmark parameter point into the per-stage tower
//! counts, byte sizes, and modular-operation counts that the schedule
//! generators and the analytical model both consume. Keeping this in one
//! place guarantees that all three dataflows are charged *exactly* the same
//! total work — as the paper notes, "the number of operations per HKS
//! benchmark is independent of dataflow".

use crate::benchmark::HksBenchmark;
use rpu::KernelCosts;
use serde::Serialize;

/// The nine HKS stages, used to label tasks and group timing diagrams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum HksStage {
    /// ModUp P1: INTT of the input towers.
    ModUpIntt,
    /// ModUp P2: basis conversion of each digit from `α` to `β` towers.
    ModUpBconv,
    /// ModUp P3: NTT of the extended towers.
    ModUpNtt,
    /// ModUp P4: point-wise multiplication with the evk.
    ModUpApplyKey,
    /// ModUp P5: reduction (summation of the per-digit partial products).
    ModUpReduce,
    /// ModDown P1: INTT of the `K` auxiliary towers.
    ModDownIntt,
    /// ModDown P2: basis conversion from `P` back to `Q_ℓ`.
    ModDownBconv,
    /// ModDown P3: NTT of the converted towers.
    ModDownNtt,
    /// ModDown P4: subtraction, scaling by `P^{-1}` and final summation.
    ModDownCombine,
}

impl HksStage {
    /// All stages in execution order.
    pub fn all() -> [HksStage; 9] {
        use HksStage::*;
        [
            ModUpIntt,
            ModUpBconv,
            ModUpNtt,
            ModUpApplyKey,
            ModUpReduce,
            ModDownIntt,
            ModDownBconv,
            ModDownNtt,
            ModDownCombine,
        ]
    }

    /// Short name used in task labels and figures (e.g. `ModUp-P2`).
    pub fn label(&self) -> &'static str {
        match self {
            HksStage::ModUpIntt => "ModUp-P1",
            HksStage::ModUpBconv => "ModUp-P2",
            HksStage::ModUpNtt => "ModUp-P3",
            HksStage::ModUpApplyKey => "ModUp-P4",
            HksStage::ModUpReduce => "ModUp-P5",
            HksStage::ModDownIntt => "ModDown-P1",
            HksStage::ModDownBconv => "ModDown-P2",
            HksStage::ModDownNtt => "ModDown-P3",
            HksStage::ModDownCombine => "ModDown-P4",
        }
    }
}

impl std::fmt::Display for HksStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Stage-level geometry of one hybrid key switch for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HksShape {
    /// The benchmark this shape was derived from.
    pub benchmark: HksBenchmark,
}

impl HksShape {
    /// Builds the shape for a benchmark.
    pub fn new(benchmark: HksBenchmark) -> Self {
        Self { benchmark }
    }

    /// Ring degree `N`.
    pub fn n(&self) -> usize {
        self.benchmark.ring_degree()
    }

    /// Live `Q` towers `ℓ` (the paper's `k_l`).
    pub fn ell(&self) -> usize {
        self.benchmark.q_towers
    }

    /// Auxiliary towers `K`.
    pub fn k(&self) -> usize {
        self.benchmark.p_towers
    }

    /// Number of digits.
    pub fn dnum(&self) -> usize {
        self.benchmark.dnum
    }

    /// Width of digit `j` in towers.
    pub fn digit_width(&self, j: usize) -> usize {
        self.benchmark.digit_width(j)
    }

    /// Extension width of digit `j`: `β_j = ℓ + K − α_j`.
    pub fn beta(&self, j: usize) -> usize {
        self.ell() + self.k() - self.digit_width(j)
    }

    /// Extended tower count `ℓ + K`.
    pub fn extended(&self) -> usize {
        self.ell() + self.k()
    }

    /// Bytes per tower.
    pub fn tower_bytes(&self) -> u64 {
        self.benchmark.tower_bytes()
    }

    /// Bytes of two evk towers for one digit and one extended tower index
    /// (the `b` and `a` components loaded together when streaming keys).
    pub fn evk_tower_pair_bytes(&self) -> u64 {
        2 * self.tower_bytes()
    }

    // ----- per-unit compute costs ------------------------------------------

    /// Modular operations of one (i)NTT of a single tower.
    pub fn ntt_ops(&self) -> u64 {
        KernelCosts::ntt_ops(self.n())
    }

    /// Modular operations of the per-digit BConv *scaling* pass
    /// (`y_i = [a_i·(Q_j/q_i)^{-1}]_{q_i}` over the digit's `α_j` towers).
    pub fn bconv_scale_ops(&self, source_towers: usize) -> u64 {
        self.n() as u64 * source_towers as u64
    }

    /// Modular operations of one BConv *slice*: producing one target tower
    /// from `source_towers` scaled towers (a multiply-accumulate per source
    /// tower per coefficient).
    pub fn bconv_slice_ops(&self, source_towers: usize) -> u64 {
        2 * self.n() as u64 * source_towers as u64
    }

    /// Modular operations of one point-wise multiply of a single tower.
    pub fn pointwise_ops(&self) -> u64 {
        self.n() as u64
    }

    // ----- whole-kernel totals ---------------------------------------------

    /// Total modular operations of the ModUp phase (all digits).
    pub fn modup_ops(&self) -> u64 {
        let mut total = 0u64;
        // P1: INTT of every live tower.
        total += self.ell() as u64 * self.ntt_ops();
        for j in 0..self.dnum() {
            let alpha_j = self.digit_width(j);
            let beta_j = self.beta(j);
            // P2: scaling + beta_j slices.
            total += self.bconv_scale_ops(alpha_j);
            total += beta_j as u64 * self.bconv_slice_ops(alpha_j);
            // P3: NTT of the beta_j extended towers.
            total += beta_j as u64 * self.ntt_ops();
            // P4: multiply with the two evk polynomials over ℓ+K towers.
            total += 2 * self.extended() as u64 * self.pointwise_ops();
        }
        // P5: reduce dnum partial products into one, for both output polys.
        if self.dnum() > 1 {
            total += 2 * (self.dnum() as u64 - 1) * self.extended() as u64 * self.pointwise_ops();
        }
        total
    }

    /// Total modular operations of the ModDown phase (both output polys).
    pub fn moddown_ops(&self) -> u64 {
        let mut total = 0u64;
        // P1: INTT of the K auxiliary towers of both polynomials.
        total += 2 * self.k() as u64 * self.ntt_ops();
        // P2: BConv from K to ℓ towers for both polynomials.
        total += 2
            * (self.bconv_scale_ops(self.k()) + self.ell() as u64 * self.bconv_slice_ops(self.k()));
        // P3: NTT of the ℓ converted towers of both polynomials.
        total += 2 * self.ell() as u64 * self.ntt_ops();
        // P4: subtract and scale by P^{-1} (two point-wise passes per tower).
        total += 2 * self.ell() as u64 * 2 * self.pointwise_ops();
        total
    }

    /// Total modular operations of one hybrid key switch.
    pub fn total_ops(&self) -> u64 {
        self.modup_ops() + self.moddown_ops()
    }

    // ----- data sizes -------------------------------------------------------

    /// Bytes of the key-switch input polynomial (`ℓ` towers).
    pub fn input_bytes(&self) -> u64 {
        self.ell() as u64 * self.tower_bytes()
    }

    /// Bytes of the key-switch output (two polynomials of `ℓ` towers).
    pub fn output_bytes(&self) -> u64 {
        2 * self.ell() as u64 * self.tower_bytes()
    }

    /// Bytes of the full evaluation key.
    pub fn evk_bytes(&self) -> u64 {
        self.benchmark.evk_bytes()
    }

    /// Bytes of the two ModUp accumulator polynomials over `ℓ + K` towers.
    pub fn modup_output_bytes(&self) -> u64 {
        2 * self.extended() as u64 * self.tower_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::MIB;

    #[test]
    fn stage_labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            HksStage::all().iter().map(super::HksStage::label).collect();
        assert_eq!(labels.len(), 9);
        assert_eq!(HksStage::ModUpBconv.to_string(), "ModUp-P2");
    }

    #[test]
    fn beta_matches_paper_definition() {
        // BTS3: alpha = 15, beta = 45 + 15 - 15 = 45.
        let s = HksShape::new(HksBenchmark::BTS3);
        for j in 0..3 {
            assert_eq!(s.beta(j), 45);
        }
        // DPRIVE digits are 9, 9, 8 wide.
        let d = HksShape::new(HksBenchmark::DPRIVE);
        assert_eq!(d.digit_width(0), 9);
        assert_eq!(d.digit_width(2), 8);
        assert_eq!(d.beta(2), 26 + 7 - 8);
    }

    #[test]
    fn figure1_parameterization_shape() {
        // Figure 1 uses ℓ = 33, dnum = 3, α = 11; verify our derived widths
        // for an equivalent custom benchmark.
        let custom = HksBenchmark {
            name: "FIG1",
            log_ring_degree: 16,
            q_towers: 33,
            p_towers: 11,
            dnum: 3,
        };
        let s = HksShape::new(custom);
        assert_eq!(custom.alpha(), 11);
        for j in 0..3 {
            assert_eq!(s.digit_width(j), 11);
            assert_eq!(s.beta(j), 33);
        }
        assert_eq!(s.extended(), 44);
    }

    #[test]
    fn operation_totals_scale_with_benchmark_size() {
        let small = HksShape::new(HksBenchmark::ARK).total_ops();
        let large = HksShape::new(HksBenchmark::BTS3).total_ops();
        assert!(large > 4 * small, "BTS3 must be much larger than ARK");
    }

    #[test]
    fn data_sizes_are_consistent_with_table_iii() {
        let s = HksShape::new(HksBenchmark::ARK);
        assert_eq!(s.evk_bytes(), 120 * MIB);
        assert_eq!(s.input_bytes(), 24 * s.tower_bytes());
        assert_eq!(s.output_bytes(), 48 * s.tower_bytes());
        assert_eq!(s.modup_output_bytes(), 60 * s.tower_bytes());
    }

    #[test]
    fn modup_dominates_moddown_for_multi_digit_benchmarks() {
        for b in [HksBenchmark::BTS3, HksBenchmark::ARK, HksBenchmark::DPRIVE] {
            let s = HksShape::new(b);
            assert!(s.modup_ops() > s.moddown_ops(), "{}", b.name);
        }
    }

    #[test]
    fn single_digit_benchmark_has_no_reduce_work() {
        let bts1 = HksShape::new(HksBenchmark::BTS1);
        // With dnum = 1 the P5 reduction term is zero; verify by comparing
        // against a manual recomputation without the reduce term.
        let manual = bts1.ell() as u64 * bts1.ntt_ops()
            + bts1.bconv_scale_ops(28)
            + bts1.beta(0) as u64 * bts1.bconv_slice_ops(28)
            + bts1.beta(0) as u64 * bts1.ntt_ops()
            + 2 * bts1.extended() as u64 * bts1.pointwise_ops();
        assert_eq!(bts1.modup_ops(), manual);
    }
}
