//! Property tests of the multi-channel memory model.
//!
//! The two load-bearing invariants of the channel split (see
//! `docs/MEMORY_MODEL.md`):
//!
//! 1. With `num_memory_channels = 1` the engine reproduces the historical
//!    single-queue engine *exactly* — same per-task start/end times, same
//!    statistics, bit for bit. The reference below is a line-for-line
//!    implementation of the seed engine's greedy dual-queue loop.
//! 2. Per-channel busy accounting always sums to the aggregate memory busy
//!    time, for any channel count.

use proptest::prelude::*;
use rpu::{
    ComputeKind, EngineQueue, MemoryDirection, RpuConfig, RpuEngine, Task, TaskGraph, TaskId,
    TaskKind,
};

/// The seed repository's single-queue engine: one in-order compute queue and
/// one in-order memory queue, each head issuing as soon as its dependencies'
/// finish times are known, with `start = max(dep_ready, queue_free)`.
/// Returns per-task `(start, end)` times indexed by task id.
fn reference_single_queue(graph: &TaskGraph, config: &RpuConfig) -> Vec<(f64, f64)> {
    let tasks = graph.tasks();
    let compute_queue: Vec<TaskId> = tasks
        .iter()
        .filter(|t| t.is_compute())
        .map(|t| t.id)
        .collect();
    let memory_queue: Vec<TaskId> = tasks
        .iter()
        .filter(|t| t.is_memory())
        .map(|t| t.id)
        .collect();
    let duration = |task: &Task| -> f64 {
        match task.kind {
            TaskKind::Compute { ops, .. } => ops as f64 / config.modops_per_second(),
            TaskKind::Memory { bytes, .. } => bytes as f64 / config.dram_bytes_per_second(),
        }
    };
    let mut finish = vec![f64::NAN; tasks.len()];
    let mut spans = vec![(f64::NAN, f64::NAN); tasks.len()];
    let mut ci = 0usize;
    let mut mi = 0usize;
    let mut compute_free_at = 0.0f64;
    let mut memory_free_at = 0.0f64;
    let deps_ready = |task: &Task, finish: &[f64]| -> Option<f64> {
        let mut ready = 0.0f64;
        for &d in &task.dependencies {
            let f = finish[d];
            if f.is_nan() {
                return None;
            }
            ready = ready.max(f);
        }
        Some(ready)
    };
    while ci < compute_queue.len() || mi < memory_queue.len() {
        let mut progressed = false;
        if mi < memory_queue.len() {
            let task = &tasks[memory_queue[mi]];
            if let Some(dep_ready) = deps_ready(task, &finish) {
                let start = dep_ready.max(memory_free_at);
                let end = start + duration(task);
                finish[task.id] = end;
                spans[task.id] = (start, end);
                memory_free_at = end;
                mi += 1;
                progressed = true;
            }
        }
        if ci < compute_queue.len() {
            let task = &tasks[compute_queue[ci]];
            if let Some(dep_ready) = deps_ready(task, &finish) {
                let start = dep_ready.max(compute_free_at);
                let end = start + duration(task);
                finish[task.id] = end;
                spans[task.id] = (start, end);
                compute_free_at = end;
                ci += 1;
                progressed = true;
            }
        }
        assert!(progressed, "reference engine deadlocked on a valid graph");
    }
    spans
}

/// Builds a causally ordered random task graph from raw draws: each entry is
/// `(kind_bits, cost, dep_seed_a, dep_seed_b)`; dependencies always point at
/// earlier tasks, as `TaskGraph` requires.
fn graph_from(entries: &[(u8, u64, u64, u64)]) -> TaskGraph {
    let mut graph = TaskGraph::new();
    for (i, &(kind, cost, seed_a, seed_b)) in entries.iter().enumerate() {
        let mut deps: Vec<TaskId> = Vec::new();
        if i > 0 {
            // 0-2 dependencies on earlier tasks.
            if seed_a % 4 != 0 {
                deps.push((seed_a % i as u64) as usize);
            }
            if seed_b % 3 == 0 {
                deps.push((seed_b % i as u64) as usize);
            }
            deps.sort_unstable();
            deps.dedup();
        }
        let cost = 1 + cost % 50_000_000;
        match kind % 4 {
            // 50% memory traffic, alternating direction, varied buffer names
            // so the hashed placement spreads them over channels.
            0 => {
                graph.push_memory(
                    MemoryDirection::Load,
                    cost,
                    deps,
                    format!("load buf[{i}]"),
                    "P1",
                );
            }
            1 => {
                graph.push_memory(
                    MemoryDirection::Store,
                    cost,
                    deps,
                    format!("store buf[{i}]"),
                    "P2",
                );
            }
            2 => {
                graph.push_compute(ComputeKind::Ntt, cost, deps, format!("ntt {i}"), "P3");
            }
            _ => {
                graph.push_compute(
                    ComputeKind::PointwiseMac,
                    cost,
                    deps,
                    format!("mac {i}"),
                    "P4",
                );
            }
        }
    }
    graph
}

fn config() -> RpuConfig {
    RpuConfig::ciflow_baseline().with_bandwidth(12.8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_channel_reproduces_the_single_queue_engine_exactly(
        entries in proptest::collection::vec(
            (0u8..=255, 0u64..u64::MAX / 2, 0u64..u64::MAX / 2, 0u64..u64::MAX / 2),
            1..40,
        )
    ) {
        let graph = graph_from(&entries);
        let reference = reference_single_queue(&graph, &config());
        let result = RpuEngine::new(config().with_memory_channels(1))
            .execute(&graph)
            .expect("valid graphs execute");
        // Bit-identical per-task spans (exact float equality, no tolerance).
        for record in result.trace.records() {
            let (start, end) = reference[record.task];
            prop_assert_eq!(record.start_seconds.to_bits(), start.to_bits());
            prop_assert_eq!(record.end_seconds.to_bits(), end.to_bits());
        }
        prop_assert_eq!(result.trace.records().len(), graph.len());
        // Bit-identical makespan.
        let reference_makespan = reference
            .iter()
            .fold(0.0f64, |acc, &(_, end)| acc.max(end));
        prop_assert_eq!(
            result.stats.runtime_seconds.to_bits(),
            reference_makespan.to_bits()
        );
    }

    #[test]
    fn channel_accounting_sums_to_total_memory_busy_time(
        entries in proptest::collection::vec(
            (0u8..=255, 0u64..u64::MAX / 2, 0u64..u64::MAX / 2, 0u64..u64::MAX / 2),
            1..40,
        ),
        channels in 1usize..=8,
    ) {
        let graph = graph_from(&entries);
        let result = RpuEngine::new(config().with_memory_channels(channels))
            .execute(&graph)
            .expect("valid graphs execute");
        let stats = &result.stats;
        prop_assert_eq!(stats.memory_channel_busy_seconds.len(), channels);
        let sum: f64 = stats.memory_channel_busy_seconds.iter().sum();
        prop_assert!(
            (sum - stats.memory_busy_seconds).abs() <= 1e-9 * stats.memory_busy_seconds.max(1.0),
            "per-channel busy {} != aggregate {}",
            sum,
            stats.memory_busy_seconds
        );
        // The data path is time-shared: aggregate busy never exceeds runtime.
        prop_assert!(stats.memory_busy_seconds <= stats.runtime_seconds + 1e-9);
        // Every channel a trace record names exists in the accounting.
        for record in result.trace.records() {
            if let EngineQueue::Memory(c) = record.queue {
                prop_assert!(c < channels);
            }
        }
        // Per-task busy time is conserved: the sum of memory record spans
        // equals the aggregate busy seconds (transfers never overlap).
        let span_sum: f64 = result
            .trace
            .records()
            .iter()
            .filter(|r| r.queue.is_memory())
            .map(rpu::TaskRecord::duration)
            .sum();
        prop_assert!((span_sum - stats.memory_busy_seconds).abs() <= 1e-9 * span_sum.max(1.0));
    }

    #[test]
    fn stats_only_execution_matches_traced_execution_bit_for_bit(
        entries in proptest::collection::vec(
            (0u8..=255, 0u64..u64::MAX / 2, 0u64..u64::MAX / 2, 0u64..u64::MAX / 2),
            1..40,
        ),
        channels in 1usize..=8,
    ) {
        // The trace-optional fast path must be the same simulation: every
        // aggregate statistic agrees to the bit with the traced run's.
        let graph = graph_from(&entries);
        let engine = RpuEngine::new(config().with_memory_channels(channels));
        let traced = engine.execute(&graph).expect("valid graphs execute");
        let stats = engine.execute_stats(&graph).expect("valid graphs execute");
        prop_assert_eq!(
            stats.runtime_seconds.to_bits(),
            traced.stats.runtime_seconds.to_bits()
        );
        prop_assert_eq!(
            stats.compute_busy_seconds.to_bits(),
            traced.stats.compute_busy_seconds.to_bits()
        );
        prop_assert_eq!(
            stats.memory_busy_seconds.to_bits(),
            traced.stats.memory_busy_seconds.to_bits()
        );
        for (a, b) in stats
            .memory_channel_busy_seconds
            .iter()
            .zip(&traced.stats.memory_channel_busy_seconds)
        {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(&stats, &traced.stats);
    }

    #[test]
    fn multi_channel_execution_preserves_dependencies_and_work(
        entries in proptest::collection::vec(
            (0u8..=255, 0u64..u64::MAX / 2, 0u64..u64::MAX / 2, 0u64..u64::MAX / 2),
            1..40,
        ),
        channels in 2usize..=8,
    ) {
        let graph = graph_from(&entries);
        let result = RpuEngine::new(config().with_memory_channels(channels))
            .execute(&graph)
            .expect("valid graphs execute");
        // Dependencies are respected: every task starts at or after each of
        // its dependencies' end.
        let mut spans = vec![(f64::NAN, f64::NAN); graph.len()];
        for record in result.trace.records() {
            spans[record.task] = (record.start_seconds, record.end_seconds);
        }
        for task in graph.tasks() {
            for &dep in &task.dependencies {
                prop_assert!(
                    spans[task.id].0 >= spans[dep].1 - 1e-12,
                    "task {} started before dependency {} finished",
                    task.id,
                    dep
                );
            }
        }
        // Work is conserved regardless of the channel count.
        prop_assert_eq!(result.stats.total_ops, graph.total_ops());
        let (loaded, stored) = graph.total_bytes();
        prop_assert_eq!(result.stats.bytes_loaded, loaded);
        prop_assert_eq!(result.stats.bytes_stored, stored);
    }
}
