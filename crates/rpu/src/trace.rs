//! Per-task execution traces.
//!
//! Traces record when each task started and finished and on which pipeline it
//! ran. The `fig2_timing_diagrams` harness renders these as the per-stage
//! timing diagrams of the paper's Figure 2.

use crate::task::{Label, TaskId};
use serde::{Deserialize, Serialize};

/// Which engine resource executed a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineQueue {
    /// The HPLE compute pipeline.
    Compute,
    /// One of the in-order DRAM pseudo-channels, identified by its index
    /// (always 0 under the classic single-channel model).
    Memory(usize),
}

impl EngineQueue {
    /// True for memory channels.
    pub fn is_memory(&self) -> bool {
        matches!(self, EngineQueue::Memory(_))
    }

    /// The memory channel index, or `None` for the compute pipeline.
    pub fn channel(&self) -> Option<usize> {
        match self {
            EngineQueue::Compute => None,
            EngineQueue::Memory(c) => Some(*c),
        }
    }
}

/// Start/end record of one executed task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Task id in the executed graph.
    pub task: TaskId,
    /// Which queue executed it.
    pub queue: EngineQueue,
    /// Start time in seconds from kernel start.
    pub start_seconds: f64,
    /// End time in seconds from kernel start.
    pub end_seconds: f64,
    /// Label shared with the task (interned; see [`Label`]).
    pub label: Label,
    /// Stage name shared with the task (e.g. "ModUp-P2").
    pub stage: Label,
}

impl TaskRecord {
    /// Duration of the task in seconds.
    pub fn duration(&self) -> f64 {
        self.end_seconds - self.start_seconds
    }
}

/// A full execution trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    records: Vec<TaskRecord>,
}

impl ExecutionTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: TaskRecord) {
        self.records.push(record);
    }

    /// All records in completion order of issue.
    pub fn records(&self) -> &[TaskRecord] {
        &self.records
    }

    /// Start and end times of each distinct stage, in first-appearance order:
    /// `(stage, first_start, last_end)`.
    pub fn stage_spans(&self) -> Vec<(String, f64, f64)> {
        let mut order: Vec<Label> = Vec::new();
        let mut spans: std::collections::HashMap<Label, (f64, f64)> =
            std::collections::HashMap::new();
        for r in &self.records {
            let entry = spans
                .entry(r.stage.clone())
                .or_insert((r.start_seconds, r.end_seconds));
            entry.0 = entry.0.min(r.start_seconds);
            entry.1 = entry.1.max(r.end_seconds);
            if !order.iter().any(|s| s == &r.stage) {
                order.push(r.stage.clone());
            }
        }
        order
            .into_iter()
            .map(|s| {
                let (a, b) = spans[&s];
                (s.as_ref().to_owned(), a, b)
            })
            .collect()
    }

    /// Renders an ASCII timeline with one row per stage, `width` characters
    /// wide — the textual analogue of the paper's Figure 2.
    pub fn render_ascii(&self, width: usize) -> String {
        let spans = self.stage_spans();
        let total_end = self
            .records
            .iter()
            .map(|r| r.end_seconds)
            .fold(0.0f64, f64::max);
        if total_end <= 0.0 || spans.is_empty() {
            return String::from("(empty trace)\n");
        }
        let mut out = String::new();
        let label_width = spans.iter().map(|(s, _, _)| s.len()).max().unwrap_or(8);
        for (stage, start, end) in spans {
            let s = ((start / total_end) * width as f64).round() as usize;
            let e = (((end / total_end) * width as f64).round() as usize).max(s + 1);
            let mut row = vec![' '; width.max(e)];
            for c in row.iter_mut().take(e.min(width)).skip(s.min(width)) {
                *c = '#';
            }
            let bar: String = row.into_iter().take(width).collect();
            out.push_str(&format!("{stage:<label_width$} |{bar}|\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(task: TaskId, stage: &str, start: f64, end: f64) -> TaskRecord {
        TaskRecord {
            task,
            queue: EngineQueue::Compute,
            start_seconds: start,
            end_seconds: end,
            label: format!("t{task}").into(),
            stage: stage.into(),
        }
    }

    #[test]
    fn stage_spans_are_merged_and_ordered() {
        let mut trace = ExecutionTrace::new();
        trace.push(record(0, "P1", 0.0, 1.0));
        trace.push(record(1, "P2", 1.0, 2.0));
        trace.push(record(2, "P1", 2.0, 3.0));
        let spans = trace.stage_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].0, "P1");
        assert!((spans[0].1 - 0.0).abs() < 1e-12);
        assert!((spans[0].2 - 3.0).abs() < 1e-12);
        assert_eq!(spans[1].0, "P2");
    }

    #[test]
    fn duration_and_render() {
        let mut trace = ExecutionTrace::new();
        trace.push(record(0, "ModUp-P1", 0.0, 0.5));
        trace.push(record(1, "ModUp-P2", 0.5, 1.0));
        assert!((trace.records()[0].duration() - 0.5).abs() < 1e-12);
        let ascii = trace.render_ascii(20);
        assert!(ascii.contains("ModUp-P1"));
        assert!(ascii.contains('#'));
        let lines: Vec<&str> = ascii.lines().collect();
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let trace = ExecutionTrace::new();
        assert_eq!(trace.render_ascii(10), "(empty trace)\n");
    }
}
