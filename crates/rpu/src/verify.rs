//! Static verification of task graphs against the engine's queue semantics.
//!
//! Every property this module checks is otherwise only enforced
//! *dynamically*: a malformed graph surfaces as an engine panic (dangling
//! dependency), an [`EngineError::Deadlock`](crate::engine::EngineError)
//! mid-run, or silently wrong analysis numbers. The passes here prove the
//! same properties *without executing* — they are the graph-level half of
//! the `ciflow::lint` subsystem (which adds schedule-aware buffer, capacity
//! and placement passes on top).
//!
//! Two passes live at this level, each a small analyzer over a
//! [`TaskGraph`]:
//!
//! * [`lint_structural`] — id/index mismatches, dangling and duplicate
//!   dependency edges, self-dependencies, non-monotone (forward)
//!   dependencies.
//! * [`lint_deadlock`] — an abstract interpretation of the engine's
//!   per-channel in-order grant semantics (`docs/MEMORY_MODEL.md`): the
//!   engine deadlocks **iff** the *augmented graph* — dependency edges plus
//!   the program-order successor edge within each in-order queue — contains
//!   a cycle. The pass builds exactly the queues the engine would build
//!   (same channel placement, via [`RpuEngine::channel_of`]) and runs a
//!   topological sort over the augmented edges, so a clean result is a
//!   *proof* of deadlock-freedom for that channel count and placement,
//!   subsuming the runtime check.
//!
//! Why the characterization is exact: the engine's reachable progress states
//! are precisely the downward-closed sets of the augmented graph (a task can
//! complete once its dependencies *and* its queue predecessors have), and an
//! untimed in-order system stalls forever iff some task is unreachable under
//! that closure — i.e. iff it sits on or behind an augmented cycle. Since
//! queue edges always point from lower to higher task id and
//! [`TaskGraph::from_tasks`] rejects forward dependencies, a *validated*
//! graph can never deadlock under **any** placement; deadlock requires a
//! hand-built graph ([`TaskGraph::from_tasks_unchecked`]) with a forward
//! dependency that closes a cycle. A forward dependency *alone* is merely
//! suspicious (other queues may drain it fine), so it lints as a Warning
//! while an actual cycle is an Error.
//!
//! Every code is catalogued with a minimal triggering example in
//! `docs/LINTS.md`.

use crate::engine::RpuEngine;
use crate::task::{Label, TaskGraph, TaskId};
use serde::Serialize;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Severity {
    /// Informational: worth knowing, never wrong by itself.
    Note,
    /// Suspicious: legal to execute, but likely a generator bug or a missed
    /// optimization.
    Warning,
    /// The schedule is broken: executing it panics, deadlocks, or produces
    /// meaningless numbers.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One structured finding from a lint pass.
///
/// `code` is a stable short identifier (`S...` structural, `D...` deadlock,
/// `B...` buffer, `C...` capacity, `P...` placement, `A...` accounting —
/// the latter four families are emitted by `ciflow::lint`); the full
/// catalogue lives in `docs/LINTS.md`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Stable lint code, e.g. `"D001"`.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// The tasks the finding is about (a wait-for cycle, a duplicate edge's
    /// endpoints, ...). May be empty for graph-wide findings.
    pub tasks: Vec<TaskId>,
    /// The buffer or task label involved, when one identifies the finding.
    pub label: Option<Label>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Error, message)
    }

    /// Creates a warning-severity diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Warning, message)
    }

    /// Creates a note-severity diagnostic.
    pub fn note(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Note, message)
    }

    fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Self {
            code,
            severity,
            tasks: Vec::new(),
            label: None,
            message: message.into(),
        }
    }

    /// Attaches the tasks the finding is about.
    #[must_use]
    pub fn with_tasks(mut self, tasks: impl IntoIterator<Item = TaskId>) -> Self {
        self.tasks = tasks.into_iter().collect();
        self
    }

    /// Attaches the label the finding is about.
    #[must_use]
    pub fn with_label(mut self, label: Label) -> Self {
        self.label = Some(label);
        self
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(label) = &self.label {
            write!(f, " `{label}`")?;
        }
        if !self.tasks.is_empty() {
            write!(f, " tasks {:?}", self.tasks)?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Stable codes for the graph-level passes.
pub mod codes {
    /// `task.id` disagrees with the task's position in the graph.
    pub const ID_MISMATCH: &str = "S001";
    /// A dependency names a task id outside the graph.
    pub const DANGLING_DEP: &str = "S002";
    /// The same dependency edge appears twice.
    pub const DUPLICATE_DEP: &str = "S003";
    /// A task depends on itself.
    pub const SELF_DEP: &str = "S004";
    /// A dependency points forward in program order (non-monotone ids).
    pub const FORWARD_DEP: &str = "S005";
    /// The dependency edges plus the in-order queue edges form a cycle: the
    /// engine would return `EngineError::Deadlock`.
    pub const DEADLOCK_CYCLE: &str = "D001";
}

/// Structural pass: validates the graph encoding itself, independent of any
/// engine configuration. An [`Severity::Error`] here means the engine cannot
/// even be *run* meaningfully on the graph (it would panic or misattribute
/// work); run this before [`lint_deadlock`].
pub fn lint_structural(graph: &TaskGraph) -> Vec<Diagnostic> {
    let tasks = graph.tasks();
    let n = tasks.len();
    let mut diagnostics = Vec::new();
    for (index, task) in tasks.iter().enumerate() {
        if task.id != index {
            diagnostics.push(
                Diagnostic::error(
                    codes::ID_MISMATCH,
                    format!("task at position {index} carries id {}", task.id),
                )
                .with_tasks([index])
                .with_label(task.label.clone()),
            );
        }
        for (slot, &dep) in task.dependencies.iter().enumerate() {
            if dep >= n {
                diagnostics.push(
                    Diagnostic::error(
                        codes::DANGLING_DEP,
                        format!(
                            "task {index} depends on {dep}, but the graph has only {n} tasks \
                             (executing this graph panics the engine)"
                        ),
                    )
                    .with_tasks([index])
                    .with_label(task.label.clone()),
                );
                continue;
            }
            if dep == index {
                diagnostics.push(
                    Diagnostic::error(
                        codes::SELF_DEP,
                        format!("task {index} depends on itself and can never become ready"),
                    )
                    .with_tasks([index])
                    .with_label(task.label.clone()),
                );
                continue;
            }
            if task.dependencies[..slot].contains(&dep) {
                diagnostics.push(
                    Diagnostic::warning(
                        codes::DUPLICATE_DEP,
                        format!(
                            "task {index} lists dependency {dep} more than once \
                             (inflates dependency counters and in-degrees)"
                        ),
                    )
                    .with_tasks([dep, index])
                    .with_label(task.label.clone()),
                );
            }
            if dep > index {
                diagnostics.push(
                    Diagnostic::warning(
                        codes::FORWARD_DEP,
                        format!(
                            "task {index} depends on the later task {dep}: a validated graph \
                             never does this, and if the edge closes a queue cycle the \
                             schedule deadlocks (see D001)"
                        ),
                    )
                    .with_tasks([index, dep])
                    .with_label(task.label.clone()),
                );
            }
        }
    }
    diagnostics
}

/// Deadlock pass: proves, for the engine's channel count and buffer
/// placement, that the in-order queues cannot cross-block.
///
/// The proof object is the *augmented graph*: every dependency edge plus an
/// edge from each queue element to its successor in the same in-order queue
/// (one compute queue, one queue per memory channel, membership computed by
/// the same [`RpuEngine::channel_of`] the engine uses). A topological sort
/// drains completely iff the engine — whose reachable states are exactly the
/// downward-closed sets of this graph — can retire every task. On a cycle,
/// the pass reports one [`codes::DEADLOCK_CYCLE`] Error carrying the
/// wait-for chain (each task waits for the next; the last waits for the
/// first).
///
/// Graphs with structural Errors ([`lint_structural`]) are not analyzable;
/// the pass returns an empty result for them (the structural diagnostics
/// already make the graph red).
pub fn lint_deadlock(graph: &TaskGraph, engine: &RpuEngine) -> Vec<Diagnostic> {
    let tasks = graph.tasks();
    let n = tasks.len();
    let analyzable = tasks.iter().enumerate().all(|(index, task)| {
        task.id == index && task.dependencies.iter().all(|&d| d < n && d != index)
    });
    if !analyzable {
        return Vec::new();
    }

    // Queue membership, exactly as the engine builds it.
    let channels = engine.config().memory_channel_count();
    let mut queues: Vec<Vec<TaskId>> = vec![Vec::new(); channels + 1];
    for task in tasks {
        if task.is_compute() {
            queues[0].push(task.id);
        } else {
            queues[1 + engine.channel_of(task)].push(task.id);
        }
    }

    // Augmented edges: dependency edges plus per-queue successor edges. The
    // queue *predecessor* of each task is also kept for cycle extraction.
    let mut successors: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    let mut indegree: Vec<u32> = vec![0; n];
    let mut queue_prev: Vec<Option<TaskId>> = vec![None; n];
    for task in tasks {
        for &d in &task.dependencies {
            successors[d].push(task.id);
            indegree[task.id] += 1;
        }
    }
    for queue in &queues {
        for pair in queue.windows(2) {
            successors[pair[0]].push(pair[1]);
            indegree[pair[1]] += 1;
            queue_prev[pair[1]] = Some(pair[0]);
        }
    }

    // Kahn's algorithm over the augmented graph.
    let mut stack: Vec<TaskId> = (0..n).filter(|&t| indegree[t] == 0).collect();
    let mut drained = 0usize;
    while let Some(t) = stack.pop() {
        drained += 1;
        for &s in &successors[t] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                stack.push(s);
            }
        }
    }
    if drained == n {
        return Vec::new();
    }

    // A cycle exists among the undrained tasks (indegree > 0). Walk the
    // wait-for relation — "t waits for u" iff u is a dependency of t or u
    // immediately precedes t in t's queue — restricted to undrained tasks,
    // until a task repeats; the repeated suffix is a wait-for cycle.
    let undrained = |t: TaskId| indegree[t] > 0;
    let start = (0..n).find(|&t| undrained(t)).expect("cycle exists");
    let mut position: Vec<Option<usize>> = vec![None; n];
    let mut path: Vec<TaskId> = Vec::new();
    let mut cursor = start;
    let cycle = loop {
        if let Some(at) = position[cursor] {
            break path[at..].to_vec();
        }
        position[cursor] = Some(path.len());
        path.push(cursor);
        cursor = tasks[cursor]
            .dependencies
            .iter()
            .copied()
            .find(|&d| undrained(d))
            .or(queue_prev[cursor].filter(|&p| undrained(p)))
            .expect("an undrained task always waits for an undrained task");
    };

    let chain = cycle
        .iter()
        .map(|&t| format!("{t}(`{}`)", tasks[t].label))
        .collect::<Vec<_>>()
        .join(" -> ");
    vec![Diagnostic::error(
        codes::DEADLOCK_CYCLE,
        format!(
            "cross-queue wait-for cycle with {channels} memory channel(s): {chain} -> back to \
             {first}; every task on the cycle waits (via a dependency or its in-order queue) \
             for the next, so no queue head can ever make progress and the engine would \
             return EngineError::Deadlock",
            first = cycle[0],
        ),
    )
    .with_tasks(cycle)]
}

/// Runs both graph-level passes: [`lint_structural`], then — when the graph
/// is structurally analyzable — [`lint_deadlock`].
pub fn lint_graph(graph: &TaskGraph, engine: &RpuEngine) -> Vec<Diagnostic> {
    let mut diagnostics = lint_structural(graph);
    diagnostics.extend(lint_deadlock(graph, engine));
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RpuConfig;
    use crate::task::{ComputeKind, MemoryDirection, Task, TaskGraph, TaskKind};

    fn unit_engine(channels: usize) -> RpuEngine {
        RpuEngine::new(
            RpuConfig::ciflow_baseline()
                .with_bandwidth(1.0)
                .with_memory_channels(channels),
        )
    }

    fn memory_task(id: usize, dependencies: Vec<usize>, label: &str) -> Task {
        Task {
            id,
            kind: TaskKind::Memory {
                direction: MemoryDirection::Load,
                bytes: 10,
            },
            dependencies,
            label: label.into(),
            stage: "P1".into(),
            channel: None,
        }
    }

    fn compute_task(id: usize, dependencies: Vec<usize>, label: &str) -> Task {
        Task {
            id,
            kind: TaskKind::Compute {
                kind: ComputeKind::Ntt,
                ops: 10,
            },
            dependencies,
            label: label.into(),
            stage: "P1".into(),
            channel: None,
        }
    }

    #[test]
    fn valid_graphs_lint_clean() {
        let mut g = TaskGraph::new();
        let load = g.push_memory(MemoryDirection::Load, 10, vec![], "load in[0]", "P1");
        let c = g.push_compute(ComputeKind::Ntt, 10, vec![load], "ntt", "P1");
        g.push_memory(MemoryDirection::Store, 10, vec![c], "store out1[0]", "P1");
        for channels in [1, 2, 4, 8] {
            assert!(lint_graph(&g, &unit_engine(channels)).is_empty());
        }
    }

    #[test]
    fn structural_pass_flags_every_encoding_defect() {
        let graph = TaskGraph::from_tasks_unchecked(vec![
            compute_task(7, vec![], "bad id"),       // S001
            memory_task(1, vec![99], "dangling"),    // S002
            memory_task(2, vec![0, 0], "duplicate"), // S003
            compute_task(3, vec![3], "self"),        // S004
            compute_task(4, vec![5], "forward"),     // S005
            memory_task(5, vec![], "fine"),
        ]);
        let diagnostics = lint_structural(&graph);
        let codes: Vec<&str> = diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![
                codes::ID_MISMATCH,
                codes::DANGLING_DEP,
                codes::DUPLICATE_DEP,
                codes::SELF_DEP,
                codes::FORWARD_DEP
            ]
        );
        use super::Severity::{Error, Warning};
        let severities: Vec<Severity> = diagnostics.iter().map(|d| d.severity).collect();
        assert_eq!(severities, vec![Error, Error, Warning, Error, Warning]);
        // Unanalyzable graph: the deadlock pass declines rather than panic.
        assert!(lint_deadlock(&graph, &unit_engine(2)).is_empty());
    }

    #[test]
    fn forward_dependency_without_a_cycle_is_only_a_warning() {
        // Task 0 (channel 0) depends on task 1 (channel 1): with the heads in
        // different queues the engine grants task 1 first and both retire.
        let mut t0 = memory_task(0, vec![1], "load a");
        t0.channel = Some(0);
        let mut t1 = memory_task(1, vec![], "load b");
        t1.channel = Some(1);
        let graph = TaskGraph::from_tasks_unchecked(vec![t0, t1]);
        let engine = unit_engine(2);
        let diagnostics = lint_graph(&graph, &engine);
        assert_eq!(diagnostics.len(), 1);
        assert_eq!(diagnostics[0].code, codes::FORWARD_DEP);
        assert_eq!(diagnostics[0].severity, Severity::Warning);
        // The engine agrees: this executes fine.
        assert!(engine.execute(&graph).is_ok());
    }

    #[test]
    fn same_queue_forward_dependency_is_a_deadlock_cycle() {
        // Both tasks share channel 0: task 0 waits on task 1's completion,
        // task 1 waits on task 0 leaving the queue head. D001.
        let mut t0 = memory_task(0, vec![1], "load a");
        t0.channel = Some(0);
        let mut t1 = memory_task(1, vec![], "load b");
        t1.channel = Some(0);
        let graph = TaskGraph::from_tasks_unchecked(vec![t0, t1]);
        let engine = unit_engine(2);
        let diagnostics = lint_deadlock(&graph, &engine);
        assert_eq!(diagnostics.len(), 1);
        assert_eq!(diagnostics[0].code, codes::DEADLOCK_CYCLE);
        assert_eq!(diagnostics[0].severity, Severity::Error);
        let mut cycle = diagnostics[0].tasks.clone();
        cycle.sort_unstable();
        assert_eq!(cycle, vec![0, 1]);
        // The engine agrees: this deadlocks.
        assert!(engine.execute(&graph).is_err());
    }

    #[test]
    fn deadlock_verdict_depends_on_the_placement() {
        // The classic cross-queue inversion: compute head waits on the
        // *second* memory task, the first memory task waits on the compute
        // head. With one channel the memory queue orders m1 before m2 and
        // the three tasks cycle; with the memory tasks hinted onto different
        // channels m2's head is free and everything drains.
        let cross = |c1: Option<usize>, c2: Option<usize>| {
            let mut m1 = memory_task(1, vec![0], "store m1");
            m1.channel = c1;
            let mut m2 = memory_task(2, vec![], "load m2");
            m2.channel = c2;
            TaskGraph::from_tasks_unchecked(vec![compute_task(0, vec![2], "c"), m1, m2])
        };
        let single = lint_deadlock(&cross(None, None), &unit_engine(1));
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].code, codes::DEADLOCK_CYCLE);
        assert!(single[0].message.contains("wait-for cycle"));
        let dual = lint_deadlock(&cross(Some(0), Some(1)), &unit_engine(2));
        assert!(dual.is_empty());
        // The engine agrees on both verdicts.
        assert!(unit_engine(1).execute(&cross(None, None)).is_err());
        assert!(unit_engine(2).execute(&cross(Some(0), Some(1))).is_ok());
    }

    #[test]
    fn diagnostics_render_with_code_label_and_tasks() {
        let d = Diagnostic::error("D001", "boom")
            .with_tasks([1, 2])
            .with_label("load x".into());
        assert_eq!(format!("{d}"), "error[D001] `load x` tasks [1, 2]: boom");
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }
}
