//! RPU hardware configuration.
//!
//! The RPU (Ring Processing Unit, ISPASS'23) is a vector processor for
//! ring-LWE workloads. The CiFlow paper evaluates its dataflows on an RPU
//! configuration with 128 HPLEs (high-performance large-arithmetic-word
//! engines), a 1 K-element vector length ("B1K" ISA), a 1.7 GHz clock and a
//! 32 MB on-chip vector data memory, sweeping the off-chip bandwidth and the
//! computational throughput (MODOPS).

use serde::{Deserialize, Serialize};

/// Number of bytes in one mebibyte — on-chip SRAM capacities in the paper are
/// quoted in binary megabytes.
pub const MIB: u64 = 1024 * 1024;

/// Policy for where evaluation keys live during a key switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvkPolicy {
    /// All evks are preloaded into a dedicated on-chip key memory before the
    /// kernel starts (the paper's 392 MB configuration: 32 MB data + 360 MB
    /// keys).
    OnChip,
    /// Evks are streamed from DRAM as they are needed, sharing the off-chip
    /// bandwidth with data traffic; only the 32 MB data memory remains
    /// on-chip.
    Streamed,
}

impl std::fmt::Display for EvkPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvkPolicy::OnChip => write!(f, "evk-on-chip"),
            EvkPolicy::Streamed => write!(f, "evk-streamed"),
        }
    }
}

/// Full configuration of a simulated RPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpuConfig {
    /// Number of HPLE lanes (modular multipliers); the paper uses 128.
    pub num_hples: usize,
    /// Vector length in elements (the modified "B1K" ISA uses 1024).
    pub vector_length: usize,
    /// Core clock in GHz (1.7 for the RPU).
    pub clock_ghz: f64,
    /// On-chip vector data memory in bytes (32 MB in the paper).
    pub vector_memory_bytes: u64,
    /// On-chip key memory in bytes (360 MB when evks are preloaded, 0 when
    /// streamed).
    pub key_memory_bytes: u64,
    /// On-chip scalar memory in bytes (1 MB; not performance-critical).
    pub scalar_memory_bytes: u64,
    /// Off-chip DRAM bandwidth in GB/s (decimal gigabytes). This is the
    /// *aggregate* across all memory channels; each of the
    /// [`num_memory_channels`](Self::num_memory_channels) pseudo-channels
    /// sustains `1/N` of it.
    pub dram_bandwidth_gbps: f64,
    /// Number of independent in-order DRAM pseudo-channels the aggregate
    /// bandwidth is split over (HBM parts expose 8–32). `1` reproduces the
    /// classic single-queue memory model exactly. Both the
    /// [`with_memory_channels`](Self::with_memory_channels) setter and the
    /// [`memory_channel_count`](Self::memory_channel_count) accessor clamp
    /// to at least 1, so a hand-constructed `0` never propagates.
    pub num_memory_channels: usize,
    /// Computational-throughput multiplier relative to the 128-HPLE baseline
    /// (the paper's 1×/2×/4×/8×/16× MODOPS sweep).
    pub modops_multiplier: f64,
    /// Where evaluation keys live.
    pub evk_policy: EvkPolicy,
}

impl Default for RpuConfig {
    fn default() -> Self {
        Self::ciflow_baseline()
    }
}

impl RpuConfig {
    /// The configuration used throughout the CiFlow evaluation: 128 HPLEs,
    /// B1K vectors, 1.7 GHz, 32 MB data memory, 64 GB/s DDR5-class bandwidth
    /// and evks preloaded into a 360 MB key memory.
    pub fn ciflow_baseline() -> Self {
        Self {
            num_hples: 128,
            vector_length: 1024,
            clock_ghz: 1.7,
            vector_memory_bytes: 32 * MIB,
            key_memory_bytes: 360 * MIB,
            scalar_memory_bytes: MIB,
            dram_bandwidth_gbps: 64.0,
            num_memory_channels: 1,
            modops_multiplier: 1.0,
            evk_policy: EvkPolicy::OnChip,
        }
    }

    /// Baseline with the evks streamed from DRAM instead of preloaded
    /// (32 MB total on-chip SRAM — the 12.25× SRAM reduction configuration).
    pub fn ciflow_streaming() -> Self {
        Self {
            key_memory_bytes: 0,
            evk_policy: EvkPolicy::Streamed,
            ..Self::ciflow_baseline()
        }
    }

    /// The CiFlow evaluation configuration for a given evk placement:
    /// [`RpuConfig::ciflow_baseline`] for [`EvkPolicy::OnChip`],
    /// [`RpuConfig::ciflow_streaming`] for [`EvkPolicy::Streamed`].
    ///
    /// ```
    /// use rpu::{EvkPolicy, RpuConfig};
    /// let c = RpuConfig::ciflow_with_policy(EvkPolicy::Streamed);
    /// assert_eq!(c.key_memory_bytes, 0);
    /// ```
    pub fn ciflow_with_policy(evk_policy: EvkPolicy) -> Self {
        match evk_policy {
            EvkPolicy::OnChip => Self::ciflow_baseline(),
            EvkPolicy::Streamed => Self::ciflow_streaming(),
        }
    }

    /// Returns a copy with a different *aggregate* off-chip bandwidth.
    ///
    /// ```
    /// use rpu::RpuConfig;
    /// let c = RpuConfig::ciflow_baseline().with_bandwidth(12.8);
    /// assert!((c.dram_bytes_per_second() - 12.8e9).abs() < 1.0);
    /// ```
    pub fn with_bandwidth(mut self, gbps: f64) -> Self {
        self.dram_bandwidth_gbps = gbps;
        self
    }

    /// Returns a copy with a different MODOPS multiplier.
    ///
    /// ```
    /// use rpu::RpuConfig;
    /// let c = RpuConfig::ciflow_baseline().with_modops(2.0);
    /// assert!((c.modops_per_second() - 2.0 * 217.6e9).abs() < 1e6);
    /// ```
    pub fn with_modops(mut self, multiplier: f64) -> Self {
        self.modops_multiplier = multiplier;
        self
    }

    /// Returns a copy with a different vector data memory capacity.
    ///
    /// ```
    /// use rpu::{RpuConfig, MIB};
    /// let c = RpuConfig::ciflow_baseline().with_vector_memory(64 * MIB);
    /// assert_eq!(c.vector_memory_bytes, 64 * MIB);
    /// ```
    pub fn with_vector_memory(mut self, bytes: u64) -> Self {
        self.vector_memory_bytes = bytes;
        self
    }

    /// Returns a copy with the aggregate bandwidth split over `channels`
    /// independent in-order pseudo-channels. The total bandwidth is
    /// unchanged — more channels mean narrower channels. `channels` is
    /// clamped to at least 1 *in the stored field* (a zero-channel RPU would
    /// have no DRAM interface), so the field, the
    /// [`memory_channel_count`](Self::memory_channel_count) accessor and
    /// [`channel_bytes_per_second`](Self::channel_bytes_per_second) always
    /// agree:
    ///
    /// ```
    /// use rpu::RpuConfig;
    /// let c = RpuConfig::ciflow_baseline().with_memory_channels(8);
    /// assert_eq!(c.memory_channel_count(), 8);
    /// assert!((c.channel_bytes_per_second() - c.dram_bytes_per_second() / 8.0).abs() < 1.0);
    /// let degenerate = RpuConfig::ciflow_baseline().with_memory_channels(0);
    /// assert_eq!(degenerate.num_memory_channels, 1);
    /// ```
    pub fn with_memory_channels(mut self, channels: usize) -> Self {
        self.num_memory_channels = channels.max(1);
        self
    }

    /// Peak modular operations per second (MODOPS): one modular multiply per
    /// HPLE per cycle, scaled by the MODOPS multiplier.
    pub fn modops_per_second(&self) -> f64 {
        self.num_hples as f64 * self.clock_ghz * 1e9 * self.modops_multiplier
    }

    /// Aggregate off-chip bandwidth in bytes per second (decimal GB).
    pub fn dram_bytes_per_second(&self) -> f64 {
        self.dram_bandwidth_gbps * 1e9
    }

    /// Number of memory channels, clamped to at least 1 (a zero-channel RPU
    /// would have no DRAM interface at all).
    pub fn memory_channel_count(&self) -> usize {
        self.num_memory_channels.max(1)
    }

    /// Sustained bandwidth of one pseudo-channel in bytes per second: the
    /// aggregate divided by the channel count. The channels time-share one
    /// full-rate data path (see `docs/MEMORY_MODEL.md`), so this is the
    /// fair-share rate a channel sustains when all channels stream
    /// continuously — an individual granted transfer still bursts at the
    /// full aggregate rate. With one channel this is exactly
    /// [`dram_bytes_per_second`](Self::dram_bytes_per_second) (the division
    /// by 1.0 is lossless).
    pub fn channel_bytes_per_second(&self) -> f64 {
        self.dram_bytes_per_second() / self.memory_channel_count() as f64
    }

    /// Total on-chip SRAM (vector data + key + scalar memories) in bytes.
    pub fn total_sram_bytes(&self) -> u64 {
        self.vector_memory_bytes + self.key_memory_bytes + self.scalar_memory_bytes
    }

    /// Estimated die area in mm² of the on-chip memories plus compute, using
    /// the paper's figures: the 392 MB configuration occupies 401.85 mm² and
    /// the 32 MB streaming configuration 41.85 mm², i.e. roughly 1 mm² per MB
    /// of SRAM on top of a ~9.5 mm² compute/frontend floor.
    pub fn estimated_area_mm2(&self) -> f64 {
        const AREA_PER_MIB: f64 = 1.0;
        const COMPUTE_FLOOR: f64 = 9.85;
        let sram_mib = (self.vector_memory_bytes + self.key_memory_bytes) as f64 / MIB as f64;
        COMPUTE_FLOOR + sram_mib * AREA_PER_MIB * self.modops_multiplier.max(1.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_configuration() {
        let c = RpuConfig::ciflow_baseline();
        assert_eq!(c.num_hples, 128);
        assert_eq!(c.vector_length, 1024);
        assert_eq!(c.vector_memory_bytes, 32 * MIB);
        assert_eq!(c.key_memory_bytes, 360 * MIB);
        assert!((c.clock_ghz - 1.7).abs() < 1e-9);
        assert_eq!(c.evk_policy, EvkPolicy::OnChip);
        // 128 lanes at 1.7 GHz = 217.6 G modops/s.
        assert!((c.modops_per_second() - 217.6e9).abs() < 1e6);
    }

    #[test]
    fn streaming_configuration_drops_key_memory() {
        let c = RpuConfig::ciflow_streaming();
        assert_eq!(c.key_memory_bytes, 0);
        assert_eq!(c.evk_policy, EvkPolicy::Streamed);
        // 392 MB -> 32 MB is the paper's 12.25x SRAM saving.
        let on_chip = RpuConfig::ciflow_baseline();
        let ratio = (on_chip.vector_memory_bytes + on_chip.key_memory_bytes) as f64
            / (c.vector_memory_bytes + c.key_memory_bytes) as f64;
        assert!((ratio - 12.25).abs() < 1e-9);
    }

    #[test]
    fn with_builders_update_fields() {
        let c = RpuConfig::ciflow_baseline()
            .with_bandwidth(12.8)
            .with_modops(2.0)
            .with_vector_memory(64 * MIB);
        assert!((c.dram_bandwidth_gbps - 12.8).abs() < 1e-9);
        assert!((c.modops_per_second() - 2.0 * 217.6e9).abs() < 1e6);
        assert_eq!(c.vector_memory_bytes, 64 * MIB);
        assert!((c.dram_bytes_per_second() - 12.8e9).abs() < 1.0);
    }

    #[test]
    fn channel_bandwidth_derivation() {
        let c = RpuConfig::ciflow_baseline();
        assert_eq!(c.memory_channel_count(), 1);
        // One channel: per-channel bandwidth IS the aggregate, bit for bit.
        assert_eq!(
            c.channel_bytes_per_second().to_bits(),
            c.dram_bytes_per_second().to_bits()
        );
        let eight = c.clone().with_memory_channels(8);
        assert_eq!(eight.memory_channel_count(), 8);
        assert!((eight.channel_bytes_per_second() - 8e9).abs() < 1.0);
        // The aggregate is conserved.
        assert!(
            (8.0 * eight.channel_bytes_per_second() - eight.dram_bytes_per_second()).abs() < 1.0
        );
        // Degenerate zero-channel configurations clamp to one channel.
        assert_eq!(c.clone().with_memory_channels(0).memory_channel_count(), 1);
    }

    #[test]
    fn zero_channel_setter_keeps_field_accessor_and_bandwidth_consistent() {
        // Regression: with_memory_channels(0) used to store 0 while
        // memory_channel_count() silently clamped to 1, so the stored field,
        // the accessor and channel_bytes_per_second() disagreed (and any code
        // reading the field directly — serialization, reports — saw an RPU
        // with no DRAM interface). The setter now clamps.
        let c = RpuConfig::ciflow_baseline().with_memory_channels(0);
        assert_eq!(c.num_memory_channels, 1);
        assert_eq!(c.memory_channel_count(), c.num_memory_channels);
        assert_eq!(
            c.channel_bytes_per_second().to_bits(),
            c.dram_bytes_per_second().to_bits()
        );
        // The clamped config is indistinguishable from an explicit 1-channel
        // one.
        assert_eq!(c, RpuConfig::ciflow_baseline().with_memory_channels(1));
    }

    #[test]
    fn area_model_matches_paper_endpoints() {
        let big = RpuConfig::ciflow_baseline();
        let small = RpuConfig::ciflow_streaming();
        assert!((big.estimated_area_mm2() - 401.85).abs() < 1.0);
        assert!((small.estimated_area_mm2() - 41.85).abs() < 1.0);
    }
}
