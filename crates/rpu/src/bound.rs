//! Static performance bounds: provable makespan lower bounds, critical-path
//! and slack extraction, and the closed-form roofline knee.
//!
//! Where [`crate::verify`] proves a schedule *can* execute (deadlock-freedom,
//! structural consistency), this module proves how *fast* it could possibly
//! execute — without running it. [`analyze`] computes, in O(V + E):
//!
//! * **Dependency-path bound** — forward/backward earliest-/latest-start
//!   passes over the true dependency edges, using the engine's own duration
//!   arithmetic ([`RpuEngine::task_duration`]). Yields per-task
//!   [`earliest_start`](BoundAnalysis::earliest_start) /
//!   [`latest_start`](BoundAnalysis::latest_start) /
//!   [`slack`](BoundAnalysis::slack) and one zero-slack
//!   [`critical_path`](BoundAnalysis::critical_path).
//! * **Queue-order bound** — the same forward pass over the *augmented*
//!   graph (dependency edges plus the engine's in-order compute-queue and
//!   per-channel memory-queue successor edges, placed by
//!   [`RpuEngine::channel_of`]). This is the graph the deadlock verifier
//!   analyzes; here it tightens the bound and lets the
//!   [`queue_critical_path`](BoundAnalysis::queue_critical_path) *blame*
//!   each binding edge as a true dependency or a queue-order constraint.
//! * **Resource occupancy bounds** — the data path serializes every DRAM
//!   transfer at the aggregate rate, so total memory bytes / bandwidth is a
//!   lower bound; likewise each channel's in-order queue and the compute
//!   pipeline.
//! * The **makespan bound** is the max of all of the above, and is *sound*:
//!   the engine's runtime can never beat it (property-tested in
//!   `tests/bound_oracle.rs` across presets, random graphs, channel counts
//!   and bandwidths, with bit-exact equality on contention-free chains).
//!
//! # Floating-point soundness
//!
//! Soundness holds in *machine* arithmetic, not just in exact real
//! arithmetic. The engine's event loop only ever applies two operations to
//! timestamps: `f64::max` (exact) and `+ duration` (monotone under
//! rounding). The path passes replay a subset of the engine's constraints
//! with the same two operations on the same per-task durations, so by
//! induction every earliest finish is `<=` the engine's finish time *as
//! computed in f64*. The occupancy folds run over program order while the
//! engine chains grants in grant order; summation order can differ by a few
//! ulps, so the memory occupancies are shaved by `(tasks + 3)` epsilons
//! (`occupancy_floor`) to stay provably below any engine ordering. The
//! compute queue issues in program order, so its fold needs no shave.
//!
//! # The roofline knee
//!
//! Every duration is affine in inverse bandwidth (`docs/ANALYTIC.md`), so
//! every bound component is too, and the makespan bound is a max of affine
//! pieces — piecewise affine and convex in `1/bandwidth`. [`analyze`]
//! derives the **knee** in closed form: the crossover bandwidth above which
//! the bound sits exactly on the flat compute floor (the schedule flips from
//! memory-bound to compute-bound). Schedules whose augmented critical path
//! carries *all* the compute plus memory never flatten exactly
//! ([`RooflineKnee::AlwaysBandwidthSensitive`]); the variant records the
//! residual serialized traffic and the bandwidth where that regime begins.
//! The knee is derived twice: [`knee`](BoundAnalysis::knee) over the full
//! placement-aware bound, and
//! [`dependency_knee`](BoundAnalysis::dependency_knee) over the
//! placement-independent bound (no queue edges) — their disagreement
//! separates a ceiling this placement imposes (fixable by re-pinning or
//! more channels) from one the schedule's structure imposes (the
//! utilization ceiling `ciflow`'s `R003` lint reports).
//!
//! Model details and the soundness argument live in `docs/BOUNDS.md`.

use crate::engine::RpuEngine;
use crate::task::{Task, TaskGraph, TaskId};

/// How many closed-form piece refinements the knee iteration may take. The
/// active piece's slope strictly decreases every step and there are finitely
/// many pieces, so this is a backstop, never a limit hit in practice.
const MAX_KNEE_STEPS: usize = 64;

/// The crossover bandwidth where the static makespan bound flips from
/// memory-bound to compute-bound, derived in closed form from the bound's
/// piecewise-affine representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RooflineKnee {
    /// The graph moves no DRAM bytes: the bound is flat at every bandwidth.
    ComputeBoundEverywhere,
    /// The graph performs no compute: the bound decreases with bandwidth
    /// forever and never meets a compute floor.
    MemoryBoundEverywhere,
    /// The augmented critical path carries every compute task *plus* memory
    /// transfers, so the bound stays strictly above the compute floor at
    /// every finite bandwidth. How much above is what distinguishes a
    /// serial chain (a structural utilization ceiling) from a well-decoupled
    /// pipeline (a vanishing prefetch residue): the payload records both.
    AlwaysBandwidthSensitive {
        /// The bandwidth (GB/s) above which the binding affine piece is the
        /// all-compute path: beyond it the bound is exactly
        /// `compute floor + residual_gb / bandwidth`.
        dominated_above_gbps: f64,
        /// That piece's DRAM traffic in GB — the transfers serialized with
        /// the full compute chain that no bandwidth can hide.
        residual_gb: f64,
    },
    /// Above this bandwidth the bound equals the compute floor exactly;
    /// below it, memory holds the bound above the floor.
    Crossover {
        /// The knee bandwidth in GB/s.
        bandwidth_gbps: f64,
    },
}

impl RooflineKnee {
    /// The crossover bandwidth in GB/s, if the bound has one.
    pub fn crossover_gbps(&self) -> Option<f64> {
        match self {
            RooflineKnee::Crossover { bandwidth_gbps } => Some(*bandwidth_gbps),
            _ => None,
        }
    }

    /// The bandwidth (GB/s) above which the bound is pinned to the compute
    /// floor: the exact crossover when there is one, or the bandwidth where
    /// the all-compute piece takes over (the bound then tracks the floor
    /// plus a vanishing `residual_gb / bandwidth`). `None` when the bound
    /// has no compute floor to meet.
    pub fn effective_knee_gbps(&self) -> Option<f64> {
        match self {
            RooflineKnee::Crossover { bandwidth_gbps } => Some(*bandwidth_gbps),
            RooflineKnee::AlwaysBandwidthSensitive {
                dominated_above_gbps,
                ..
            } => Some(*dominated_above_gbps),
            _ => None,
        }
    }
}

impl std::fmt::Display for RooflineKnee {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RooflineKnee::ComputeBoundEverywhere => write!(f, "compute-bound at every bandwidth"),
            RooflineKnee::MemoryBoundEverywhere => write!(f, "memory-bound at every bandwidth"),
            RooflineKnee::AlwaysBandwidthSensitive {
                dominated_above_gbps,
                residual_gb,
            } => write!(
                f,
                "bandwidth-sensitive at every bandwidth (no knee; above \
                 {dominated_above_gbps:.3} GB/s the bound tracks the compute floor \
                 plus {residual_gb:.3} GB of serialized traffic)"
            ),
            RooflineKnee::Crossover { bandwidth_gbps } => {
                write!(f, "knee at {bandwidth_gbps:.3} GB/s")
            }
        }
    }
}

/// Which constraint delivered a task's earliest start in a forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CriticalEdge {
    /// Nothing held the task back; it starts at time zero.
    Source,
    /// A true dependency edge: the task waited for this producer.
    Dependency(TaskId),
    /// An in-order queue edge: the task waited for its queue predecessor,
    /// not for any data it needs.
    QueueOrder {
        /// The queue predecessor the task waited behind.
        predecessor: TaskId,
        /// The memory channel of the shared queue, or `None` for the
        /// compute queue.
        channel: Option<usize>,
    },
}

/// One step of the queue-augmented critical path: a task plus the edge that
/// made it start when it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalStep {
    /// The task on the path.
    pub task: TaskId,
    /// The constraint that delivered its earliest start.
    pub edge: CriticalEdge,
}

/// Which bound component is the largest — the resource (or structure) to
/// blame for the makespan bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingResource {
    /// The compute pipeline's total occupancy.
    ComputePipeline,
    /// The shared DRAM data path's total occupancy.
    DataPath,
    /// One channel's in-order queue occupancy.
    MemoryChannel(usize),
    /// The longest true-dependency path.
    DependencyPath,
    /// The queue-augmented path — in-order queue edges tighten the bound
    /// strictly beyond the true dependencies.
    QueueOrder,
}

impl std::fmt::Display for BindingResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindingResource::ComputePipeline => write!(f, "compute pipeline"),
            BindingResource::DataPath => write!(f, "data path"),
            BindingResource::MemoryChannel(c) => write!(f, "memory channel {c}"),
            BindingResource::DependencyPath => write!(f, "dependency path"),
            BindingResource::QueueOrder => write!(f, "queue order"),
        }
    }
}

/// The complete static analysis of one graph on one configuration: per-task
/// schedule windows, critical paths, resource occupancies, the sound
/// makespan bound and the roofline knee. Produced by [`analyze`] /
/// [`RpuEngine::bounds`].
#[derive(Debug, Clone, PartialEq)]
pub struct BoundAnalysis {
    /// The aggregate bandwidth (GB/s) the time-valued fields are computed
    /// at — the engine configuration's bandwidth.
    pub bandwidth_gbps: f64,
    /// Per task: the earliest time its true dependencies allow it to start.
    pub earliest_start: Vec<f64>,
    /// Per task: earliest start plus its duration.
    pub earliest_finish: Vec<f64>,
    /// Per task: the earliest start under the augmented graph — true
    /// dependencies *plus* in-order queue edges. Always `>=`
    /// [`earliest_start`](Self::earliest_start); the gap is start delay the
    /// queue position alone imposes.
    pub queue_earliest_start: Vec<f64>,
    /// Per task: the latest start that still finishes the graph by the
    /// dependency bound (backward pass over true dependencies).
    pub latest_start: Vec<f64>,
    /// Per task: `latest_start - earliest_start`. Zero (up to rounding) on
    /// the critical path.
    pub slack: Vec<f64>,
    /// One longest true-dependency path, in program order.
    pub critical_path: Vec<TaskId>,
    /// One longest path through the augmented (dependency + in-order queue)
    /// graph, each step blamed on the edge that delivered its start.
    pub queue_critical_path: Vec<CriticalStep>,
    /// Longest true-dependency path length in seconds.
    pub dependency_bound_seconds: f64,
    /// Longest augmented-graph path length in seconds; always `>=` the
    /// dependency bound.
    pub queue_bound_seconds: f64,
    /// Total compute duration in seconds (bandwidth-independent).
    pub compute_occupancy_seconds: f64,
    /// Total data-path occupancy in seconds: every byte of DRAM traffic
    /// crosses the one shared data path at the aggregate rate.
    pub memory_occupancy_seconds: f64,
    /// Per-channel in-order queue occupancy in seconds, placed by
    /// [`RpuEngine::channel_of`]. Each entry is `<=` the aggregate
    /// data-path occupancy (channels time-share one path).
    pub channel_occupancy_seconds: Vec<f64>,
    /// The sound makespan lower bound: the max of every component above.
    pub makespan_bound_seconds: f64,
    /// The component delivering the makespan bound.
    pub binding: BindingResource,
    /// The closed-form roofline knee of the bound.
    pub knee: RooflineKnee,
    /// The knee of the *placement-independent* bound — the max of the
    /// compute floor, the shared data path, and the true-dependency path,
    /// with no queue-order edges. Where [`knee`](Self::knee) reflects this
    /// placement (channel maps and program order), this field reflects only
    /// the schedule's structure: a schedule whose dependency knee is
    /// [`RooflineKnee::AlwaysBandwidthSensitive`] serializes traffic with
    /// its full compute chain *by construction*, and no placement or
    /// bandwidth can lift it to the compute floor.
    pub dependency_knee: RooflineKnee,
}

impl BoundAnalysis {
    /// The makespan bound in milliseconds.
    pub fn makespan_bound_ms(&self) -> f64 {
        self.makespan_bound_seconds * 1e3
    }

    /// The dependency-path bound in milliseconds.
    pub fn dependency_bound_ms(&self) -> f64 {
        self.dependency_bound_seconds * 1e3
    }

    /// Achieved-vs-bound efficiency: `bound / actual` for an actual runtime
    /// in seconds. 1.0 means the run hit the provable bound exactly; lower
    /// values quantify contention the static model cannot see. Returns 1.0
    /// for an empty (zero-time) run.
    pub fn efficiency(&self, actual_runtime_seconds: f64) -> f64 {
        if actual_runtime_seconds > 0.0 {
            self.makespan_bound_seconds / actual_runtime_seconds
        } else {
            1.0
        }
    }

    /// The fraction of the queue-augmented critical path's edges that are
    /// queue-order constraints rather than true dependencies. 0.0 for an
    /// empty path.
    pub fn queue_edge_fraction(&self) -> f64 {
        let edges = self
            .queue_critical_path
            .iter()
            .filter(|s| !matches!(s.edge, CriticalEdge::Source))
            .count();
        if edges == 0 {
            return 0.0;
        }
        let queue_edges = self
            .queue_critical_path
            .iter()
            .filter(|s| matches!(s.edge, CriticalEdge::QueueOrder { .. }))
            .count();
        queue_edges as f64 / edges as f64
    }
}

/// One forward pass: per-task earliest start/finish, the binding edge per
/// task, and the argmax sink.
struct ForwardPass {
    start: Vec<f64>,
    finish: Vec<f64>,
    binding: Vec<CriticalEdge>,
    bound: f64,
    sink: Option<TaskId>,
}

/// A task's in-order queue predecessor and its channel (`None` = compute
/// queue), or `None` for queue heads.
type QueuePred = Option<(TaskId, Option<usize>)>;

/// The in-order queue predecessor of each task (compute queue or the task's
/// memory channel queue), or `None` for queue heads.
fn queue_predecessors(
    n: usize,
    compute_queue: &[TaskId],
    memory_queues: &[Vec<TaskId>],
) -> Vec<QueuePred> {
    let mut pred: Vec<QueuePred> = vec![None; n];
    for w in compute_queue.windows(2) {
        pred[w[1]] = Some((w[0], None));
    }
    for (channel, queue) in memory_queues.iter().enumerate() {
        for w in queue.windows(2) {
            pred[w[1]] = Some((w[0], Some(channel)));
        }
    }
    pred
}

/// Longest-path forward pass using the engine's duration arithmetic. When
/// `queue_pred` is provided the pass also honors in-order queue successor
/// edges (the augmented graph of the deadlock verifier). The recurrences use
/// exactly the engine's operations — a max fold over predecessor finishes
/// followed by one addition — so a contention-free serial chain reproduces
/// the engine's timestamps bit for bit, and in general every finish is a
/// machine-arithmetic lower bound on the engine's.
fn forward(engine: &RpuEngine, graph: &TaskGraph, queue_pred: Option<&[QueuePred]>) -> ForwardPass {
    let tasks = graph.tasks();
    let n = tasks.len();
    let mut start = vec![0.0f64; n];
    let mut finish = vec![0.0f64; n];
    let mut binding = vec![CriticalEdge::Source; n];
    let mut bound = 0.0f64;
    let mut sink = None;
    for task in tasks {
        let mut es = 0.0f64;
        let mut edge = CriticalEdge::Source;
        for &dep in &task.dependencies {
            if finish[dep] > es {
                es = finish[dep];
                edge = CriticalEdge::Dependency(dep);
            }
        }
        if let Some(pred) = queue_pred {
            if let Some((p, channel)) = pred[task.id] {
                if finish[p] > es {
                    es = finish[p];
                    edge = CriticalEdge::QueueOrder {
                        predecessor: p,
                        channel,
                    };
                }
            }
        }
        start[task.id] = es;
        finish[task.id] = es + engine.task_duration(task);
        binding[task.id] = edge;
        if finish[task.id] > bound {
            bound = finish[task.id];
            sink = Some(task.id);
        }
    }
    ForwardPass {
        start,
        finish,
        binding,
        bound,
        sink,
    }
}

/// Walks a forward pass's binding edges back from its sink and returns the
/// path in program order.
fn walk_critical(pass: &ForwardPass) -> Vec<CriticalStep> {
    let mut path = Vec::new();
    let mut cursor = pass.sink;
    while let Some(task) = cursor {
        let edge = pass.binding[task];
        path.push(CriticalStep { task, edge });
        cursor = match edge {
            CriticalEdge::Source => None,
            CriticalEdge::Dependency(p) | CriticalEdge::QueueOrder { predecessor: p, .. } => {
                Some(p)
            }
        };
    }
    path.reverse();
    path
}

/// Shaves an occupancy fold down by `(terms + 3)` epsilons so it is provably
/// `<=` the same sum folded in *any* order in machine arithmetic: the engine
/// chains memory grants in grant order, which can differ from program order
/// by a rounding ulp per term. The shave is ~1e-13 relative — far below
/// anything a report prints — and the path bounds (which need no shave)
/// recover bit-exactness wherever they dominate.
fn occupancy_floor(sum: f64, terms: usize) -> f64 {
    sum * (1.0 - (terms as f64 + 3.0) * f64::EPSILON)
}

/// The affine piece `(constant_seconds, per_inverse_gbps)` of the augmented
/// path bound active at `bandwidth_gbps`: a forward pass over precomputed
/// duration decompositions, carrying the affine coefficients of whichever
/// predecessor wins each max.
fn path_piece_at(
    tasks: &[Task],
    durations: &[(f64, f64)],
    queue_pred: &[QueuePred],
    bandwidth_gbps: f64,
) -> (f64, f64) {
    let inv = 1.0 / bandwidth_gbps;
    let n = tasks.len();
    let mut value = vec![0.0f64; n];
    let mut constant = vec![0.0f64; n];
    let mut slope = vec![0.0f64; n];
    let mut best = (0.0f64, 0.0f64, 0.0f64);
    for task in tasks {
        let mut es = (0.0f64, 0.0f64, 0.0f64);
        for &dep in &task.dependencies {
            if value[dep] > es.0 {
                es = (value[dep], constant[dep], slope[dep]);
            }
        }
        if let Some((p, _)) = queue_pred[task.id] {
            if value[p] > es.0 {
                es = (value[p], constant[p], slope[p]);
            }
        }
        let (dc, dm) = durations[task.id];
        value[task.id] = es.0 + (dc + dm * inv);
        constant[task.id] = es.1 + dc;
        slope[task.id] = es.2 + dm;
        if value[task.id] > best.0 {
            best = (value[task.id], constant[task.id], slope[task.id]);
        }
    }
    (best.1, best.2)
}

/// Derives the roofline knee in closed form. Starting from the aggregate
/// data-path crossover `M / C`, the iteration probes which affine piece of
/// the (convex) bound is active just above the current candidate and moves
/// to that piece's crossover with the compute floor; slopes strictly
/// decrease, so it terminates at the true knee.
fn derive_knee(
    graph: &TaskGraph,
    durations: &[(f64, f64)],
    queue_pred: &[QueuePred],
    compute_floor: f64,
) -> RooflineKnee {
    let (loaded, stored) = graph.total_bytes();
    if loaded + stored == 0 {
        return RooflineKnee::ComputeBoundEverywhere;
    }
    if compute_floor <= 0.0 {
        return RooflineKnee::MemoryBoundEverywhere;
    }
    let m_total = (loaded + stored) as f64 / 1e9;
    let mut knee = m_total / compute_floor;
    for _ in 0..MAX_KNEE_STEPS {
        // Probe just above the candidate so the piece that is active *above*
        // the crossover wins any tie at the crossover itself.
        let probe = knee * (1.0 + 1e-9);
        let (c, m) = path_piece_at(graph.tasks(), durations, queue_pred, probe);
        if m <= 0.0 {
            break;
        }
        if c >= compute_floor {
            // The max-constant piece stays the argmax of the (convex) bound
            // for every larger bandwidth, so this is exact, not a probe
            // artifact: above `knee` the bound is `compute_floor + m/bw`.
            return RooflineKnee::AlwaysBandwidthSensitive {
                dominated_above_gbps: knee,
                residual_gb: m,
            };
        }
        let candidate = m / (compute_floor - c);
        if candidate > knee * (1.0 + 1e-12) {
            knee = candidate;
        } else {
            break;
        }
    }
    RooflineKnee::Crossover {
        bandwidth_gbps: knee,
    }
}

/// Every per-bandwidth component of the makespan bound: both forward
/// passes and the resource occupancy folds. Shared by [`analyze`] and
/// [`bound_curve`] so a sweep point and a full analysis are bit-identical
/// by construction.
struct Components {
    dep: ForwardPass,
    aug: ForwardPass,
    compute_occupancy: f64,
    memory_occupancy: f64,
    channel_occupancy: Vec<f64>,
}

/// Computes the bound components at `engine`'s bandwidth. `channel_index`
/// is each memory task's channel (precomputed from the engine layout —
/// placement does not depend on bandwidth, so sweeps hash labels once).
fn components(
    engine: &RpuEngine,
    graph: &TaskGraph,
    queue_pred: &[QueuePred],
    channel_index: &[usize],
) -> Components {
    let dep = forward(engine, graph, None);
    let aug = forward(engine, graph, Some(queue_pred));

    // Resource occupancies, folded with the engine's per-task durations.
    // The compute fold mirrors the engine's in-order issue exactly; the
    // memory folds are shaved to stay sound under any grant order.
    let channels = engine.config().memory_channel_count();
    let mut compute_occupancy = 0.0f64;
    let mut memory_fold = 0.0f64;
    let mut memory_tasks = 0usize;
    let mut channel_fold = vec![0.0f64; channels];
    let mut channel_tasks = vec![0usize; channels];
    for task in graph.tasks() {
        let d = engine.task_duration(task);
        if task.is_compute() {
            compute_occupancy += d;
        } else {
            memory_fold += d;
            memory_tasks += 1;
            let c = channel_index[task.id];
            channel_fold[c] += d;
            channel_tasks[c] += 1;
        }
    }
    let memory_occupancy = occupancy_floor(memory_fold, memory_tasks);
    let channel_occupancy = channel_fold
        .iter()
        .zip(&channel_tasks)
        .map(|(&sum, &count)| occupancy_floor(sum, count))
        .collect();
    Components {
        dep,
        aug,
        compute_occupancy,
        memory_occupancy,
        channel_occupancy,
    }
}

/// The sound makespan bound and its binding component. Strict `>` in this
/// order means a tie blames the simpler component (a serial chain reads
/// "dependency path", not "queue order").
fn makespan_of(parts: &Components) -> (f64, BindingResource) {
    let mut makespan = parts.compute_occupancy;
    let mut binding = BindingResource::ComputePipeline;
    if parts.memory_occupancy > makespan {
        makespan = parts.memory_occupancy;
        binding = BindingResource::DataPath;
    }
    for (c, &occ) in parts.channel_occupancy.iter().enumerate() {
        if occ > makespan {
            makespan = occ;
            binding = BindingResource::MemoryChannel(c);
        }
    }
    if parts.dep.bound > makespan {
        makespan = parts.dep.bound;
        binding = BindingResource::DependencyPath;
    }
    if parts.aug.bound > makespan {
        makespan = parts.aug.bound;
        binding = BindingResource::QueueOrder;
    }
    (makespan, binding)
}

/// Each memory task's channel, read back off the engine layout's queues so
/// the label hashing behind [`RpuEngine::channel_of`] runs once per layout.
fn channel_index_of(n: usize, memory_queues: &[Vec<TaskId>]) -> Vec<usize> {
    let mut index = vec![0usize; n];
    for (c, queue) in memory_queues.iter().enumerate() {
        for &task in queue {
            index[task] = c;
        }
    }
    index
}

/// Evaluates just the makespan bound at each bandwidth of
/// `bandwidths_gbps`, under `engine`'s channel count and placement.
/// Bit-identical to running [`analyze`] at every point and reading
/// [`BoundAnalysis::makespan_bound_seconds`], but built for dense ladders
/// (`AnalyticSweep::bound_ms` sweeps 1000 points): the placement layout and
/// all bandwidth-independent inputs (compute durations and their fold,
/// memory sizes, channel placement) are computed once, and each point is a
/// single fused forward-pass-plus-occupancy-fold sweep with the engine's
/// duration arithmetic inlined (`bytes / (bw * 1e9)` is exactly
/// [`RpuEngine::task_duration`] at that point's configuration).
///
/// The dependency-only pass is skipped: the augmented pass replays a
/// superset of its constraints with the same exact-`max`/monotone-`+`
/// operations, so its finish times dominate pointwise — in machine
/// arithmetic, not just over the reals — and the dependency bound can
/// never be the strict maximum.
pub fn bound_curve(engine: &RpuEngine, graph: &TaskGraph, bandwidths_gbps: &[f64]) -> Vec<f64> {
    let tasks = graph.tasks();
    let n = tasks.len();
    let layout = engine.layout(graph);
    let queue_pred = queue_predecessors(n, &layout.compute_queue, &layout.memory_queues);
    let channel_index = channel_index_of(n, &layout.memory_queues);
    let channels = engine.config().memory_channel_count();
    let compute_duration: Vec<f64> = tasks
        .iter()
        .map(|t| {
            if t.is_compute() {
                engine.task_duration(t)
            } else {
                0.0
            }
        })
        .collect();
    let mut compute_occupancy = 0.0f64;
    for task in tasks {
        if task.is_compute() {
            compute_occupancy += compute_duration[task.id];
        }
    }

    let mut memory_tasks = 0usize;
    let mut channel_count = vec![0usize; channels];
    for task in tasks {
        if task.is_memory() {
            memory_tasks += 1;
            channel_count[channel_index[task.id]] += 1;
        }
    }

    // Lanes of eight, like the analytic evaluator: one pass over the graph
    // serves eight ladder points, amortizing the dependency walk.
    const LANES: usize = 8;
    let mut finish = vec![[0.0f64; LANES]; n];
    let mut channel_fold = vec![[0.0f64; LANES]; channels];
    let mut out = Vec::with_capacity(bandwidths_gbps.len());
    for chunk in bandwidths_gbps.chunks(LANES) {
        // Idle lanes divide by 1 and are discarded below.
        let mut bytes_per_second = [1.0f64; LANES];
        for (lane, &bw) in chunk.iter().enumerate() {
            bytes_per_second[lane] = bw * 1e9;
        }
        let mut path_bound = [0.0f64; LANES];
        let mut memory_fold = [0.0f64; LANES];
        for fold in &mut channel_fold {
            fold.fill(0.0);
        }
        for task in tasks {
            let mut d = [0.0f64; LANES];
            if task.is_compute() {
                d.fill(compute_duration[task.id]);
            } else {
                let bytes = task.bytes() as f64;
                let fold = &mut channel_fold[channel_index[task.id]];
                for lane in 0..LANES {
                    d[lane] = bytes / bytes_per_second[lane];
                    memory_fold[lane] += d[lane];
                    fold[lane] += d[lane];
                }
            }
            let mut es = [0.0f64; LANES];
            for &dep in &task.dependencies {
                let f = &finish[dep];
                for lane in 0..LANES {
                    if f[lane] > es[lane] {
                        es[lane] = f[lane];
                    }
                }
            }
            if let Some((p, _)) = queue_pred[task.id] {
                let f = &finish[p];
                for lane in 0..LANES {
                    if f[lane] > es[lane] {
                        es[lane] = f[lane];
                    }
                }
            }
            let mut f = [0.0f64; LANES];
            for lane in 0..LANES {
                f[lane] = es[lane] + d[lane];
                if f[lane] > path_bound[lane] {
                    path_bound[lane] = f[lane];
                }
            }
            finish[task.id] = f;
        }
        for lane in 0..chunk.len() {
            let mut makespan = compute_occupancy;
            let memory_occupancy = occupancy_floor(memory_fold[lane], memory_tasks);
            if memory_occupancy > makespan {
                makespan = memory_occupancy;
            }
            for (fold, &count) in channel_fold.iter().zip(&channel_count) {
                let occ = occupancy_floor(fold[lane], count);
                if occ > makespan {
                    makespan = occ;
                }
            }
            if path_bound[lane] > makespan {
                makespan = path_bound[lane];
            }
            out.push(makespan);
        }
    }
    out
}

/// Statically analyzes `graph` on `engine`'s configuration: schedule
/// windows, critical paths, occupancies, the sound makespan bound and the
/// roofline knee. Runs in O(V + E); never executes the graph.
///
/// The analysis is meaningful for graphs [`TaskGraph::from_tasks`] accepts
/// (backward dependencies only). Graphs with forward or dangling edges
/// should be screened with [`crate::verify::lint_structural`] first, as the
/// engine itself requires.
pub fn analyze(engine: &RpuEngine, graph: &TaskGraph) -> BoundAnalysis {
    let tasks = graph.tasks();
    let n = tasks.len();
    let layout = engine.layout(graph);
    let queue_pred = queue_predecessors(n, &layout.compute_queue, &layout.memory_queues);
    let channel_index = channel_index_of(n, &layout.memory_queues);

    // Forward passes, occupancies, and the bound they deliver.
    let parts = components(engine, graph, &queue_pred, &channel_index);
    let (makespan, binding) = makespan_of(&parts);
    let Components {
        dep,
        aug,
        compute_occupancy,
        memory_occupancy,
        channel_occupancy,
    } = parts;

    // Backward pass over true dependencies from the dependency bound, via
    // the dependents CSR the engine layout already built.
    let mut latest_start = vec![0.0f64; n];
    for task in tasks.iter().rev() {
        let mut lf = dep.bound;
        for &child in &layout.dependents[layout.offsets[task.id]..layout.offsets[task.id + 1]] {
            if latest_start[child] < lf {
                lf = latest_start[child];
            }
        }
        latest_start[task.id] = lf - engine.task_duration(task);
    }
    let slack: Vec<f64> = latest_start
        .iter()
        .zip(&dep.start)
        .map(|(ls, es)| ls - es)
        .collect();

    // Closed-form knee from the bound's affine pieces.
    let durations: Vec<(f64, f64)> = tasks
        .iter()
        .map(|t| {
            if t.is_compute() {
                (engine.task_duration(t), 0.0)
            } else {
                (0.0, t.bytes() as f64 / 1e9)
            }
        })
        .collect();
    let knee = derive_knee(graph, &durations, &queue_pred, compute_occupancy);
    let no_queue: Vec<QueuePred> = vec![None; n];
    let dependency_knee = derive_knee(graph, &durations, &no_queue, compute_occupancy);

    BoundAnalysis {
        bandwidth_gbps: engine.config().dram_bandwidth_gbps,
        critical_path: walk_critical(&dep).iter().map(|s| s.task).collect(),
        queue_critical_path: walk_critical(&aug),
        queue_earliest_start: aug.start,
        earliest_start: dep.start,
        earliest_finish: dep.finish,
        latest_start,
        slack,
        dependency_bound_seconds: dep.bound,
        queue_bound_seconds: aug.bound,
        compute_occupancy_seconds: compute_occupancy,
        memory_occupancy_seconds: memory_occupancy,
        channel_occupancy_seconds: channel_occupancy,
        makespan_bound_seconds: makespan,
        binding,
        knee,
        dependency_knee,
    }
}

impl RpuEngine {
    /// Statically analyzes a graph under this engine's configuration and
    /// placement — see [`analyze`].
    pub fn bounds(&self, graph: &TaskGraph) -> BoundAnalysis {
        analyze(self, graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RpuConfig;
    use crate::task::{ComputeKind, MemoryDirection};

    /// 1 Gop/s compute, parameterized bandwidth, one channel — durations are
    /// simple ratios, exact in f64 for the values used here.
    fn unit_config(bandwidth_gbps: f64) -> RpuConfig {
        RpuConfig {
            num_hples: 1,
            vector_length: 1,
            clock_ghz: 1.0,
            vector_memory_bytes: 1 << 30,
            key_memory_bytes: 0,
            scalar_memory_bytes: 0,
            dram_bandwidth_gbps: bandwidth_gbps,
            num_memory_channels: 1,
            modops_multiplier: 1.0,
            evk_policy: crate::config::EvkPolicy::Streamed,
        }
    }

    /// load -> compute -> store, strictly serial.
    fn serial_chain(stages: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        let mut prev: Option<TaskId> = None;
        for i in 0..stages {
            let deps = |p: &Option<TaskId>| p.map(|t| vec![t]).unwrap_or_default();
            let load = g.push_memory(
                MemoryDirection::Load,
                1_000_000_000,
                deps(&prev),
                format!("load {i}"),
                "P1",
            );
            let c = g.push_compute(
                ComputeKind::Ntt,
                500_000_000,
                vec![load],
                format!("c {i}"),
                "P1",
            );
            let store = g.push_memory(
                MemoryDirection::Store,
                250_000_000,
                vec![c],
                format!("store {i}"),
                "P1",
            );
            prev = Some(store);
        }
        g
    }

    #[test]
    fn bound_curve_matches_the_full_analysis_bit_for_bit() {
        // A chain (dependency-bound) and a wide fan-in (occupancy/queue
        // bound) — the curve must reproduce the full per-point analysis
        // exactly, across channel counts, from one shared layout.
        let mut fan = TaskGraph::new();
        let loads: Vec<TaskId> = (0..8)
            .map(|i| {
                fan.push_memory(
                    MemoryDirection::Load,
                    700_000_000 + i,
                    vec![],
                    format!("l{i}"),
                    "P1",
                )
            })
            .collect();
        fan.push_compute(ComputeKind::Ntt, 2_000_000_000, loads, "join", "P1");
        let ladder = [0.5, 1.0, 3.0, 12.8, 64.0, 1024.0];
        for graph in [&serial_chain(3), &fan] {
            for channels in [1usize, 2, 8] {
                let engine = RpuEngine::new(unit_config(1.0).with_memory_channels(channels));
                let curve = bound_curve(&engine, graph, &ladder);
                for (&bw, &bound) in ladder.iter().zip(&curve) {
                    let full = RpuEngine::new(unit_config(bw).with_memory_channels(channels))
                        .bounds(graph);
                    assert_eq!(
                        bound.to_bits(),
                        full.makespan_bound_seconds.to_bits(),
                        "bw={bw} channels={channels}"
                    );
                }
            }
        }
    }

    #[test]
    fn serial_chain_is_bit_exact_against_the_engine() {
        let g = serial_chain(4);
        for bw in [0.5, 1.0, 2.0, 8.0, 64.0, 1024.0] {
            for channels in [1, 2, 4, 8] {
                let engine = RpuEngine::new(unit_config(bw).with_memory_channels(channels));
                let b = engine.bounds(&g);
                let stats = engine.execute_stats(&g).unwrap();
                assert_eq!(
                    b.makespan_bound_seconds.to_bits(),
                    stats.runtime_seconds.to_bits(),
                    "bw={bw} channels={channels}"
                );
                assert_eq!(b.binding, BindingResource::DependencyPath);
            }
        }
    }

    #[test]
    fn independent_loads_on_one_channel_are_bit_exact_via_queue_order() {
        let mut g = TaskGraph::new();
        for i in 0..6 {
            g.push_memory(
                MemoryDirection::Load,
                1_000 + i,
                vec![],
                format!("l{i}"),
                "P1",
            );
        }
        let engine = RpuEngine::new(unit_config(1.0));
        let b = engine.bounds(&g);
        let stats = engine.execute_stats(&g).unwrap();
        assert_eq!(
            b.makespan_bound_seconds.to_bits(),
            stats.runtime_seconds.to_bits()
        );
        // Nothing but program order serializes these loads.
        assert!(b.queue_edge_fraction() > 0.99);
    }

    #[test]
    fn bound_is_sound_on_a_diamond_with_contention() {
        // Two parallel branches over one channel: the engine serializes more
        // than the dependency graph requires, so runtime >= bound, and the
        // queue-augmented bound is tighter than the dependency bound.
        let mut g = TaskGraph::new();
        let a = g.push_memory(MemoryDirection::Load, 4_000_000_000, vec![], "a", "P1");
        let b = g.push_memory(MemoryDirection::Load, 4_000_000_000, vec![], "b", "P1");
        let ca = g.push_compute(ComputeKind::Ntt, 1_000_000_000, vec![a], "ca", "P1");
        let cb = g.push_compute(ComputeKind::Ntt, 1_000_000_000, vec![b], "cb", "P1");
        g.push_compute(ComputeKind::PointwiseAdd, 1, vec![ca, cb], "join", "P1");
        for channels in [1, 2] {
            let engine = RpuEngine::new(unit_config(1.0).with_memory_channels(channels));
            let bounds = engine.bounds(&g);
            let stats = engine.execute_stats(&g).unwrap();
            assert!(
                bounds.makespan_bound_seconds <= stats.runtime_seconds,
                "channels={channels}: bound {} > runtime {}",
                bounds.makespan_bound_seconds,
                stats.runtime_seconds
            );
        }
        let one = RpuEngine::new(unit_config(1.0)).bounds(&g);
        assert!(one.queue_bound_seconds > one.dependency_bound_seconds);
        // On one channel the queues serialize both branch loads with the
        // whole compute chain, so the placement-aware knee never flattens —
        // but the *structure* does not force that: the dependency knee is a
        // real crossover (the branches could overlap on two channels).
        assert!(matches!(
            one.knee,
            RooflineKnee::AlwaysBandwidthSensitive { .. }
        ));
        assert!(one.dependency_knee.crossover_gbps().is_some());
    }

    #[test]
    fn slack_and_critical_path_on_a_fork() {
        // One 3 s branch, one 1 s branch, joined by a 1 s compute.
        let mut g = TaskGraph::new();
        let slow = g.push_memory(MemoryDirection::Load, 3_000_000_000, vec![], "slow", "P1");
        let fast = g.push_memory(MemoryDirection::Load, 1_000_000_000, vec![], "fast", "P1");
        let join = g.push_compute(
            ComputeKind::PointwiseAdd,
            1_000_000_000,
            vec![slow, fast],
            "join",
            "P1",
        );
        // Two channels so the queue does not serialize the branches.
        let engine = RpuEngine::new(unit_config(1.0).with_memory_channels(2));
        let b = engine.bounds(&g);
        assert_eq!(b.dependency_bound_seconds, 4.0);
        assert_eq!(b.critical_path, vec![slow, join]);
        assert_eq!(b.slack[slow], 0.0);
        assert_eq!(b.slack[join], 0.0);
        // The fast branch may slide 2 s without delaying the join.
        assert_eq!(b.slack[fast], 2.0);
        assert_eq!(b.earliest_start[join], 3.0);
        assert_eq!(b.latest_start[fast], 2.0);
    }

    #[test]
    fn knee_matches_the_closed_form_on_a_race() {
        // A 1 s compute (at 1 Gop/s) races a 2 GB load; the graph is their
        // join. Dependency path: max piece is the load side (c=0, m=2) vs
        // compute (c=1, m=0); aggregate memory m=2, compute floor 1 s. Knee
        // where 2/bw = 1 -> 2 GB/s.
        let mut g = TaskGraph::new();
        let c = g.push_compute(ComputeKind::Ntt, 1_000_000_000, vec![], "c", "P1");
        let l = g.push_memory(MemoryDirection::Load, 2_000_000_000, vec![], "l", "P1");
        g.push_compute(ComputeKind::PointwiseAdd, 0, vec![c, l], "join", "P1");
        let engine = RpuEngine::new(unit_config(64.0));
        let b = engine.bounds(&g);
        let knee = b.knee.crossover_gbps().expect("race graph has a knee");
        assert!((knee - 2.0).abs() < 1e-9, "knee {knee}");
    }

    #[test]
    fn degenerate_knees_are_classified() {
        let engine = RpuEngine::new(unit_config(1.0));
        // Pure compute: flat everywhere.
        let mut compute_only = TaskGraph::new();
        compute_only.push_compute(ComputeKind::Ntt, 100, vec![], "c", "P1");
        assert_eq!(
            engine.bounds(&compute_only).knee,
            RooflineKnee::ComputeBoundEverywhere
        );
        // Pure memory: never flattens.
        let mut memory_only = TaskGraph::new();
        memory_only.push_memory(MemoryDirection::Load, 100, vec![], "l", "P1");
        assert_eq!(
            engine.bounds(&memory_only).knee,
            RooflineKnee::MemoryBoundEverywhere
        );
        // A serial chain carries all compute plus memory on one path: the
        // bound never reaches the compute floor at any finite bandwidth,
        // and the residual is the *entire* 2.5 GB of traffic. The regime
        // starts at the aggregate crossover M/C = 2.5 GB / 1 s.
        let serial = engine.bounds(&serial_chain(2)).knee;
        let RooflineKnee::AlwaysBandwidthSensitive {
            dominated_above_gbps,
            residual_gb,
        } = serial
        else {
            panic!("serial chain must be bandwidth-sensitive, got {serial:?}");
        };
        assert!((residual_gb - 2.5).abs() < 1e-12, "{residual_gb}");
        assert!(
            (dominated_above_gbps - 2.5).abs() < 1e-9,
            "{dominated_above_gbps}"
        );
        assert_eq!(serial.effective_knee_gbps(), Some(dominated_above_gbps));
        assert_eq!(serial.crossover_gbps(), None);
        // A serial chain's ceiling is structural: the dependency knee (no
        // queue edges at all) classifies it identically.
        assert_eq!(engine.bounds(&serial_chain(2)).dependency_knee, serial);
        // Empty graph.
        assert_eq!(
            engine.bounds(&TaskGraph::new()).knee,
            RooflineKnee::ComputeBoundEverywhere
        );
        assert_eq!(engine.bounds(&TaskGraph::new()).makespan_bound_seconds, 0.0);
    }

    #[test]
    fn bound_is_flat_above_the_knee() {
        // Race graph again: above 2 GB/s the bound must equal the compute
        // floor exactly, below it the memory side holds it higher.
        let mut g = TaskGraph::new();
        let c = g.push_compute(ComputeKind::Ntt, 1_000_000_000, vec![], "c", "P1");
        let l = g.push_memory(MemoryDirection::Load, 2_000_000_000, vec![], "l", "P1");
        g.push_compute(ComputeKind::PointwiseAdd, 0, vec![c, l], "join", "P1");
        let floor = RpuEngine::new(unit_config(1.0))
            .bounds(&g)
            .compute_occupancy_seconds;
        for bw in [4.0, 16.0, 1024.0] {
            let b = RpuEngine::new(unit_config(bw)).bounds(&g);
            assert_eq!(
                b.makespan_bound_seconds.to_bits(),
                floor.to_bits(),
                "bw={bw}"
            );
        }
        let below = RpuEngine::new(unit_config(1.0)).bounds(&g);
        assert!(below.makespan_bound_seconds > floor);
    }

    #[test]
    fn efficiency_and_display_helpers() {
        let g = serial_chain(1);
        let engine = RpuEngine::new(unit_config(1.0));
        let b = engine.bounds(&g);
        let stats = engine.execute_stats(&g).unwrap();
        let eff = b.efficiency(stats.runtime_seconds);
        assert!((eff - 1.0).abs() < 1e-12);
        assert!(b.efficiency(0.0) == 1.0);
        assert!(b.makespan_bound_ms() > 0.0);
        assert!(format!("{}", b.binding).contains("dependency"));
        assert!(format!(
            "{}",
            RooflineKnee::Crossover {
                bandwidth_gbps: 2.0
            }
        )
        .contains("2.000"));
        let sensitive = RooflineKnee::AlwaysBandwidthSensitive {
            dominated_above_gbps: 2.5,
            residual_gb: 2.5,
        };
        assert!(format!("{sensitive}").contains("no knee"));
    }
}
