//! Buffer-to-channel mapping for the multi-channel memory model.
//!
//! Real HBM parts expose 8–32 *pseudo-channels*: independent in-order command
//! queues that share the die's total bandwidth. The engine models them as `N`
//! in-order command queues time-sharing one full-rate data path (see
//! `docs/MEMORY_MODEL.md`). Which channel a transfer uses is decided by
//! *data placement*: every memory task names the buffer it moves, and a
//! [`ChannelMap`] deterministically maps that buffer label to a channel.
//!
//! The default placement hashes the canonical buffer label over all channels,
//! which spreads the many per-tower buffers of an HKS schedule roughly
//! uniformly. Scheduling layers can override it with *pin rules* — e.g. pin
//! evk towers and spill buffers to disjoint channel groups so a fused
//! pipeline's cross-kernel evk prefetch never queues behind the current
//! kernel's limb writebacks:
//!
//! ```
//! use rpu::ChannelMap;
//!
//! // 4 channels: evk towers on channels 2-3, everything else on 0-1.
//! let map = ChannelMap::hashed(4)
//!     .with_pin("evk", 2..4)
//!     .with_pin("", 0..2); // catch-all: the empty pattern matches any label
//! assert!(map.channel_for("load evk[d0][t3]") >= 2);
//! assert!(map.channel_for("load in[5]") < 2);
//! // Kernel prefixes from fused pipelines are ignored: the buffer is the
//! // same DRAM data regardless of which kernel touches it.
//! assert_eq!(map.channel_for("k3:load in[5]"), map.channel_for("load in[5]"));
//! ```

use serde::{Deserialize, Serialize};

/// One pin rule: labels containing `pattern` map onto the listed channels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct PinRule {
    pattern: String,
    channels: Vec<usize>,
}

/// Deterministic mapping from buffer labels to memory channels.
///
/// Rules are consulted in insertion order; the first rule whose `pattern`
/// occurs in the canonical label wins, and the transfer is hashed over that
/// rule's channel set. A label matching no rule is hashed over all channels.
///
/// # Invariants
///
/// * [`ChannelMap::channel_for`] always returns a channel `< num_channels`.
/// * The mapping is a pure function of the label: the same label maps to the
///   same channel on every call and every run (the hash is FNV-1a, not
///   `DefaultHasher`, so it is stable across processes and Rust versions).
/// * Labels are canonicalized by stripping a leading `k<digits>:` kernel
///   prefix, so fused multi-kernel pipelines place a buffer on the same
///   channel no matter which kernel's copy of the schedule touches it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelMap {
    num_channels: usize,
    rules: Vec<PinRule>,
}

impl ChannelMap {
    /// A map that hashes every label uniformly over `num_channels` channels
    /// (clamped to at least 1).
    ///
    /// ```
    /// use rpu::ChannelMap;
    /// let map = ChannelMap::hashed(8);
    /// assert!(map.channel_for("load in[3]") < 8);
    /// // One channel means every buffer maps to channel 0.
    /// assert_eq!(ChannelMap::hashed(1).channel_for("anything"), 0);
    /// ```
    pub fn hashed(num_channels: usize) -> Self {
        Self {
            num_channels: num_channels.max(1),
            rules: Vec::new(),
        }
    }

    /// Adds a pin rule: labels containing `pattern` are hashed over
    /// `channels` instead of the full channel set. Channel indices outside
    /// `0..num_channels` are dropped; a rule left with no valid channels is
    /// ignored. The empty pattern matches every label, making it a catch-all
    /// for the remaining traffic.
    ///
    /// Rules win in insertion order, so a rule added *after* one whose
    /// pattern is a substring of it (in particular, after a catch-all) can
    /// never match; that is always a construction bug and is rejected by a
    /// debug assertion (and flagged as lint `P001` by `ciflow::lint`).
    pub fn with_pin(
        mut self,
        pattern: impl Into<String>,
        channels: impl IntoIterator<Item = usize>,
    ) -> Self {
        let pattern = pattern.into();
        debug_assert!(
            !self
                .rules
                .iter()
                .any(|rule| pattern.contains(rule.pattern.as_str())),
            "pin rule {pattern:?} is unreachable: an earlier rule's pattern is a substring of \
             it, so every label it matches is already claimed (rules win in insertion order)",
        );
        let channels: Vec<usize> = channels
            .into_iter()
            .filter(|&c| c < self.num_channels)
            .collect();
        if !channels.is_empty() {
            self.rules.push(PinRule { pattern, channels });
        }
        self
    }

    /// Number of channels this map distributes over (always at least 1).
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// The pin rules in match order, as `(pattern, channels)` pairs. Lint
    /// passes use this to prove every rule is reachable and matches traffic.
    pub fn rules(&self) -> impl Iterator<Item = (&str, &[usize])> {
        self.rules
            .iter()
            .map(|rule| (rule.pattern.as_str(), rule.channels.as_slice()))
    }

    /// The channel the named buffer lives on. Always `< num_channels`.
    pub fn channel_for(&self, label: &str) -> usize {
        let canonical = canonical_label(label);
        let hash = fnv1a(canonical.as_bytes());
        for rule in &self.rules {
            if canonical.contains(rule.pattern.as_str()) {
                return rule.channels[(hash % rule.channels.len() as u64) as usize];
            }
        }
        (hash % self.num_channels as u64) as usize
    }
}

/// Canonicalizes a task label down to the buffer it names: strips the
/// `k<digits>:` prefix fused pipelines prepend, then the operation verb
/// (`load` / `store` / `spill` / `park`) the schedule builders emit. Channel
/// placement keys on the buffer identity — the same DRAM data lives on the
/// same channel no matter which kernel instance or operation touches it, so
/// a spilled buffer's writeback and its later reload share a channel.
pub fn canonical_label(label: &str) -> &str {
    split_label(label).1
}

/// Splits a task label into its operation verb and the canonical buffer it
/// names, after stripping a `k<digits>:` kernel prefix. Labels that carry no
/// recognized verb (custom strategies are free to label however they like)
/// return `(None, stripped label)`. This is the shared vocabulary between
/// the schedule builders, the channel placement and the `ciflow::lint`
/// buffer-lifetime pass.
///
/// ```
/// use rpu::channel::split_label;
/// assert_eq!(split_label("k2:spill acc0[1]"), (Some("spill"), "acc0[1]"));
/// assert_eq!(split_label("load in[3]"), (Some("load"), "in[3]"));
/// assert_eq!(split_label("ntt tower 3"), (None, "ntt tower 3"));
/// ```
pub fn split_label(label: &str) -> (Option<&'static str>, &str) {
    let label = if let Some(rest) = label.strip_prefix('k') {
        match rest.split_once(':') {
            Some((digits, tail))
                if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) =>
            {
                tail
            }
            _ => label,
        }
    } else {
        label
    };
    for verb in ["load", "store", "spill", "park"] {
        if let Some(buffer) = label.strip_prefix(verb).and_then(|r| r.strip_prefix(' ')) {
            return (Some(verb), buffer);
        }
    }
    (None, label)
}

/// 64-bit FNV-1a: stable across runs, platforms and Rust versions (unlike
/// `DefaultHasher`, whose output is explicitly unspecified).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashed_map_is_deterministic_and_in_range() {
        let map = ChannelMap::hashed(8);
        for label in ["load in[0]", "store out1[7]", "load evk[d2][t9]", ""] {
            let c = map.channel_for(label);
            assert!(c < 8);
            assert_eq!(c, map.channel_for(label), "mapping must be stable");
        }
    }

    #[test]
    fn zero_channels_clamps_to_one() {
        let map = ChannelMap::hashed(0);
        assert_eq!(map.num_channels(), 1);
        assert_eq!(map.channel_for("x"), 0);
    }

    #[test]
    fn many_tower_labels_spread_over_all_channels() {
        // The per-tower labels of a real schedule must not collapse onto a
        // few channels: with 48 towers over 4 channels every channel should
        // receive several buffers.
        let map = ChannelMap::hashed(4);
        let mut histogram = [0usize; 4];
        for t in 0..48 {
            histogram[map.channel_for(&format!("load in[{t}]"))] += 1;
        }
        for (channel, &count) in histogram.iter().enumerate() {
            assert!(count >= 4, "channel {channel} got only {count}/48 buffers");
        }
    }

    #[test]
    fn pin_rules_win_in_insertion_order() {
        let map = ChannelMap::hashed(4)
            .with_pin("evk", [3])
            .with_pin("", 0..3);
        for t in 0..16 {
            assert_eq!(map.channel_for(&format!("load evk[d0][t{t}]")), 3);
            assert!(map.channel_for(&format!("load in[{t}]")) < 3);
        }
    }

    #[test]
    fn invalid_pin_channels_are_dropped() {
        // Out-of-range channels vanish; an entirely invalid rule is ignored
        // and the label falls through to the hash.
        let map = ChannelMap::hashed(2)
            .with_pin("evk", [5, 1])
            .with_pin("in", [9]);
        assert_eq!(map.channel_for("load evk[d0][t0]"), 1);
        assert!(map.channel_for("load in[0]") < 2);
    }

    #[test]
    fn kernel_prefixes_and_verbs_are_canonicalized_away() {
        let map = ChannelMap::hashed(8);
        assert_eq!(
            map.channel_for("k12:load in[3]"),
            map.channel_for("load in[3]")
        );
        // Placement keys on the buffer: a spilled buffer's writeback and its
        // reload, and the same buffer touched by different kernels, all
        // share a channel.
        assert_eq!(
            map.channel_for("spill acc0[1]"),
            map.channel_for("load acc0[1]")
        );
        assert_eq!(canonical_label("k0:spill acc0[1]"), "acc0[1]");
        assert_eq!(canonical_label("store out1[7]"), "out1[7]");
        // Non-kernel prefixes that merely look similar are left alone.
        assert_ne!(canonical_label("kx:load in[0]"), "in[0]");
    }
}
