//! Execution statistics reported by the engine.

use serde::{Deserialize, Serialize};

/// Aggregate outcome of executing one task graph on the RPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ExecutionStats {
    /// End-to-end runtime in seconds.
    pub runtime_seconds: f64,
    /// Time the compute pipeline spent executing tasks, in seconds.
    pub compute_busy_seconds: f64,
    /// Time the shared DRAM data path spent transferring, in seconds. The
    /// pseudo-channels time-share one data path, so this never exceeds the
    /// runtime, and it always equals the sum of
    /// [`memory_channel_busy_seconds`](Self::memory_channel_busy_seconds) —
    /// the engine maintains that invariant and a regression test enforces it.
    pub memory_busy_seconds: f64,
    /// Per-channel transfer time in seconds, indexed by memory channel. Has
    /// one entry per configured channel (a single entry for the classic
    /// single-queue model).
    pub memory_channel_busy_seconds: Vec<f64>,
    /// Total modular operations executed.
    pub total_ops: u64,
    /// Bytes loaded from DRAM.
    pub bytes_loaded: u64,
    /// Bytes stored to DRAM.
    pub bytes_stored: u64,
    /// Number of compute tasks.
    pub compute_tasks: usize,
    /// Number of memory tasks.
    pub memory_tasks: usize,
}

impl ExecutionStats {
    /// Runtime in milliseconds (the unit of every figure in the paper).
    pub fn runtime_ms(&self) -> f64 {
        self.runtime_seconds * 1e3
    }

    /// Fraction of the runtime during which the compute pipeline was idle
    /// (waiting for memory tasks or dependencies). The paper reports this as
    /// "idle time" (e.g. 20.87% for OC DPRIVE at 12.8 GB/s vs 72.76% for MP).
    pub fn compute_idle_fraction(&self) -> f64 {
        if self.runtime_seconds <= 0.0 {
            0.0
        } else {
            (1.0 - self.compute_busy_seconds / self.runtime_seconds).max(0.0)
        }
    }

    /// Fraction of the runtime during which the DRAM data path was idle
    /// (no channel transferring).
    pub fn memory_idle_fraction(&self) -> f64 {
        if self.runtime_seconds <= 0.0 {
            0.0
        } else {
            (1.0 - self.memory_busy_seconds / self.runtime_seconds).max(0.0)
        }
    }

    /// Number of memory channels the run executed with. Statistics built by
    /// hand without per-channel entries count as single-channel.
    pub fn memory_channel_count(&self) -> usize {
        self.memory_channel_busy_seconds.len().max(1)
    }

    /// Busy time of one memory channel in seconds (0.0 for a channel index
    /// the run did not have).
    pub fn memory_channel_busy(&self, channel: usize) -> f64 {
        self.memory_channel_busy_seconds
            .get(channel)
            .copied()
            .unwrap_or(0.0)
    }

    /// Fraction of the runtime during which one memory channel was idle.
    pub fn memory_channel_idle_fraction(&self, channel: usize) -> f64 {
        if self.runtime_seconds <= 0.0 {
            0.0
        } else {
            (1.0 - self.memory_channel_busy(channel) / self.runtime_seconds).max(0.0)
        }
    }

    /// Channel load imbalance: the busiest channel's transfer time divided
    /// by the mean across channels (1.0 = perfectly balanced; large values
    /// mean the placement starved most channels). Returns 1.0 when no
    /// memory traffic was executed.
    pub fn memory_channel_imbalance(&self) -> f64 {
        let n = self.memory_channel_count();
        let mean = self.memory_busy_seconds / n as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        let busiest = if self.memory_channel_busy_seconds.is_empty() {
            self.memory_busy_seconds
        } else {
            self.memory_channel_busy_seconds
                .iter()
                .copied()
                .fold(0.0f64, f64::max)
        };
        busiest / mean
    }

    /// Total DRAM traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }

    /// Achieved arithmetic intensity in modular operations per DRAM byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.total_bytes() == 0 {
            f64::INFINITY
        } else {
            self.total_ops as f64 / self.total_bytes() as f64
        }
    }

    /// Achieved modular-operation throughput in operations per second.
    pub fn achieved_modops_per_second(&self) -> f64 {
        if self.runtime_seconds <= 0.0 {
            0.0
        } else {
            self.total_ops as f64 / self.runtime_seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = ExecutionStats {
            runtime_seconds: 2.0,
            compute_busy_seconds: 1.5,
            memory_busy_seconds: 1.0,
            memory_channel_busy_seconds: vec![1.0],
            total_ops: 3_000,
            bytes_loaded: 600,
            bytes_stored: 400,
            compute_tasks: 10,
            memory_tasks: 5,
        };
        assert!((s.runtime_ms() - 2000.0).abs() < 1e-9);
        assert!((s.compute_idle_fraction() - 0.25).abs() < 1e-12);
        assert!((s.memory_idle_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(s.total_bytes(), 1000);
        assert!((s.arithmetic_intensity() - 3.0).abs() < 1e-12);
        assert!((s.achieved_modops_per_second() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn per_channel_metrics() {
        let s = ExecutionStats {
            runtime_seconds: 2.0,
            compute_busy_seconds: 1.0,
            memory_busy_seconds: 1.5,
            memory_channel_busy_seconds: vec![1.0, 0.5, 0.0, 0.0],
            memory_tasks: 3,
            ..ExecutionStats::default()
        };
        assert_eq!(s.memory_channel_count(), 4);
        assert!((s.memory_channel_busy(0) - 1.0).abs() < 1e-12);
        assert!((s.memory_channel_busy(7) - 0.0).abs() < 1e-12);
        assert!((s.memory_channel_idle_fraction(1) - 0.75).abs() < 1e-12);
        // Mean busy = 0.375 s, busiest = 1.0 s.
        assert!((s.memory_channel_imbalance() - 1.0 / 0.375).abs() < 1e-12);
        // The data path was transferring 1.5 s of the 2 s runtime.
        assert!((s.memory_idle_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_runtime_is_handled() {
        let s = ExecutionStats::default();
        assert_eq!(s.compute_idle_fraction(), 0.0);
        assert_eq!(s.memory_idle_fraction(), 0.0);
        assert_eq!(s.achieved_modops_per_second(), 0.0);
        assert!(s.arithmetic_intensity().is_infinite());
        assert_eq!(s.memory_channel_count(), 1);
        assert!((s.memory_channel_imbalance() - 1.0).abs() < 1e-12);
    }
}
