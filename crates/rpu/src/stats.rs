//! Execution statistics reported by the engine.

use serde::{Deserialize, Serialize};

/// Aggregate outcome of executing one task graph on the RPU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ExecutionStats {
    /// End-to-end runtime in seconds.
    pub runtime_seconds: f64,
    /// Time the compute pipeline spent executing tasks, in seconds.
    pub compute_busy_seconds: f64,
    /// Time the memory channel spent transferring data, in seconds.
    pub memory_busy_seconds: f64,
    /// Total modular operations executed.
    pub total_ops: u64,
    /// Bytes loaded from DRAM.
    pub bytes_loaded: u64,
    /// Bytes stored to DRAM.
    pub bytes_stored: u64,
    /// Number of compute tasks.
    pub compute_tasks: usize,
    /// Number of memory tasks.
    pub memory_tasks: usize,
}

impl ExecutionStats {
    /// Runtime in milliseconds (the unit of every figure in the paper).
    pub fn runtime_ms(&self) -> f64 {
        self.runtime_seconds * 1e3
    }

    /// Fraction of the runtime during which the compute pipeline was idle
    /// (waiting for memory tasks or dependencies). The paper reports this as
    /// "idle time" (e.g. 20.87% for OC DPRIVE at 12.8 GB/s vs 72.76% for MP).
    pub fn compute_idle_fraction(&self) -> f64 {
        if self.runtime_seconds <= 0.0 {
            0.0
        } else {
            (1.0 - self.compute_busy_seconds / self.runtime_seconds).max(0.0)
        }
    }

    /// Fraction of the runtime during which the memory channel was idle.
    pub fn memory_idle_fraction(&self) -> f64 {
        if self.runtime_seconds <= 0.0 {
            0.0
        } else {
            (1.0 - self.memory_busy_seconds / self.runtime_seconds).max(0.0)
        }
    }

    /// Total DRAM traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }

    /// Achieved arithmetic intensity in modular operations per DRAM byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.total_bytes() == 0 {
            f64::INFINITY
        } else {
            self.total_ops as f64 / self.total_bytes() as f64
        }
    }

    /// Achieved modular-operation throughput in operations per second.
    pub fn achieved_modops_per_second(&self) -> f64 {
        if self.runtime_seconds <= 0.0 {
            0.0
        } else {
            self.total_ops as f64 / self.runtime_seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = ExecutionStats {
            runtime_seconds: 2.0,
            compute_busy_seconds: 1.5,
            memory_busy_seconds: 1.0,
            total_ops: 3_000,
            bytes_loaded: 600,
            bytes_stored: 400,
            compute_tasks: 10,
            memory_tasks: 5,
        };
        assert!((s.runtime_ms() - 2000.0).abs() < 1e-9);
        assert!((s.compute_idle_fraction() - 0.25).abs() < 1e-12);
        assert!((s.memory_idle_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(s.total_bytes(), 1000);
        assert!((s.arithmetic_intensity() - 3.0).abs() < 1e-12);
        assert!((s.achieved_modops_per_second() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_runtime_is_handled() {
        let s = ExecutionStats::default();
        assert_eq!(s.compute_idle_fraction(), 0.0);
        assert_eq!(s.memory_idle_fraction(), 0.0);
        assert_eq!(s.achieved_modops_per_second(), 0.0);
        assert!(s.arithmetic_intensity().is_infinite());
    }
}
