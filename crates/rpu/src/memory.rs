//! On-chip memory capacity tracking.
//!
//! The schedule generators use an [`OnChipTracker`] while emitting tasks to
//! decide which intermediate buffers fit on-chip (and can therefore be reused
//! without DRAM traffic) and which must be spilled and reloaded. The tracker
//! is a bookkeeping structure, not a timing model — timing lives in the
//! engine.

use std::collections::HashMap;

/// Result of attempting to allocate a buffer on-chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationOutcome {
    /// The buffer fits; it now occupies on-chip memory.
    OnChip,
    /// The buffer does not fit and must live in DRAM (spilled).
    Spilled,
}

/// Capacity-tracked on-chip buffer pool.
#[derive(Debug, Clone)]
pub struct OnChipTracker {
    capacity: u64,
    used: u64,
    peak: u64,
    buffers: HashMap<String, u64>,
    spill_events: u64,
}

impl OnChipTracker {
    /// Creates a tracker for a memory of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            peak: 0,
            buffers: HashMap::new(),
            spill_events: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// High-water mark of allocated bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Number of allocation attempts that did not fit.
    pub fn spill_events(&self) -> u64 {
        self.spill_events
    }

    /// True if a buffer of `bytes` would currently fit.
    pub fn fits(&self, bytes: u64) -> bool {
        self.used + bytes <= self.capacity
    }

    /// True if the named buffer is currently resident.
    pub fn contains(&self, name: &str) -> bool {
        self.buffers.contains_key(name)
    }

    /// Attempts to allocate `bytes` for `name`. If the buffer is already
    /// resident this is a no-op returning [`AllocationOutcome::OnChip`].
    pub fn allocate(&mut self, name: impl Into<String>, bytes: u64) -> AllocationOutcome {
        let name = name.into();
        if self.buffers.contains_key(&name) {
            return AllocationOutcome::OnChip;
        }
        if self.used + bytes > self.capacity {
            self.spill_events += 1;
            return AllocationOutcome::Spilled;
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        self.buffers.insert(name, bytes);
        AllocationOutcome::OnChip
    }

    /// Frees the named buffer if it is resident; returns the bytes released.
    pub fn release(&mut self, name: &str) -> u64 {
        match self.buffers.remove(name) {
            Some(bytes) => {
                self.used -= bytes;
                bytes
            }
            None => 0,
        }
    }

    /// Frees every resident buffer.
    pub fn clear(&mut self) {
        self.used = 0;
        self.buffers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_release_cycle() {
        let mut t = OnChipTracker::new(100);
        assert_eq!(t.allocate("a", 40), AllocationOutcome::OnChip);
        assert_eq!(t.allocate("b", 40), AllocationOutcome::OnChip);
        assert_eq!(t.used(), 80);
        assert_eq!(t.free(), 20);
        assert_eq!(t.allocate("c", 30), AllocationOutcome::Spilled);
        assert_eq!(t.spill_events(), 1);
        assert_eq!(t.release("a"), 40);
        assert_eq!(t.allocate("c", 30), AllocationOutcome::OnChip);
        assert_eq!(t.peak(), 80);
        assert!(t.contains("c"));
        assert!(!t.contains("a"));
    }

    #[test]
    fn double_allocation_is_idempotent() {
        let mut t = OnChipTracker::new(10);
        assert_eq!(t.allocate("x", 8), AllocationOutcome::OnChip);
        assert_eq!(t.allocate("x", 8), AllocationOutcome::OnChip);
        assert_eq!(t.used(), 8);
    }

    #[test]
    fn release_of_unknown_buffer_is_zero() {
        let mut t = OnChipTracker::new(10);
        assert_eq!(t.release("nope"), 0);
    }

    #[test]
    fn clear_resets_usage_but_not_peak() {
        let mut t = OnChipTracker::new(50);
        t.allocate("a", 30);
        t.clear();
        assert_eq!(t.used(), 0);
        assert_eq!(t.peak(), 30);
        assert!(t.fits(50));
    }
}
