//! The decoupled execution engine.
//!
//! The RPU fetches compute and memory instructions through decoupled queues
//! and overlaps DRAM transfers with computation whenever dependencies allow
//! (paper §V-A/§V-C): one in-order *compute* queue plus one in-order command
//! queue per DRAM pseudo-channel, all pseudo-channels sharing a single
//! full-rate data path. A transfer occupies the data path for
//! `bytes / bandwidth` seconds; when the path frees, the oldest
//! dependency-ready channel head is granted next — so extra channels buy
//! *head-of-line bypass* (a dep-blocked writeback no longer stalls a ready
//! prefetch on another channel), never extra peak bandwidth. With one
//! channel the model degenerates, operation for operation, to the classic
//! single in-order memory queue. Because FHE is data-oblivious, all of this
//! is known statically and the model needs no speculation.
//!
//! ## Ready-tracking and grant mechanics
//!
//! Dependency resolution is *incremental*: the engine precomputes, per task,
//! a remaining-dependency counter and keeps a running ready time (the max
//! finish time over its already-completed dependencies). When a task
//! completes, the engine walks its dependents (a CSR adjacency built once per
//! execution), decrementing counters and raising ready times — O(1) amortized
//! per graph edge. A queue head is *ready* exactly when its counter hits
//! zero, so the issue check and the data-path grant scan are O(1) per queue:
//! granting is one pass over the channel heads picking the oldest
//! (lowest-id) ready head, and the ready time established by that pass is
//! the grant's start time lower bound — dependencies are never re-scanned.
//! These mechanics change *how* readiness is computed, not *when* a task is
//! ready: the schedule timing is bit-identical to the historical
//! re-scanning engine (property-tested in `tests/channels.rs`).
//!
//! Execution is *trace-optional*: [`RpuEngine::execute`] records a
//! [`TaskRecord`] per task for timing diagrams, while
//! [`RpuEngine::execute_stats`] runs the identical simulation without
//! allocating any per-task records — the mode sweeps and batch sessions use.
//! Both paths share one simulation loop, so their [`ExecutionStats`] are
//! bit-identical by construction (and property-tested anyway).
//!
//! The full timing semantics — issue and grant rules, dependency stalls, the
//! deadlock condition, buffer-to-channel mapping, and worked timing
//! diagrams — are documented in `docs/MEMORY_MODEL.md` at the repository
//! root.

use crate::channel::ChannelMap;
use crate::config::RpuConfig;
use crate::stats::ExecutionStats;
use crate::task::{Label, Task, TaskGraph, TaskId, TaskKind};
use crate::trace::{EngineQueue, ExecutionTrace, TaskRecord};
use std::sync::Arc;

/// How much per-task detail an execution records.
///
/// Statistics-only execution avoids one [`TaskRecord`] allocation (plus two
/// label reference-count bumps) per task, which matters when a sweep executes
/// thousands of identical graphs only to read aggregate numbers off each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TraceMode {
    /// Record only aggregate [`ExecutionStats`] (the default for sweeps and
    /// batch sessions).
    #[default]
    StatsOnly,
    /// Additionally record a per-task [`TaskRecord`] trace for timing
    /// diagrams.
    Full,
}

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// No queue head can make progress: the schedule has a cross-queue
    /// ordering cycle (a generator bug). See the deadlock section of
    /// `docs/MEMORY_MODEL.md` for how such cycles arise. The same condition
    /// is statically detectable *before* execution as lint `D001`
    /// ([`crate::verify::lint_deadlock`], catalogued in `docs/LINTS.md`);
    /// `wait_chain` here is the runtime witness of exactly that cycle.
    Deadlock {
        /// Task at the head of the compute queue, if any.
        compute_head: Option<TaskId>,
        /// The blocked `(channel, head task)` pairs of the non-empty memory
        /// queues.
        memory_heads: Vec<(usize, TaskId)>,
        /// The labels of every blocked queue head (compute first, then the
        /// memory heads in channel order) — what the stuck transfers and
        /// kernels actually *are*, not just their ids.
        head_labels: Vec<(TaskId, Label)>,
        /// The shortest wait-for cycle found among the blocked heads: each
        /// task waits — through a dependency or its in-order queue — for the
        /// next, and the last waits for the first.
        wait_chain: Vec<(TaskId, Label)>,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Deadlock {
                compute_head,
                memory_heads,
                head_labels,
                wait_chain,
            } => {
                write!(
                    f,
                    "schedule deadlock [lint D001]: compute head {compute_head:?}, memory heads \
                     {memory_heads:?}"
                )?;
                if !head_labels.is_empty() {
                    let heads = head_labels
                        .iter()
                        .map(|(t, label)| format!("{t}(`{label}`)"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    write!(f, "; blocked on {heads}")?;
                }
                if let Some((first, _)) = wait_chain.first() {
                    let chain = wait_chain
                        .iter()
                        .map(|(t, label)| format!("{t}(`{label}`)"))
                        .collect::<Vec<_>>()
                        .join(" -> ");
                    write!(f, "; wait-for cycle {chain} -> {first}")?;
                }
                write!(f, " (see docs/LINTS.md#d001)")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Result of one execution: aggregate statistics plus the per-task trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Aggregate statistics.
    pub stats: ExecutionStats,
    /// Per-task start/end records.
    pub trace: ExecutionTrace,
}

/// The grant comparator: does `candidate` win the freed data path over the
/// best head found so far? The engine grants the *oldest* (lowest task id,
/// i.e. earliest program order) dependency-ready channel head, so the
/// comparator is a plain id comparison with "no incumbent" losing to
/// everything. [`crate::analytic`] replays the same comparator symbolically,
/// which is what makes the parametric timeline's grant choices provably the
/// engine's own.
#[inline]
#[must_use]
pub fn grant_precedes(candidate: TaskId, incumbent: Option<TaskId>) -> bool {
    incumbent.is_none_or(|best| candidate < best)
}

/// The per-execution queue and dependency layout shared by the concrete
/// engine loop and the symbolic executor in [`crate::analytic`]: the in-order
/// compute queue, one in-order queue per memory channel, the
/// remaining-dependency counters, and the dependents CSR adjacency. Both
/// executors derive their control flow from this one structure, so a task
/// lands in the same queue with the same dependency bookkeeping in either
/// mode by construction.
pub(crate) struct EngineLayout {
    pub compute_queue: Vec<TaskId>,
    pub memory_queues: Vec<Vec<TaskId>>,
    pub memory_tasks: usize,
    pub remaining: Vec<u32>,
    pub offsets: Vec<usize>,
    pub dependents: Vec<TaskId>,
}

/// The task-level RPU simulator.
#[derive(Debug, Clone)]
pub struct RpuEngine {
    config: RpuConfig,
    channel_map: ChannelMap,
}

impl RpuEngine {
    /// Creates an engine for a configuration. Memory tasks are placed on the
    /// configuration's channels by hashing their buffer labels
    /// ([`ChannelMap::hashed`]); override the placement with
    /// [`RpuEngine::with_channel_map`].
    pub fn new(config: RpuConfig) -> Self {
        let channel_map = ChannelMap::hashed(config.memory_channel_count());
        Self {
            config,
            channel_map,
        }
    }

    /// Replaces the buffer-to-channel mapping (e.g. to pin evk towers and
    /// spill buffers to disjoint channel groups). Channels the map names
    /// beyond the configuration's channel count wrap around modulo the
    /// count, so a map built for a different channel count still executes.
    pub fn with_channel_map(mut self, channel_map: ChannelMap) -> Self {
        self.channel_map = channel_map;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &RpuConfig {
        &self.config
    }

    /// The buffer-to-channel mapping in use.
    pub fn channel_map(&self) -> &ChannelMap {
        &self.channel_map
    }

    /// Duration of a single task under this configuration, in seconds. A
    /// memory task occupies the shared data path exclusively while it runs,
    /// so its duration is `bytes / aggregate bandwidth` regardless of the
    /// channel count (channels buy scheduling freedom, not rate).
    pub fn task_duration(&self, task: &Task) -> f64 {
        match task.kind {
            TaskKind::Compute { ops, .. } => ops as f64 / self.config.modops_per_second(),
            TaskKind::Memory { bytes, .. } => bytes as f64 / self.config.dram_bytes_per_second(),
        }
    }

    /// The memory channel a task executes on: its explicit hint if set,
    /// otherwise the channel map's label-driven placement — both reduced
    /// modulo the configured channel count.
    pub fn channel_of(&self, task: &Task) -> usize {
        let n = self.config.memory_channel_count();
        match task.channel {
            Some(hint) => hint % n,
            None => self.channel_map.channel_for(&task.label) % n,
        }
    }

    /// Executes a task graph and returns runtime statistics and a per-task
    /// trace ([`TraceMode::Full`]).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Deadlock`] if the in-order queues block each
    /// other, which indicates an invalid schedule.
    pub fn execute(&self, graph: &TaskGraph) -> Result<RunResult, EngineError> {
        let mut trace = ExecutionTrace::new();
        let stats = self.run(graph, Some(&mut trace))?;
        Ok(RunResult { stats, trace })
    }

    /// Executes a task graph and returns only the aggregate statistics
    /// ([`TraceMode::StatsOnly`]): the same simulation as
    /// [`RpuEngine::execute`] without allocating a [`TaskRecord`] per task.
    /// The statistics are bit-identical to the traced run's.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Deadlock`] exactly as [`RpuEngine::execute`]
    /// would.
    pub fn execute_stats(&self, graph: &TaskGraph) -> Result<ExecutionStats, EngineError> {
        self.run(graph, None)
    }

    /// Builds the [`EngineLayout`] for one execution: queue contents in
    /// program order, remaining-dependency counters and the dependents CSR
    /// (one offsets array plus one flat edge array, built in O(V + E)).
    pub(crate) fn layout(&self, graph: &TaskGraph) -> EngineLayout {
        let tasks = graph.tasks();
        let n = tasks.len();
        let channels = self.config.memory_channel_count();
        let compute_queue: Vec<TaskId> = tasks
            .iter()
            .filter(|t| t.is_compute())
            .map(|t| t.id)
            .collect();
        // One in-order queue per memory channel, in program order.
        let mut memory_queues: Vec<Vec<TaskId>> = vec![Vec::new(); channels];
        let mut memory_tasks = 0usize;
        for task in tasks.iter().filter(|t| t.is_memory()) {
            memory_queues[self.channel_of(task)].push(task.id);
            memory_tasks += 1;
        }
        let remaining: Vec<u32> = tasks.iter().map(|t| t.dependencies.len() as u32).collect();
        let mut offsets: Vec<usize> = vec![0; n + 1];
        for task in tasks {
            for &d in &task.dependencies {
                offsets[d + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut dependents: Vec<TaskId> = vec![0; offsets[n]];
        let mut cursor = offsets.clone();
        for task in tasks {
            for &d in &task.dependencies {
                dependents[cursor[d]] = task.id;
                cursor[d] += 1;
            }
        }
        EngineLayout {
            compute_queue,
            memory_queues,
            memory_tasks,
            remaining,
            offsets,
            dependents,
        }
    }

    /// The shared simulation core. `trace` selects the mode: `Some` records a
    /// [`TaskRecord`] per completed task, `None` skips all per-task
    /// allocation. Everything else — issue, grant, retirement, statistics —
    /// is one code path, which is what makes the two public modes
    /// bit-identical.
    fn run(
        &self,
        graph: &TaskGraph,
        mut trace: Option<&mut ExecutionTrace>,
    ) -> Result<ExecutionStats, EngineError> {
        let tasks = graph.tasks();
        let channels = self.config.memory_channel_count();
        // Incremental ready-tracking state: per task, the number of
        // dependencies not yet retired and the max finish time over the
        // retired ones. Retirement walks the dependents adjacency, so
        // dependency resolution costs O(1) amortized per edge instead of a
        // per-event rescan of every queue head's dependency list.
        let EngineLayout {
            compute_queue,
            memory_queues,
            memory_tasks,
            mut remaining,
            offsets,
            dependents,
        } = self.layout(graph);
        let mut ready_at: Vec<f64> = vec![0.0; tasks.len()];

        let mut stats = ExecutionStats {
            compute_tasks: compute_queue.len(),
            memory_tasks,
            total_ops: graph.total_ops(),
            memory_channel_busy_seconds: vec![0.0; channels],
            ..ExecutionStats::default()
        };
        let (loaded, stored) = graph.total_bytes();
        stats.bytes_loaded = loaded;
        stats.bytes_stored = stored;

        let mut ci = 0usize; // compute queue index
        let mut mi = vec![0usize; channels]; // per-channel memory queue index
        let mut compute_free_at = 0.0f64;
        let mut bus_free_at = 0.0f64; // when the shared data path frees
        let mut makespan = 0.0f64;

        // Event-driven simulation: the in-flight compute task and the
        // in-flight memory grant are the only events; at each event time the
        // compute head issues if ready, and the freed data path is granted
        // to the oldest (lowest task id, i.e. earliest program order)
        // dependency-ready channel head. A channel whose head is still
        // waiting on a dependency does not block the grant — that
        // head-of-line bypass is the entire benefit of multiple channels.
        let mut mem_run: Option<(TaskId, usize, f64, f64)> = None; // (task, channel, start, end)
        let mut comp_run: Option<(TaskId, f64, f64)> = None; // (task, start, end)

        loop {
            // Issue the compute head as soon as all its dependencies have
            // retired; `ready_at` already holds their max finish time.
            if comp_run.is_none() {
                if let Some(&head) = compute_queue.get(ci) {
                    if remaining[head] == 0 {
                        let start = ready_at[head].max(compute_free_at);
                        comp_run = Some((head, start, start + self.task_duration(&tasks[head])));
                        ci += 1;
                    }
                }
            }

            // Grant the data path to the oldest ready channel head. The scan
            // is O(channels): readiness is a counter test, and the ready
            // time comes straight from `ready_at` — dependencies are not
            // re-examined for the granted task.
            if mem_run.is_none() {
                let mut grant: Option<(TaskId, usize)> = None;
                for (channel, queue) in memory_queues.iter().enumerate() {
                    if let Some(&head) = queue.get(mi[channel]) {
                        if remaining[head] == 0 && grant_precedes(head, grant.map(|(best, _)| best))
                        {
                            grant = Some((head, channel));
                        }
                    }
                }
                if let Some((head, channel)) = grant {
                    let start = ready_at[head].max(bus_free_at);
                    mem_run = Some((
                        head,
                        channel,
                        start,
                        start + self.task_duration(&tasks[head]),
                    ));
                    mi[channel] += 1;
                }
            }

            // Advance to the next completion event.
            let t_next = match (&comp_run, &mem_run) {
                (Some((_, _, ce)), Some((_, _, _, me))) => ce.min(*me),
                (Some((_, _, ce)), None) => *ce,
                (None, Some((_, _, _, me))) => *me,
                (None, None) => {
                    let exhausted = ci >= compute_queue.len()
                        && mi
                            .iter()
                            .zip(&memory_queues)
                            .all(|(&i, queue)| i >= queue.len());
                    if exhausted {
                        break;
                    }
                    return Err(deadlock_error(
                        tasks,
                        &compute_queue,
                        ci,
                        &memory_queues,
                        &mi,
                        &remaining,
                    ));
                }
            };

            // Retire a completed task: update the dependents' counters and
            // ready times (the incremental replacement for finish-time
            // rescans).
            let retire = |head: TaskId, end: f64, remaining: &mut [u32], ready_at: &mut [f64]| {
                for &c in &dependents[offsets[head]..offsets[head + 1]] {
                    remaining[c] -= 1;
                    ready_at[c] = ready_at[c].max(end);
                }
            };

            if let Some((head, channel, start, end)) = mem_run {
                if end <= t_next {
                    retire(head, end, &mut remaining, &mut ready_at);
                    makespan = makespan.max(end);
                    bus_free_at = end;
                    stats.memory_busy_seconds += end - start;
                    stats.memory_channel_busy_seconds[channel] += end - start;
                    if let Some(trace) = trace.as_deref_mut() {
                        trace.push(TaskRecord {
                            task: head,
                            queue: EngineQueue::Memory(channel),
                            start_seconds: start,
                            end_seconds: end,
                            label: Arc::clone(&tasks[head].label),
                            stage: Arc::clone(&tasks[head].stage),
                        });
                    }
                    mem_run = None;
                }
            }
            if let Some((head, start, end)) = comp_run {
                if end <= t_next {
                    retire(head, end, &mut remaining, &mut ready_at);
                    makespan = makespan.max(end);
                    compute_free_at = end;
                    stats.compute_busy_seconds += end - start;
                    if let Some(trace) = trace.as_deref_mut() {
                        trace.push(TaskRecord {
                            task: head,
                            queue: EngineQueue::Compute,
                            start_seconds: start,
                            end_seconds: end,
                            label: Arc::clone(&tasks[head].label),
                            stage: Arc::clone(&tasks[head].stage),
                        });
                    }
                    comp_run = None;
                }
            }
        }

        stats.runtime_seconds = makespan;
        Ok(stats)
    }
}

/// Builds the enriched [`EngineError::Deadlock`] at the point where no queue
/// head can progress and nothing is in flight: reconstructs which tasks are
/// done (exactly the queue prefixes — everything issued has completed),
/// collects the blocked heads' labels, and walks the wait-for relation from
/// each blocked head to find the shortest wait-for cycle. "t waits for u"
/// when u is t's first unfinished dependency, or — for a task whose
/// dependencies are all met but which is stuck behind its in-order queue —
/// when u is t's queue head. This is the runtime witness of the augmented
/// cycle that [`crate::verify::lint_deadlock`] (lint `D001`) detects
/// statically.
pub(crate) fn deadlock_error(
    tasks: &[Task],
    compute_queue: &[TaskId],
    ci: usize,
    memory_queues: &[Vec<TaskId>],
    mi: &[usize],
    remaining: &[u32],
) -> EngineError {
    let n = tasks.len();
    let compute_head = compute_queue.get(ci).copied();
    let memory_heads: Vec<(usize, TaskId)> = memory_queues
        .iter()
        .enumerate()
        .filter_map(|(channel, queue)| queue.get(mi[channel]).map(|&head| (channel, head)))
        .collect();
    let heads: Vec<TaskId> = compute_head
        .into_iter()
        .chain(memory_heads.iter().map(|&(_, head)| head))
        .collect();
    let head_labels: Vec<(TaskId, Label)> = heads
        .iter()
        .map(|&t| (t, Arc::clone(&tasks[t].label)))
        .collect();

    // Done set and queue-head index. Nothing is in flight, so precisely the
    // queue prefixes have retired.
    let mut done = vec![false; n];
    let mut queue_head: Vec<Option<TaskId>> = vec![None; n];
    for (queue, &cursor) in
        std::iter::once((compute_queue, &ci)).chain(memory_queues.iter().map(Vec::as_slice).zip(mi))
    {
        for &t in &queue[..cursor] {
            done[t] = true;
        }
        if let Some(&head) = queue.get(cursor) {
            for &t in &queue[cursor..] {
                queue_head[t] = Some(head);
            }
        }
    }

    // From each blocked head, follow the wait-for relation until a task
    // repeats; keep the shortest cycle found. Every unfinished task waits
    // for *some* unfinished task (an unmet dependency, else its queue head,
    // which is distinct because a ready head would have issued), so the walk
    // always closes a cycle within n steps.
    let mut wait_chain: Vec<TaskId> = Vec::new();
    let mut position: Vec<Option<usize>> = vec![None; n];
    for &start in &heads {
        let mut path: Vec<TaskId> = Vec::new();
        let mut cursor = start;
        let cycle = loop {
            if let Some(at) = position[cursor] {
                break &path[at..];
            }
            position[cursor] = Some(path.len());
            path.push(cursor);
            cursor = match (remaining[cursor] > 0)
                .then(|| {
                    tasks[cursor]
                        .dependencies
                        .iter()
                        .copied()
                        .find(|&d| !done[d])
                })
                .flatten()
            {
                Some(dep) => dep,
                None => queue_head[cursor].expect("a blocked task is in a queue"),
            };
        };
        if wait_chain.is_empty() || cycle.len() < wait_chain.len() {
            wait_chain = cycle.to_vec();
        }
        for &t in &path {
            position[t] = None;
        }
    }

    EngineError::Deadlock {
        compute_head,
        memory_heads,
        head_labels,
        wait_chain: wait_chain
            .into_iter()
            .map(|t| (t, Arc::clone(&tasks[t].label)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RpuConfig;
    use crate::task::{ComputeKind, MemoryDirection, TaskGraph};

    /// A configuration with round numbers: 1 Gop/s compute, 1 GB/s memory.
    fn unit_config() -> RpuConfig {
        RpuConfig {
            num_hples: 1,
            vector_length: 1,
            clock_ghz: 1.0,
            vector_memory_bytes: 1 << 30,
            key_memory_bytes: 0,
            scalar_memory_bytes: 0,
            dram_bandwidth_gbps: 1.0,
            num_memory_channels: 1,
            modops_multiplier: 1.0,
            evk_policy: crate::config::EvkPolicy::Streamed,
        }
    }

    #[test]
    fn independent_compute_and_memory_overlap() {
        // 1e9 ops (1 s) and 1e9 bytes (1 s) with no dependency: runtime 1 s.
        let mut g = TaskGraph::new();
        g.push_compute(ComputeKind::Ntt, 1_000_000_000, vec![], "ntt", "P1");
        g.push_memory(MemoryDirection::Load, 1_000_000_000, vec![], "load", "P1");
        let result = RpuEngine::new(unit_config()).execute(&g).unwrap();
        assert!((result.stats.runtime_seconds - 1.0).abs() < 1e-9);
        assert!((result.stats.compute_busy_seconds - 1.0).abs() < 1e-9);
        assert!((result.stats.memory_busy_seconds - 1.0).abs() < 1e-9);
        assert!(result.stats.compute_idle_fraction() < 1e-9);
    }

    #[test]
    fn dependent_tasks_serialize() {
        // Load (1 s) then compute (1 s) depending on it: runtime 2 s, compute
        // idle 50%.
        let mut g = TaskGraph::new();
        let load = g.push_memory(MemoryDirection::Load, 1_000_000_000, vec![], "load", "P1");
        g.push_compute(ComputeKind::Ntt, 1_000_000_000, vec![load], "ntt", "P1");
        let result = RpuEngine::new(unit_config()).execute(&g).unwrap();
        assert!((result.stats.runtime_seconds - 2.0).abs() < 1e-9);
        assert!((result.stats.compute_idle_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn in_order_queues_respect_program_order() {
        // Two memory tasks: the second is independent but must wait for the
        // first (in-order queue), so memory time is 2 s even though only the
        // first is needed by the compute task.
        let mut g = TaskGraph::new();
        let load1 = g.push_memory(MemoryDirection::Load, 1_000_000_000, vec![], "load1", "P1");
        g.push_memory(
            MemoryDirection::Store,
            1_000_000_000,
            vec![],
            "store2",
            "P1",
        );
        g.push_compute(ComputeKind::Ntt, 500_000_000, vec![load1], "ntt", "P1");
        let result = RpuEngine::new(unit_config()).execute(&g).unwrap();
        // Memory channel: 0-1 load, 1-2 store. Compute: 1-1.5.
        assert!((result.stats.runtime_seconds - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_channels_bypass_a_dependency_blocked_head() {
        // Program order: compute C0 (1 s), store S of C0's result, load L
        // (independent), compute C1 needing L. With one channel the in-order
        // memory queue holds L behind the dep-blocked S: S 1-2, L 2-3,
        // C1 3-4 — runtime 4 s. With S and L on different channels the bus
        // grants L immediately (head-of-line bypass): L 0-1, C1 1-2, S 1-2 —
        // runtime 2 s. The aggregate bandwidth never changed.
        let build = |s_channel: Option<usize>, l_channel: Option<usize>| {
            let mut g = TaskGraph::new();
            let c0 = g.push_compute(ComputeKind::Ntt, 1_000_000_000, vec![], "c0", "P1");
            g.push_memory_on(
                MemoryDirection::Store,
                1_000_000_000,
                vec![c0],
                "store s",
                "P1",
                s_channel,
            );
            let l = g.push_memory_on(
                MemoryDirection::Load,
                1_000_000_000,
                vec![],
                "load l",
                "P1",
                l_channel,
            );
            g.push_compute(ComputeKind::Ntt, 1_000_000_000, vec![l], "c1", "P1");
            g
        };
        let single = RpuEngine::new(unit_config())
            .execute(&build(None, None))
            .unwrap();
        assert!((single.stats.runtime_seconds - 4.0).abs() < 1e-9);
        let dual = RpuEngine::new(unit_config().with_memory_channels(2))
            .execute(&build(Some(0), Some(1)))
            .unwrap();
        assert!((dual.stats.runtime_seconds - 2.0).abs() < 1e-9);
        assert_eq!(dual.stats.memory_channel_count(), 2);
        assert!((dual.stats.memory_channel_busy(0) - 1.0).abs() < 1e-9);
        assert!((dual.stats.memory_channel_busy(1) - 1.0).abs() < 1e-9);
        // The per-channel accounting sums to the aggregate busy time.
        assert!(
            (dual.stats.memory_channel_busy_seconds.iter().sum::<f64>()
                - dual.stats.memory_busy_seconds)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn channel_hints_override_the_label_map() {
        // Two identical labels with different hints land on different
        // channels; without hints the identical labels share one channel.
        let mut g = TaskGraph::new();
        g.push_memory_on(MemoryDirection::Load, 10, vec![], "same", "P1", Some(0));
        g.push_memory_on(MemoryDirection::Load, 10, vec![], "same", "P1", Some(3));
        let engine = RpuEngine::new(unit_config().with_memory_channels(4));
        let result = engine.execute(&g).unwrap();
        let channels: Vec<usize> = result
            .trace
            .records()
            .iter()
            .filter_map(|r| r.queue.channel())
            .collect();
        assert_eq!(channels, vec![0, 3]);
        // Hints wrap modulo the configured channel count.
        let mut g2 = TaskGraph::new();
        g2.push_memory_on(MemoryDirection::Load, 10, vec![], "x", "P1", Some(7));
        let r2 = RpuEngine::new(unit_config().with_memory_channels(2))
            .execute(&g2)
            .unwrap();
        assert_eq!(r2.trace.records()[0].queue.channel(), Some(1));
    }

    #[test]
    fn doubling_bandwidth_halves_memory_bound_runtime() {
        let mut g = TaskGraph::new();
        let load = g.push_memory(MemoryDirection::Load, 2_000_000_000, vec![], "load", "P1");
        g.push_compute(ComputeKind::Ntt, 100_000_000, vec![load], "ntt", "P1");
        let slow = RpuEngine::new(unit_config()).execute(&g).unwrap();
        let fast = RpuEngine::new(unit_config().with_bandwidth(2.0))
            .execute(&g)
            .unwrap();
        assert!(slow.stats.runtime_seconds > 1.9);
        assert!(fast.stats.runtime_seconds < 1.2);
    }

    #[test]
    fn doubling_modops_halves_compute_bound_runtime() {
        let mut g = TaskGraph::new();
        g.push_compute(ComputeKind::Ntt, 2_000_000_000, vec![], "ntt", "P1");
        let slow = RpuEngine::new(unit_config()).execute(&g).unwrap();
        let fast = RpuEngine::new(unit_config().with_modops(2.0))
            .execute(&g)
            .unwrap();
        assert!((slow.stats.runtime_seconds - 2.0).abs() < 1e-9);
        assert!((fast.stats.runtime_seconds - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trace_records_every_task() {
        let mut g = TaskGraph::new();
        let a = g.push_memory(MemoryDirection::Load, 10, vec![], "load", "P1");
        let b = g.push_compute(ComputeKind::Intt, 10, vec![a], "intt", "P1");
        g.push_memory(MemoryDirection::Store, 10, vec![b], "store", "P5");
        let result = RpuEngine::new(unit_config()).execute(&g).unwrap();
        assert_eq!(result.trace.records().len(), 3);
        let spans = result.trace.stage_spans();
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn empty_graph_runs_in_zero_time() {
        let g = TaskGraph::new();
        let result = RpuEngine::new(unit_config()).execute(&g).unwrap();
        assert_eq!(result.stats.runtime_seconds, 0.0);
        assert!(result.trace.records().is_empty());
    }

    #[test]
    fn cross_queue_priority_inversion_is_reported_as_deadlock() {
        // Compute head depends on the *second* memory task while the first
        // memory task depends on the compute head: no head can start.
        use crate::task::{Task, TaskKind};
        let tasks = vec![
            Task {
                id: 0,
                kind: TaskKind::Compute {
                    kind: ComputeKind::Ntt,
                    ops: 10,
                },
                dependencies: vec![2],
                label: "c".into(),
                stage: "P1".into(),
                channel: None,
            },
            Task {
                id: 1,
                kind: TaskKind::Memory {
                    direction: MemoryDirection::Load,
                    bytes: 10,
                },
                dependencies: vec![0],
                label: "m1".into(),
                stage: "P1".into(),
                channel: None,
            },
            Task {
                id: 2,
                kind: TaskKind::Memory {
                    direction: MemoryDirection::Load,
                    bytes: 10,
                },
                dependencies: vec![],
                label: "m2".into(),
                stage: "P1".into(),
                channel: None,
            },
        ];
        // The validating constructor rejects the forward dependency outright…
        assert!(TaskGraph::from_tasks(tasks.clone()).is_err());

        // …but a buggy generator bypassing validation reaches the engine,
        // which must report an enriched deadlock: the blocked heads by label
        // and the shortest wait-for cycle, citing the matching static lint.
        let g = TaskGraph::from_tasks_unchecked(tasks);
        let err = RpuEngine::new(unit_config()).execute(&g).unwrap_err();
        let EngineError::Deadlock {
            compute_head,
            memory_heads,
            head_labels,
            wait_chain,
        } = &err;
        assert_eq!(*compute_head, Some(0));
        assert_eq!(memory_heads, &vec![(0, 1)]);
        assert_eq!(head_labels.len(), 2);
        assert_eq!(&*head_labels[0].1, "c");
        // The cycle: c waits on m2, m2 is stuck behind its queue head m1,
        // m1 waits on... back to m2 — the minimal cycle is m2 -> m1 -> ... ;
        // whichever rotation is reported, it must close and stay minimal.
        assert!(
            wait_chain.len() >= 2 && wait_chain.len() <= 3,
            "{wait_chain:?}"
        );
        let text = err.to_string();
        assert!(
            text.contains("D001") && text.contains("docs/LINTS.md"),
            "{text}"
        );
        assert!(text.contains("`c`") && text.contains("m1"), "{text}");

        // And the static lint agrees with the runtime verdict.
        let diagnostics = crate::verify::lint_graph(&g, &RpuEngine::new(unit_config()));
        assert!(diagnostics
            .iter()
            .any(|d| d.code == crate::verify::codes::DEADLOCK_CYCLE));
    }

    #[test]
    fn multi_queue_issue_respects_dependencies() {
        // A serial chain alternating between the compute queue and one
        // pinned memory channel must execute strictly in dependency order
        // even when other channels are free.
        let mut g = TaskGraph::new();
        let c = g.push_compute(ComputeKind::Ntt, 10, vec![], "c", "P1");
        let m1 = g.push_memory_on(MemoryDirection::Load, 10, vec![c], "m1", "P1", Some(0));
        let blocked = g.push_compute(ComputeKind::Ntt, 10, vec![m1], "c2", "P1");
        g.push_memory_on(
            MemoryDirection::Load,
            10,
            vec![blocked],
            "m2",
            "P1",
            Some(0),
        );
        let result = RpuEngine::new(unit_config().with_memory_channels(2))
            .execute(&g)
            .unwrap();
        assert_eq!(result.trace.records().len(), 4);
        let finish: Vec<f64> = result
            .trace
            .records()
            .iter()
            .map(|r| r.end_seconds)
            .collect();
        assert!(finish.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }
}
