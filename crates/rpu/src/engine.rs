//! The decoupled execution engine.
//!
//! The RPU fetches compute and memory instructions through separate queues
//! and overlaps DRAM transfers with computation whenever dependencies allow
//! (paper §V-A/§V-C). The engine models exactly that: the task graph is split
//! into an in-order *compute* queue and an in-order *memory* queue; the head
//! of each queue starts as soon as its dependencies have completed, and the
//! two heads may execute concurrently. Because FHE is data-oblivious, all of
//! this is known statically and the model needs no speculation.
//!
//! Task durations come from the configuration: a compute task of `ops`
//! modular operations takes `ops / MODOPS` seconds; a memory task of `bytes`
//! takes `bytes / bandwidth` seconds.

use crate::config::RpuConfig;
use crate::stats::ExecutionStats;
use crate::task::{Task, TaskGraph, TaskId, TaskKind};
use crate::trace::{EngineQueue, ExecutionTrace, TaskRecord};

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Neither queue head can make progress: the schedule has a cross-queue
    /// ordering cycle (a generator bug).
    Deadlock {
        /// Task at the head of the compute queue, if any.
        compute_head: Option<TaskId>,
        /// Task at the head of the memory queue, if any.
        memory_head: Option<TaskId>,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Deadlock {
                compute_head,
                memory_head,
            } => write!(
                f,
                "schedule deadlock: compute head {compute_head:?}, memory head {memory_head:?}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Result of one execution: aggregate statistics plus the per-task trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Aggregate statistics.
    pub stats: ExecutionStats,
    /// Per-task start/end records.
    pub trace: ExecutionTrace,
}

/// The task-level RPU simulator.
#[derive(Debug, Clone)]
pub struct RpuEngine {
    config: RpuConfig,
}

impl RpuEngine {
    /// Creates an engine for a configuration.
    pub fn new(config: RpuConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RpuConfig {
        &self.config
    }

    /// Duration of a single task under this configuration, in seconds.
    pub fn task_duration(&self, task: &Task) -> f64 {
        match task.kind {
            TaskKind::Compute { ops, .. } => ops as f64 / self.config.modops_per_second(),
            TaskKind::Memory { bytes, .. } => bytes as f64 / self.config.dram_bytes_per_second(),
        }
    }

    /// Executes a task graph and returns runtime statistics and a trace.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Deadlock`] if the two in-order queues block each
    /// other, which indicates an invalid schedule.
    pub fn execute(&self, graph: &TaskGraph) -> Result<RunResult, EngineError> {
        let tasks = graph.tasks();
        let compute_queue: Vec<TaskId> = tasks
            .iter()
            .filter(|t| t.is_compute())
            .map(|t| t.id)
            .collect();
        let memory_queue: Vec<TaskId> = tasks
            .iter()
            .filter(|t| t.is_memory())
            .map(|t| t.id)
            .collect();

        let mut finish = vec![f64::NAN; tasks.len()];
        let mut trace = ExecutionTrace::new();
        let mut stats = ExecutionStats {
            compute_tasks: compute_queue.len(),
            memory_tasks: memory_queue.len(),
            total_ops: graph.total_ops(),
            ..ExecutionStats::default()
        };
        let (loaded, stored) = graph.total_bytes();
        stats.bytes_loaded = loaded;
        stats.bytes_stored = stored;

        let mut ci = 0usize; // compute queue index
        let mut mi = 0usize; // memory queue index
        let mut compute_free_at = 0.0f64;
        let mut memory_free_at = 0.0f64;

        let deps_ready = |task: &Task, finish: &[f64]| -> Option<f64> {
            let mut ready = 0.0f64;
            for &d in &task.dependencies {
                let f = finish[d];
                if f.is_nan() {
                    return None;
                }
                ready = ready.max(f);
            }
            Some(ready)
        };

        while ci < compute_queue.len() || mi < memory_queue.len() {
            let mut progressed = false;

            // Try to issue the head of the memory queue first (prefetching is
            // what lets the RPU hide latency), then the compute head. Both
            // can be issued in the same iteration; they overlap in time.
            if mi < memory_queue.len() {
                let task = &tasks[memory_queue[mi]];
                if let Some(dep_ready) = deps_ready(task, &finish) {
                    let start = dep_ready.max(memory_free_at);
                    let end = start + self.task_duration(task);
                    finish[task.id] = end;
                    memory_free_at = end;
                    stats.memory_busy_seconds += end - start;
                    trace.push(TaskRecord {
                        task: task.id,
                        queue: EngineQueue::Memory,
                        start_seconds: start,
                        end_seconds: end,
                        label: task.label.clone(),
                        stage: task.stage.clone(),
                    });
                    mi += 1;
                    progressed = true;
                }
            }

            if ci < compute_queue.len() {
                let task = &tasks[compute_queue[ci]];
                if let Some(dep_ready) = deps_ready(task, &finish) {
                    let start = dep_ready.max(compute_free_at);
                    let end = start + self.task_duration(task);
                    finish[task.id] = end;
                    compute_free_at = end;
                    stats.compute_busy_seconds += end - start;
                    trace.push(TaskRecord {
                        task: task.id,
                        queue: EngineQueue::Compute,
                        start_seconds: start,
                        end_seconds: end,
                        label: task.label.clone(),
                        stage: task.stage.clone(),
                    });
                    ci += 1;
                    progressed = true;
                }
            }

            if !progressed {
                return Err(EngineError::Deadlock {
                    compute_head: compute_queue.get(ci).copied(),
                    memory_head: memory_queue.get(mi).copied(),
                });
            }
        }

        stats.runtime_seconds = finish
            .iter()
            .filter(|f| !f.is_nan())
            .fold(0.0f64, |acc, &f| acc.max(f));
        Ok(RunResult { stats, trace })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RpuConfig;
    use crate::task::{ComputeKind, MemoryDirection, TaskGraph};

    /// A configuration with round numbers: 1 Gop/s compute, 1 GB/s memory.
    fn unit_config() -> RpuConfig {
        RpuConfig {
            num_hples: 1,
            vector_length: 1,
            clock_ghz: 1.0,
            vector_memory_bytes: 1 << 30,
            key_memory_bytes: 0,
            scalar_memory_bytes: 0,
            dram_bandwidth_gbps: 1.0,
            modops_multiplier: 1.0,
            evk_policy: crate::config::EvkPolicy::Streamed,
        }
    }

    #[test]
    fn independent_compute_and_memory_overlap() {
        // 1e9 ops (1 s) and 1e9 bytes (1 s) with no dependency: runtime 1 s.
        let mut g = TaskGraph::new();
        g.push_compute(ComputeKind::Ntt, 1_000_000_000, vec![], "ntt", "P1");
        g.push_memory(MemoryDirection::Load, 1_000_000_000, vec![], "load", "P1");
        let result = RpuEngine::new(unit_config()).execute(&g).unwrap();
        assert!((result.stats.runtime_seconds - 1.0).abs() < 1e-9);
        assert!((result.stats.compute_busy_seconds - 1.0).abs() < 1e-9);
        assert!((result.stats.memory_busy_seconds - 1.0).abs() < 1e-9);
        assert!(result.stats.compute_idle_fraction() < 1e-9);
    }

    #[test]
    fn dependent_tasks_serialize() {
        // Load (1 s) then compute (1 s) depending on it: runtime 2 s, compute
        // idle 50%.
        let mut g = TaskGraph::new();
        let load = g.push_memory(MemoryDirection::Load, 1_000_000_000, vec![], "load", "P1");
        g.push_compute(ComputeKind::Ntt, 1_000_000_000, vec![load], "ntt", "P1");
        let result = RpuEngine::new(unit_config()).execute(&g).unwrap();
        assert!((result.stats.runtime_seconds - 2.0).abs() < 1e-9);
        assert!((result.stats.compute_idle_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn in_order_queues_respect_program_order() {
        // Two memory tasks: the second is independent but must wait for the
        // first (in-order queue), so memory time is 2 s even though only the
        // first is needed by the compute task.
        let mut g = TaskGraph::new();
        let load1 = g.push_memory(MemoryDirection::Load, 1_000_000_000, vec![], "load1", "P1");
        g.push_memory(
            MemoryDirection::Store,
            1_000_000_000,
            vec![],
            "store2",
            "P1",
        );
        g.push_compute(ComputeKind::Ntt, 500_000_000, vec![load1], "ntt", "P1");
        let result = RpuEngine::new(unit_config()).execute(&g).unwrap();
        // Memory channel: 0-1 load, 1-2 store. Compute: 1-1.5.
        assert!((result.stats.runtime_seconds - 2.0).abs() < 1e-9);
    }

    #[test]
    fn doubling_bandwidth_halves_memory_bound_runtime() {
        let mut g = TaskGraph::new();
        let load = g.push_memory(MemoryDirection::Load, 2_000_000_000, vec![], "load", "P1");
        g.push_compute(ComputeKind::Ntt, 100_000_000, vec![load], "ntt", "P1");
        let slow = RpuEngine::new(unit_config()).execute(&g).unwrap();
        let fast = RpuEngine::new(unit_config().with_bandwidth(2.0))
            .execute(&g)
            .unwrap();
        assert!(slow.stats.runtime_seconds > 1.9);
        assert!(fast.stats.runtime_seconds < 1.2);
    }

    #[test]
    fn doubling_modops_halves_compute_bound_runtime() {
        let mut g = TaskGraph::new();
        g.push_compute(ComputeKind::Ntt, 2_000_000_000, vec![], "ntt", "P1");
        let slow = RpuEngine::new(unit_config()).execute(&g).unwrap();
        let fast = RpuEngine::new(unit_config().with_modops(2.0))
            .execute(&g)
            .unwrap();
        assert!((slow.stats.runtime_seconds - 2.0).abs() < 1e-9);
        assert!((fast.stats.runtime_seconds - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trace_records_every_task() {
        let mut g = TaskGraph::new();
        let a = g.push_memory(MemoryDirection::Load, 10, vec![], "load", "P1");
        let b = g.push_compute(ComputeKind::Intt, 10, vec![a], "intt", "P1");
        g.push_memory(MemoryDirection::Store, 10, vec![b], "store", "P5");
        let result = RpuEngine::new(unit_config()).execute(&g).unwrap();
        assert_eq!(result.trace.records().len(), 3);
        let spans = result.trace.stage_spans();
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn empty_graph_runs_in_zero_time() {
        let g = TaskGraph::new();
        let result = RpuEngine::new(unit_config()).execute(&g).unwrap();
        assert_eq!(result.stats.runtime_seconds, 0.0);
        assert!(result.trace.records().is_empty());
    }

    #[test]
    fn cross_queue_priority_inversion_is_reported_as_deadlock() {
        // Compute head depends on the *second* memory task while the first
        // memory task depends on the compute head: no head can start.
        use crate::task::{Task, TaskKind};
        let tasks = vec![
            Task {
                id: 0,
                kind: TaskKind::Compute {
                    kind: ComputeKind::Ntt,
                    ops: 10,
                },
                dependencies: vec![],
                label: "c".into(),
                stage: "P1".into(),
            },
            Task {
                id: 1,
                kind: TaskKind::Memory {
                    direction: MemoryDirection::Load,
                    bytes: 10,
                },
                dependencies: vec![2],
                label: "m1".into(),
                stage: "P1".into(),
            },
            Task {
                id: 2,
                kind: TaskKind::Memory {
                    direction: MemoryDirection::Load,
                    bytes: 10,
                },
                dependencies: vec![],
                label: "m2".into(),
                stage: "P1".into(),
            },
        ];
        // Build without validation helper: dependency 2 comes after 1 in
        // program order, which from_tasks rejects; construct the graph
        // manually through push to mimic a buggy generator is not possible,
        // so assert the validator catches it instead.
        assert!(TaskGraph::from_tasks(tasks).is_err());
    }
}
