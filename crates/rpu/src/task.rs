//! Tasks and task graphs.
//!
//! The CiFlow software framework (paper §V-C) decomposes an HKS kernel into
//! *compute tasks* (one per kernel invocation: an (i)NTT over one tower, a
//! BConv of one digit, a point-wise multiply, …) and *memory tasks* (DRAM
//! loads and stores of named buffers), connected by explicit dependencies.
//! The RPU engine executes a [`TaskGraph`] with its decoupled compute and
//! memory queues.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifier of a task within one task graph.
pub type TaskId = usize;

/// An interned task label: a cheaply clonable, immutable shared string.
///
/// Task graphs carry two strings per task (buffer label and stage name) that
/// are copied every time a graph is spliced ([`TaskGraph::append_offset`]),
/// traced, or cloned out of a schedule cache. Interning them as `Arc<str>`
/// turns each of those copies into a reference-count bump instead of a heap
/// allocation; stage names in particular are shared by hundreds of tasks.
/// `Label` dereferences to `&str`, so all string inspection (channel-map
/// hashing, forwarding's per-tower label matching) is unchanged.
pub type Label = Arc<str>;

/// The compute kernel a compute task runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComputeKind {
    /// Inverse NTT of one tower.
    Intt,
    /// Forward NTT of one tower.
    Ntt,
    /// Basis conversion (of one digit, or of one output tower's slice).
    BasisConversion,
    /// Point-wise multiplication (e.g. applying an evk tower).
    PointwiseMul,
    /// Point-wise multiply-accumulate.
    PointwiseMac,
    /// Point-wise addition (reduction of partial products).
    PointwiseAdd,
    /// Per-tower scalar multiplication (ModDown `P^{-1}` scaling, rescale).
    ScalarMul,
}

impl std::fmt::Display for ComputeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ComputeKind::Intt => "INTT",
            ComputeKind::Ntt => "NTT",
            ComputeKind::BasisConversion => "BConv",
            ComputeKind::PointwiseMul => "Mul",
            ComputeKind::PointwiseMac => "Mac",
            ComputeKind::PointwiseAdd => "Add",
            ComputeKind::ScalarMul => "ScalarMul",
        };
        write!(f, "{name}")
    }
}

/// Direction of a memory task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryDirection {
    /// DRAM → on-chip.
    Load,
    /// On-chip → DRAM.
    Store,
}

/// What a task does and how much it costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TaskKind {
    /// A kernel executed on the HPLEs.
    Compute {
        /// Which kernel.
        kind: ComputeKind,
        /// Modular operations charged to the compute pipeline.
        ops: u64,
    },
    /// A DRAM transfer.
    Memory {
        /// Load or store.
        direction: MemoryDirection,
        /// Bytes moved over the off-chip interface.
        bytes: u64,
    },
}

/// One node of a task graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task id (equal to the task's index in the graph).
    pub id: TaskId,
    /// What the task does.
    pub kind: TaskKind,
    /// Ids of tasks that must finish before this task may start.
    pub dependencies: Vec<TaskId>,
    /// Human-readable label (buffer or kernel name), used in traces. For
    /// memory tasks this is also the *placement key*: the engine's
    /// [`ChannelMap`](crate::channel::ChannelMap) hashes it to pick the
    /// task's memory channel unless [`channel`](Self::channel) overrides it.
    /// Interned (see [`Label`]) so graph splicing and tracing clone a
    /// reference count, not a heap string.
    pub label: Label,
    /// HKS stage name (e.g. "ModUp-P2") used to group the timing diagrams.
    /// Interned like [`label`](Self::label).
    pub stage: Label,
    /// Explicit memory-channel hint. `None` (the default for every
    /// [`TaskGraph::push_memory`] task) defers placement to the engine's
    /// label-driven channel map; `Some(c)` pins the transfer to channel
    /// `c % num_memory_channels`. Ignored for compute tasks.
    pub channel: Option<usize>,
}

impl Task {
    /// True if this is a compute task.
    pub fn is_compute(&self) -> bool {
        matches!(self.kind, TaskKind::Compute { .. })
    }

    /// True if this is a memory task.
    pub fn is_memory(&self) -> bool {
        matches!(self.kind, TaskKind::Memory { .. })
    }

    /// Modular operations of a compute task (0 for memory tasks).
    pub fn ops(&self) -> u64 {
        match self.kind {
            TaskKind::Compute { ops, .. } => ops,
            TaskKind::Memory { .. } => 0,
        }
    }

    /// Bytes moved by a memory task (0 for compute tasks).
    pub fn bytes(&self) -> u64 {
        match self.kind {
            TaskKind::Memory { bytes, .. } => bytes,
            TaskKind::Compute { .. } => 0,
        }
    }
}

/// Errors detected while validating a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskGraphError {
    /// A task's id does not match its index.
    IdMismatch {
        /// Index in the task vector.
        index: usize,
        /// Id stored in the task.
        id: TaskId,
    },
    /// A dependency references a task that does not exist or comes later in
    /// program order (the generators always emit causally ordered graphs).
    ForwardDependency {
        /// The dependent task.
        task: TaskId,
        /// The offending dependency.
        dependency: TaskId,
    },
}

impl std::fmt::Display for TaskGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskGraphError::IdMismatch { index, id } => {
                write!(f, "task at index {index} carries id {id}")
            }
            TaskGraphError::ForwardDependency { task, dependency } => write!(
                f,
                "task {task} depends on {dependency}, which is not an earlier task"
            ),
        }
    }
}

impl std::error::Error for TaskGraphError {}

/// How [`TaskGraph::append_offset`] treats one task of the appended graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppendAction {
    /// Append the task, adding `extra_deps` (ids already present in the
    /// receiving graph) on top of its remapped dependencies.
    Keep {
        /// Extra dependencies on tasks of the receiving graph.
        extra_deps: Vec<TaskId>,
    },
    /// Drop the task and splice it out of the dependence structure: any
    /// appended task that depended on it inherits its remapped dependencies
    /// plus `extra_deps` instead. Used by graph fusion to elide memory
    /// round-trips (e.g. a store that a later kernel's load would have
    /// re-read) while preserving ordering through the producing tasks.
    Splice {
        /// Dependencies (in the receiving graph) that stand in for the
        /// spliced task.
        extra_deps: Vec<TaskId>,
    },
}

impl AppendAction {
    /// `Keep` with no extra dependencies — the identity append action.
    pub fn keep() -> Self {
        AppendAction::Keep {
            extra_deps: Vec::new(),
        }
    }

    fn extra_deps(&self) -> &[TaskId] {
        match self {
            AppendAction::Keep { extra_deps } | AppendAction::Splice { extra_deps } => extra_deps,
        }
    }
}

/// What one task of an appended graph became in the receiving graph.
#[derive(Debug, Clone, PartialEq, Eq)]
enum AppendMapping {
    /// The task was appended under this id.
    Task(TaskId),
    /// The task was spliced out; these ids stand in for it.
    Spliced(Vec<TaskId>),
}

/// The result of one [`TaskGraph::append_offset`] call: the id remapping from
/// the appended graph into the receiving graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppendedGraph {
    mapping: Vec<AppendMapping>,
}

impl AppendedGraph {
    /// The id the appended task `old` received, or `None` if it was spliced
    /// out.
    pub fn task_id(&self, old: TaskId) -> Option<TaskId> {
        match self.mapping.get(old) {
            Some(AppendMapping::Task(id)) => Some(*id),
            _ => None,
        }
    }

    /// The ids in the receiving graph that stand for the appended task `old`:
    /// its new id if it was kept, or the dependencies spliced in for it.
    pub fn resolve(&self, old: TaskId) -> &[TaskId] {
        match &self.mapping[old] {
            AppendMapping::Task(id) => std::slice::from_ref(id),
            AppendMapping::Spliced(deps) => deps,
        }
    }
}

/// A validated, causally ordered list of tasks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// Creates an empty task graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a graph from a task list, validating ids and dependency order.
    ///
    /// # Errors
    ///
    /// Returns a [`TaskGraphError`] describing the first inconsistency.
    pub fn from_tasks(tasks: Vec<Task>) -> Result<Self, TaskGraphError> {
        for (index, task) in tasks.iter().enumerate() {
            if task.id != index {
                return Err(TaskGraphError::IdMismatch { index, id: task.id });
            }
            for &dep in &task.dependencies {
                if dep >= index {
                    return Err(TaskGraphError::ForwardDependency {
                        task: task.id,
                        dependency: dep,
                    });
                }
            }
        }
        Ok(Self { tasks })
    }

    /// Builds a graph from a task list *without* validating ids or dependency
    /// order. This exists for the static verifier ([`crate::verify`]) and its
    /// tests: malformed graphs — forward dependencies, cross-queue cycles,
    /// dangling edges — can only be constructed through this door, and the
    /// lint passes are the tool that diagnoses them. Executing an unchecked
    /// graph whose dependencies are out of range will panic in the engine;
    /// run [`crate::verify::lint_structural`] first.
    pub fn from_tasks_unchecked(tasks: Vec<Task>) -> Self {
        Self { tasks }
    }

    /// Appends a compute task and returns its id.
    pub fn push_compute(
        &mut self,
        kind: ComputeKind,
        ops: u64,
        dependencies: Vec<TaskId>,
        label: impl Into<Label>,
        stage: impl Into<Label>,
    ) -> TaskId {
        self.push(
            TaskKind::Compute { kind, ops },
            dependencies,
            label,
            stage,
            None,
        )
    }

    /// Appends a memory task (no channel hint — the engine places it by
    /// label) and returns its id.
    pub fn push_memory(
        &mut self,
        direction: MemoryDirection,
        bytes: u64,
        dependencies: Vec<TaskId>,
        label: impl Into<Label>,
        stage: impl Into<Label>,
    ) -> TaskId {
        self.push_memory_on(direction, bytes, dependencies, label, stage, None)
    }

    /// Appends a memory task with an explicit channel hint and returns its
    /// id. `Some(c)` pins the transfer to memory channel
    /// `c % num_memory_channels` regardless of the engine's channel map.
    pub fn push_memory_on(
        &mut self,
        direction: MemoryDirection,
        bytes: u64,
        dependencies: Vec<TaskId>,
        label: impl Into<Label>,
        stage: impl Into<Label>,
        channel: Option<usize>,
    ) -> TaskId {
        self.push(
            TaskKind::Memory { direction, bytes },
            dependencies,
            label,
            stage,
            channel,
        )
    }

    fn push(
        &mut self,
        kind: TaskKind,
        dependencies: Vec<TaskId>,
        label: impl Into<Label>,
        stage: impl Into<Label>,
        channel: Option<usize>,
    ) -> TaskId {
        let id = self.tasks.len();
        debug_assert!(dependencies.iter().all(|&d| d < id));
        // Dedupe dependency edges, preserving first-occurrence order: a
        // duplicate edge would silently inflate the engine's remaining-dep
        // counter and the verifier's in-degrees (both count edges, and both
        // also *decrement* per edge, so execution stays correct — but every
        // downstream analysis over `dependencies` would double-count).
        let mut dependencies = dependencies;
        if dependencies.len() > 1 {
            let mut kept = 0;
            for i in 0..dependencies.len() {
                let d = dependencies[i];
                if !dependencies[..kept].contains(&d) {
                    dependencies[kept] = d;
                    kept += 1;
                }
            }
            dependencies.truncate(kept);
        }
        self.tasks.push(Task {
            id,
            kind,
            dependencies,
            label: label.into(),
            stage: stage.into(),
            channel,
        });
        id
    }

    /// All tasks in program order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total modular operations across all compute tasks.
    pub fn total_ops(&self) -> u64 {
        self.tasks.iter().map(Task::ops).sum()
    }

    /// Total bytes moved by memory tasks, split into (loaded, stored).
    pub fn total_bytes(&self) -> (u64, u64) {
        let mut loaded = 0;
        let mut stored = 0;
        for t in &self.tasks {
            if let TaskKind::Memory { direction, bytes } = t.kind {
                match direction {
                    MemoryDirection::Load => loaded += bytes,
                    MemoryDirection::Store => stored += bytes,
                }
            }
        }
        (loaded, stored)
    }

    /// Ids of the tasks no other task depends on — the graph's sinks. When a
    /// fusion layer chains task graphs back-to-back, these are the tasks a
    /// barrier must wait on.
    pub fn terminal_tasks(&self) -> Vec<TaskId> {
        let mut depended_on = vec![false; self.tasks.len()];
        for task in &self.tasks {
            for &dep in &task.dependencies {
                depended_on[dep] = true;
            }
        }
        self.tasks
            .iter()
            .filter(|t| !depended_on[t.id])
            .map(|t| t.id)
            .collect()
    }

    /// Appends `other`'s tasks to this graph, remapping ids and dependencies.
    ///
    /// `action` is consulted once per appended task, in program order:
    /// [`AppendAction::Keep`] appends it (with optional extra dependencies on
    /// tasks already in `self`), [`AppendAction::Splice`] drops it and makes
    /// its consumers inherit its remapped dependencies plus the splice's
    /// `extra_deps`. `label_prefix` is prepended to every appended task's
    /// label (pass `""` to keep labels unchanged).
    ///
    /// This is the graph-fusion primitive behind multi-kernel workload
    /// pipelines: per-kernel graphs are appended one after another, with
    /// cross-kernel dependencies expressed through `extra_deps` (so the
    /// decoupled memory queue can prefetch the next kernel's data under the
    /// current kernel's compute) and redundant boundary transfers elided
    /// through `Splice`.
    ///
    /// # Errors
    ///
    /// Returns [`TaskGraphError::ForwardDependency`] if any `extra_deps` id
    /// does not refer to a task already present in `self` before the call.
    pub fn append_offset<F>(
        &mut self,
        other: &TaskGraph,
        label_prefix: &str,
        mut action: F,
    ) -> Result<AppendedGraph, TaskGraphError>
    where
        F: FnMut(&Task) -> AppendAction,
    {
        let offset = self.tasks.len();
        let mut mapping: Vec<AppendMapping> = Vec::with_capacity(other.tasks.len());
        for task in &other.tasks {
            let act = action(task);
            for &dep in act.extra_deps() {
                if dep >= offset {
                    // Report the appended task's id in *its* graph: after a
                    // splice the receiving graph's next slot would mislead.
                    return Err(TaskGraphError::ForwardDependency {
                        task: task.id,
                        dependency: dep,
                    });
                }
            }
            // Remap the task's own dependencies, splicing through dropped
            // tasks, then add the action's extra dependencies.
            let mut deps: Vec<TaskId> = Vec::with_capacity(task.dependencies.len());
            for &old_dep in &task.dependencies {
                match &mapping[old_dep] {
                    AppendMapping::Task(id) => deps.push(*id),
                    AppendMapping::Spliced(stand_ins) => deps.extend(stand_ins.iter().copied()),
                }
            }
            deps.extend(act.extra_deps().iter().copied());
            deps.sort_unstable();
            deps.dedup();
            match act {
                AppendAction::Keep { .. } => {
                    let id = self.tasks.len();
                    self.tasks.push(Task {
                        id,
                        kind: task.kind,
                        dependencies: deps,
                        label: if label_prefix.is_empty() {
                            Arc::clone(&task.label)
                        } else {
                            format!("{label_prefix}{}", task.label).into()
                        },
                        stage: Arc::clone(&task.stage),
                        channel: task.channel,
                    });
                    mapping.push(AppendMapping::Task(id));
                }
                AppendAction::Splice { .. } => {
                    mapping.push(AppendMapping::Spliced(deps));
                }
            }
        }
        Ok(AppendedGraph { mapping })
    }

    /// Arithmetic intensity of the whole graph in modular operations per byte
    /// of DRAM traffic (the metric of Table II). Returns `f64::INFINITY` when
    /// there is no DRAM traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        let (loaded, stored) = self.total_bytes();
        let bytes = loaded + stored;
        if bytes == 0 {
            f64::INFINITY
        } else {
            self.total_ops() as f64 / bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        let load = g.push_memory(MemoryDirection::Load, 1024, vec![], "load x", "ModUp-P1");
        let intt = g.push_compute(ComputeKind::Intt, 5120, vec![load], "intt x", "ModUp-P1");
        let store = g.push_memory(
            MemoryDirection::Store,
            1024,
            vec![intt],
            "store x",
            "ModUp-P1",
        );
        let _ = g.push_compute(
            ComputeKind::PointwiseAdd,
            100,
            vec![intt, store],
            "acc",
            "ModUp-P5",
        );
        g
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let g = sample_graph();
        assert_eq!(g.len(), 4);
        for (i, t) in g.tasks().iter().enumerate() {
            assert_eq!(t.id, i);
        }
        assert!(!g.is_empty());
    }

    #[test]
    fn totals_and_intensity() {
        let g = sample_graph();
        assert_eq!(g.total_ops(), 5220);
        assert_eq!(g.total_bytes(), (1024, 1024));
        assert!((g.arithmetic_intensity() - 5220.0 / 2048.0).abs() < 1e-12);
        let empty = TaskGraph::new();
        assert!(empty.arithmetic_intensity().is_infinite());
    }

    #[test]
    fn task_accessors() {
        let g = sample_graph();
        assert!(g.tasks()[0].is_memory());
        assert!(g.tasks()[1].is_compute());
        assert_eq!(g.tasks()[0].bytes(), 1024);
        assert_eq!(g.tasks()[0].ops(), 0);
        assert_eq!(g.tasks()[1].ops(), 5120);
        assert_eq!(g.tasks()[1].bytes(), 0);
    }

    #[test]
    fn validation_rejects_bad_graphs() {
        let t = Task {
            id: 5,
            kind: TaskKind::Compute {
                kind: ComputeKind::Ntt,
                ops: 1,
            },
            dependencies: vec![],
            label: "x".into(),
            stage: "s".into(),
            channel: None,
        };
        assert!(matches!(
            TaskGraph::from_tasks(vec![t]),
            Err(TaskGraphError::IdMismatch { .. })
        ));
        let t0 = Task {
            id: 0,
            kind: TaskKind::Compute {
                kind: ComputeKind::Ntt,
                ops: 1,
            },
            dependencies: vec![1],
            label: "x".into(),
            stage: "s".into(),
            channel: None,
        };
        assert!(matches!(
            TaskGraph::from_tasks(vec![t0]),
            Err(TaskGraphError::ForwardDependency { .. })
        ));
    }

    #[test]
    fn round_trip_through_from_tasks() {
        let g = sample_graph();
        let rebuilt = TaskGraph::from_tasks(g.tasks().to_vec()).unwrap();
        assert_eq!(g, rebuilt);
    }

    #[test]
    fn terminal_tasks_are_the_sinks() {
        let g = sample_graph();
        // Only the final accumulate task is not depended on.
        assert_eq!(g.terminal_tasks(), vec![3]);
        assert!(TaskGraph::new().terminal_tasks().is_empty());
    }

    #[test]
    fn append_offset_remaps_ids_and_dependencies() {
        let mut g = sample_graph();
        let sub = sample_graph();
        let appended = g
            .append_offset(&sub, "k2:", |_| AppendAction::keep())
            .unwrap();
        assert_eq!(g.len(), 8);
        assert_eq!(appended.task_id(0), Some(4));
        assert_eq!(appended.resolve(3), &[7]);
        // Dependencies point at the remapped ids, labels carry the prefix.
        assert_eq!(g.tasks()[5].dependencies, vec![4]);
        assert_eq!(&*g.tasks()[5].label, "k2:intt x");
        // Totals double, validation still passes.
        assert_eq!(g.total_ops(), 2 * sample_graph().total_ops());
        assert!(TaskGraph::from_tasks(g.tasks().to_vec()).is_ok());
    }

    #[test]
    fn append_offset_adds_cross_graph_dependencies() {
        let mut g = sample_graph();
        let barrier = g.terminal_tasks();
        let sub = sample_graph();
        let appended = g
            .append_offset(&sub, "", |t| {
                if t.dependencies.is_empty() {
                    AppendAction::Keep {
                        extra_deps: barrier.clone(),
                    }
                } else {
                    AppendAction::keep()
                }
            })
            .unwrap();
        // The appended root (old id 0) now depends on the first graph's sink.
        let root = appended.task_id(0).unwrap();
        assert_eq!(g.tasks()[root].dependencies, vec![3]);
        assert!(TaskGraph::from_tasks(g.tasks().to_vec()).is_ok());
    }

    #[test]
    fn append_offset_splices_tasks_out_of_the_dependence_structure() {
        let mut g = sample_graph();
        let sub = sample_graph();
        // Drop the sub-graph's initial load; its consumer (the INTT) inherits
        // a dependency on the first graph's sink instead.
        let appended = g
            .append_offset(&sub, "", |t| {
                if &*t.label == "load x" {
                    AppendAction::Splice {
                        extra_deps: vec![3],
                    }
                } else {
                    AppendAction::keep()
                }
            })
            .unwrap();
        assert_eq!(g.len(), 7);
        assert_eq!(appended.task_id(0), None);
        assert_eq!(appended.resolve(0), &[3]);
        let intt = appended.task_id(1).unwrap();
        assert_eq!(g.tasks()[intt].dependencies, vec![3]);
        // The spliced load's bytes are gone from the totals.
        assert_eq!(g.total_bytes(), (1024, 2 * 1024));
        assert!(TaskGraph::from_tasks(g.tasks().to_vec()).is_ok());
    }

    #[test]
    fn append_offset_rejects_dangling_extra_deps() {
        let mut g = sample_graph();
        let sub = sample_graph();
        let result = g.append_offset(&sub, "", |_| AppendAction::Keep {
            extra_deps: vec![99],
        });
        assert!(matches!(
            result,
            Err(TaskGraphError::ForwardDependency { dependency: 99, .. })
        ));
    }

    #[test]
    fn push_dedupes_duplicate_dependency_edges_in_order() {
        // A generator that lists the same dependency twice must not inflate
        // the engine's remaining-dep counters or the verifier's in-degrees;
        // the surviving edges keep their first-occurrence order.
        let mut g = TaskGraph::new();
        let a = g.push_memory(MemoryDirection::Load, 8, vec![], "load a", "P1");
        let b = g.push_memory(MemoryDirection::Load, 8, vec![], "load b", "P1");
        let c = g.push_compute(ComputeKind::Ntt, 8, vec![b, a, b, a, a], "ntt", "P1");
        assert_eq!(g.tasks()[c].dependencies, vec![b, a]);
        // Single dependencies stay untouched (the fast path).
        let d = g.push_compute(ComputeKind::Ntt, 8, vec![c], "ntt2", "P1");
        assert_eq!(g.tasks()[d].dependencies, vec![c]);
    }

    #[test]
    fn from_tasks_unchecked_accepts_what_from_tasks_rejects() {
        // The unchecked constructor exists for the static verifier: it is
        // the only way to materialize a graph with a forward dependency.
        let tasks = vec![
            Task {
                id: 0,
                kind: TaskKind::Memory {
                    direction: MemoryDirection::Load,
                    bytes: 1,
                },
                dependencies: vec![1],
                label: "load a".into(),
                stage: "P1".into(),
                channel: None,
            },
            Task {
                id: 1,
                kind: TaskKind::Memory {
                    direction: MemoryDirection::Load,
                    bytes: 1,
                },
                dependencies: vec![],
                label: "load b".into(),
                stage: "P1".into(),
                channel: None,
            },
        ];
        assert!(TaskGraph::from_tasks(tasks.clone()).is_err());
        assert_eq!(TaskGraph::from_tasks_unchecked(tasks).len(), 2);
    }
}
