//! # rpu — a task-level model of the Ring Processing Unit
//!
//! The CiFlow paper evaluates its key-switching dataflows on the RPU, a
//! vector processor for ring-LWE workloads (128 HPLE lanes, a 1 K-element
//! vector ISA, 1.7 GHz, 32 MB on-chip vector data memory) with a deeply
//! decoupled front-end that overlaps DRAM transfers with computation.
//!
//! This crate models the RPU at the granularity the paper's evaluation
//! operates at:
//!
//! * [`config::RpuConfig`] — architectural parameters plus the bandwidth /
//!   MODOPS / evk-placement knobs the paper sweeps.
//! * [`isa`] — the 28-instruction B1K ISA and the closed-form kernel cost
//!   model (modular operations per NTT / BConv / point-wise kernel).
//! * [`task`] — compute and memory tasks with explicit dependencies, the
//!   interface between the CiFlow schedule generators and the hardware model.
//! * [`engine::RpuEngine`] — the decoupled executor (one compute queue plus
//!   one in-order queue per DRAM pseudo-channel) producing runtimes, idle
//!   fractions and per-task traces; timing semantics in
//!   `docs/MEMORY_MODEL.md`.
//! * [`analytic`] — closed-form bandwidth sweeps: one symbolic execution per
//!   event-order segment yields a [`analytic::ParametricTimeline`] whose
//!   per-point evaluation is bit-identical to the engine (`docs/ANALYTIC.md`).
//! * [`channel::ChannelMap`] — deterministic buffer-to-channel placement for
//!   the multi-channel memory model (label hash plus overridable pin rules).
//! * [`memory::OnChipTracker`] — capacity bookkeeping used while generating
//!   schedules.
//! * [`verify`] — static verification of task graphs against the queue
//!   semantics: structural checks plus a deadlock-freedom proof over the
//!   augmented (dependency + in-order queue) graph, the graph-level half of
//!   the `ciflow::lint` subsystem (lint catalogue in `docs/LINTS.md`).
//! * [`bound`] — static performance analysis: provable makespan lower
//!   bounds (dependency paths, queue order, resource occupancy),
//!   critical-path/slack extraction and the closed-form roofline knee
//!   (`docs/BOUNDS.md`).
//!
//! ## Example
//!
//! ```
//! use rpu::config::RpuConfig;
//! use rpu::engine::RpuEngine;
//! use rpu::task::{ComputeKind, MemoryDirection, TaskGraph};
//!
//! let mut graph = TaskGraph::new();
//! let load = graph.push_memory(MemoryDirection::Load, 1 << 20, vec![], "load tower", "ModUp-P1");
//! graph.push_compute(ComputeKind::Intt, 1_000_000, vec![load], "intt tower", "ModUp-P1");
//!
//! let engine = RpuEngine::new(RpuConfig::ciflow_baseline());
//! let result = engine.execute(&graph).unwrap();
//! assert!(result.stats.runtime_seconds > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analytic;
pub mod bound;
pub mod channel;
pub mod config;
pub mod engine;
pub mod isa;
pub mod memory;
pub mod stats;
pub mod task;
pub mod trace;
pub mod verify;

pub use analytic::{AffineTime, ParametricTimeline, Segment, TaskTimes};
pub use bound::{BindingResource, BoundAnalysis, CriticalEdge, CriticalStep, RooflineKnee};
pub use channel::ChannelMap;
pub use config::{EvkPolicy, RpuConfig, MIB};
pub use engine::{grant_precedes, EngineError, RpuEngine, RunResult, TraceMode};
pub use isa::{B1kInstruction, InstructionClass, KernelCosts};
pub use memory::{AllocationOutcome, OnChipTracker};
pub use stats::ExecutionStats;
pub use task::{
    AppendAction, AppendedGraph, ComputeKind, Label, MemoryDirection, Task, TaskGraph,
    TaskGraphError, TaskId, TaskKind,
};
pub use trace::{EngineQueue, ExecutionTrace, TaskRecord};
pub use verify::{Diagnostic, Severity};

#[cfg(test)]
mod integration {
    use super::*;

    #[test]
    fn memory_bound_vs_compute_bound_crossover() {
        // The same graph run across a bandwidth sweep must be monotonically
        // non-increasing in runtime and eventually saturate at the compute
        // bound.
        let mut g = TaskGraph::new();
        let mut prev = None;
        for i in 0..8 {
            let load = g.push_memory(
                MemoryDirection::Load,
                64 << 20,
                prev.map(|p| vec![p]).unwrap_or_default(),
                format!("load {i}"),
                "P1",
            );
            let c = g.push_compute(
                ComputeKind::Ntt,
                500_000_000,
                vec![load],
                format!("ntt {i}"),
                "P1",
            );
            prev = Some(c);
        }
        let mut last = f64::INFINITY;
        let mut runtimes = Vec::new();
        for bw in [8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0] {
            let cfg = RpuConfig::ciflow_baseline().with_bandwidth(bw);
            let r = RpuEngine::new(cfg).execute(&g).unwrap();
            assert!(r.stats.runtime_seconds <= last + 1e-12);
            last = r.stats.runtime_seconds;
            runtimes.push(r.stats.runtime_seconds);
        }
        // Compute bound: total ops / modops rate.
        let compute_floor =
            (8.0 * 500_000_000.0) / RpuConfig::ciflow_baseline().modops_per_second();
        assert!(runtimes.last().unwrap() >= &compute_floor);
        assert!(runtimes.last().unwrap() < &(compute_floor * 1.2));
    }
}
