//! The B1K vector instruction set and its cost model.
//!
//! The RPU's ISA (originally "B512", widened to 1 K-element vectors for the
//! CiFlow evaluation and referred to as "B1K") contains 28 instructions
//! spanning general point-wise modular arithmetic, HE-specific shuffles for
//! the (i)NTT butterflies, and scalar/control/memory operations. The
//! simulator does not execute the instructions bit-exactly; it uses this
//! module's per-instruction modular-operation counts to convert kernel shapes
//! into cycle costs, which is the granularity at which the paper's evaluation
//! operates.

use serde::{Deserialize, Serialize};

/// Functional class of an instruction, matching the RPU's three decoupled
/// issue queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstructionClass {
    /// Executed by the HPLE compute pipeline.
    Compute,
    /// Executed by the shuffle crossbar pipeline.
    Shuffle,
    /// Executed by the load/store unit.
    Memory,
    /// Executed by the scalar front-end.
    Scalar,
}

/// The 28 instructions of the B1K ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum B1kInstruction {
    // Point-wise vector modular arithmetic (compute pipe).
    VAddMod,
    VSubMod,
    VMulMod,
    VMacMod,
    VNegMod,
    VScalarMulMod,
    VScalarAddMod,
    VMulConstShoup,
    // NTT support (compute + shuffle pipes).
    VButterflyCt,
    VButterflyGs,
    VTwiddleMul,
    VBitRevShuffle,
    VStrideShuffle,
    VSliceRotate,
    VPackLo,
    VPackHi,
    // Basis conversion / accumulation helpers.
    VAccumulate,
    VDotScalar,
    VReduceBarrett,
    VCenterLift,
    // Memory instructions.
    VLoad,
    VStore,
    VLoadKey,
    VPrefetch,
    // Scalar / control.
    SLoadImm,
    SAddrGen,
    SModSwap,
    SBranch,
}

impl B1kInstruction {
    /// All 28 instructions, in a stable order.
    pub fn all() -> [B1kInstruction; 28] {
        use B1kInstruction::*;
        [
            VAddMod,
            VSubMod,
            VMulMod,
            VMacMod,
            VNegMod,
            VScalarMulMod,
            VScalarAddMod,
            VMulConstShoup,
            VButterflyCt,
            VButterflyGs,
            VTwiddleMul,
            VBitRevShuffle,
            VStrideShuffle,
            VSliceRotate,
            VPackLo,
            VPackHi,
            VAccumulate,
            VDotScalar,
            VReduceBarrett,
            VCenterLift,
            VLoad,
            VStore,
            VLoadKey,
            VPrefetch,
            SLoadImm,
            SAddrGen,
            SModSwap,
            SBranch,
        ]
    }

    /// Which pipeline executes the instruction.
    pub fn class(&self) -> InstructionClass {
        use B1kInstruction::*;
        match self {
            VAddMod | VSubMod | VMulMod | VMacMod | VNegMod | VScalarMulMod | VScalarAddMod
            | VMulConstShoup | VButterflyCt | VButterflyGs | VTwiddleMul | VAccumulate
            | VDotScalar | VReduceBarrett | VCenterLift => InstructionClass::Compute,
            VBitRevShuffle | VStrideShuffle | VSliceRotate | VPackLo | VPackHi => {
                InstructionClass::Shuffle
            }
            VLoad | VStore | VLoadKey | VPrefetch => InstructionClass::Memory,
            SLoadImm | SAddrGen | SModSwap | SBranch => InstructionClass::Scalar,
        }
    }

    /// Modular operations performed per vector element (0 for shuffle, memory
    /// and scalar instructions, 2 for fused butterflies/MACs).
    pub fn modops_per_element(&self) -> u64 {
        use B1kInstruction::*;
        match self {
            VMacMod | VButterflyCt | VButterflyGs => 2,
            VAddMod | VSubMod | VMulMod | VNegMod | VScalarMulMod | VScalarAddMod
            | VMulConstShoup | VTwiddleMul | VAccumulate | VDotScalar | VReduceBarrett
            | VCenterLift => 1,
            _ => 0,
        }
    }
}

/// Kernel-level operation counts used to cost HKS stages.
///
/// These are the closed-form counts quoted in §III of the paper; the schedule
/// generators attach them to every compute task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelCosts;

impl KernelCosts {
    /// Modular operations for one forward or inverse NTT of length `n`:
    /// `(n/2)·log2 n` butterflies at 2 modops each.
    pub fn ntt_ops(n: usize) -> u64 {
        (n as u64 / 2) * n.trailing_zeros() as u64 * 2
    }

    /// Modular operations for a basis conversion of one polynomial from
    /// `source` towers to `target` towers: `n·source` scaling multiplies plus
    /// `n·source·target` multiply-accumulates.
    pub fn bconv_ops(n: usize, source: usize, target: usize) -> u64 {
        let n = n as u64;
        n * source as u64 + 2 * n * source as u64 * target as u64
    }

    /// Modular operations for a point-wise multiply (or multiply-accumulate)
    /// over `towers` towers.
    pub fn pointwise_mul_ops(n: usize, towers: usize) -> u64 {
        n as u64 * towers as u64
    }

    /// Modular operations for a point-wise addition over `towers` towers.
    pub fn pointwise_add_ops(n: usize, towers: usize) -> u64 {
        n as u64 * towers as u64
    }

    /// Modular operations for a per-tower scalar multiplication.
    pub fn scalar_mul_ops(n: usize, towers: usize) -> u64 {
        n as u64 * towers as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_has_exactly_28_instructions() {
        let all = B1kInstruction::all();
        assert_eq!(all.len(), 28);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 28);
    }

    #[test]
    fn every_class_is_represented() {
        let all = B1kInstruction::all();
        for class in [
            InstructionClass::Compute,
            InstructionClass::Shuffle,
            InstructionClass::Memory,
            InstructionClass::Scalar,
        ] {
            assert!(all.iter().any(|i| i.class() == class), "{class:?} missing");
        }
    }

    #[test]
    fn only_compute_instructions_have_modops() {
        for instr in B1kInstruction::all() {
            if instr.modops_per_element() > 0 {
                assert_eq!(instr.class(), InstructionClass::Compute);
            }
        }
    }

    #[test]
    fn kernel_cost_formulas() {
        // N = 1024: 512 butterflies * 10 stages * 2 modops.
        assert_eq!(KernelCosts::ntt_ops(1024), 512 * 10 * 2);
        // BConv n=16, 2 -> 3 towers.
        assert_eq!(KernelCosts::bconv_ops(16, 2, 3), 16 * 2 + 2 * 16 * 2 * 3);
        assert_eq!(KernelCosts::pointwise_mul_ops(1024, 4), 4096);
        assert_eq!(KernelCosts::pointwise_add_ops(8, 2), 16);
        assert_eq!(KernelCosts::scalar_mul_ops(8, 3), 24);
    }
}
