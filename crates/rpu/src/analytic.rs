//! Closed-form bandwidth sweeps: the parametric timeline.
//!
//! Every task duration under a fixed configuration is affine in the
//! *inverse* bandwidth: a compute task costs `ops / modops_per_second`
//! (bandwidth-independent) and a memory task costs `bytes / (gbps * 1e9)`.
//! Because the engine's control flow is a finite sequence of comparisons
//! between such times, its entire event timeline is **piecewise-linear in
//! `1/bandwidth`**: over an interval of bandwidths the engine issues, grants
//! and retires tasks in exactly the same order, and every start/finish time
//! is one affine function of `1/bandwidth`. This module runs the engine
//! *symbolically* once per such segment and then evaluates any bandwidth
//! ladder by replaying the recorded event order — no event loop per point.
//!
//! ## The grant certificate
//!
//! A close look at the engine loop shows that the [`ExecutionStats`] it
//! produces depend on surprisingly little:
//!
//! - **structural order**: the compute queue and the per-channel memory
//!   queues are serviced strictly in order, so which compute runs `i`-th and
//!   which memory task is `j`-th on its channel never depends on timing;
//! - **the bus grant sequence** `G`: which memory task wins the shared DRAM
//!   bus each time it frees up; and
//! - **exact arithmetic**: every value the engine computes is a fold of
//!   `+` and `f64::max` over task durations, and `max` is exact — so two
//!   executions that agree on the orders above agree on every bit.
//!
//! The only way bandwidth can change the grant sequence is through *which
//! channel heads are dependency-ready* when the bus is re-scanned after the
//! previous grant retires (at `te = mem_end_{k-1}`, with `mem_end_{-1} = 0`).
//! Between two grants no memory task retires, so a head's memory
//! dependencies being satisfied is structural (they are either in `G[..k]`
//! or not), and computes retire as a growing prefix of the compute queue
//! with non-decreasing finish times — so a head's readiness at the scan
//! reduces to **one comparison**: the finish time of its *latest* compute
//! dependency against `te`. Two regimes follow, and both are pinned by
//! those comparisons alone:
//!
//! - some head is ready at `te` (its latest compute dependency finished no
//!   later than `te`): the scan grants the lowest-id ready head immediately,
//!   so the certificate needs "the winner was ready" plus "every head that
//!   would out-rank it was not";
//! - no head is ready at `te`: the engine retires computes one by one and
//!   re-scans, so the grant order is decided by *how many* computes each
//!   head still needs — a purely structural quantity — and the certificate
//!   only needs "no eligible head was ready at `te`".
//!
//! A segment therefore carries, per grant, at most one comparison per
//! channel head; any bandwidth whose replayed times satisfy them all
//! provably takes the identical engine path. Exact finish ties
//! (`compute_end == te`) stay certifiable because readiness is inclusive.
//!
//! ## How a segment is derived
//!
//! [`RpuEngine::analyze`] runs an instrumented mirror of the engine loop at
//! an *anchor* bandwidth, carrying the affine form
//! `constant + slope / bandwidth` alongside every concrete time. It records
//! the **replay script** (the retirement order of all tasks) and the grant
//! certificate, then solves each certificate comparison for the bandwidth
//! where it flips. The nearest flip on either side bounds the segment; the
//! next segment is derived just past it, stitching a full piecewise
//! description of the requested range.
//!
//! ## Bit-exactness
//!
//! Evaluation never trusts the affine algebra for values. To evaluate at a
//! bandwidth `b`, the timeline replays the segment's script using the
//! *engine's own arithmetic* (`bytes as f64 / (b * 1e9)`, `max`-of-dependency
//! finish times, queue-order accumulation) and then **checks the grant
//! certificate** against the replayed finish times. If every comparison
//! holds, the engine at `b` would have granted the bus identically and
//! produced the identical floating-point values — so the replayed
//! [`ExecutionStats`] are bit-identical to [`RpuEngine::execute_stats`],
//! with no tolerance. If any check fails, the timeline falls back to
//! running the real event engine — the oracle — for that point, so every
//! answer is exact by construction either way. `tests/analytic_oracle.rs`
//! property-tests this end to end.
//!
//! *Certifiability.* Equating "retired by the scan" with "finished no later
//! than `te`" needs every compute duration to be positive — a zero-duration
//! compute can finish *at* `te` yet only retire after the scan has already
//! run. A graph with a zero-duration compute task is therefore analyzed for
//! deadlock but derives no segments; every evaluation then uses the engine
//! fallback (still exact, just not closed-form).
//!
//! See `docs/ANALYTIC.md` for the full segment semantics and breakpoint
//! math.

use crate::engine::{deadlock_error, grant_precedes, EngineError, EngineLayout, RpuEngine};
use crate::stats::ExecutionStats;
use crate::task::{Task, TaskGraph, TaskId, TaskKind};
use crate::trace::{EngineQueue, TaskRecord};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Hard cap on derived segments per timeline: a backstop against
/// pathologically dense breakpoint clusters, far above what real schedules
/// produce. Bandwidths below the last derived segment simply fall back to
/// the event engine.
const MAX_SEGMENTS: usize = 512;

/// Hard cap on symbolic engine runs per analysis. Derivation normally takes
/// one run per segment (plus the odd merged re-derivation when a breakpoint
/// estimate is conservative); this bounds the ill-conditioned worst case
/// where ulp-sized steps stop making progress.
const MAX_RUNS: usize = 1024;

/// Ladder evaluation batch width: [`ParametricTimeline::evaluate_many`]
/// replays one script walk for this many bandwidths at a time, sharing
/// every dependency lookup across lanes.
const LANES: usize = 8;

/// A time that is affine in inverse bandwidth:
/// `seconds(bandwidth) = constant + per_inverse_gbps / bandwidth_gbps`.
///
/// Affine forms are the timeline's *analytic view* — they are exact in real
/// arithmetic within a segment's [`Segment::affine_range_gbps`] but evaluate
/// with ordinary floating-point error. Bit-exact numbers always come from
/// [`ParametricTimeline::evaluate`], which replays the engine's own
/// arithmetic instead of collapsing it into two coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineTime {
    /// Bandwidth-independent part in seconds (compute durations and
    /// compute-bound slack end up here).
    pub constant: f64,
    /// Coefficient of `1 / bandwidth_gbps` in seconds·GB/s — for a single
    /// memory task this is `bytes / 1e9`.
    pub per_inverse_gbps: f64,
}

impl AffineTime {
    /// Evaluates the affine form at a bandwidth in GB/s.
    #[must_use]
    pub fn at(&self, bandwidth_gbps: f64) -> f64 {
        self.constant + self.per_inverse_gbps / bandwidth_gbps
    }
}

/// Start and finish of one task as affine functions of inverse bandwidth,
/// valid within the owning segment's [`Segment::affine_range_gbps`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTimes {
    /// When the task starts.
    pub start: AffineTime,
    /// When the task finishes.
    pub end: AffineTime,
}

/// A concrete time paired with its affine form. The `v` component mirrors
/// the engine's floating-point arithmetic operation for operation (it drives
/// every branch the symbolic run takes); `c`/`m` carry the affine view used
/// for breakpoint estimation and the public [`TaskTimes`].
#[derive(Debug, Clone, Copy)]
struct Sym {
    v: f64,
    c: f64,
    m: f64,
}

impl Sym {
    const ZERO: Sym = Sym {
        v: 0.0,
        c: 0.0,
        m: 0.0,
    };

    fn add(self, other: Sym) -> Sym {
        Sym {
            v: self.v + other.v,
            c: self.c + other.c,
            m: self.m + other.m,
        }
    }

    fn affine(self) -> AffineTime {
        AffineTime {
            constant: self.c,
            per_inverse_gbps: self.m,
        }
    }
}

/// One entry of a segment's replay script: a task retiring on a queue, in
/// the anchor run's retirement order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScriptEntry {
    task: u32,
    /// `0` is the compute queue, `1 + c` is memory channel `c`.
    queue: u32,
}

/// One bus grant of a segment's certificate: `mem` is the granted memory
/// task and `checks_end` the exclusive end of its slice in the segment's
/// flat [`Check`] list. The grant sequence plus its readiness checks pins
/// the engine's entire execution — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Grant {
    mem: u32,
    checks_end: u32,
}

/// One certificate comparison: at the grant it belongs to, compute task
/// `comp` (the latest compute dependency of some channel head) must finish
/// no later than the previous grant retired (`le`) or strictly after
/// (`!le`) for the recorded grant choice to remain the engine's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Check {
    comp: u32,
    le: bool,
}

/// One piecewise-linear segment: a bandwidth interval over which the engine
/// grants the bus in the same order for the same head-readiness reasons,
/// making every event time affine in inverse bandwidth.
#[derive(Debug, Clone)]
pub struct Segment {
    anchor_gbps: f64,
    lo_gbps: f64,
    hi_gbps: f64,
    affine_lo_gbps: f64,
    affine_hi_gbps: f64,
    times: Vec<TaskTimes>,
    runtime: AffineTime,
    script: Vec<ScriptEntry>,
    grants: Vec<Grant>,
    checks: Vec<Check>,
}

impl Segment {
    /// The bandwidth this segment was derived at (always inside the segment).
    #[must_use]
    pub fn anchor_gbps(&self) -> f64 {
        self.anchor_gbps
    }

    /// The `(lo, hi)` bandwidth interval (GB/s) over which the engine's
    /// grant certificate provably holds. The edges are estimated from the
    /// affine forms; evaluation re-verifies every point, so the interval is
    /// a lookup hint, never a source of truth.
    #[must_use]
    pub fn bandwidth_range_gbps(&self) -> (f64, f64) {
        (self.lo_gbps, self.hi_gbps)
    }

    /// The sub-interval of [`Segment::bandwidth_range_gbps`] where the
    /// stored [`TaskTimes`] affine forms are additionally exact (in real
    /// arithmetic): between two *ready-time crossovers* — bandwidths where a
    /// different dependency (or queue backpressure) becomes the one a task
    /// waits on. A crossover changes the affine coefficients without
    /// changing the grant sequence, so it bounds the affine view but not the
    /// bit-exact replay.
    #[must_use]
    pub fn affine_range_gbps(&self) -> (f64, f64) {
        (self.affine_lo_gbps, self.affine_hi_gbps)
    }

    /// Per-task start/finish as affine functions of inverse bandwidth,
    /// indexed by [`TaskId`]. Exact within [`Segment::affine_range_gbps`].
    #[must_use]
    pub fn task_times(&self) -> &[TaskTimes] {
        &self.times
    }

    /// The makespan as an affine function of inverse bandwidth, exact within
    /// [`Segment::affine_range_gbps`].
    #[must_use]
    pub fn runtime_affine(&self) -> AffineTime {
        self.runtime
    }

    /// Number of certificate comparisons (head-readiness checks) re-verified
    /// on every replayed evaluation.
    #[must_use]
    pub fn grant_checks(&self) -> usize {
        self.checks.len()
    }

    fn same_behaviour(&self, other: &Segment) -> bool {
        self.script == other.script && self.grants == other.grants && self.checks == other.checks
    }
}

/// Per-task start/finish sampled from a replayed evaluation, in the anchor
/// run's retirement order. Away from exact finish ties this is also the
/// engine's own trace order at the evaluated bandwidth; at a tie the engine
/// may interleave the tied retirements differently while every recorded
/// time stays bit-identical.
pub type SampledTimes = Vec<TaskRecord>;

/// The piecewise-linear timeline of one `(schedule, channel map,
/// configuration)` triple over a bandwidth range: per-task start/finish as
/// affine functions of inverse bandwidth, segment by segment, with
/// bit-exact evaluation at any bandwidth. Built by [`RpuEngine::analyze`].
#[derive(Debug)]
pub struct ParametricTimeline {
    engine: RpuEngine,
    graph: TaskGraph,
    lo_gbps: f64,
    hi_gbps: f64,
    truncated: bool,
    segments: Vec<Segment>,
    /// Per-task bandwidth-independent duration (compute tasks; `0.0` for
    /// memory tasks, whose duration is recomputed per point).
    fixed_duration: Vec<f64>,
    /// Per-task transfer size as `bytes as f64` (memory tasks; `0.0` for
    /// compute tasks).
    bytes_f64: Vec<f64>,
    /// Flattened per-task dependency lists (CSR), for the replay's
    /// ready-time computation.
    dep_offsets: Vec<u32>,
    dep_edges: Vec<u32>,
    template: ExecutionStats,
    fallbacks: AtomicUsize,
}

impl ParametricTimeline {
    /// The `(lo, hi)` bandwidth range (GB/s) the timeline was derived over.
    #[must_use]
    pub fn bandwidth_range_gbps(&self) -> (f64, f64) {
        (self.lo_gbps, self.hi_gbps)
    }

    /// The task graph the timeline describes.
    #[must_use]
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The derived segments, ascending by bandwidth.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The interior segment edges: bandwidths where the engine's grant
    /// sequence changes (a grant choice or a retired-compute prefix flips).
    /// Sorted ascending, deduplicated, strictly inside the analyzed range.
    #[must_use]
    pub fn breakpoints_gbps(&self) -> Vec<f64> {
        let mut edges: Vec<f64> = self
            .segments
            .iter()
            .skip(1)
            .map(|s| s.lo_gbps)
            .filter(|&b| b > self.lo_gbps && b < self.hi_gbps)
            .collect();
        edges.sort_by(f64::total_cmp);
        edges.dedup();
        edges
    }

    /// True when segment derivation stopped before covering the full range:
    /// the `MAX_SEGMENTS` / `MAX_RUNS` backstops fired, or the graph is
    /// not certifiable (a zero-duration compute task breaks the
    /// certificate's prefix counting). Uncovered bandwidths are still
    /// answered exactly, via the event-engine fallback.
    #[must_use]
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// How many evaluations so far fell back to the event engine (points no
    /// segment could certify). Diagnostic only.
    #[must_use]
    pub fn fallback_evaluations(&self) -> usize {
        self.fallbacks.load(AtomicOrdering::Relaxed)
    }

    /// Evaluates the execution statistics at one bandwidth, bit-identical to
    /// `RpuEngine::execute_stats` on the same graph with the bandwidth
    /// swapped in: replay + certificate check where a segment certifies the
    /// point, event-engine fallback otherwise. Bandwidths outside the
    /// analyzed range are legal and simply tend to fall back.
    #[must_use]
    pub fn evaluate(&self, bandwidth_gbps: f64) -> ExecutionStats {
        let mut scratch = vec![0.0f64; self.fixed_duration.len()];
        self.evaluate_with(bandwidth_gbps, &mut scratch)
    }

    /// Evaluates a whole bandwidth ladder. Points are processed `LANES` at
    /// a time through one shared script walk (the per-lane arithmetic is
    /// operation-for-operation the scalar replay's, so results stay
    /// bit-identical); lanes the shared segment cannot certify re-evaluate
    /// individually with neighbour probing and engine fallback. Entries are
    /// evaluated independently in the given order, so duplicates and
    /// unsorted ladders are fine (duplicates produce bit-identical rows).
    #[must_use]
    pub fn evaluate_many(&self, bandwidths_gbps: &[f64]) -> Vec<ExecutionStats> {
        let n = self.fixed_duration.len();
        let mut scratch = vec![0.0f64; n];
        let mut lanes: Vec<[f64; LANES]> = vec![[0.0; LANES]; n];
        let mut out = Vec::with_capacity(bandwidths_gbps.len());
        let mut chunks = bandwidths_gbps.chunks_exact(LANES);
        for chunk in &mut chunks {
            let bws: &[f64; LANES] = chunk.try_into().expect("chunk has LANES entries");
            let candidate = if bws.iter().all(|&b| b > 0.0 && b.is_finite()) {
                self.candidate_index(bws[0])
            } else {
                None
            };
            if let Some(idx) = candidate {
                let batch = self.replay_batch(&self.segments[idx], bws, &mut lanes);
                for (l, stats) in batch.into_iter().enumerate() {
                    out.push(stats.unwrap_or_else(|| self.evaluate_with(bws[l], &mut scratch)));
                }
            } else {
                out.extend(chunk.iter().map(|&b| self.evaluate_with(b, &mut scratch)));
            }
        }
        for &b in chunks.remainder() {
            out.push(self.evaluate_with(b, &mut scratch));
        }
        out
    }

    /// The makespan in seconds at one bandwidth (bit-identical to the
    /// engine's `runtime_seconds`).
    #[must_use]
    pub fn runtime_seconds_at(&self, bandwidth_gbps: f64) -> f64 {
        self.evaluate(bandwidth_gbps).runtime_seconds
    }

    /// The per-task spans a replayed evaluation produces at `bandwidth_gbps`,
    /// in the anchor run's retirement order (the engine's trace order except
    /// possibly across exact finish ties, where times still agree bit for
    /// bit). Returns `None` when no segment certifies the point (the
    /// evaluation would have used the engine itself, whose trace is then the
    /// reference anyway).
    #[must_use]
    pub fn sampled_times(&self, bandwidth_gbps: f64) -> Option<SampledTimes> {
        let (segment, ends) = self.certified_replay(bandwidth_gbps)?;
        let tasks = self.graph.tasks();
        let dbps = bandwidth_gbps * 1e9;
        Some(
            segment
                .script
                .iter()
                .map(|entry| {
                    let t = entry.task as usize;
                    let end = ends[t];
                    let duration = if entry.queue == 0 {
                        self.fixed_duration[t]
                    } else {
                        self.bytes_f64[t] / dbps
                    };
                    TaskRecord {
                        task: t,
                        queue: match entry.queue {
                            0 => EngineQueue::Compute,
                            q => EngineQueue::Memory((q - 1) as usize),
                        },
                        start_seconds: end - duration,
                        end_seconds: end,
                        label: Arc::clone(&tasks[t].label),
                        stage: Arc::clone(&tasks[t].stage),
                    }
                })
                .collect(),
        )
    }

    fn evaluate_with(&self, bandwidth_gbps: f64, scratch: &mut [f64]) -> ExecutionStats {
        if bandwidth_gbps > 0.0 && bandwidth_gbps.is_finite() {
            if let Some(stats) = self.try_segments(bandwidth_gbps, scratch) {
                return stats;
            }
        }
        self.fallbacks.fetch_add(1, AtomicOrdering::Relaxed);
        let engine = RpuEngine::new(self.engine.config().clone().with_bandwidth(bandwidth_gbps))
            .with_channel_map(self.engine.channel_map().clone());
        engine
            .execute_stats(&self.graph)
            .expect("deadlock is timing-independent and the anchor run succeeded")
    }

    /// Tries the segment whose interval hint contains the point first, then
    /// its neighbours (interval edges are estimates; the certificate check
    /// is what decides). Returns `None` when nothing certifies the point.
    fn try_segments(&self, bandwidth_gbps: f64, scratch: &mut [f64]) -> Option<ExecutionStats> {
        let idx = self.candidate_index(bandwidth_gbps)?;
        for probe in [Some(idx), idx.checked_sub(1), idx.checked_add(1)]
            .into_iter()
            .flatten()
        {
            if let Some(segment) = self.segments.get(probe) {
                if let Some(stats) = self.replay_checked(segment, bandwidth_gbps, scratch) {
                    return Some(stats);
                }
            }
        }
        None
    }

    fn candidate_index(&self, bandwidth_gbps: f64) -> Option<usize> {
        if self.segments.is_empty() {
            return None;
        }
        let idx = self
            .segments
            .partition_point(|s| s.lo_gbps <= bandwidth_gbps);
        Some(idx.saturating_sub(1))
    }

    fn certified_replay(&self, bandwidth_gbps: f64) -> Option<(&Segment, Vec<f64>)> {
        if !(bandwidth_gbps > 0.0 && bandwidth_gbps.is_finite()) {
            return None;
        }
        let mut scratch = vec![0.0f64; self.fixed_duration.len()];
        let idx = self.candidate_index(bandwidth_gbps)?;
        for probe in [Some(idx), idx.checked_sub(1), idx.checked_add(1)]
            .into_iter()
            .flatten()
        {
            if let Some(segment) = self.segments.get(probe) {
                if self
                    .replay_checked(segment, bandwidth_gbps, &mut scratch)
                    .is_some()
                {
                    return Some((segment, scratch));
                }
            }
        }
        None
    }

    /// Replays one segment's script at a bandwidth with the engine's own
    /// arithmetic, then verifies the grant certificate against the replayed
    /// finish times: for each grant, every recorded head-readiness
    /// comparison must resolve the same way it did at the anchor. A full
    /// pass certifies (and returns) bit-exact statistics; any mismatch
    /// returns `None`.
    fn replay_checked(
        &self,
        segment: &Segment,
        bandwidth_gbps: f64,
        ends: &mut [f64],
    ) -> Option<ExecutionStats> {
        let dbps = bandwidth_gbps * 1e9;
        let channels = self.template.memory_channel_busy_seconds.len();
        let mut channel_busy = vec![0.0f64; channels];
        let mut compute_busy = 0.0f64;
        let mut memory_busy = 0.0f64;
        let mut compute_free = 0.0f64;
        let mut bus_free = 0.0f64;
        let mut makespan = 0.0f64;
        for entry in &segment.script {
            let t = entry.task as usize;
            // Ready time: the max finish time over the task's dependencies.
            // The engine folds them in retirement order, this loop in
            // dependency-list order — `f64::max` is exact, so the fold is
            // order-independent and the bits agree.
            let mut ready = 0.0f64;
            for &d in
                &self.dep_edges[self.dep_offsets[t] as usize..self.dep_offsets[t + 1] as usize]
            {
                ready = ready.max(ends[d as usize]);
            }
            let end = if entry.queue == 0 {
                let start = ready.max(compute_free);
                let end = start + self.fixed_duration[t];
                compute_busy += end - start;
                compute_free = end;
                end
            } else {
                let start = ready.max(bus_free);
                let end = start + self.bytes_f64[t] / dbps;
                memory_busy += end - start;
                channel_busy[(entry.queue - 1) as usize] += end - start;
                bus_free = end;
                end
            };
            ends[t] = end;
            makespan = makespan.max(end);
        }
        // Certificate check. Written with `!` so a NaN anywhere rejects
        // (and falls back) instead of certifying.
        let mut te_prev = 0.0f64;
        let mut first = 0usize;
        for grant in &segment.grants {
            let slice = &segment.checks[first..grant.checks_end as usize];
            first = grant.checks_end as usize;
            for check in slice {
                let e = ends[check.comp as usize];
                let holds = if check.le { e <= te_prev } else { e > te_prev };
                if !holds {
                    return None;
                }
            }
            te_prev = ends[grant.mem as usize];
        }
        let mut stats = self.template.clone();
        stats.runtime_seconds = makespan;
        stats.compute_busy_seconds = compute_busy;
        stats.memory_busy_seconds = memory_busy;
        stats.memory_channel_busy_seconds = channel_busy;
        Some(stats)
    }

    /// Replays one segment's script for [`LANES`] bandwidths at once,
    /// sharing the script walk and every dependency lookup across lanes,
    /// then verifies the grant certificate per lane. Lane `l` yields `Some`
    /// exactly when [`Self::replay_checked`] would certify `bws[l]` against
    /// this segment, with bit-identical statistics: each lane performs the
    /// identical sequence of `max`/`+`/`/` operations the scalar replay
    /// does, just interleaved across lanes.
    fn replay_batch(
        &self,
        segment: &Segment,
        bws: &[f64; LANES],
        ends: &mut [[f64; LANES]],
    ) -> [Option<ExecutionStats>; LANES] {
        let mut dbps = [0.0f64; LANES];
        for (lane, &b) in dbps.iter_mut().zip(bws) {
            *lane = b * 1e9;
        }
        let channels = self.template.memory_channel_busy_seconds.len();
        let mut channel_busy = vec![[0.0f64; LANES]; channels];
        let mut compute_busy = [0.0f64; LANES];
        let mut memory_busy = [0.0f64; LANES];
        let mut compute_free = [0.0f64; LANES];
        let mut bus_free = [0.0f64; LANES];
        let mut makespan = [0.0f64; LANES];
        for entry in &segment.script {
            let t = entry.task as usize;
            let mut ready = [0.0f64; LANES];
            for &d in
                &self.dep_edges[self.dep_offsets[t] as usize..self.dep_offsets[t + 1] as usize]
            {
                let e = &ends[d as usize];
                for l in 0..LANES {
                    ready[l] = ready[l].max(e[l]);
                }
            }
            if entry.queue == 0 {
                let duration = self.fixed_duration[t];
                for l in 0..LANES {
                    let start = ready[l].max(compute_free[l]);
                    let end = start + duration;
                    compute_busy[l] += end - start;
                    compute_free[l] = end;
                    ends[t][l] = end;
                    makespan[l] = makespan[l].max(end);
                }
            } else {
                let bytes = self.bytes_f64[t];
                let busy = &mut channel_busy[(entry.queue - 1) as usize];
                for l in 0..LANES {
                    let start = ready[l].max(bus_free[l]);
                    let end = start + bytes / dbps[l];
                    memory_busy[l] += end - start;
                    busy[l] += end - start;
                    bus_free[l] = end;
                    ends[t][l] = end;
                    makespan[l] = makespan[l].max(end);
                }
            }
        }
        // Per-lane certificate check; comparisons are written so a NaN
        // anywhere clears the lane's flag, matching the scalar path's
        // reject-on-NaN behaviour.
        let mut ok = [true; LANES];
        let mut te_prev = [0.0f64; LANES];
        let mut first = 0usize;
        for grant in &segment.grants {
            let slice = &segment.checks[first..grant.checks_end as usize];
            first = grant.checks_end as usize;
            for check in slice {
                let e = &ends[check.comp as usize];
                if check.le {
                    for l in 0..LANES {
                        ok[l] &= e[l] <= te_prev[l];
                    }
                } else {
                    for l in 0..LANES {
                        ok[l] &= e[l] > te_prev[l];
                    }
                }
            }
            te_prev = ends[grant.mem as usize];
        }
        std::array::from_fn(|l| {
            if ok[l] {
                let mut stats = self.template.clone();
                stats.runtime_seconds = makespan[l];
                stats.compute_busy_seconds = compute_busy[l];
                stats.memory_busy_seconds = memory_busy[l];
                stats.memory_channel_busy_seconds =
                    channel_busy.iter().map(|busy| busy[l]).collect();
                Some(stats)
            } else {
                None
            }
        })
    }
}

impl RpuEngine {
    /// Runs the engine symbolically over `[lo_gbps, hi_gbps]` (aggregate
    /// DRAM bandwidth, GB/s) and returns the piecewise-linear
    /// [`ParametricTimeline`]. The engine's *own* bandwidth setting is
    /// irrelevant — every evaluation substitutes its point's bandwidth; all
    /// other configuration (MODOPS, channel count, channel map, evk policy)
    /// is taken from `self`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Deadlock`] exactly when
    /// [`RpuEngine::execute_stats`] would: the deadlock condition is a
    /// property of the schedule and queue placement, independent of timing,
    /// so one symbolic run decides it for every bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid: non-finite, non-positive, or
    /// `lo_gbps > hi_gbps`. (The `ciflow` sweep layer validates ladders and
    /// reports `InvalidConfig` before ever reaching this.)
    pub fn analyze(
        &self,
        graph: &TaskGraph,
        lo_gbps: f64,
        hi_gbps: f64,
    ) -> Result<ParametricTimeline, EngineError> {
        assert!(
            lo_gbps.is_finite() && hi_gbps.is_finite() && lo_gbps > 0.0 && lo_gbps <= hi_gbps,
            "invalid bandwidth range [{lo_gbps}, {hi_gbps}] GB/s: bounds must be finite, \
             positive and ordered"
        );
        let tasks = graph.tasks();
        let n = tasks.len();
        let mut fixed_duration = vec![0.0f64; n];
        let mut bytes_f64 = vec![0.0f64; n];
        for task in tasks {
            match task.kind {
                TaskKind::Compute { .. } => fixed_duration[task.id] = self.task_duration(task),
                TaskKind::Memory { bytes, .. } => bytes_f64[task.id] = bytes as f64,
            }
        }
        let mut dep_offsets = vec![0u32; n + 1];
        for task in tasks {
            dep_offsets[task.id + 1] = dep_offsets[task.id] + task.dependencies.len() as u32;
        }
        let mut dep_edges = Vec::with_capacity(dep_offsets[n] as usize);
        for task in tasks {
            dep_edges.extend(task.dependencies.iter().map(|&d| d as u32));
        }

        let layout = self.layout(graph);
        // Certificate precondition: "retired by the scan" must coincide with
        // "finished no later than the scan's bus-free time", which holds iff
        // every compute duration is positive.
        let certifiable = layout
            .compute_queue
            .iter()
            .all(|&c| fixed_duration[c] > 0.0);
        let (loaded, stored) = graph.total_bytes();
        let template = ExecutionStats {
            compute_tasks: layout.compute_queue.len(),
            memory_tasks: layout.memory_tasks,
            total_ops: graph.total_ops(),
            bytes_loaded: loaded,
            bytes_stored: stored,
            memory_channel_busy_seconds: vec![0.0; self.config().memory_channel_count()],
            ..ExecutionStats::default()
        };

        // Derive segments from the high-bandwidth end downwards: each
        // symbolic run certifies an interval around its anchor, and the next
        // anchor is placed just below the interval's lower edge (the nearest
        // breakpoint). Adjacent anchors whose certificates agree merge. An
        // uncertifiable graph still gets one symbolic run — `analyze` must
        // report deadlock exactly like the engine — but keeps no segments.
        let mut segments: Vec<Segment> = Vec::new();
        let mut truncated = false;
        let mut anchor = hi_gbps;
        let mut runs = 0usize;
        let mut stall = 0u32;
        loop {
            let segment = self.symbolic_run(graph, anchor, lo_gbps, hi_gbps)?;
            runs += 1;
            if !certifiable {
                truncated = true;
                break;
            }
            let reached_lo = segment.lo_gbps <= lo_gbps;
            match segments.last_mut() {
                Some(prev) if prev.same_behaviour(&segment) => {
                    prev.lo_gbps = prev.lo_gbps.min(segment.lo_gbps);
                    prev.affine_lo_gbps = prev.affine_lo_gbps.min(segment.affine_lo_gbps);
                }
                _ => segments.push(segment),
            }
            if reached_lo {
                break;
            }
            if segments.len() >= MAX_SEGMENTS || runs >= MAX_RUNS {
                truncated = true;
                break;
            }
            let edge = segments.last().map_or(lo_gbps, |s| s.lo_gbps);
            // Step strictly below the edge. Exactly at a tie the derived
            // interval degenerates to (or ends at) the anchor itself, and an
            // ulp step would grind through the pinch one ulp per run — so
            // demand a minimum relative decrease, escalating while stalled
            // (any sliver skipped this way is served by the engine
            // fallback).
            let mut next = edge.next_down();
            if next.is_nan() || next >= anchor * (1.0 - 1e-12) {
                stall = (stall + 1).min(20);
                next = anchor * (1.0 - 1e-9 * f64::from(1u32 << stall));
            } else {
                stall = 0;
            }
            anchor = next.max(lo_gbps);
        }
        segments.reverse();

        Ok(ParametricTimeline {
            engine: self.clone(),
            graph: graph.clone(),
            lo_gbps,
            hi_gbps,
            truncated,
            segments,
            fixed_duration,
            bytes_f64,
            dep_offsets,
            dep_edges,
            template,
            fallbacks: AtomicUsize::new(0),
        })
    }

    /// The instrumented mirror of the engine loop: identical concrete
    /// arithmetic on the `v` components (so every branch is the engine's
    /// own), affine bookkeeping on the side, recording the replay script,
    /// the grant certificate and the nearest certificate flips in both
    /// directions.
    #[allow(clippy::too_many_lines)]
    fn symbolic_run(
        &self,
        graph: &TaskGraph,
        anchor_gbps: f64,
        lo_gbps: f64,
        hi_gbps: f64,
    ) -> Result<Segment, EngineError> {
        let tasks = graph.tasks();
        let n = tasks.len();
        let x0 = 1.0 / anchor_gbps;
        let dbps = anchor_gbps * 1e9;
        let EngineLayout {
            compute_queue,
            memory_queues,
            memory_tasks: _,
            mut remaining,
            offsets,
            dependents,
        } = self.layout(graph);

        let duration = |task: &Task| -> Sym {
            match task.kind {
                TaskKind::Compute { .. } => {
                    let d = self.task_duration(task);
                    Sym { v: d, c: d, m: 0.0 }
                }
                TaskKind::Memory { bytes, .. } => Sym {
                    v: bytes as f64 / dbps,
                    c: 0.0,
                    m: bytes as f64 / 1e9,
                },
            }
        };

        // Running breakpoint bounds in x = 1/bandwidth space. `dec` bounds
        // come from certificate flips (grant-sequence changes — true segment
        // edges, folded in a post-pass below); `aff` bounds additionally
        // include ready-time crossovers (max-argument switches that bend the
        // affine forms without reordering grants).
        let mut dec = (0.0f64, f64::INFINITY);
        let mut aff = (0.0f64, f64::INFINITY);
        let fold_cross = |bounds: &mut (f64, f64), dc: f64, dm: f64| {
            // The (loser - winner) difference is ≤ 0 at the anchor; it can
            // only cross zero where dc + dm·x = 0.
            if dm == 0.0 {
                return;
            }
            let xs = -dc / dm;
            if !xs.is_finite() {
                return;
            }
            match xs.partial_cmp(&x0) {
                Some(Ordering::Greater) => bounds.1 = bounds.1.min(xs),
                Some(Ordering::Less) => bounds.0 = bounds.0.max(xs),
                _ => {
                    bounds.0 = x0;
                    bounds.1 = x0;
                }
            }
        };
        let sym_max = |a: Sym, b: Sym, aff: &mut (f64, f64)| -> Sym {
            // Winner by the engine's concrete value; on an exact value tie
            // the steeper affine branch wins so the view stays the max just
            // above the anchor.
            let (w, l) = match a.v.partial_cmp(&b.v) {
                Some(Ordering::Greater) => (a, b),
                Some(Ordering::Less) => (b, a),
                _ => {
                    if a.m >= b.m {
                        (a, b)
                    } else {
                        (b, a)
                    }
                }
            };
            fold_cross(aff, l.c - w.c, l.m - w.m);
            Sym {
                v: a.v.max(b.v),
                c: w.c,
                m: w.m,
            }
        };

        let mut ready_at: Vec<Sym> = vec![Sym::ZERO; n];
        let mut times: Vec<TaskTimes> = vec![
            TaskTimes {
                start: AffineTime {
                    constant: 0.0,
                    per_inverse_gbps: 0.0
                },
                end: AffineTime {
                    constant: 0.0,
                    per_inverse_gbps: 0.0
                },
            };
            n
        ];
        let mut script: Vec<ScriptEntry> = Vec::with_capacity(n);
        // Raw certificate evidence, finalized in the post-pass below:
        // per grant, every channel head whose memory dependencies were
        // already retired, paired with the latest compute dependency gating
        // its readiness. `ends_v` keeps the anchor's concrete finish times
        // so the post-pass can resolve each comparison's direction.
        let mut raw: Vec<(u32, u32)> = Vec::new();
        let mut grants_raw: Vec<(u32, u32)> = Vec::new();
        let mut ends_v: Vec<f64> = vec![0.0f64; n];
        let mut mem_retired: Vec<bool> = vec![false; n];
        let mut compute_pos: Vec<u32> = vec![u32::MAX; n];
        for (i, &c) in compute_queue.iter().enumerate() {
            compute_pos[c] = i as u32;
        }

        let mut ci = 0usize;
        let mut mi = vec![0usize; memory_queues.len()];
        let mut compute_free = Sym::ZERO;
        let mut bus_free = Sym::ZERO;
        let mut makespan = Sym::ZERO;
        let mut mem_run: Option<(TaskId, usize, Sym)> = None; // (task, channel, end)
        let mut comp_run: Option<(TaskId, Sym)> = None; // (task, end)

        loop {
            if comp_run.is_none() {
                if let Some(&head) = compute_queue.get(ci) {
                    if remaining[head] == 0 {
                        let start = sym_max(ready_at[head], compute_free, &mut aff);
                        let end = start.add(duration(&tasks[head]));
                        times[head] = TaskTimes {
                            start: start.affine(),
                            end: end.affine(),
                        };
                        ends_v[head] = end.v;
                        comp_run = Some((head, end));
                        ci += 1;
                    }
                }
            }

            if mem_run.is_none() {
                let mut grant: Option<(TaskId, usize)> = None;
                for (channel, queue) in memory_queues.iter().enumerate() {
                    if let Some(&head) = queue.get(mi[channel]) {
                        if remaining[head] == 0 && grant_precedes(head, grant.map(|(best, _)| best))
                        {
                            grant = Some((head, channel));
                        }
                    }
                }
                if let Some((head, channel)) = grant {
                    let start = sym_max(ready_at[head], bus_free, &mut aff);
                    let end = start.add(duration(&tasks[head]));
                    times[head] = TaskTimes {
                        start: start.affine(),
                        end: end.affine(),
                    };
                    ends_v[head] = end.v;
                    // Record this grant's readiness evidence while the
                    // pre-grant heads are still in place: every head whose
                    // memory dependencies are retired, with the latest
                    // compute dependency gating it (none ⇒ unconditionally
                    // ready ⇒ nothing value-dependent to record).
                    for (c, queue) in memory_queues.iter().enumerate() {
                        if let Some(&h2) = queue.get(mi[c]) {
                            let mut eligible = true;
                            let mut latest: Option<u32> = None;
                            for &d in &tasks[h2].dependencies {
                                match tasks[d].kind {
                                    TaskKind::Compute { .. } => {
                                        let p = compute_pos[d];
                                        latest = Some(latest.map_or(p, |q| q.max(p)));
                                    }
                                    TaskKind::Memory { .. } => {
                                        if !mem_retired[d] {
                                            eligible = false;
                                            break;
                                        }
                                    }
                                }
                            }
                            if eligible {
                                if let Some(pos) = latest {
                                    raw.push((h2 as u32, compute_queue[pos as usize] as u32));
                                }
                            }
                        }
                    }
                    grants_raw.push((head as u32, raw.len() as u32));
                    mem_run = Some((head, channel, end));
                    mi[channel] += 1;
                }
            }

            let t_next = match (&comp_run, &mem_run) {
                (Some((_, ce)), Some((_, _, me))) => ce.v.min(me.v),
                (Some((_, ce)), None) => ce.v,
                (None, Some((_, _, me))) => me.v,
                (None, None) => {
                    let exhausted = ci >= compute_queue.len()
                        && mi
                            .iter()
                            .zip(&memory_queues)
                            .all(|(&i, queue)| i >= queue.len());
                    if exhausted {
                        break;
                    }
                    return Err(deadlock_error(
                        tasks,
                        &compute_queue,
                        ci,
                        &memory_queues,
                        &mi,
                        &remaining,
                    ));
                }
            };

            if let Some((head, channel, end)) = mem_run {
                if end.v <= t_next {
                    for &c in &dependents[offsets[head]..offsets[head + 1]] {
                        remaining[c] -= 1;
                        ready_at[c] = sym_max(ready_at[c], end, &mut aff);
                    }
                    makespan = sym_max(makespan, end, &mut aff);
                    bus_free = end;
                    script.push(ScriptEntry {
                        task: head as u32,
                        queue: 1 + channel as u32,
                    });
                    mem_run = None;
                    mem_retired[head] = true;
                }
            }
            if let Some((head, end)) = comp_run {
                if end.v <= t_next {
                    for &c in &dependents[offsets[head]..offsets[head + 1]] {
                        remaining[c] -= 1;
                        ready_at[c] = sym_max(ready_at[c], end, &mut aff);
                    }
                    makespan = sym_max(makespan, end, &mut aff);
                    compute_free = end;
                    script.push(ScriptEntry {
                        task: head as u32,
                        queue: 0,
                    });
                    comp_run = None;
                }
            }
        }

        // Post-pass: resolve each raw readiness record into a directed
        // comparison and fold its crossing into the `dec` bounds. Deferred
        // to here because an unready head's gating compute may only acquire
        // its finish time later in the run. The `.max(x0)` / `.min(x0)`
        // clamps keep the anchor inside its own interval whatever the
        // crossing's floating-point rounding did — in particular an exact
        // tie at the anchor (crossing ≈ x0) makes the anchor an interval
        // *endpoint*, not a degenerate point.
        let fold_flip = |bounds: &mut (f64, f64), dc: f64, dm: f64, bad_above: bool| {
            if dm == 0.0 {
                return;
            }
            let xs = -dc / dm;
            if !xs.is_finite() {
                return;
            }
            if bad_above {
                bounds.1 = bounds.1.min(xs.max(x0));
            } else {
                bounds.0 = bounds.0.max(xs.min(x0));
            }
        };
        let mut grants: Vec<Grant> = Vec::with_capacity(grants_raw.len());
        let mut checks: Vec<Check> = Vec::new();
        let mut te_v = 0.0f64;
        let mut te = AffineTime {
            constant: 0.0,
            per_inverse_gbps: 0.0,
        };
        let mut first = 0usize;
        for &(mem, raw_end) in &grants_raw {
            let slice = &raw[first..raw_end as usize];
            first = raw_end as usize;
            // Immediate-grant regime iff the winner was ready when the bus
            // freed (no gating compute ⇒ unconditionally ready).
            let case_a = slice
                .iter()
                .find(|&&(head, _)| head == mem)
                .is_none_or(|&(_, comp)| ends_v[comp as usize] <= te_v);
            for &(head, comp) in slice {
                let le = ends_v[comp as usize] <= te_v;
                if head != mem {
                    if case_a && head > mem {
                        // In the immediate-grant regime a lower-priority
                        // head cannot influence the choice either way.
                        continue;
                    }
                    debug_assert!(!le, "a preceding ready head would have won the grant");
                }
                checks.push(Check { comp, le });
                let e = times[comp as usize].end;
                let (dc, dm) = (
                    e.constant - te.constant,
                    e.per_inverse_gbps - te.per_inverse_gbps,
                );
                // An `le` comparison breaks where its difference turns
                // positive, a `gt` comparison where it turns non-positive.
                fold_flip(&mut dec, dc, dm, if le { dm > 0.0 } else { dm < 0.0 });
            }
            grants.push(Grant {
                mem,
                checks_end: checks.len() as u32,
            });
            te_v = ends_v[mem as usize];
            te = times[mem as usize].end;
        }

        // The affine view is only meaningful where the grant order holds.
        aff.0 = aff.0.max(dec.0);
        aff.1 = aff.1.min(dec.1);

        // x bounds → bandwidth interval (x = 1/bw reverses the order), clip
        // to the analyzed range, and make sure the anchor stays inside its
        // own interval whatever the conversion rounding did.
        let to_bw = |bounds: (f64, f64), anchor: f64| -> (f64, f64) {
            let lo = if bounds.1.is_infinite() {
                lo_gbps
            } else {
                (1.0 / bounds.1).max(lo_gbps)
            };
            let hi = if bounds.0 <= 0.0 {
                hi_gbps
            } else {
                (1.0 / bounds.0).min(hi_gbps)
            };
            (lo.min(anchor), hi.max(anchor))
        };
        let (lo, hi) = to_bw(dec, anchor_gbps);
        let (affine_lo, affine_hi) = to_bw(aff, anchor_gbps);

        Ok(Segment {
            anchor_gbps,
            lo_gbps: lo,
            hi_gbps: hi,
            affine_lo_gbps: affine_lo,
            affine_hi_gbps: affine_hi,
            times,
            runtime: makespan.affine(),
            script,
            grants,
            checks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RpuConfig;
    use crate::task::{ComputeKind, MemoryDirection, TaskGraph};

    /// 1 Gop/s compute, bandwidth in GB/s — round numbers for hand checks.
    fn unit_config() -> RpuConfig {
        RpuConfig {
            num_hples: 1,
            vector_length: 1,
            clock_ghz: 1.0,
            vector_memory_bytes: 1 << 30,
            key_memory_bytes: 0,
            scalar_memory_bytes: 0,
            dram_bandwidth_gbps: 1.0,
            num_memory_channels: 1,
            modops_multiplier: 1.0,
            evk_policy: crate::config::EvkPolicy::Streamed,
        }
    }

    fn race_graph() -> TaskGraph {
        // Compute C (1 s) races memory M (2e9 bytes): M finishes first above
        // 2 GB/s, C first below — one breakpoint at 2 GB/s. The consumers
        // make the retirement order observable in the busy accounting.
        let mut g = TaskGraph::new();
        let c = g.push_compute(ComputeKind::Ntt, 1_000_000_000, vec![], "c", "P1");
        let m = g.push_memory(MemoryDirection::Load, 2_000_000_000, vec![], "m", "P1");
        g.push_memory(MemoryDirection::Store, 500_000_000, vec![c], "out", "P5");
        g.push_compute(ComputeKind::Intt, 300_000_000, vec![m], "c2", "P2");
        g
    }

    fn assert_bit_identical(engine: &RpuEngine, timeline: &ParametricTimeline, bw: f64) {
        let reference = RpuEngine::new(engine.config().clone().with_bandwidth(bw))
            .with_channel_map(engine.channel_map().clone())
            .execute_stats(timeline.graph())
            .unwrap();
        let got = timeline.evaluate(bw);
        assert_eq!(got, reference, "divergence at {bw} GB/s");
        assert_eq!(
            got.runtime_seconds.to_bits(),
            reference.runtime_seconds.to_bits()
        );
    }

    #[test]
    fn single_breakpoint_is_found_and_evaluation_is_bit_exact() {
        let engine = RpuEngine::new(unit_config());
        let g = race_graph();
        let timeline = engine.analyze(&g, 0.5, 16.0).unwrap();
        let breakpoints = timeline.breakpoints_gbps();
        assert!(
            breakpoints.iter().any(|b| (b - 2.0).abs() < 1e-6),
            "expected a breakpoint near 2 GB/s, got {breakpoints:?}"
        );
        for bw in [0.5, 1.0, 1.9999, 2.0, 2.0001, 3.0, 16.0, 2.0_f64.next_up()] {
            assert_bit_identical(&engine, &timeline, bw);
        }
    }

    #[test]
    fn a_tie_at_the_breakpoint_is_certified_without_fallback() {
        // At exactly 2 GB/s the compute and the racing load finish at the
        // same instant; the inclusive prefix condition keeps the point
        // certifiable, so no engine fallback is needed anywhere on the grid.
        let engine = RpuEngine::new(unit_config());
        let g = race_graph();
        let timeline = engine.analyze(&g, 0.5, 16.0).unwrap();
        for bw in [0.5, 1.0, 2.0, 2.0_f64.next_down(), 2.0_f64.next_up(), 16.0] {
            assert_bit_identical(&engine, &timeline, bw);
        }
        assert_eq!(
            timeline.fallback_evaluations(),
            0,
            "every grid point should be certified by a segment"
        );
    }

    #[test]
    fn affine_view_matches_replay_inside_its_range() {
        let engine = RpuEngine::new(unit_config());
        let g = race_graph();
        let timeline = engine.analyze(&g, 0.5, 16.0).unwrap();
        for segment in timeline.segments() {
            let (lo, hi) = segment.affine_range_gbps();
            let bw = (lo + hi) / 2.0;
            let stats = timeline.evaluate(bw);
            let affine = segment.runtime_affine().at(bw);
            assert!(
                (affine - stats.runtime_seconds).abs() <= 1e-9 * stats.runtime_seconds.max(1e-12),
                "affine runtime {affine} vs replay {} at {bw}",
                stats.runtime_seconds
            );
        }
    }

    #[test]
    fn empty_graph_has_one_trivial_segment() {
        let engine = RpuEngine::new(unit_config());
        let timeline = engine.analyze(&TaskGraph::new(), 1.0, 100.0).unwrap();
        assert_eq!(timeline.segments().len(), 1);
        assert!(timeline.breakpoints_gbps().is_empty());
        let stats = timeline.evaluate(50.0);
        assert_eq!(stats.runtime_seconds, 0.0);
        assert_eq!(timeline.fallback_evaluations(), 0);
    }

    #[test]
    fn zero_duration_compute_disables_certification_but_stays_exact() {
        let mut g = TaskGraph::new();
        let z = g.push_compute(ComputeKind::Ntt, 0, vec![], "zero", "P1");
        let m = g.push_memory(MemoryDirection::Load, 1_000_000_000, vec![], "m", "P1");
        g.push_compute(ComputeKind::Intt, 500_000_000, vec![z, m], "c", "P2");
        let engine = RpuEngine::new(unit_config());
        let timeline = engine.analyze(&g, 1.0, 64.0).unwrap();
        assert!(timeline.is_truncated());
        assert!(timeline.segments().is_empty());
        for bw in [1.0, 2.5, 64.0] {
            assert_bit_identical(&engine, &timeline, bw);
        }
        assert!(timeline.fallback_evaluations() >= 3);
    }

    #[test]
    fn deadlock_is_reported_from_the_symbolic_run() {
        use crate::task::{Task, TaskKind};
        let tasks = vec![
            Task {
                id: 0,
                kind: TaskKind::Compute {
                    kind: ComputeKind::Ntt,
                    ops: 10,
                },
                dependencies: vec![2],
                label: "c".into(),
                stage: "P1".into(),
                channel: None,
            },
            Task {
                id: 1,
                kind: TaskKind::Memory {
                    direction: MemoryDirection::Load,
                    bytes: 10,
                },
                dependencies: vec![0],
                label: "m1".into(),
                stage: "P1".into(),
                channel: None,
            },
            Task {
                id: 2,
                kind: TaskKind::Memory {
                    direction: MemoryDirection::Load,
                    bytes: 10,
                },
                dependencies: vec![],
                label: "m2".into(),
                stage: "P1".into(),
                channel: None,
            },
        ];
        let g = TaskGraph::from_tasks_unchecked(tasks);
        let err = RpuEngine::new(unit_config())
            .analyze(&g, 1.0, 64.0)
            .unwrap_err();
        assert!(matches!(err, EngineError::Deadlock { .. }));
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth range")]
    fn invalid_range_panics() {
        let _ = RpuEngine::new(unit_config()).analyze(&TaskGraph::new(), 8.0, 4.0);
    }

    #[test]
    fn out_of_range_points_fall_back_to_the_engine_and_stay_exact() {
        let engine = RpuEngine::new(unit_config());
        let g = race_graph();
        let timeline = engine.analyze(&g, 4.0, 16.0).unwrap();
        // 1 GB/s is below the analyzed range and on the other side of the
        // 2 GB/s breakpoint, so no derived segment certifies it.
        assert_bit_identical(&engine, &timeline, 1.0);
        assert!(timeline.fallback_evaluations() >= 1);
    }
}
