//! Property-based tests of the CKKS scheme: homomorphism laws and
//! encode/decode stability for arbitrary messages.

use ckks::context::CkksContext;
use ckks::encoding::{CkksEncoder, Complex};
use ckks::encrypt::{decrypt, encrypt};
use ckks::keys::KeyGenerator;
use ckks::ops;
use ckks::params::CkksParametersBuilder;
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::Arc;

fn context() -> Arc<CkksContext> {
    CkksParametersBuilder::new()
        .ring_degree(1 << 8)
        .q_tower_bits(vec![50, 40, 40])
        .p_tower_bits(vec![50, 50])
        .dnum(2)
        .scale_bits(40)
        .build()
        .map(CkksContext::new)
        .unwrap()
        .unwrap()
}

fn max_error(expected: &[Complex], actual: &[Complex]) -> f64 {
    expected
        .iter()
        .zip(actual)
        .map(|(e, a)| e.distance(*a))
        .fold(0.0, f64::max)
}

proptest! {
    // Each case runs key generation and several HE operations, so keep the
    // case count modest; the message contents are the interesting variable.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn encode_decode_is_stable_for_bounded_messages(
        values in proptest::collection::vec(-100.0f64..100.0, 1..128),
    ) {
        let ctx = context();
        let encoder = CkksEncoder::new(ctx.params());
        let pt = encoder.encode_real(&values, ctx.params().scale(), ctx.basis_q().clone());
        let decoded = encoder.decode(&pt);
        for (i, &v) in values.iter().enumerate() {
            prop_assert!((decoded[i].re - v).abs() < 1e-4, "slot {i}: {} vs {v}", decoded[i].re);
            prop_assert!(decoded[i].im.abs() < 1e-4);
        }
    }

    #[test]
    fn encryption_is_additively_homomorphic(
        seed in any::<u64>(),
        scale_a in 0.1f64..2.0,
        scale_b in -2.0f64..-0.1,
    ) {
        let ctx = context();
        let encoder = CkksEncoder::new(ctx.params());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&mut rng, &sk);
        let slots = encoder.slot_count();
        let a: Vec<f64> = (0..slots).map(|i| scale_a * (i as f64 * 0.1).sin()).collect();
        let b: Vec<f64> = (0..slots).map(|i| scale_b * (i as f64 * 0.07).cos()).collect();
        let ct_a = encrypt(&ctx, &mut rng, &pk, &encoder.encode_real(&a, ctx.params().scale(), ctx.basis_q().clone()));
        let ct_b = encrypt(&ctx, &mut rng, &pk, &encoder.encode_real(&b, ctx.params().scale(), ctx.basis_q().clone()));
        let sum = ops::add(&ct_a, &ct_b).unwrap();
        let decoded = encoder.decode(&decrypt(&ctx, &sk, &sum));
        let expected: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| Complex::new(x + y, 0.0)).collect();
        prop_assert!(max_error(&expected, &decoded) < 1e-3);
    }

    #[test]
    fn multiplication_then_rescale_tracks_products(seed in any::<u64>()) {
        let ctx = context();
        let encoder = CkksEncoder::new(ctx.params());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&mut rng, &sk);
        let rlk = keygen.relinearization_key(&mut rng, &sk);
        let slots = encoder.slot_count();
        let a: Vec<f64> = (0..slots).map(|i| ((i as f64 + seed as f64 % 17.0) * 0.05).sin()).collect();
        let b: Vec<f64> = (0..slots).map(|i| 0.5 + (i % 3) as f64 * 0.1).collect();
        let ct_a = encrypt(&ctx, &mut rng, &pk, &encoder.encode_real(&a, ctx.params().scale(), ctx.basis_q().clone()));
        let ct_b = encrypt(&ctx, &mut rng, &pk, &encoder.encode_real(&b, ctx.params().scale(), ctx.basis_q().clone()));
        let product = ops::rescale(&ctx, &ops::multiply(&ctx, &ct_a, &ct_b, &rlk).unwrap()).unwrap();
        let decoded = encoder.decode(&decrypt(&ctx, &sk, &product));
        let expected: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| Complex::new(x * y, 0.0)).collect();
        prop_assert!(max_error(&expected, &decoded) < 2e-2);
    }

    #[test]
    fn rotation_permutes_slots_for_arbitrary_steps(steps in 1i64..32) {
        let ctx = context();
        let encoder = CkksEncoder::new(ctx.params());
        let mut rng = rand::rngs::StdRng::seed_from_u64(steps as u64);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&mut rng, &sk);
        let rot_key = keygen.rotation_key(&mut rng, &sk, steps);
        let slots = encoder.slot_count();
        let msg: Vec<f64> = (0..slots).map(|i| (i as f64 * 0.01) - 0.6).collect();
        let ct = encrypt(&ctx, &mut rng, &pk, &encoder.encode_real(&msg, ctx.params().scale(), ctx.basis_q().clone()));
        let rotated = ops::rotate(&ctx, &ct, steps, &rot_key).unwrap();
        let decoded = encoder.decode(&decrypt(&ctx, &sk, &rotated));
        let expected: Vec<Complex> = (0..slots)
            .map(|i| Complex::new(msg[(i + steps as usize) % slots], 0.0))
            .collect();
        prop_assert!(max_error(&expected, &decoded) < 1e-3);
    }
}
