//! Precomputed context shared by all CKKS operations.
//!
//! The context owns the RNS bases for `Q`, `P` and `Q ∪ P`, the per-level
//! basis-conversion tables used by hybrid key switching, and the scalar
//! constants (`P mod q_i`, `P^{-1} mod q_i`, rescaling inverses) that the
//! ModDown and rescale steps need.

use crate::params::CkksParameters;
use hemath::basis::BasisConverter;
use hemath::modulus::Modulus;
use hemath::poly::RnsBasis;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Shared, immutable CKKS context.
///
/// # Examples
///
/// ```
/// use ckks::{context::CkksContext, params::CkksParametersBuilder};
///
/// let params = CkksParametersBuilder::new()
///     .ring_degree(1 << 8)
///     .q_tower_bits(vec![45, 36, 36])
///     .p_tower_bits(vec![45])
///     .dnum(3)
///     .build()
///     .unwrap();
/// let ctx = CkksContext::new(params).unwrap();
/// assert_eq!(ctx.basis_q().tower_count(), 3);
/// assert_eq!(ctx.basis_qp().tower_count(), 4);
/// ```
#[derive(Debug)]
pub struct CkksContext {
    params: CkksParameters,
    basis_q: Arc<RnsBasis>,
    basis_p: Arc<RnsBasis>,
    basis_qp: Arc<RnsBasis>,
    /// `P mod q_i` for every `Q` tower.
    p_mod_q: Vec<u64>,
    /// `P^{-1} mod q_i` for every `Q` tower.
    p_inv_mod_q: Vec<u64>,
    /// Cache of ModUp converters keyed by `(digit, level)`.
    modup_converters: Mutex<HashMap<(usize, usize), Arc<BasisConverter>>>,
    /// Cache of ModDown converters (from `P` to the first `level+1` `Q`
    /// towers) keyed by `level`.
    moddown_converters: Mutex<HashMap<usize, Arc<BasisConverter>>>,
}

/// Errors raised while building a [`CkksContext`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContextError {
    /// One of the moduli could not support the NTT for the ring degree.
    Basis(String),
}

impl std::fmt::Display for ContextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContextError::Basis(msg) => write!(f, "failed to build RNS basis: {msg}"),
        }
    }
}

impl std::error::Error for ContextError {}

impl CkksContext {
    /// Builds the context: NTT tables for every modulus and the scalar
    /// constants used by ModDown and rescaling.
    ///
    /// # Errors
    ///
    /// Returns [`ContextError::Basis`] when a modulus cannot support the
    /// negacyclic NTT (which would indicate a bug in prime generation).
    pub fn new(params: CkksParameters) -> Result<Arc<Self>, ContextError> {
        let n = params.ring_degree();
        let to_moduli = |vals: &[u64]| -> Result<Vec<Modulus>, ContextError> {
            vals.iter()
                .map(|&q| Modulus::new(q).map_err(|e| ContextError::Basis(e.to_string())))
                .collect()
        };
        let q_moduli = to_moduli(params.q_moduli())?;
        let p_moduli = to_moduli(params.p_moduli())?;
        let basis_q = Arc::new(
            RnsBasis::new(n, q_moduli.clone()).map_err(|e| ContextError::Basis(e.to_string()))?,
        );
        let basis_p = Arc::new(
            RnsBasis::new(n, p_moduli.clone()).map_err(|e| ContextError::Basis(e.to_string()))?,
        );
        let basis_qp = Arc::new(basis_q.concat(&basis_p));

        let p_mod_q: Vec<u64> = q_moduli
            .iter()
            .map(|qi| {
                params
                    .p_moduli()
                    .iter()
                    .fold(1u64, |acc, &p| qi.mul(acc, qi.reduce(p)))
            })
            .collect();
        let p_inv_mod_q: Vec<u64> = q_moduli
            .iter()
            .zip(&p_mod_q)
            .map(|(qi, &pm)| qi.inv(pm))
            .collect();

        Ok(Arc::new(Self {
            params,
            basis_q,
            basis_p,
            basis_qp,
            p_mod_q,
            p_inv_mod_q,
            modup_converters: Mutex::new(HashMap::new()),
            moddown_converters: Mutex::new(HashMap::new()),
        }))
    }

    /// The parameter set this context was built from.
    pub fn params(&self) -> &CkksParameters {
        &self.params
    }

    /// The full `Q` basis (all `L + 1` towers).
    pub fn basis_q(&self) -> &Arc<RnsBasis> {
        &self.basis_q
    }

    /// The auxiliary `P` basis (`K` towers).
    pub fn basis_p(&self) -> &Arc<RnsBasis> {
        &self.basis_p
    }

    /// The concatenated `Q ∪ P` basis.
    pub fn basis_qp(&self) -> &Arc<RnsBasis> {
        &self.basis_qp
    }

    /// The `Q` basis truncated to `level + 1` towers.
    pub fn basis_q_at_level(&self, level: usize) -> Arc<RnsBasis> {
        assert!(level <= self.params.max_level());
        if level == self.params.max_level() {
            self.basis_q.clone()
        } else {
            let indices: Vec<usize> = (0..=level).collect();
            Arc::new(self.basis_q.subset(&indices))
        }
    }

    /// The extended basis at a level: the first `level + 1` towers of `Q`
    /// followed by all `P` towers.
    pub fn basis_qp_at_level(&self, level: usize) -> Arc<RnsBasis> {
        if level == self.params.max_level() {
            self.basis_qp.clone()
        } else {
            Arc::new(self.basis_q_at_level(level).concat(&self.basis_p))
        }
    }

    /// `P mod q_i` for each `Q` tower.
    pub fn p_mod_q(&self) -> &[u64] {
        &self.p_mod_q
    }

    /// `P^{-1} mod q_i` for each `Q` tower.
    pub fn p_inv_mod_q(&self) -> &[u64] {
        &self.p_inv_mod_q
    }

    /// The ModUp basis converter for digit `j` at ciphertext level `level`:
    /// converts the digit's towers into *all other* live `Q` towers plus the
    /// `P` towers.
    ///
    /// The converter is built lazily and cached; repeated key switches reuse
    /// the tables.
    ///
    /// # Panics
    ///
    /// Panics if the digit is empty at this level.
    pub fn modup_converter(&self, digit: usize, level: usize) -> Arc<BasisConverter> {
        let key = (digit, level);
        if let Some(c) = self.modup_converters.lock().unwrap().get(&key) {
            return c.clone();
        }
        let range = self.params.digit_towers(digit, level);
        assert!(!range.is_empty(), "digit {digit} is empty at level {level}");
        let digit_indices: Vec<usize> = range.clone().collect();
        let complement: Vec<usize> = (0..=level).filter(|i| !range.contains(i)).collect();
        let source = Arc::new(self.basis_q.subset(&digit_indices));
        let target_q = self.basis_q.subset(&complement);
        let target = Arc::new(target_q.concat(&self.basis_p));
        let converter = Arc::new(BasisConverter::new(source, target));
        self.modup_converters
            .lock()
            .unwrap()
            .insert(key, converter.clone());
        converter
    }

    /// The ModDown basis converter at ciphertext level `level`: converts the
    /// `P` towers into the first `level + 1` `Q` towers.
    pub fn moddown_converter(&self, level: usize) -> Arc<BasisConverter> {
        if let Some(c) = self.moddown_converters.lock().unwrap().get(&level) {
            return c.clone();
        }
        let source = self.basis_p.clone();
        let target = self.basis_q_at_level(level);
        let converter = Arc::new(BasisConverter::new(source, target));
        self.moddown_converters
            .lock()
            .unwrap()
            .insert(level, converter.clone());
        converter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParametersBuilder;

    fn ctx() -> Arc<CkksContext> {
        let params = CkksParametersBuilder::new()
            .ring_degree(1 << 8)
            .q_tower_bits(vec![45, 36, 36, 36, 36, 36])
            .p_tower_bits(vec![45, 45])
            .dnum(3)
            .scale_bits(36)
            .build()
            .unwrap();
        CkksContext::new(params).unwrap()
    }

    #[test]
    fn bases_have_expected_sizes() {
        let c = ctx();
        assert_eq!(c.basis_q().tower_count(), 6);
        assert_eq!(c.basis_p().tower_count(), 2);
        assert_eq!(c.basis_qp().tower_count(), 8);
        assert_eq!(c.basis_q_at_level(2).tower_count(), 3);
        assert_eq!(c.basis_qp_at_level(2).tower_count(), 5);
    }

    #[test]
    fn p_constants_are_consistent() {
        let c = ctx();
        for (i, qi) in c.basis_q().moduli().iter().enumerate() {
            let prod = c.p_mod_q()[i];
            let inv = c.p_inv_mod_q()[i];
            assert_eq!(qi.mul(prod, inv), 1);
        }
    }

    #[test]
    fn modup_converter_shapes() {
        let c = ctx();
        let level = c.params().max_level();
        for digit in 0..c.params().dnum() {
            let conv = c.modup_converter(digit, level);
            let alpha = c.params().digit_towers(digit, level).len();
            assert_eq!(conv.source().tower_count(), alpha);
            // target = (level+1 - alpha) live Q towers + K P towers = beta
            assert_eq!(
                conv.target().tower_count(),
                level + 1 - alpha + c.params().aux_tower_count()
            );
        }
    }

    #[test]
    fn converters_are_cached() {
        let c = ctx();
        let a = c.modup_converter(0, c.params().max_level());
        let b = c.modup_converter(0, c.params().max_level());
        assert!(Arc::ptr_eq(&a, &b));
        let d1 = c.moddown_converter(3);
        let d2 = c.moddown_converter(3);
        assert!(Arc::ptr_eq(&d1, &d2));
    }

    #[test]
    fn moddown_converter_targets_live_towers() {
        let c = ctx();
        let conv = c.moddown_converter(2);
        assert_eq!(conv.source().tower_count(), 2);
        assert_eq!(conv.target().tower_count(), 3);
    }
}
