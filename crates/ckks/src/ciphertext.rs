//! Ciphertext and related value types.

use hemath::poly::RnsPolynomial;

/// A CKKS ciphertext: a pair of polynomials over the live `Q` towers,
/// together with the encoding scale and current level.
///
/// The ciphertext decrypts as `c0 + c1·s ≈ Δ·m (mod Q_ℓ)`.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    /// The `b`-like component (contains the message).
    pub c0: RnsPolynomial,
    /// The `a`-like component.
    pub c1: RnsPolynomial,
    /// Current encoding scale.
    pub scale: f64,
    /// Current multiplicative level `ℓ` (the ciphertext has `ℓ + 1` towers).
    pub level: usize,
}

impl Ciphertext {
    /// Number of live towers (`ℓ + 1`).
    pub fn tower_count(&self) -> usize {
        self.c0.tower_count()
    }

    /// Ring degree `N`.
    pub fn ring_degree(&self) -> usize {
        self.c0.degree()
    }

    /// Total size in bytes of the two polynomials at 8 bytes per residue,
    /// the unit used throughout the CiFlow memory model.
    pub fn byte_size(&self) -> u64 {
        self.c0.byte_size() + self.c1.byte_size()
    }
}

/// The three-component ciphertext produced by a homomorphic multiplication
/// before relinearization. The `d2` component is encrypted under `s^2` and is
/// the input to hybrid key switching.
#[derive(Debug, Clone)]
pub struct TripleCiphertext {
    /// Constant component.
    pub d0: RnsPolynomial,
    /// `s` component.
    pub d1: RnsPolynomial,
    /// `s^2` component (to be key-switched).
    pub d2: RnsPolynomial,
    /// Scale of the product (product of the operand scales).
    pub scale: f64,
    /// Level of the product.
    pub level: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemath::modulus::Modulus;
    use hemath::poly::{Representation, RnsBasis};
    use hemath::primes::generate_ntt_primes;
    use std::sync::Arc;

    #[test]
    fn byte_size_counts_both_components() {
        let n = 64;
        let primes = generate_ntt_primes(40, n, 3, &[]).unwrap();
        let moduli = primes
            .into_iter()
            .map(|q| Modulus::new(q).unwrap())
            .collect();
        let basis = Arc::new(RnsBasis::new(n, moduli).unwrap());
        let ct = Ciphertext {
            c0: RnsPolynomial::zero(basis.clone(), Representation::Evaluation),
            c1: RnsPolynomial::zero(basis, Representation::Evaluation),
            scale: 2f64.powi(40),
            level: 2,
        };
        assert_eq!(ct.tower_count(), 3);
        assert_eq!(ct.ring_degree(), 64);
        assert_eq!(ct.byte_size(), 2 * 64 * 3 * 8);
    }
}
