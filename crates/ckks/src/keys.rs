//! Key material: secret, public, and evaluation (key-switching) keys.
//!
//! Evaluation keys follow the hybrid key-switching construction: for each of
//! the `dnum` digits the key holds a ring-LWE encryption of `P·s'` masked to
//! the towers of that digit, over the extended modulus `Q·P`. Relinearization
//! uses `s' = s²`; rotation keys use `s' = σ_g(s)`.

use crate::context::CkksContext;
use crate::galois::{apply_galois, rotation_galois_element};
use hemath::poly::{Representation, RnsPolynomial};
use hemath::sampler::{sample_error, sample_ternary, sample_uniform};
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// The secret key `s`, stored in the coefficient domain over the full `Q·P`
/// basis so that Galois automorphisms can be applied directly.
#[derive(Debug, Clone)]
pub struct SecretKey {
    s_coeff: RnsPolynomial,
}

impl SecretKey {
    /// The secret in the coefficient domain over `Q·P`.
    pub fn coefficient_form(&self) -> &RnsPolynomial {
        &self.s_coeff
    }

    /// The secret in the evaluation domain, restricted to the first
    /// `level + 1` `Q` towers.
    pub fn evaluation_form_q(&self, ctx: &CkksContext, level: usize) -> RnsPolynomial {
        let towers: Vec<Vec<u64>> = (0..=level)
            .map(|i| self.s_coeff.tower(i).to_vec())
            .collect();
        let mut p = RnsPolynomial::from_towers(
            ctx.basis_q_at_level(level),
            towers,
            Representation::Coefficient,
        );
        p.to_evaluation();
        p
    }

    /// The secret in the evaluation domain over the full `Q·P` basis.
    pub fn evaluation_form_qp(&self) -> RnsPolynomial {
        let mut p = self.s_coeff.clone();
        p.to_evaluation();
        p
    }
}

/// The public encryption key `(b, a)` with `b = -a·s + e` over `Q`.
#[derive(Debug, Clone)]
pub struct PublicKey {
    /// `b = -a·s + e`, evaluation domain over `Q`.
    pub b: RnsPolynomial,
    /// Uniform `a`, evaluation domain over `Q`.
    pub a: RnsPolynomial,
}

/// What a key-switching key re-encrypts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvaluationKeyKind {
    /// Relinearization: switches from `s²` to `s`.
    Relinearization,
    /// Rotation by the contained number of slots (switches from `σ_g(s)`).
    Rotation(i64),
    /// Slot conjugation.
    Conjugation,
}

/// A hybrid key-switching key: one `(b_j, a_j)` pair per digit over `Q·P`.
#[derive(Debug, Clone)]
pub struct EvaluationKey {
    kind: EvaluationKeyKind,
    digits: Vec<(RnsPolynomial, RnsPolynomial)>,
}

impl EvaluationKey {
    /// What this key switches from.
    pub fn kind(&self) -> EvaluationKeyKind {
        self.kind
    }

    /// Number of digits (`dnum`).
    pub fn digit_count(&self) -> usize {
        self.digits.len()
    }

    /// The `(b_j, a_j)` pair for digit `j` over the full `Q·P` basis.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn digit(&self, j: usize) -> (&RnsPolynomial, &RnsPolynomial) {
        let (b, a) = &self.digits[j];
        (b, a)
    }

    /// The `(b_j, a_j)` pair restricted to the live `Q` towers of `level`
    /// followed by all `P` towers, i.e. the extended basis at that level.
    pub fn digit_at_level(
        &self,
        ctx: &CkksContext,
        j: usize,
        level: usize,
    ) -> (RnsPolynomial, RnsPolynomial) {
        let restrict = |poly: &RnsPolynomial| -> RnsPolynomial {
            let max_level = ctx.params().max_level();
            if level == max_level {
                return poly.clone();
            }
            let k = ctx.params().aux_tower_count();
            let total = max_level + 1 + k;
            let mut towers: Vec<Vec<u64>> = Vec::with_capacity(level + 1 + k);
            for i in 0..=level {
                towers.push(poly.tower(i).to_vec());
            }
            for i in total - k..total {
                towers.push(poly.tower(i).to_vec());
            }
            RnsPolynomial::from_towers(
                ctx.basis_qp_at_level(level),
                towers,
                Representation::Evaluation,
            )
        };
        let (b, a) = &self.digits[j];
        (restrict(b), restrict(a))
    }

    /// Size of the key in bytes (`dnum × 2 × N × (L + 1 + K) × 8`), the
    /// quantity reported in Table III of the paper.
    pub fn byte_size(&self) -> u64 {
        self.digits
            .iter()
            .map(|(b, a)| b.byte_size() + a.byte_size())
            .sum()
    }
}

/// Generates secret, public, and evaluation keys for a context.
#[derive(Debug)]
pub struct KeyGenerator {
    ctx: Arc<CkksContext>,
}

impl KeyGenerator {
    /// Creates a key generator for the given context.
    pub fn new(ctx: Arc<CkksContext>) -> Self {
        Self { ctx }
    }

    /// Samples a fresh ternary secret key.
    pub fn secret_key<R: Rng + ?Sized>(&self, rng: &mut R) -> SecretKey {
        let s_coeff = sample_ternary(
            rng,
            self.ctx.basis_qp().clone(),
            self.ctx.params().secret_hamming_weight(),
        );
        SecretKey { s_coeff }
    }

    /// Derives the public key from a secret key.
    pub fn public_key<R: Rng + ?Sized>(&self, rng: &mut R, sk: &SecretKey) -> PublicKey {
        let level = self.ctx.params().max_level();
        let s = sk.evaluation_form_q(&self.ctx, level);
        let a = sample_uniform(rng, self.ctx.basis_q().clone(), Representation::Evaluation);
        let mut e = sample_error(
            rng,
            self.ctx.basis_q().clone(),
            self.ctx.params().error_eta(),
        );
        e.to_evaluation();
        // b = -a*s + e
        let mut b = a.mul(&s).expect("same basis");
        b.negate();
        b.add_assign(&e).expect("same basis");
        PublicKey { b, a }
    }

    /// Generates the relinearization key (switches `s² → s`).
    pub fn relinearization_key<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sk: &SecretKey,
    ) -> EvaluationKey {
        let s_qp = sk.evaluation_form_qp();
        let s_squared = s_qp.mul(&s_qp).expect("same basis");
        self.key_switching_key(rng, sk, &s_squared, EvaluationKeyKind::Relinearization)
    }

    /// Generates a rotation key for a left rotation by `steps` slots.
    pub fn rotation_key<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sk: &SecretKey,
        steps: i64,
    ) -> EvaluationKey {
        let g = rotation_galois_element(steps, self.ctx.params().ring_degree());
        let mut rotated = apply_galois(sk.coefficient_form(), g);
        rotated.to_evaluation();
        self.key_switching_key(rng, sk, &rotated, EvaluationKeyKind::Rotation(steps))
    }

    /// Generates rotation keys for a set of steps, keyed by step count.
    pub fn rotation_keys<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sk: &SecretKey,
        steps: &[i64],
    ) -> HashMap<i64, EvaluationKey> {
        steps
            .iter()
            .map(|&s| (s, self.rotation_key(rng, sk, s)))
            .collect()
    }

    /// The generic hybrid key-switching key from `s_prime` to `s`.
    ///
    /// For each digit `j`, the key is
    /// `(b_j, a_j) = (-a_j·s + e_j + P·1_j·s', a_j)` over `Q·P`, where `1_j`
    /// is the indicator of digit `j`'s towers (so the added term is `P·s'` on
    /// the digit's towers and zero elsewhere).
    pub fn key_switching_key<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sk: &SecretKey,
        s_prime: &RnsPolynomial,
        kind: EvaluationKeyKind,
    ) -> EvaluationKey {
        assert_eq!(s_prime.representation(), Representation::Evaluation);
        assert!(s_prime.basis().same_basis(self.ctx.basis_qp()));
        let params = self.ctx.params();
        let s = sk.evaluation_form_qp();
        let max_level = params.max_level();
        let q_towers = max_level + 1;
        let k = params.aux_tower_count();
        let mut digits = Vec::with_capacity(params.dnum());
        for j in 0..params.dnum() {
            let range = params.digit_towers(j, max_level);
            let a_j = sample_uniform(rng, self.ctx.basis_qp().clone(), Representation::Evaluation);
            let mut e_j = sample_error(rng, self.ctx.basis_qp().clone(), params.error_eta());
            e_j.to_evaluation();
            // b_j = -a_j*s + e_j + factor_j ⊙ s'
            let mut b_j = a_j.mul(&s).expect("same basis");
            b_j.negate();
            b_j.add_assign(&e_j).expect("same basis");
            // factor per tower: P mod q_i on the digit's towers, 0 elsewhere.
            let mut factors = vec![0u64; q_towers + k];
            for i in range {
                factors[i] = self.ctx.p_mod_q()[i];
            }
            let mut masked = s_prime.clone();
            masked.scale_per_tower(&factors);
            b_j.add_assign(&masked).expect("same basis");
            digits.push((b_j, a_j));
        }
        EvaluationKey { kind, digits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParametersBuilder;
    use rand::SeedableRng;

    fn ctx() -> Arc<CkksContext> {
        let params = CkksParametersBuilder::new()
            .ring_degree(1 << 8)
            .q_tower_bits(vec![45, 36, 36, 36])
            .p_tower_bits(vec![45, 45])
            .dnum(2)
            .scale_bits(36)
            .build()
            .unwrap();
        CkksContext::new(params).unwrap()
    }

    #[test]
    fn secret_key_is_ternary_over_qp() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sk = KeyGenerator::new(c.clone()).secret_key(&mut rng);
        let s = sk.coefficient_form();
        assert_eq!(s.tower_count(), c.basis_qp().tower_count());
        for (m, tower) in s.iter() {
            for &x in tower {
                assert!(x == 0 || x == 1 || x == m.value() - 1);
            }
        }
    }

    #[test]
    fn public_key_decrypts_to_small_error() {
        // b + a*s = e must be small.
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let keygen = KeyGenerator::new(c.clone());
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&mut rng, &sk);
        let s = sk.evaluation_form_q(&c, c.params().max_level());
        let mut noise = pk.b.add(&pk.a.mul(&s).unwrap()).unwrap();
        noise.to_coefficient();
        let eta = c.params().error_eta() as u64;
        for (m, tower) in noise.iter() {
            for &x in tower {
                let centered = if x > m.value() / 2 { m.value() - x } else { x };
                assert!(centered <= eta, "public key noise too large: {centered}");
            }
        }
    }

    #[test]
    fn evaluation_key_has_expected_shape_and_size() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let keygen = KeyGenerator::new(c.clone());
        let sk = keygen.secret_key(&mut rng);
        let rlk = keygen.relinearization_key(&mut rng, &sk);
        assert_eq!(rlk.kind(), EvaluationKeyKind::Relinearization);
        assert_eq!(rlk.digit_count(), 2);
        let n = c.params().ring_degree() as u64;
        let towers = (c.params().max_level() + 1 + c.params().aux_tower_count()) as u64;
        assert_eq!(rlk.byte_size(), 2 * 2 * n * towers * 8);
    }

    #[test]
    fn evaluation_key_digit_identity_holds() {
        // For each digit: b_j + a_j*s - P*1_j*s' must equal the small error e_j.
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let keygen = KeyGenerator::new(c.clone());
        let sk = keygen.secret_key(&mut rng);
        let s_qp = sk.evaluation_form_qp();
        let s_sq = s_qp.mul(&s_qp).unwrap();
        let rlk =
            keygen.key_switching_key(&mut rng, &sk, &s_sq, EvaluationKeyKind::Relinearization);
        let max_level = c.params().max_level();
        for j in 0..rlk.digit_count() {
            let (b, a) = rlk.digit(j);
            let mut lhs = b.add(&a.mul(&s_qp).unwrap()).unwrap();
            // subtract P*1_j*s'
            let mut factors = vec![0u64; c.basis_qp().tower_count()];
            for i in c.params().digit_towers(j, max_level) {
                factors[i] = c.p_mod_q()[i];
            }
            let mut masked = s_sq.clone();
            masked.scale_per_tower(&factors);
            lhs = lhs.sub(&masked).unwrap();
            lhs.to_coefficient();
            let eta = c.params().error_eta() as u64;
            for (m, tower) in lhs.iter() {
                for &x in tower {
                    let centered = if x > m.value() / 2 { m.value() - x } else { x };
                    assert!(centered <= eta, "digit {j} residual too large: {centered}");
                }
            }
        }
    }

    #[test]
    fn digit_restriction_to_level_keeps_prefix_and_aux_towers() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let keygen = KeyGenerator::new(c.clone());
        let sk = keygen.secret_key(&mut rng);
        let rlk = keygen.relinearization_key(&mut rng, &sk);
        let level = 1;
        let (b_full, _) = rlk.digit(0);
        let (b_restricted, _) = rlk.digit_at_level(&c, 0, level);
        assert_eq!(
            b_restricted.tower_count(),
            level + 1 + c.params().aux_tower_count()
        );
        assert_eq!(b_restricted.tower(0), b_full.tower(0));
        assert_eq!(b_restricted.tower(1), b_full.tower(1));
        // The last towers must be the P towers of the full key.
        let full_towers = b_full.tower_count();
        assert_eq!(
            b_restricted.tower(level + 1),
            b_full.tower(full_towers - c.params().aux_tower_count())
        );
    }

    #[test]
    fn rotation_keys_generated_per_step() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let keygen = KeyGenerator::new(c.clone());
        let sk = keygen.secret_key(&mut rng);
        let keys = keygen.rotation_keys(&mut rng, &sk, &[1, 2, 4]);
        assert_eq!(keys.len(), 3);
        assert_eq!(keys[&2].kind(), EvaluationKeyKind::Rotation(2));
    }
}
