//! CKKS encoding and decoding via the canonical embedding.
//!
//! A complex message vector of length `n ≤ N/2` is mapped to a real
//! polynomial of degree `< N` whose evaluations at the primitive `2N`-th
//! roots of unity (indexed by powers of 5, the "rotation group") equal the
//! message. Scaling by `Δ` and rounding gives the integer plaintext
//! polynomial; decoding reverses the process.
//!
//! The slot ordering follows HEAAN/SEAL conventions, so a Galois automorphism
//! `X ↦ X^{5^r}` rotates the message slots left by `r`.

use crate::params::CkksParameters;
use hemath::bigint::UBig;
use hemath::poly::{RnsBasis, RnsPolynomial};
use std::sync::Arc;

/// A complex number; kept minimal to avoid external dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from its real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real complex number.
    pub fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Complex multiplication.
    #[allow(clippy::should_implement_trait)] // compat: kept alongside the std op impls
    pub fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    /// Complex addition.
    #[allow(clippy::should_implement_trait)] // compat: kept alongside the std op impls
    pub fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    /// Complex subtraction.
    #[allow(clippy::should_implement_trait)] // compat: kept alongside the std op impls
    pub fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude of the difference to another complex number.
    pub fn distance(self, other: Complex) -> f64 {
        let d = self.sub(other);
        (d.re * d.re + d.im * d.im).sqrt()
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, other: Complex) -> Complex {
        Complex::add(self, other)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, other: Complex) -> Complex {
        Complex::sub(self, other)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, other: Complex) -> Complex {
        Complex::mul(self, other)
    }
}

/// Encoder/decoder for a fixed parameter set.
#[derive(Debug, Clone)]
pub struct CkksEncoder {
    ring_degree: usize,
    slots: usize,
    /// `exp(i·π·k/N)` for `k` in `0..2N` (the `2N`-th roots of unity).
    roots: Vec<Complex>,
    /// Rotation group: `5^j mod 2N` for `j` in `0..N/2`.
    rot_group: Vec<usize>,
}

/// A plaintext: an RNS polynomial together with its encoding scale.
#[derive(Debug, Clone)]
pub struct Plaintext {
    /// The encoded polynomial (coefficient or evaluation domain).
    pub poly: RnsPolynomial,
    /// The scale `Δ` the message was multiplied by.
    pub scale: f64,
}

impl CkksEncoder {
    /// Builds an encoder for the given parameters (uses the full `N/2` slot
    /// count).
    pub fn new(params: &CkksParameters) -> Self {
        let n = params.ring_degree();
        let m = 2 * n;
        let roots = (0..m)
            .map(|k| {
                let angle = 2.0 * std::f64::consts::PI * (k as f64) / (m as f64);
                Complex::new(angle.cos(), angle.sin())
            })
            .collect();
        let mut rot_group = Vec::with_capacity(n / 2);
        let mut five_pow = 1usize;
        for _ in 0..n / 2 {
            rot_group.push(five_pow);
            five_pow = (five_pow * 5) % m;
        }
        Self {
            ring_degree: n,
            slots: n / 2,
            roots,
            rot_group,
        }
    }

    /// Number of message slots (`N/2`).
    pub fn slot_count(&self) -> usize {
        self.slots
    }

    /// The HEAAN-style "special" forward FFT used during decoding: maps
    /// coefficient-side values to slot values.
    fn fft_special(&self, vals: &mut [Complex]) {
        let size = vals.len();
        let m = 2 * self.ring_degree;
        // Bit-reverse permutation.
        let bits = size.trailing_zeros();
        for i in 0..size {
            let j = i.reverse_bits() >> (usize::BITS - bits);
            if i < j {
                vals.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= size {
            let lenh = len >> 1;
            let lenq = len << 2;
            for i in (0..size).step_by(len) {
                for j in 0..lenh {
                    let idx = (self.rot_group[j] % lenq) * (m / lenq);
                    let u = vals[i + j];
                    let v = vals[i + j + lenh].mul(self.roots[idx]);
                    vals[i + j] = u.add(v);
                    vals[i + j + lenh] = u.sub(v);
                }
            }
            len <<= 1;
        }
    }

    /// The inverse special FFT used during encoding: maps slot values to
    /// coefficient-side values.
    fn fft_special_inv(&self, vals: &mut [Complex]) {
        let size = vals.len();
        let m = 2 * self.ring_degree;
        let mut len = size;
        while len >= 1 {
            if len == 1 {
                break;
            }
            let lenh = len >> 1;
            let lenq = len << 2;
            for i in (0..size).step_by(len) {
                for j in 0..lenh {
                    let idx = (lenq - (self.rot_group[j] % lenq)) * (m / lenq);
                    let u = vals[i + j].add(vals[i + j + lenh]);
                    let v = vals[i + j].sub(vals[i + j + lenh]).mul(self.roots[idx]);
                    vals[i + j] = u;
                    vals[i + j + lenh] = v;
                }
            }
            len >>= 1;
        }
        // Bit-reverse permutation.
        let bits = size.trailing_zeros();
        for i in 0..size {
            let j = i.reverse_bits() >> (usize::BITS - bits);
            if i < j {
                vals.swap(i, j);
            }
        }
        let scale = 1.0 / size as f64;
        for v in vals.iter_mut() {
            v.re *= scale;
            v.im *= scale;
        }
    }

    /// Encodes a complex message (length at most `N/2`, padded with zeros)
    /// into a plaintext over `basis` at the given scale.
    ///
    /// # Panics
    ///
    /// Panics if the message is longer than the slot count.
    pub fn encode(&self, message: &[Complex], scale: f64, basis: Arc<RnsBasis>) -> Plaintext {
        assert!(
            message.len() <= self.slots,
            "message length {} exceeds slot count {}",
            message.len(),
            self.slots
        );
        let mut slots = vec![Complex::default(); self.slots];
        slots[..message.len()].copy_from_slice(message);
        self.fft_special_inv(&mut slots);
        let n = self.ring_degree;
        let nh = n / 2;
        // Real parts go to coefficients [0, N/2), imaginary parts to [N/2, N).
        let mut coeffs = vec![0i64; n];
        for (i, s) in slots.iter().enumerate() {
            coeffs[i] = (s.re * scale).round() as i64;
            coeffs[i + nh] = (s.im * scale).round() as i64;
        }
        let poly = RnsPolynomial::from_signed_coefficients(basis, &coeffs);
        Plaintext { poly, scale }
    }

    /// Encodes a real-valued message.
    pub fn encode_real(&self, message: &[f64], scale: f64, basis: Arc<RnsBasis>) -> Plaintext {
        let complex: Vec<Complex> = message.iter().map(|&x| Complex::real(x)).collect();
        self.encode(&complex, scale, basis)
    }

    /// Decodes a plaintext back into complex slot values.
    ///
    /// The plaintext polynomial may be in either representation; decoding
    /// internally works on a coefficient-domain copy and reconstructs the
    /// centred value of each coefficient exactly via the CRT before dividing
    /// by the scale.
    pub fn decode(&self, plaintext: &Plaintext) -> Vec<Complex> {
        let mut poly = plaintext.poly.clone();
        poly.to_coefficient();
        let n = self.ring_degree;
        let nh = n / 2;
        let moduli = poly.basis().moduli().to_vec();
        let q_product = UBig::product(
            &moduli
                .iter()
                .map(hemath::Modulus::value)
                .collect::<Vec<_>>(),
        );
        let half_q = {
            let (half, _) = q_product.div_rem(&UBig::from_u64(2));
            half
        };
        // Exact centred reconstruction of each coefficient.
        let signed_coeff = |idx: usize| -> f64 {
            // CRT-reconstruct via Garner into the product basis using UBig.
            let mut value = UBig::zero();
            let mut radix = UBig::one();
            // Garner digits
            let mut digits = vec![0u64; moduli.len()];
            for i in 0..moduli.len() {
                let qi = &moduli[i];
                let mut acc = 0u64;
                let mut r = 1u64;
                for k in 0..i {
                    acc = qi.add(acc, qi.mul(qi.reduce(digits[k]), r));
                    r = qi.mul(r, qi.reduce(moduli[k].value()));
                }
                let t = qi.sub(poly.tower(i)[idx], acc);
                digits[i] = qi.mul(t, qi.inv(r));
            }
            for (i, &d) in digits.iter().enumerate() {
                value = value.add(&radix.mul_u64(d));
                radix = radix.mul_u64(moduli[i].value());
            }
            if value > half_q {
                -(q_product.sub(&value).to_f64())
            } else {
                value.to_f64()
            }
        };
        let mut slots = vec![Complex::default(); self.slots];
        for i in 0..self.slots.min(nh) {
            slots[i] = Complex::new(
                signed_coeff(i) / plaintext.scale,
                signed_coeff(i + nh) / plaintext.scale,
            );
        }
        self.fft_special(&mut slots);
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParametersBuilder;
    use hemath::modulus::Modulus;

    fn setup() -> (CkksParameters, CkksEncoder, Arc<RnsBasis>) {
        let params = CkksParametersBuilder::new()
            .ring_degree(1 << 8)
            .q_tower_bits(vec![50, 40, 40])
            .p_tower_bits(vec![50])
            .dnum(3)
            .scale_bits(40)
            .build()
            .unwrap();
        let encoder = CkksEncoder::new(&params);
        let moduli = params
            .q_moduli()
            .iter()
            .map(|&q| Modulus::new(q).unwrap())
            .collect();
        let basis = Arc::new(RnsBasis::new(params.ring_degree(), moduli).unwrap());
        (params, encoder, basis)
    }

    #[test]
    fn encode_decode_round_trip_real() {
        let (params, encoder, basis) = setup();
        let message: Vec<f64> = (0..encoder.slot_count())
            .map(|i| (i as f64 * 0.37).sin() * 3.0)
            .collect();
        let pt = encoder.encode_real(&message, params.scale(), basis);
        let decoded = encoder.decode(&pt);
        for (i, &m) in message.iter().enumerate() {
            assert!(
                (decoded[i].re - m).abs() < 1e-6,
                "slot {i}: {} vs {m}",
                decoded[i].re
            );
            assert!(decoded[i].im.abs() < 1e-6);
        }
    }

    #[test]
    fn encode_decode_round_trip_complex() {
        let (params, encoder, basis) = setup();
        let message: Vec<Complex> = (0..encoder.slot_count())
            .map(|i| Complex::new((i as f64).cos(), (i as f64 * 0.5).sin()))
            .collect();
        let pt = encoder.encode(&message, params.scale(), basis);
        let decoded = encoder.decode(&pt);
        for (i, m) in message.iter().enumerate() {
            assert!(decoded[i].distance(*m) < 1e-6, "slot {i}");
        }
    }

    #[test]
    fn short_messages_are_zero_padded() {
        let (params, encoder, basis) = setup();
        let message = vec![1.5, -2.5, 3.25];
        let pt = encoder.encode_real(&message, params.scale(), basis);
        let decoded = encoder.decode(&pt);
        assert!((decoded[0].re - 1.5).abs() < 1e-6);
        assert!((decoded[1].re + 2.5).abs() < 1e-6);
        assert!((decoded[2].re - 3.25).abs() < 1e-6);
        for slot in decoded.iter().skip(3) {
            assert!(slot.distance(Complex::default()) < 1e-6);
        }
    }

    #[test]
    fn plaintext_addition_is_slotwise() {
        // Encoding is linear: encode(a) + encode(b) decodes to a + b.
        let (params, encoder, basis) = setup();
        let a: Vec<f64> = (0..encoder.slot_count()).map(|i| i as f64 * 0.01).collect();
        let b: Vec<f64> = (0..encoder.slot_count())
            .map(|i| 1.0 - i as f64 * 0.02)
            .collect();
        let pa = encoder.encode_real(&a, params.scale(), basis.clone());
        let pb = encoder.encode_real(&b, params.scale(), basis);
        let sum_poly = pa.poly.add(&pb.poly).unwrap();
        let decoded = encoder.decode(&Plaintext {
            poly: sum_poly,
            scale: params.scale(),
        });
        for i in 0..encoder.slot_count() {
            assert!((decoded[i].re - (a[i] + b[i])).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds slot count")]
    fn oversized_message_panics() {
        let (params, encoder, basis) = setup();
        let message = vec![1.0; encoder.slot_count() + 1];
        let _ = encoder.encode_real(&message, params.scale(), basis);
    }
}
