//! Galois automorphisms of the cyclotomic ring.
//!
//! The automorphism `σ_g : X ↦ X^g` (for odd `g` coprime to `2N`) permutes the
//! CKKS message slots. With the power-of-five slot ordering used by the
//! encoder, `g = 5^r mod 2N` rotates the slots left by `r`, and `g = 2N - 1`
//! conjugates them. Rotations change the key from `s` to `σ_g(s)`, which is
//! why every homomorphic rotation is followed by a key switch.

use hemath::poly::{Representation, RnsPolynomial};

/// Returns the Galois element `5^steps mod 2N` that rotates the message slots
/// left by `steps` positions (negative steps rotate right).
pub fn rotation_galois_element(steps: i64, ring_degree: usize) -> u64 {
    let m = 2 * ring_degree as u64;
    let slots = ring_degree as i64 / 2;
    let steps = steps.rem_euclid(slots) as u64;
    let mut g = 1u64;
    for _ in 0..steps {
        g = (g * 5) % m;
    }
    g
}

/// The Galois element that conjugates the slots (`2N - 1`).
pub fn conjugation_galois_element(ring_degree: usize) -> u64 {
    2 * ring_degree as u64 - 1
}

/// Applies the automorphism `X ↦ X^g` to a coefficient-domain polynomial.
///
/// # Panics
///
/// Panics if the polynomial is in the evaluation domain (apply the
/// automorphism before the NTT, or convert first), or if `g` is even.
pub fn apply_galois(poly: &RnsPolynomial, galois_element: u64) -> RnsPolynomial {
    assert_eq!(
        poly.representation(),
        Representation::Coefficient,
        "galois automorphism expects the coefficient domain"
    );
    assert!(galois_element % 2 == 1, "galois element must be odd");
    let n = poly.degree();
    let m = 2 * n as u64;
    let g = galois_element % m;
    let mut out = RnsPolynomial::zero(poly.basis().clone(), Representation::Coefficient);
    for t in 0..poly.tower_count() {
        let modulus = poly.basis().moduli()[t];
        let src = poly.tower(t);
        let dst = out.tower_mut(t);
        for (i, &coeff) in src.iter().enumerate() {
            let target = (i as u64 * g) % m;
            if target < n as u64 {
                dst[target as usize] = modulus.add(dst[target as usize], coeff);
            } else {
                let idx = (target - n as u64) as usize;
                dst[idx] = modulus.sub(dst[idx], coeff);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemath::modulus::Modulus;
    use hemath::poly::RnsBasis;
    use hemath::primes::generate_ntt_primes;
    use std::sync::Arc;

    fn basis(n: usize, towers: usize) -> Arc<RnsBasis> {
        let primes = generate_ntt_primes(40, n, towers, &[]).unwrap();
        let moduli = primes
            .into_iter()
            .map(|q| Modulus::new(q).unwrap())
            .collect();
        Arc::new(RnsBasis::new(n, moduli).unwrap())
    }

    #[test]
    fn galois_element_of_zero_steps_is_identity() {
        assert_eq!(rotation_galois_element(0, 1 << 10), 1);
    }

    #[test]
    fn galois_elements_are_odd_and_periodic() {
        let n = 1usize << 8;
        let slots = n as i64 / 2;
        for steps in [1i64, 2, 5, -1, -3] {
            let g = rotation_galois_element(steps, n);
            assert_eq!(g % 2, 1);
            assert_eq!(g, rotation_galois_element(steps + slots, n));
        }
        assert_eq!(conjugation_galois_element(n), 2 * n as u64 - 1);
    }

    #[test]
    fn identity_automorphism_preserves_polynomial() {
        let b = basis(64, 2);
        let mut p = RnsPolynomial::zero(b, Representation::Coefficient);
        p.tower_mut(0)[3] = 17;
        p.tower_mut(1)[60] = 23;
        let q = apply_galois(&p, 1);
        assert_eq!(p, q);
    }

    #[test]
    fn automorphism_composition_matches_product_of_elements() {
        let n = 64;
        let b = basis(n, 2);
        let mut p = RnsPolynomial::zero(b, Representation::Coefficient);
        for i in 0..n {
            p.tower_mut(0)[i] = (i as u64 * 7 + 1) % 97;
            p.tower_mut(1)[i] = (i as u64 * 13 + 5) % 89;
        }
        let g1 = 5u64;
        let g2 = 25u64;
        let once = apply_galois(&apply_galois(&p, g1), g1);
        let twice = apply_galois(&p, g2);
        assert_eq!(once, twice);
    }

    #[test]
    fn automorphism_maps_monomials_with_sign() {
        // X^1 under X -> X^g becomes X^g, and wraps negatively past X^N.
        let n = 16;
        let b = basis(n, 1);
        let q = b.moduli()[0];
        let mut p = RnsPolynomial::zero(b.clone(), Representation::Coefficient);
        p.tower_mut(0)[1] = 1;
        // g = 2N-1: X -> X^{2N-1} = X^{-1} = -X^{N-1}
        let conj = apply_galois(&p, 2 * n as u64 - 1);
        let mut expected = RnsPolynomial::zero(b, Representation::Coefficient);
        expected.tower_mut(0)[n - 1] = q.neg(1);
        assert_eq!(conj, expected);
    }

    #[test]
    #[should_panic(expected = "coefficient domain")]
    fn evaluation_domain_rejected() {
        let b = basis(16, 1);
        let mut p = RnsPolynomial::zero(b, Representation::Coefficient);
        p.to_evaluation();
        let _ = apply_galois(&p, 5);
    }
}
