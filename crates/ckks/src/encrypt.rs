//! Encryption and decryption.

use crate::ciphertext::Ciphertext;
use crate::context::CkksContext;
use crate::encoding::Plaintext;
use crate::keys::{PublicKey, SecretKey};
use hemath::poly::{Representation, RnsPolynomial};
use hemath::sampler::{sample_error, sample_ternary};
use rand::Rng;

/// Encrypts a plaintext under the public key.
///
/// The fresh ciphertext is at the maximum level with the plaintext's scale.
pub fn encrypt<R: Rng + ?Sized>(
    ctx: &CkksContext,
    rng: &mut R,
    pk: &PublicKey,
    plaintext: &Plaintext,
) -> Ciphertext {
    let basis = ctx.basis_q().clone();
    let mut m = plaintext.poly.clone();
    assert!(
        m.basis().same_basis(&basis),
        "plaintext must be encoded over the full Q basis"
    );
    m.to_evaluation();
    let mut u = sample_ternary(rng, basis.clone(), None);
    u.to_evaluation();
    let mut e0 = sample_error(rng, basis.clone(), ctx.params().error_eta());
    e0.to_evaluation();
    let mut e1 = sample_error(rng, basis.clone(), ctx.params().error_eta());
    e1.to_evaluation();
    // c0 = b*u + e0 + m ; c1 = a*u + e1
    let mut c0 = pk.b.mul(&u).expect("same basis");
    c0.add_assign(&e0).expect("same basis");
    c0.add_assign(&m).expect("same basis");
    let mut c1 = pk.a.mul(&u).expect("same basis");
    c1.add_assign(&e1).expect("same basis");
    Ciphertext {
        c0,
        c1,
        scale: plaintext.scale,
        level: ctx.params().max_level(),
    }
}

/// Encrypts directly under the secret key (useful for tests; produces lower
/// noise than public-key encryption).
pub fn encrypt_symmetric<R: Rng + ?Sized>(
    ctx: &CkksContext,
    rng: &mut R,
    sk: &SecretKey,
    plaintext: &Plaintext,
) -> Ciphertext {
    let level = ctx.params().max_level();
    let basis = ctx.basis_q().clone();
    let mut m = plaintext.poly.clone();
    m.to_evaluation();
    let s = sk.evaluation_form_q(ctx, level);
    let a = hemath::sampler::sample_uniform(rng, basis.clone(), Representation::Evaluation);
    let mut e = sample_error(rng, basis, ctx.params().error_eta());
    e.to_evaluation();
    // c0 = -a*s + e + m ; c1 = a
    let mut c0 = a.mul(&s).expect("same basis");
    c0.negate();
    c0.add_assign(&e).expect("same basis");
    c0.add_assign(&m).expect("same basis");
    Ciphertext {
        c0,
        c1: a,
        scale: plaintext.scale,
        level,
    }
}

/// Decrypts a ciphertext into a plaintext (`c0 + c1·s`).
pub fn decrypt(ctx: &CkksContext, sk: &SecretKey, ciphertext: &Ciphertext) -> Plaintext {
    let s = sk.evaluation_form_q(ctx, ciphertext.level);
    let mut m = ciphertext
        .c0
        .add(&ciphertext.c1.mul(&s).expect("same basis"))
        .expect("same basis");
    m.to_coefficient();
    Plaintext {
        poly: m,
        scale: ciphertext.scale,
    }
}

/// Returns an upper bound on the decryption noise of a ciphertext that
/// encrypts `expected` (in slot space): the maximum slot-wise distance.
pub fn decryption_error(
    ctx: &CkksContext,
    encoder: &crate::encoding::CkksEncoder,
    sk: &SecretKey,
    ciphertext: &Ciphertext,
    expected: &[crate::encoding::Complex],
) -> f64 {
    let decoded = encoder.decode(&decrypt(ctx, sk, ciphertext));
    expected
        .iter()
        .zip(decoded.iter())
        .map(|(e, d)| e.distance(*d))
        .fold(0.0, f64::max)
}

/// A dummy placeholder polynomial import kept private to silence unused
/// import lints in minimal builds.
#[allow(dead_code)]
fn _assert_types(_: &RnsPolynomial) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{CkksEncoder, Complex};
    use crate::keys::KeyGenerator;
    use crate::params::CkksParametersBuilder;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (
        Arc<CkksContext>,
        CkksEncoder,
        KeyGenerator,
        rand::rngs::StdRng,
    ) {
        let params = CkksParametersBuilder::new()
            .ring_degree(1 << 8)
            .q_tower_bits(vec![45, 36, 36, 36])
            .p_tower_bits(vec![45, 45])
            .dnum(2)
            .scale_bits(36)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let encoder = CkksEncoder::new(ctx.params());
        let keygen = KeyGenerator::new(ctx.clone());
        let rng = rand::rngs::StdRng::seed_from_u64(99);
        (ctx, encoder, keygen, rng)
    }

    fn ramp(encoder: &CkksEncoder) -> Vec<Complex> {
        (0..encoder.slot_count())
            .map(|i| Complex::new(i as f64 * 0.01 - 0.5, (i as f64 * 0.02).cos()))
            .collect()
    }

    #[test]
    fn public_key_encryption_round_trip() {
        let (ctx, encoder, keygen, mut rng) = setup();
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&mut rng, &sk);
        let msg = ramp(&encoder);
        let pt = encoder.encode(&msg, ctx.params().scale(), ctx.basis_q().clone());
        let ct = encrypt(&ctx, &mut rng, &pk, &pt);
        let err = decryption_error(&ctx, &encoder, &sk, &ct, &msg);
        assert!(err < 1e-3, "decryption error too large: {err}");
    }

    #[test]
    fn symmetric_encryption_round_trip() {
        let (ctx, encoder, keygen, mut rng) = setup();
        let sk = keygen.secret_key(&mut rng);
        let msg = ramp(&encoder);
        let pt = encoder.encode(&msg, ctx.params().scale(), ctx.basis_q().clone());
        let ct = encrypt_symmetric(&ctx, &mut rng, &sk, &pt);
        let err = decryption_error(&ctx, &encoder, &sk, &ct, &msg);
        assert!(err < 1e-4, "decryption error too large: {err}");
    }

    #[test]
    fn decryption_with_wrong_key_fails() {
        let (ctx, encoder, keygen, mut rng) = setup();
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&mut rng, &sk);
        let wrong = keygen.secret_key(&mut rng);
        let msg = ramp(&encoder);
        let pt = encoder.encode(&msg, ctx.params().scale(), ctx.basis_q().clone());
        let ct = encrypt(&ctx, &mut rng, &pk, &pt);
        let err = decryption_error(&ctx, &encoder, &wrong, &ct, &msg);
        assert!(err > 1.0, "wrong key should not decrypt: error {err}");
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let (ctx, encoder, keygen, mut rng) = setup();
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&mut rng, &sk);
        let msg = ramp(&encoder);
        let pt = encoder.encode(&msg, ctx.params().scale(), ctx.basis_q().clone());
        let ct1 = encrypt(&ctx, &mut rng, &pk, &pt);
        let ct2 = encrypt(&ctx, &mut rng, &pk, &pt);
        assert_ne!(ct1.c0.tower(0), ct2.c0.tower(0));
    }
}
