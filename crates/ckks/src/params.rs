//! CKKS parameter sets.
//!
//! Parameters follow the notation of the CiFlow paper (Table I): ring degree
//! `N`, the RNS moduli chain for `Q` (the ciphertext modulus), the auxiliary
//! moduli `P` used by hybrid key switching, the number of digits `dnum` and
//! the derived digit width `α = ⌈(L+1)/dnum⌉`.

use hemath::primes::{generate_ntt_primes, PrimeError};
use serde::{Deserialize, Serialize};

/// A complete CKKS parameter set.
///
/// Construct with [`CkksParametersBuilder`]; the five accelerator benchmark
/// points of the paper (Table III) are provided by the `ciflow` crate's
/// benchmark module as *shape-only* parameters, while this type carries real
/// prime moduli for functional execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CkksParameters {
    ring_degree: usize,
    q_moduli: Vec<u64>,
    p_moduli: Vec<u64>,
    dnum: usize,
    scale_bits: u32,
    error_eta: u32,
    secret_hamming_weight: Option<usize>,
}

/// Errors raised while building a parameter set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParameterError {
    /// The ring degree is not a power of two of at least 8.
    InvalidRingDegree(usize),
    /// The modulus chain was empty.
    EmptyModulusChain,
    /// `dnum` must be between 1 and the number of `Q` towers.
    InvalidDnum {
        /// Requested number of digits.
        dnum: usize,
        /// Number of `Q` towers available.
        q_towers: usize,
    },
    /// There are fewer `P` towers than the largest digit; hybrid key
    /// switching would overflow the auxiliary modulus.
    InsufficientAuxiliaryModuli {
        /// Number of `P` towers provided.
        p_towers: usize,
        /// Digit width `α` that must be covered.
        alpha: usize,
    },
    /// Prime generation failed for the requested widths.
    PrimeGeneration(String),
}

impl std::fmt::Display for ParameterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParameterError::InvalidRingDegree(n) => {
                write!(f, "ring degree {n} must be a power of two >= 8")
            }
            ParameterError::EmptyModulusChain => write!(f, "modulus chain must not be empty"),
            ParameterError::InvalidDnum { dnum, q_towers } => {
                write!(f, "dnum {dnum} must be in 1..={q_towers}")
            }
            ParameterError::InsufficientAuxiliaryModuli { p_towers, alpha } => write!(
                f,
                "hybrid key switching needs at least alpha={alpha} auxiliary moduli, got {p_towers}"
            ),
            ParameterError::PrimeGeneration(msg) => write!(f, "prime generation failed: {msg}"),
        }
    }
}

impl std::error::Error for ParameterError {}

impl From<PrimeError> for ParameterError {
    fn from(value: PrimeError) -> Self {
        ParameterError::PrimeGeneration(value.to_string())
    }
}

impl CkksParameters {
    /// Ring degree `N`.
    pub fn ring_degree(&self) -> usize {
        self.ring_degree
    }

    /// Number of message slots (`N/2`).
    pub fn slot_count(&self) -> usize {
        self.ring_degree / 2
    }

    /// The `Q` RNS moduli (`L + 1` towers, index 0 is the base tower that is
    /// never rescaled away).
    pub fn q_moduli(&self) -> &[u64] {
        &self.q_moduli
    }

    /// The auxiliary `P` moduli (`K` towers).
    pub fn p_moduli(&self) -> &[u64] {
        &self.p_moduli
    }

    /// Maximum multiplicative level `L` (one less than the number of `Q`
    /// towers).
    pub fn max_level(&self) -> usize {
        self.q_moduli.len() - 1
    }

    /// Number of auxiliary towers `K`.
    pub fn aux_tower_count(&self) -> usize {
        self.p_moduli.len()
    }

    /// Number of digits `dnum` used by hybrid key switching.
    pub fn dnum(&self) -> usize {
        self.dnum
    }

    /// Digit width `α = ⌈(L+1)/dnum⌉`.
    pub fn alpha(&self) -> usize {
        self.q_moduli.len().div_ceil(self.dnum)
    }

    /// The default encoding scale `Δ = 2^scale_bits`.
    pub fn scale(&self) -> f64 {
        2f64.powi(self.scale_bits as i32)
    }

    /// Bit width of the default encoding scale.
    pub fn scale_bits(&self) -> u32 {
        self.scale_bits
    }

    /// Centred-binomial parameter for error sampling.
    pub fn error_eta(&self) -> u32 {
        self.error_eta
    }

    /// Hamming weight for sparse ternary secrets (`None` = dense ternary).
    pub fn secret_hamming_weight(&self) -> Option<usize> {
        self.secret_hamming_weight
    }

    /// Indices of the `Q` towers belonging to digit `j` at level `level`
    /// (i.e. with `level + 1` live towers).
    ///
    /// # Panics
    ///
    /// Panics if `j >= dnum` or `level > max_level()`.
    pub fn digit_towers(&self, j: usize, level: usize) -> std::ops::Range<usize> {
        assert!(j < self.dnum, "digit index out of range");
        assert!(level <= self.max_level(), "level out of range");
        let alpha = self.alpha();
        let live = level + 1;
        let start = (j * alpha).min(live);
        let end = ((j + 1) * alpha).min(live);
        start..end
    }

    /// Number of digits that are non-empty at the given level.
    pub fn live_digits(&self, level: usize) -> usize {
        let alpha = self.alpha();
        (level + 1).div_ceil(alpha)
    }

    /// Total number of bits in `Q · P`, the quantity that (together with `N`)
    /// determines the security level.
    pub fn log_qp(&self) -> f64 {
        self.q_moduli
            .iter()
            .chain(self.p_moduli.iter())
            .map(|&q| (q as f64).log2())
            .sum()
    }
}

/// Builder for [`CkksParameters`].
///
/// # Examples
///
/// ```
/// use ckks::params::CkksParametersBuilder;
///
/// let params = CkksParametersBuilder::new()
///     .ring_degree(1 << 12)
///     .q_tower_bits(vec![50, 40, 40, 40])
///     .p_tower_bits(vec![50, 50])
///     .dnum(2)
///     .scale_bits(40)
///     .build()
///     .unwrap();
/// assert_eq!(params.max_level(), 3);
/// assert_eq!(params.alpha(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CkksParametersBuilder {
    ring_degree: usize,
    q_tower_bits: Vec<u32>,
    p_tower_bits: Vec<u32>,
    dnum: usize,
    scale_bits: u32,
    error_eta: u32,
    secret_hamming_weight: Option<usize>,
}

impl Default for CkksParametersBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CkksParametersBuilder {
    /// Starts a builder with conservative defaults (`N = 2^12`, four 40-bit
    /// `Q` towers under a 50-bit base, two 50-bit `P` towers, `dnum = 2`).
    pub fn new() -> Self {
        Self {
            ring_degree: 1 << 12,
            q_tower_bits: vec![50, 40, 40, 40],
            p_tower_bits: vec![50, 50],
            dnum: 2,
            scale_bits: 40,
            error_eta: 8,
            secret_hamming_weight: None,
        }
    }

    /// Sets the ring degree `N` (a power of two).
    pub fn ring_degree(mut self, n: usize) -> Self {
        self.ring_degree = n;
        self
    }

    /// Sets the bit widths of the `Q` towers, base tower first.
    pub fn q_tower_bits(mut self, bits: Vec<u32>) -> Self {
        self.q_tower_bits = bits;
        self
    }

    /// Sets the bit widths of the auxiliary `P` towers.
    pub fn p_tower_bits(mut self, bits: Vec<u32>) -> Self {
        self.p_tower_bits = bits;
        self
    }

    /// Sets the number of key-switching digits `dnum`.
    pub fn dnum(mut self, dnum: usize) -> Self {
        self.dnum = dnum;
        self
    }

    /// Sets the default encoding scale to `2^bits`.
    pub fn scale_bits(mut self, bits: u32) -> Self {
        self.scale_bits = bits;
        self
    }

    /// Sets the centred-binomial error parameter.
    pub fn error_eta(mut self, eta: u32) -> Self {
        self.error_eta = eta;
        self
    }

    /// Uses a sparse ternary secret of the given Hamming weight.
    pub fn secret_hamming_weight(mut self, weight: usize) -> Self {
        self.secret_hamming_weight = Some(weight);
        self
    }

    /// Generates the prime moduli and assembles the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParameterError`] describing the first constraint violated.
    pub fn build(self) -> Result<CkksParameters, ParameterError> {
        if self.ring_degree < 8 || !self.ring_degree.is_power_of_two() {
            return Err(ParameterError::InvalidRingDegree(self.ring_degree));
        }
        if self.q_tower_bits.is_empty() {
            return Err(ParameterError::EmptyModulusChain);
        }
        if self.dnum == 0 || self.dnum > self.q_tower_bits.len() {
            return Err(ParameterError::InvalidDnum {
                dnum: self.dnum,
                q_towers: self.q_tower_bits.len(),
            });
        }
        let alpha = self.q_tower_bits.len().div_ceil(self.dnum);
        if self.p_tower_bits.len() < alpha.min(1) || self.p_tower_bits.is_empty() {
            return Err(ParameterError::InsufficientAuxiliaryModuli {
                p_towers: self.p_tower_bits.len(),
                alpha,
            });
        }
        // Generate primes, grouping by bit width so equal widths get distinct
        // primes.
        let mut taken: Vec<u64> = Vec::new();
        let gen = |bits: u32, taken: &mut Vec<u64>| -> Result<u64, ParameterError> {
            let p = generate_ntt_primes(bits, self.ring_degree, 1, taken)?[0];
            taken.push(p);
            Ok(p)
        };
        let mut q_moduli = Vec::with_capacity(self.q_tower_bits.len());
        for &bits in &self.q_tower_bits {
            q_moduli.push(gen(bits, &mut taken)?);
        }
        let mut p_moduli = Vec::with_capacity(self.p_tower_bits.len());
        for &bits in &self.p_tower_bits {
            p_moduli.push(gen(bits, &mut taken)?);
        }
        Ok(CkksParameters {
            ring_degree: self.ring_degree,
            q_moduli,
            p_moduli,
            dnum: self.dnum,
            scale_bits: self.scale_bits,
            error_eta: self.error_eta,
            secret_hamming_weight: self.secret_hamming_weight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CkksParameters {
        CkksParametersBuilder::new()
            .ring_degree(1 << 8)
            .q_tower_bits(vec![45, 36, 36, 36, 36, 36])
            .p_tower_bits(vec![45, 45])
            .dnum(3)
            .scale_bits(36)
            .build()
            .unwrap()
    }

    #[test]
    fn derived_quantities() {
        let p = small();
        assert_eq!(p.ring_degree(), 256);
        assert_eq!(p.slot_count(), 128);
        assert_eq!(p.max_level(), 5);
        assert_eq!(p.aux_tower_count(), 2);
        assert_eq!(p.dnum(), 3);
        assert_eq!(p.alpha(), 2);
        assert!(p.scale() == 2f64.powi(36));
        assert!(p.log_qp() > 36.0 * 6.0);
    }

    #[test]
    fn all_moduli_are_distinct_ntt_primes() {
        let p = small();
        let mut all: Vec<u64> = p.q_moduli().to_vec();
        all.extend_from_slice(p.p_moduli());
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
        for &q in &all {
            assert!(hemath::primes::is_prime(q));
            assert_eq!(q % (2 * p.ring_degree() as u64), 1);
        }
    }

    #[test]
    fn digit_tower_partition_covers_all_levels() {
        let p = small();
        // At full level the three digits must partition 0..6.
        let mut covered = Vec::new();
        for j in 0..p.dnum() {
            covered.extend(p.digit_towers(j, p.max_level()));
        }
        assert_eq!(covered, (0..6).collect::<Vec<_>>());
        // At level 2 (3 live towers) only the first two digits are non-empty.
        assert_eq!(p.digit_towers(0, 2), 0..2);
        assert_eq!(p.digit_towers(1, 2), 2..3);
        assert_eq!(p.digit_towers(2, 2), 3..3);
        assert_eq!(p.live_digits(2), 2);
        assert_eq!(p.live_digits(p.max_level()), 3);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(matches!(
            CkksParametersBuilder::new().ring_degree(100).build(),
            Err(ParameterError::InvalidRingDegree(100))
        ));
        assert!(matches!(
            CkksParametersBuilder::new().q_tower_bits(vec![]).build(),
            Err(ParameterError::EmptyModulusChain)
        ));
        assert!(matches!(
            CkksParametersBuilder::new()
                .q_tower_bits(vec![40, 40])
                .dnum(5)
                .build(),
            Err(ParameterError::InvalidDnum { .. })
        ));
        assert!(matches!(
            CkksParametersBuilder::new().p_tower_bits(vec![]).build(),
            Err(ParameterError::InsufficientAuxiliaryModuli { .. })
        ));
    }

    #[test]
    fn clone_and_equality() {
        let p = small();
        let q = p.clone();
        assert_eq!(p, q);
        let r = CkksParametersBuilder::new()
            .ring_degree(1 << 8)
            .q_tower_bits(vec![45, 36])
            .p_tower_bits(vec![45])
            .dnum(1)
            .build()
            .unwrap();
        assert_ne!(p, r);
    }
}
