//! Homomorphic operations: addition, multiplication with relinearization,
//! rescaling, and slot rotation.
//!
//! Multiplication and rotation both end in a hybrid key switch; these are the
//! call sites whose dataflow the CiFlow analysis optimizes.

use crate::ciphertext::{Ciphertext, TripleCiphertext};
use crate::context::CkksContext;
use crate::encoding::Plaintext;
use crate::galois::{apply_galois, rotation_galois_element};
use crate::keys::{EvaluationKey, EvaluationKeyKind};
use crate::keyswitch::hybrid_key_switch;
use hemath::poly::{Representation, RnsPolynomial};

/// Errors raised by homomorphic operations.
#[derive(Debug, Clone, PartialEq)]
pub enum OpsError {
    /// The operands are at different levels.
    LevelMismatch {
        /// Level of the left operand.
        left: usize,
        /// Level of the right operand.
        right: usize,
    },
    /// The operand scales differ by more than a factor of two.
    ScaleMismatch {
        /// Scale of the left operand.
        left: f64,
        /// Scale of the right operand.
        right: f64,
    },
    /// The ciphertext has no tower left to rescale away.
    CannotRescale,
    /// The supplied key does not match the requested operation.
    WrongKey {
        /// What the operation needed.
        expected: &'static str,
        /// What was supplied.
        found: EvaluationKeyKind,
    },
}

impl std::fmt::Display for OpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpsError::LevelMismatch { left, right } => {
                write!(f, "ciphertext levels differ: {left} vs {right}")
            }
            OpsError::ScaleMismatch { left, right } => {
                write!(f, "ciphertext scales differ: {left} vs {right}")
            }
            OpsError::CannotRescale => write!(f, "ciphertext is already at level 0"),
            OpsError::WrongKey { expected, found } => {
                write!(f, "expected a {expected} key, found {found:?}")
            }
        }
    }
}

impl std::error::Error for OpsError {}

fn check_binary(a: &Ciphertext, b: &Ciphertext) -> Result<(), OpsError> {
    if a.level != b.level {
        return Err(OpsError::LevelMismatch {
            left: a.level,
            right: b.level,
        });
    }
    let ratio = a.scale / b.scale;
    if !(0.5..=2.0).contains(&ratio) {
        return Err(OpsError::ScaleMismatch {
            left: a.scale,
            right: b.scale,
        });
    }
    Ok(())
}

/// Homomorphic addition.
///
/// # Errors
///
/// Returns [`OpsError::LevelMismatch`] or [`OpsError::ScaleMismatch`] when the
/// operands are incompatible.
pub fn add(a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, OpsError> {
    check_binary(a, b)?;
    Ok(Ciphertext {
        c0: a.c0.add(&b.c0).expect("same basis"),
        c1: a.c1.add(&b.c1).expect("same basis"),
        scale: a.scale.max(b.scale),
        level: a.level,
    })
}

/// Homomorphic subtraction.
///
/// # Errors
///
/// Same as [`add`].
pub fn sub(a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, OpsError> {
    check_binary(a, b)?;
    Ok(Ciphertext {
        c0: a.c0.sub(&b.c0).expect("same basis"),
        c1: a.c1.sub(&b.c1).expect("same basis"),
        scale: a.scale.max(b.scale),
        level: a.level,
    })
}

/// Adds an encoded plaintext to a ciphertext.
///
/// # Panics
///
/// Panics if the plaintext is encoded over a different basis than the
/// ciphertext's live towers.
pub fn add_plain(ct: &Ciphertext, pt: &Plaintext) -> Ciphertext {
    let mut m = pt.poly.clone();
    if m.tower_count() > ct.c0.tower_count() {
        m.truncate_towers(ct.c0.tower_count());
    }
    m.to_evaluation();
    Ciphertext {
        c0: ct.c0.add(&m).expect("plaintext basis mismatch"),
        c1: ct.c1.clone(),
        scale: ct.scale,
        level: ct.level,
    }
}

/// Multiplies two ciphertexts without relinearizing, returning the
/// three-component result.
///
/// # Errors
///
/// Same as [`add`].
pub fn multiply_raw(a: &Ciphertext, b: &Ciphertext) -> Result<TripleCiphertext, OpsError> {
    check_binary(a, b)?;
    let d0 = a.c0.mul(&b.c0).expect("same basis");
    let mut d1 = a.c0.mul(&b.c1).expect("same basis");
    d1.add_assign(&a.c1.mul(&b.c0).expect("same basis"))
        .expect("same basis");
    let d2 = a.c1.mul(&b.c1).expect("same basis");
    Ok(TripleCiphertext {
        d0,
        d1,
        d2,
        scale: a.scale * b.scale,
        level: a.level,
    })
}

/// Relinearizes a three-component ciphertext back to two components using the
/// relinearization key (this is one hybrid key switch).
///
/// # Errors
///
/// Returns [`OpsError::WrongKey`] if the key is not a relinearization key.
pub fn relinearize(
    ctx: &CkksContext,
    triple: &TripleCiphertext,
    rlk: &EvaluationKey,
) -> Result<Ciphertext, OpsError> {
    if rlk.kind() != EvaluationKeyKind::Relinearization {
        return Err(OpsError::WrongKey {
            expected: "relinearization",
            found: rlk.kind(),
        });
    }
    let (k0, k1) = hybrid_key_switch(ctx, &triple.d2, triple.level, rlk);
    Ok(Ciphertext {
        c0: triple.d0.add(&k0).expect("same basis"),
        c1: triple.d1.add(&k1).expect("same basis"),
        scale: triple.scale,
        level: triple.level,
    })
}

/// Homomorphic multiplication with relinearization (no rescale).
///
/// # Errors
///
/// Propagates the errors of [`multiply_raw`] and [`relinearize`].
pub fn multiply(
    ctx: &CkksContext,
    a: &Ciphertext,
    b: &Ciphertext,
    rlk: &EvaluationKey,
) -> Result<Ciphertext, OpsError> {
    let triple = multiply_raw(a, b)?;
    relinearize(ctx, &triple, rlk)
}

/// Multiplies a ciphertext by an encoded plaintext (no key switch needed).
///
/// # Panics
///
/// Panics if the plaintext basis does not cover the ciphertext's live towers.
pub fn multiply_plain(ct: &Ciphertext, pt: &Plaintext) -> Ciphertext {
    let mut m = pt.poly.clone();
    if m.tower_count() > ct.c0.tower_count() {
        m.truncate_towers(ct.c0.tower_count());
    }
    m.to_evaluation();
    Ciphertext {
        c0: ct.c0.mul(&m).expect("plaintext basis mismatch"),
        c1: ct.c1.mul(&m).expect("plaintext basis mismatch"),
        scale: ct.scale * pt.scale,
        level: ct.level,
    }
}

/// Rescales the ciphertext by its last prime: drops one tower and divides the
/// scale by that prime, keeping the plaintext value unchanged.
///
/// # Errors
///
/// Returns [`OpsError::CannotRescale`] at level 0.
pub fn rescale(ctx: &CkksContext, ct: &Ciphertext) -> Result<Ciphertext, OpsError> {
    if ct.level == 0 {
        return Err(OpsError::CannotRescale);
    }
    let last = ct.level;
    let q_last = ctx.basis_q().moduli()[last];
    let new_level = ct.level - 1;
    let new_basis = ctx.basis_q_at_level(new_level);
    let rescale_poly = |poly: &RnsPolynomial| -> RnsPolynomial {
        let mut coeff = poly.clone();
        coeff.to_coefficient();
        let last_tower = coeff.tower(last).to_vec();
        let half = q_last.value() / 2;
        let mut towers = Vec::with_capacity(new_level + 1);
        for i in 0..=new_level {
            let qi = &ctx.basis_q().moduli()[i];
            let inv = qi.inv(qi.reduce(q_last.value()));
            let inv_shoup = qi.shoup(inv);
            let tower: Vec<u64> = coeff
                .tower(i)
                .iter()
                .zip(&last_tower)
                .map(|(&c, &c_last)| {
                    // Centre-lift c_last into q_i before subtracting so the
                    // rounding error stays at most 1/2.
                    let lifted = if c_last > half {
                        qi.neg(qi.reduce(q_last.value() - c_last))
                    } else {
                        qi.reduce(c_last)
                    };
                    qi.mul_shoup(qi.sub(c, lifted), inv, inv_shoup)
                })
                .collect();
            towers.push(tower);
        }
        let mut out =
            RnsPolynomial::from_towers(new_basis.clone(), towers, Representation::Coefficient);
        out.to_evaluation();
        out
    };
    Ok(Ciphertext {
        c0: rescale_poly(&ct.c0),
        c1: rescale_poly(&ct.c1),
        scale: ct.scale / q_last.value() as f64,
        level: new_level,
    })
}

/// Rotates the message slots left by `steps` using the matching rotation key
/// (one Galois automorphism plus one hybrid key switch).
///
/// # Errors
///
/// Returns [`OpsError::WrongKey`] if the key was generated for a different
/// step count.
pub fn rotate(
    ctx: &CkksContext,
    ct: &Ciphertext,
    steps: i64,
    rotation_key: &EvaluationKey,
) -> Result<Ciphertext, OpsError> {
    match rotation_key.kind() {
        EvaluationKeyKind::Rotation(s) if s == steps => {}
        other => {
            return Err(OpsError::WrongKey {
                expected: "matching rotation",
                found: other,
            })
        }
    }
    let g = rotation_galois_element(steps, ct.ring_degree());
    let rotate_poly = |poly: &RnsPolynomial| -> RnsPolynomial {
        let mut coeff = poly.clone();
        coeff.to_coefficient();
        let mut rotated = apply_galois(&coeff, g);
        rotated.to_evaluation();
        rotated
    };
    let c0_rot = rotate_poly(&ct.c0);
    let c1_rot = rotate_poly(&ct.c1);
    // c1_rot is encrypted under σ_g(s); switch it back to s.
    let (k0, k1) = hybrid_key_switch(ctx, &c1_rot, ct.level, rotation_key);
    Ok(Ciphertext {
        c0: c0_rot.add(&k0).expect("same basis"),
        c1: k1,
        scale: ct.scale,
        level: ct.level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{CkksEncoder, Complex};
    use crate::encrypt::{decrypt, encrypt};
    use crate::keys::KeyGenerator;
    use crate::params::CkksParametersBuilder;
    use rand::SeedableRng;
    use std::sync::Arc;

    struct Fixture {
        ctx: Arc<CkksContext>,
        encoder: CkksEncoder,
        keygen: KeyGenerator,
        rng: rand::rngs::StdRng,
    }

    fn fixture() -> Fixture {
        let params = CkksParametersBuilder::new()
            .ring_degree(1 << 8)
            .q_tower_bits(vec![50, 40, 40, 40])
            .p_tower_bits(vec![50, 50])
            .dnum(2)
            .scale_bits(40)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let encoder = CkksEncoder::new(ctx.params());
        let keygen = KeyGenerator::new(ctx.clone());
        Fixture {
            ctx,
            encoder,
            keygen,
            rng: rand::rngs::StdRng::seed_from_u64(2024),
        }
    }

    fn message_a(slots: usize) -> Vec<Complex> {
        (0..slots)
            .map(|i| Complex::new((i as f64 * 0.1).sin(), (i as f64 * 0.05).cos() * 0.5))
            .collect()
    }

    fn message_b(slots: usize) -> Vec<Complex> {
        (0..slots)
            .map(|i| Complex::new(0.3 + i as f64 * 0.002, -0.2))
            .collect()
    }

    fn max_error(expected: &[Complex], actual: &[Complex]) -> f64 {
        expected
            .iter()
            .zip(actual)
            .map(|(e, a)| e.distance(*a))
            .fold(0.0, f64::max)
    }

    #[test]
    fn homomorphic_addition_and_subtraction() {
        let mut f = fixture();
        let slots = f.encoder.slot_count();
        let (ma, mb) = (message_a(slots), message_b(slots));
        let scale = f.ctx.params().scale();
        let sk = f.keygen.secret_key(&mut f.rng);
        let pk = f.keygen.public_key(&mut f.rng, &sk);
        let cta = encrypt(
            &f.ctx,
            &mut f.rng,
            &pk,
            &f.encoder.encode(&ma, scale, f.ctx.basis_q().clone()),
        );
        let ctb = encrypt(
            &f.ctx,
            &mut f.rng,
            &pk,
            &f.encoder.encode(&mb, scale, f.ctx.basis_q().clone()),
        );
        let sum = add(&cta, &ctb).unwrap();
        let diff = sub(&cta, &ctb).unwrap();
        let dec_sum = f.encoder.decode(&decrypt(&f.ctx, &sk, &sum));
        let dec_diff = f.encoder.decode(&decrypt(&f.ctx, &sk, &diff));
        let expected_sum: Vec<Complex> = ma.iter().zip(&mb).map(|(a, b)| a.add(*b)).collect();
        let expected_diff: Vec<Complex> = ma.iter().zip(&mb).map(|(a, b)| a.sub(*b)).collect();
        assert!(max_error(&expected_sum, &dec_sum) < 1e-3);
        assert!(max_error(&expected_diff, &dec_diff) < 1e-3);
    }

    #[test]
    fn homomorphic_multiplication_with_relinearization_and_rescale() {
        let mut f = fixture();
        let slots = f.encoder.slot_count();
        let (ma, mb) = (message_a(slots), message_b(slots));
        let scale = f.ctx.params().scale();
        let sk = f.keygen.secret_key(&mut f.rng);
        let pk = f.keygen.public_key(&mut f.rng, &sk);
        let rlk = f.keygen.relinearization_key(&mut f.rng, &sk);
        let cta = encrypt(
            &f.ctx,
            &mut f.rng,
            &pk,
            &f.encoder.encode(&ma, scale, f.ctx.basis_q().clone()),
        );
        let ctb = encrypt(
            &f.ctx,
            &mut f.rng,
            &pk,
            &f.encoder.encode(&mb, scale, f.ctx.basis_q().clone()),
        );
        let prod = multiply(&f.ctx, &cta, &ctb, &rlk).unwrap();
        assert_eq!(prod.level, f.ctx.params().max_level());
        let rescaled = rescale(&f.ctx, &prod).unwrap();
        assert_eq!(rescaled.level, f.ctx.params().max_level() - 1);
        let expected: Vec<Complex> = ma.iter().zip(&mb).map(|(a, b)| a.mul(*b)).collect();
        let decoded = f.encoder.decode(&decrypt(&f.ctx, &sk, &rescaled));
        let err = max_error(&expected, &decoded);
        assert!(err < 1e-2, "multiplication error too large: {err}");
    }

    #[test]
    fn rotation_rotates_slots_left() {
        let mut f = fixture();
        let slots = f.encoder.slot_count();
        let ma = message_a(slots);
        let scale = f.ctx.params().scale();
        let sk = f.keygen.secret_key(&mut f.rng);
        let pk = f.keygen.public_key(&mut f.rng, &sk);
        for steps in [1i64, 3, 8] {
            let rot_key = f.keygen.rotation_key(&mut f.rng, &sk, steps);
            let ct = encrypt(
                &f.ctx,
                &mut f.rng,
                &pk,
                &f.encoder.encode(&ma, scale, f.ctx.basis_q().clone()),
            );
            let rotated = rotate(&f.ctx, &ct, steps, &rot_key).unwrap();
            let decoded = f.encoder.decode(&decrypt(&f.ctx, &sk, &rotated));
            let expected: Vec<Complex> = (0..slots)
                .map(|i| ma[(i + steps as usize) % slots])
                .collect();
            let err = max_error(&expected, &decoded);
            assert!(err < 1e-3, "rotation by {steps}: error {err}");
        }
    }

    #[test]
    fn multiplication_then_rotation_at_lower_level() {
        let mut f = fixture();
        let slots = f.encoder.slot_count();
        let (ma, mb) = (message_a(slots), message_b(slots));
        let scale = f.ctx.params().scale();
        let sk = f.keygen.secret_key(&mut f.rng);
        let pk = f.keygen.public_key(&mut f.rng, &sk);
        let rlk = f.keygen.relinearization_key(&mut f.rng, &sk);
        let rot_key = f.keygen.rotation_key(&mut f.rng, &sk, 2);
        let cta = encrypt(
            &f.ctx,
            &mut f.rng,
            &pk,
            &f.encoder.encode(&ma, scale, f.ctx.basis_q().clone()),
        );
        let ctb = encrypt(
            &f.ctx,
            &mut f.rng,
            &pk,
            &f.encoder.encode(&mb, scale, f.ctx.basis_q().clone()),
        );
        let prod = rescale(&f.ctx, &multiply(&f.ctx, &cta, &ctb, &rlk).unwrap()).unwrap();
        let rotated = rotate(&f.ctx, &prod, 2, &rot_key).unwrap();
        let decoded = f.encoder.decode(&decrypt(&f.ctx, &sk, &rotated));
        let expected: Vec<Complex> = (0..slots)
            .map(|i| {
                let j = (i + 2) % slots;
                ma[j].mul(mb[j])
            })
            .collect();
        let err = max_error(&expected, &decoded);
        assert!(err < 2e-2, "mult+rotate error too large: {err}");
    }

    #[test]
    fn plaintext_operations() {
        let mut f = fixture();
        let slots = f.encoder.slot_count();
        let ma = message_a(slots);
        let mb = message_b(slots);
        let scale = f.ctx.params().scale();
        let sk = f.keygen.secret_key(&mut f.rng);
        let pk = f.keygen.public_key(&mut f.rng, &sk);
        let ct = encrypt(
            &f.ctx,
            &mut f.rng,
            &pk,
            &f.encoder.encode(&ma, scale, f.ctx.basis_q().clone()),
        );
        let pt = f.encoder.encode(&mb, scale, f.ctx.basis_q().clone());
        let sum = add_plain(&ct, &pt);
        let decoded_sum = f.encoder.decode(&decrypt(&f.ctx, &sk, &sum));
        let expected_sum: Vec<Complex> = ma.iter().zip(&mb).map(|(a, b)| a.add(*b)).collect();
        assert!(max_error(&expected_sum, &decoded_sum) < 1e-3);

        let prod = rescale(&f.ctx, &multiply_plain(&ct, &pt)).unwrap();
        let decoded_prod = f.encoder.decode(&decrypt(&f.ctx, &sk, &prod));
        let expected_prod: Vec<Complex> = ma.iter().zip(&mb).map(|(a, b)| a.mul(*b)).collect();
        assert!(max_error(&expected_prod, &decoded_prod) < 1e-2);
    }

    #[test]
    fn error_conditions_are_reported() {
        let mut f = fixture();
        let slots = f.encoder.slot_count();
        let ma = message_a(slots);
        let scale = f.ctx.params().scale();
        let sk = f.keygen.secret_key(&mut f.rng);
        let pk = f.keygen.public_key(&mut f.rng, &sk);
        let rlk = f.keygen.relinearization_key(&mut f.rng, &sk);
        let rot1 = f.keygen.rotation_key(&mut f.rng, &sk, 1);
        let ct = encrypt(
            &f.ctx,
            &mut f.rng,
            &pk,
            &f.encoder.encode(&ma, scale, f.ctx.basis_q().clone()),
        );
        let lower = rescale(&f.ctx, &multiply(&f.ctx, &ct, &ct, &rlk).unwrap()).unwrap();
        assert!(matches!(
            add(&ct, &lower),
            Err(OpsError::LevelMismatch { .. })
        ));
        assert!(matches!(
            rotate(&f.ctx, &ct, 2, &rot1),
            Err(OpsError::WrongKey { .. })
        ));
        // Rescaling to level 0 then once more must fail.
        let mut current = ct;
        while current.level > 0 {
            current = rescale(&f.ctx, &current).unwrap();
        }
        assert_eq!(
            rescale(&f.ctx, &current).unwrap_err(),
            OpsError::CannotRescale
        );
    }
}
