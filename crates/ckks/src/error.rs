//! The crate-wide error type.
//!
//! Each module keeps its precise error enum
//! ([`ParameterError`], [`ContextError`],
//! [`OpsError`]); [`CkksError`] unifies them — together
//! with the [`hemath`](hemath::HemathError) substrate errors — so callers and
//! downstream crates (notably `ciflow`) can propagate any CKKS failure with a
//! single `?`.

use crate::context::ContextError;
use crate::ops::OpsError;
use crate::params::ParameterError;
use hemath::HemathError;

/// Any error raised by this crate's public API.
#[derive(Debug, Clone, PartialEq)]
pub enum CkksError {
    /// A parameter set was rejected.
    Parameter(ParameterError),
    /// A context could not be built from valid-looking parameters.
    Context(ContextError),
    /// A homomorphic operation failed.
    Ops(OpsError),
    /// The underlying RNS/NTT arithmetic failed.
    Math(HemathError),
}

impl std::fmt::Display for CkksError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkksError::Parameter(e) => write!(f, "parameter error: {e}"),
            CkksError::Context(e) => write!(f, "context error: {e}"),
            CkksError::Ops(e) => write!(f, "operation error: {e}"),
            CkksError::Math(e) => write!(f, "arithmetic error: {e}"),
        }
    }
}

impl std::error::Error for CkksError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkksError::Parameter(e) => Some(e),
            CkksError::Context(e) => Some(e),
            CkksError::Ops(e) => Some(e),
            CkksError::Math(e) => Some(e),
        }
    }
}

impl From<ParameterError> for CkksError {
    fn from(e: ParameterError) -> Self {
        CkksError::Parameter(e)
    }
}

impl From<ContextError> for CkksError {
    fn from(e: ContextError) -> Self {
        CkksError::Context(e)
    }
}

impl From<OpsError> for CkksError {
    fn from(e: OpsError) -> Self {
        CkksError::Ops(e)
    }
}

impl From<HemathError> for CkksError {
    fn from(e: HemathError) -> Self {
        CkksError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use crate::params::CkksParametersBuilder;

    #[test]
    fn question_mark_chains_through_both_layers() {
        fn build() -> Result<std::sync::Arc<CkksContext>, CkksError> {
            let params = CkksParametersBuilder::new()
                .ring_degree(1 << 7)
                .q_tower_bits(vec![36, 36])
                .p_tower_bits(vec![45])
                .dnum(1)
                .scale_bits(36)
                .build()?;
            Ok(CkksContext::new(params)?)
        }
        assert!(build().is_ok());

        let bad = CkksParametersBuilder::new()
            .ring_degree(100) // not a power of two
            .q_tower_bits(vec![36])
            .p_tower_bits(vec![45])
            .dnum(1)
            .scale_bits(36)
            .build()
            .map_err(CkksError::from);
        assert!(matches!(bad, Err(CkksError::Parameter(_))));
        assert!(!bad.unwrap_err().to_string().is_empty());
    }
}
