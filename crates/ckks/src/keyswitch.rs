//! Hybrid key switching (HKS) — the functional reference implementation.
//!
//! This module implements the ModUp / ModDown phases exactly as the CiFlow
//! paper describes them (§III):
//!
//! * **ModUp** — P1 `INTT` per digit tower, P2 `BConv` extending each digit
//!   from `α` to `β = ℓ + K − α` towers, P3 `NTT` of the extended towers,
//!   P4 pointwise multiplication with the evaluation key, P5 reduction
//!   (accumulation over digits).
//! * **ModDown** — P1 `INTT` of the `K` auxiliary towers, P2 `BConv` from `P`
//!   back to `Q_ℓ`, P3 `NTT`, P4 subtraction and scaling by `P^{-1}`.
//!
//! The `ciflow` crate schedules these same stages under different dataflows;
//! this module defines their *semantics* and is used to validate that every
//! dataflow computes the same function.

use crate::context::CkksContext;
use crate::keys::EvaluationKey;
use hemath::poly::{Representation, RnsPolynomial};

/// The pair of polynomials produced by a key switch, to be added to the
/// ciphertext's `(c0, c1)`.
pub type KeySwitchOutput = (RnsPolynomial, RnsPolynomial);

/// ModUp for a single digit (stages P1–P3): extends digit `j` of `d` from its
/// own towers to the full extended basis `Q_ℓ ∪ P`, returning the result in
/// the evaluation domain.
///
/// The towers belonging to the digit itself are passed through unchanged
/// (the "bypass" the paper's Output-Centric discussion relies on); the other
/// towers are produced by `INTT → BConv → NTT`.
///
/// # Panics
///
/// Panics if `d` is not in the evaluation domain over the live `Q` towers of
/// `level`, or if the digit is empty at this level.
pub fn modup_digit(
    ctx: &CkksContext,
    d: &RnsPolynomial,
    level: usize,
    digit: usize,
) -> RnsPolynomial {
    assert_eq!(d.representation(), Representation::Evaluation);
    assert_eq!(d.tower_count(), level + 1, "input must have level+1 towers");
    let params = ctx.params();
    let range = params.digit_towers(digit, level);
    assert!(!range.is_empty(), "digit {digit} is empty at level {level}");

    // P1: INTT of the digit's towers.
    let converter = ctx.modup_converter(digit, level);
    let digit_indices: Vec<usize> = range.clone().collect();
    let mut digit_coeff_towers = Vec::with_capacity(digit_indices.len());
    for &i in &digit_indices {
        let mut tower = d.tower(i).to_vec();
        ctx.basis_q().ntt_table(i).inverse(&mut tower);
        digit_coeff_towers.push(tower);
    }

    // P2: BConv from the digit's basis to the complement basis (other live Q
    // towers followed by the P towers).
    let converted = converter.convert_towers(&digit_coeff_towers);

    // P3: NTT of the converted towers.
    let complement: Vec<usize> = (0..=level).filter(|i| !range.contains(i)).collect();
    let k = params.aux_tower_count();
    let mut converted_eval = converted;
    for (pos, tower) in converted_eval.iter_mut().enumerate() {
        if pos < complement.len() {
            ctx.basis_q().ntt_table(complement[pos]).forward(tower);
        } else {
            ctx.basis_p()
                .ntt_table(pos - complement.len())
                .forward(tower);
        }
    }

    // Assemble the extended polynomial over Q_ℓ ∪ P in evaluation domain:
    // digit towers are bypassed from `d`, complement and P towers come from
    // the conversion.
    let mut towers: Vec<Vec<u64>> = Vec::with_capacity(level + 1 + k);
    let mut complement_pos = 0usize;
    for i in 0..=level {
        if range.contains(&i) {
            towers.push(d.tower(i).to_vec());
        } else {
            towers.push(converted_eval[complement_pos].clone());
            complement_pos += 1;
        }
    }
    for p_idx in 0..k {
        towers.push(converted_eval[complement.len() + p_idx].clone());
    }
    RnsPolynomial::from_towers(
        ctx.basis_qp_at_level(level),
        towers,
        Representation::Evaluation,
    )
}

/// ModDown (stages P1–P4): reduces a polynomial over `Q_ℓ ∪ P` back to `Q_ℓ`,
/// dividing by `P`.
///
/// # Panics
///
/// Panics if `x` is not in the evaluation domain over the extended basis of
/// `level`.
pub fn moddown(ctx: &CkksContext, x: &RnsPolynomial, level: usize) -> RnsPolynomial {
    assert_eq!(x.representation(), Representation::Evaluation);
    let k = ctx.params().aux_tower_count();
    assert_eq!(
        x.tower_count(),
        level + 1 + k,
        "input must be over the extended basis of the level"
    );

    // P1: INTT of the K auxiliary towers.
    let mut p_towers = Vec::with_capacity(k);
    for i in 0..k {
        let mut tower = x.tower(level + 1 + i).to_vec();
        ctx.basis_p().ntt_table(i).inverse(&mut tower);
        p_towers.push(tower);
    }

    // P2: BConv from P to the live Q towers.
    let converter = ctx.moddown_converter(level);
    let converted = converter.convert_towers(&p_towers);

    // P3: NTT of the converted towers.
    let mut converted_eval = converted;
    for (i, tower) in converted_eval.iter_mut().enumerate() {
        ctx.basis_q().ntt_table(i).forward(tower);
    }

    // P4: out_i = (x_i - conv_i) * P^{-1} mod q_i.
    let mut towers = Vec::with_capacity(level + 1);
    for (i, conv_tower) in converted_eval.iter().enumerate().take(level + 1) {
        let qi = &ctx.basis_q().moduli()[i];
        let p_inv = ctx.p_inv_mod_q()[i];
        let p_inv_shoup = qi.shoup(p_inv);
        let tower: Vec<u64> = x
            .tower(i)
            .iter()
            .zip(conv_tower)
            .map(|(&a, &b)| qi.mul_shoup(qi.sub(a, b), p_inv, p_inv_shoup))
            .collect();
        towers.push(tower);
    }
    RnsPolynomial::from_towers(
        ctx.basis_q_at_level(level),
        towers,
        Representation::Evaluation,
    )
}

/// Full hybrid key switching of a polynomial `d` (in the evaluation domain
/// over the live `Q` towers) with the given evaluation key.
///
/// Returns `(k0, k1)` over `Q_ℓ` such that `k0 + k1·s ≈ d·s'`, where `s'` is
/// the key the evaluation key switches from.
///
/// # Panics
///
/// Panics if `d` has a tower count inconsistent with `level`, or if the key's
/// digit count disagrees with the parameters.
pub fn hybrid_key_switch(
    ctx: &CkksContext,
    d: &RnsPolynomial,
    level: usize,
    evk: &EvaluationKey,
) -> KeySwitchOutput {
    assert_eq!(
        evk.digit_count(),
        ctx.params().dnum(),
        "evaluation key digit count mismatch"
    );
    let live_digits = ctx.params().live_digits(level);
    let extended_basis = ctx.basis_qp_at_level(level);
    let mut acc0 = RnsPolynomial::zero(extended_basis.clone(), Representation::Evaluation);
    let mut acc1 = RnsPolynomial::zero(extended_basis, Representation::Evaluation);
    for j in 0..live_digits {
        // ModUp P1-P3 for this digit.
        let extended = modup_digit(ctx, d, level, j);
        // ModUp P4 (apply key) + P5 (reduce / accumulate).
        let (b_j, a_j) = evk.digit_at_level(ctx, j, level);
        acc0.mul_acc(&extended, &b_j).expect("same basis");
        acc1.mul_acc(&extended, &a_j).expect("same basis");
    }
    // ModDown P1-P4 for both accumulator polynomials.
    let k0 = moddown(ctx, &acc0, level);
    let k1 = moddown(ctx, &acc1, level);
    (k0, k1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{EvaluationKeyKind, KeyGenerator};
    use crate::params::CkksParametersBuilder;
    use hemath::sampler::sample_uniform;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn make_ctx(dnum: usize) -> Arc<CkksContext> {
        let params = CkksParametersBuilder::new()
            .ring_degree(1 << 8)
            .q_tower_bits(vec![45, 36, 36, 36, 36, 36])
            .p_tower_bits(vec![45, 45])
            .dnum(dnum)
            .scale_bits(36)
            .build()
            .unwrap();
        CkksContext::new(params).unwrap()
    }

    /// Maximum centred residue of `poly` (which must be small for a correct
    /// key switch identity).
    fn max_centered(poly: &RnsPolynomial) -> u64 {
        let mut p = poly.clone();
        p.to_coefficient();
        let mut max = 0u64;
        for (m, tower) in p.iter() {
            for &x in tower {
                let centered = if x > m.value() / 2 { m.value() - x } else { x };
                max = max.max(centered);
            }
        }
        max
    }

    fn key_switch_identity_error(ctx: &Arc<CkksContext>, level: usize, dnum: usize) -> u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7 + dnum as u64 + level as u64);
        let keygen = KeyGenerator::new(ctx.clone());
        let sk = keygen.secret_key(&mut rng);
        // A second, independent "source" secret s'.
        let sk_prime = keygen.secret_key(&mut rng);
        let s_prime_qp = sk_prime.evaluation_form_qp();
        let ksk = keygen.key_switching_key(
            &mut rng,
            &sk,
            &s_prime_qp,
            EvaluationKeyKind::Relinearization,
        );
        // Random input polynomial d over the live towers.
        let basis = ctx.basis_q_at_level(level);
        let d = sample_uniform(&mut rng, basis, Representation::Evaluation);
        let (k0, k1) = hybrid_key_switch(ctx, &d, level, &ksk);
        // Check k0 + k1*s - d*s' is small.
        let s = sk.evaluation_form_q(ctx, level);
        let s_prime = sk_prime.evaluation_form_q(ctx, level);
        let lhs = k0.add(&k1.mul(&s).unwrap()).unwrap();
        let rhs = d.mul(&s_prime).unwrap();
        let diff = lhs.sub(&rhs).unwrap();
        max_centered(&diff)
    }

    #[test]
    fn key_switch_identity_at_full_level() {
        // Hybrid key switching is only correct when P covers a digit
        // (`log P ≳ α · log q`), so scale the Q chain with dnum to keep
        // α = 2 towers of at most 36 bits against a 90-bit P.
        for dnum in [1usize, 2, 3] {
            let params = CkksParametersBuilder::new()
                .ring_degree(1 << 8)
                .q_tower_bits(vec![36; 2 * dnum])
                .p_tower_bits(vec![45, 45])
                .dnum(dnum)
                .scale_bits(36)
                .build()
                .unwrap();
            let ctx = CkksContext::new(params).unwrap();
            let level = ctx.params().max_level();
            let err = key_switch_identity_error(&ctx, level, dnum);
            // Error bound: dnum * N * eta * q_digit / P plus rounding; with
            // these parameters anything below 2^24 is decisively "small"
            // compared to the 36-bit moduli.
            assert!(
                err < 1 << 24,
                "dnum={dnum}: key switch error {err} too large"
            );
        }
    }

    #[test]
    fn key_switch_identity_at_lower_levels() {
        let ctx = make_ctx(3);
        for level in [1usize, 2, 4] {
            let err = key_switch_identity_error(&ctx, level, 3);
            assert!(
                err < 1 << 24,
                "level={level}: key switch error {err} too large"
            );
        }
    }

    #[test]
    fn modup_digit_preserves_digit_towers() {
        let ctx = make_ctx(3);
        let level = ctx.params().max_level();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let d = sample_uniform(&mut rng, ctx.basis_q().clone(), Representation::Evaluation);
        for digit in 0..ctx.params().dnum() {
            let extended = modup_digit(&ctx, &d, level, digit);
            assert_eq!(
                extended.tower_count(),
                level + 1 + ctx.params().aux_tower_count()
            );
            for i in ctx.params().digit_towers(digit, level) {
                assert_eq!(
                    extended.tower(i),
                    d.tower(i),
                    "digit tower {i} must be bypassed"
                );
            }
        }
    }

    #[test]
    fn moddown_inverts_multiplication_by_p() {
        // Take a polynomial x over Q_ℓ, multiply every tower by P (so the
        // extended representation is P·x with zero P-part), and check that
        // ModDown returns approximately x.
        let ctx = make_ctx(2);
        let level = ctx.params().max_level();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let x = sample_uniform(
            &mut rng,
            ctx.basis_q_at_level(level),
            Representation::Evaluation,
        );
        let k = ctx.params().aux_tower_count();
        let mut towers: Vec<Vec<u64>> = Vec::new();
        for i in 0..=level {
            let qi = &ctx.basis_q().moduli()[i];
            let p_mod = ctx.p_mod_q()[i];
            towers.push(x.tower(i).iter().map(|&v| qi.mul(v, p_mod)).collect());
        }
        for _ in 0..k {
            towers.push(vec![0u64; ctx.params().ring_degree()]);
        }
        let extended = RnsPolynomial::from_towers(
            ctx.basis_qp_at_level(level),
            towers,
            Representation::Evaluation,
        );
        let down = moddown(&ctx, &extended, level);
        let diff = down.sub(&x).unwrap();
        // P·x has an exactly zero P-part, so the only error is the BConv
        // overshoot divided by P — at most K small units per coefficient.
        assert!(max_centered(&diff) <= ctx.params().aux_tower_count() as u64 + 1);
    }

    #[test]
    fn single_digit_parameters_have_no_complement_towers_in_q() {
        // dnum = 1: the digit covers all of Q, so ModUp only extends into P.
        let ctx = make_ctx(1);
        let level = ctx.params().max_level();
        let conv = ctx.modup_converter(0, level);
        assert_eq!(conv.source().tower_count(), level + 1);
        assert_eq!(conv.target().tower_count(), ctx.params().aux_tower_count());
    }
}
