//! # ckks — functional RNS-CKKS with hybrid key switching
//!
//! This crate implements the RNS variant of the CKKS approximate homomorphic
//! encryption scheme, with exactly the structure the CiFlow paper analyzes:
//!
//! * [`params`] / [`context`] — parameter sets (`N`, the `Q` and `P` RNS
//!   chains, `dnum`, `α`) and the shared precomputed context.
//! * [`encoding`] — canonical-embedding encoding of complex vectors.
//! * [`keys`] — secret/public keys and hybrid key-switching keys (`evk`s with
//!   `dnum` digits over `Q·P`).
//! * [`encrypt`] — encryption and decryption.
//! * [`keyswitch`] — the hybrid key-switching reference: ModUp (P1–P5) and
//!   ModDown (P1–P4) staged exactly as in the paper's Figure 1.
//! * [`ops`] — homomorphic add/multiply/rescale/rotate; multiplication and
//!   rotation each invoke one hybrid key switch.
//!
//! The crate is a *functional* implementation used to define the semantics of
//! every HKS stage; the `ciflow` crate reschedules those stages under the
//! Max-Parallel, Digit-Centric and Output-Centric dataflows and checks that
//! all of them compute this same function.
//!
//! ## Example
//!
//! ```
//! use ckks::params::CkksParametersBuilder;
//! use ckks::context::CkksContext;
//! use ckks::encoding::CkksEncoder;
//! use ckks::keys::KeyGenerator;
//! use ckks::{encrypt::{encrypt, decrypt}, ops};
//! use rand::SeedableRng;
//!
//! let params = CkksParametersBuilder::new()
//!     .ring_degree(1 << 8)
//!     .q_tower_bits(vec![50, 40, 40])
//!     .p_tower_bits(vec![50])
//!     .dnum(3)
//!     .scale_bits(40)
//!     .build()
//!     .unwrap();
//! let ctx = CkksContext::new(params).unwrap();
//! let encoder = CkksEncoder::new(ctx.params());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let keygen = KeyGenerator::new(ctx.clone());
//! let sk = keygen.secret_key(&mut rng);
//! let pk = keygen.public_key(&mut rng, &sk);
//!
//! let message = vec![1.0, 2.0, 3.0];
//! let pt = encoder.encode_real(&message, ctx.params().scale(), ctx.basis_q().clone());
//! let ct = encrypt(&ctx, &mut rng, &pk, &pt);
//! let doubled = ops::add(&ct, &ct).unwrap();
//! let decoded = encoder.decode(&decrypt(&ctx, &sk, &doubled));
//! assert!((decoded[1].re - 4.0).abs() < 1e-3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ciphertext;
pub mod context;
pub mod encoding;
pub mod encrypt;
pub mod error;
pub mod galois;
pub mod keys;
pub mod keyswitch;
pub mod ops;
pub mod params;

pub use ciphertext::{Ciphertext, TripleCiphertext};
pub use context::CkksContext;
pub use encoding::{CkksEncoder, Complex, Plaintext};
pub use error::CkksError;
pub use keys::{EvaluationKey, EvaluationKeyKind, KeyGenerator, PublicKey, SecretKey};
pub use params::{CkksParameters, CkksParametersBuilder};
