//! Criterion benchmarks of the functional CKKS operations whose cost the
//! paper's motivation cites: hybrid key switching, relinearizing
//! multiplication, and rotation.

use ciflow::functional::output_centric_key_switch;
use ckks::context::CkksContext;
use ckks::keys::KeyGenerator;
use ckks::params::CkksParametersBuilder;
use ckks::{encrypt::encrypt, ops};
use criterion::{criterion_group, criterion_main, Criterion};
use hemath::poly::Representation;
use hemath::sampler::sample_uniform;
use rand::SeedableRng;
use std::sync::Arc;

fn small_context() -> Arc<CkksContext> {
    CkksParametersBuilder::new()
        .ring_degree(1 << 11)
        .q_tower_bits(vec![50, 40, 40, 40])
        .p_tower_bits(vec![50, 50])
        .dnum(2)
        .scale_bits(40)
        .build()
        .map(CkksContext::new)
        .unwrap()
        .unwrap()
}

fn bench_hybrid_key_switch(c: &mut Criterion) {
    let ctx = small_context();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let rlk = keygen.relinearization_key(&mut rng, &sk);
    let level = ctx.params().max_level();
    let d = sample_uniform(&mut rng, ctx.basis_q().clone(), Representation::Evaluation);
    c.bench_function("hybrid_key_switch/reference", |b| {
        b.iter(|| ckks::keyswitch::hybrid_key_switch(&ctx, &d, level, &rlk));
    });
    c.bench_function("hybrid_key_switch/output_centric", |b| {
        b.iter(|| output_centric_key_switch(&ctx, &d, level, &rlk));
    });
}

fn bench_homomorphic_ops(c: &mut Criterion) {
    let ctx = small_context();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let keygen = KeyGenerator::new(ctx.clone());
    let sk = keygen.secret_key(&mut rng);
    let pk = keygen.public_key(&mut rng, &sk);
    let rlk = keygen.relinearization_key(&mut rng, &sk);
    let rot = keygen.rotation_key(&mut rng, &sk, 1);
    let encoder = ckks::encoding::CkksEncoder::new(ctx.params());
    let msg: Vec<f64> = (0..encoder.slot_count()).map(|i| i as f64 * 1e-3).collect();
    let pt = encoder.encode_real(&msg, ctx.params().scale(), ctx.basis_q().clone());
    let ct = encrypt(&ctx, &mut rng, &pk, &pt);
    c.bench_function("ops/multiply_relinearize", |b| {
        b.iter(|| ops::multiply(&ctx, &ct, &ct, &rlk).unwrap());
    });
    c.bench_function("ops/rotate", |b| {
        b.iter(|| ops::rotate(&ctx, &ct, 1, &rot).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hybrid_key_switch, bench_homomorphic_ops
}
criterion_main!(benches);
