//! Criterion benchmarks of the arithmetic kernels that hybrid key switching
//! is built from: negacyclic NTT/INTT and RNS basis conversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hemath::basis::BasisConverter;
use hemath::modulus::Modulus;
use hemath::ntt::NttTable;
use hemath::poly::RnsBasis;
use hemath::primes::generate_ntt_primes;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt");
    for log_n in [12usize, 13, 14] {
        let n = 1usize << log_n;
        let q = generate_ntt_primes(50, n, 1, &[]).unwrap()[0];
        let table = NttTable::new(n, Modulus::new(q).unwrap()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                table.forward(&mut v);
                v
            });
        });
        group.bench_with_input(BenchmarkId::new("inverse", n), &n, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                table.inverse(&mut v);
                v
            });
        });
    }
    group.finish();
}

fn bench_basis_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("bconv");
    let n = 1usize << 12;
    for (source_towers, target_towers) in [(2usize, 3usize), (4, 6), (6, 9)] {
        let qs = generate_ntt_primes(40, n, source_towers, &[]).unwrap();
        let ps = generate_ntt_primes(41, n, target_towers, &qs).unwrap();
        let to_mod = |v: &[u64]| {
            v.iter()
                .map(|&q| Modulus::new(q).unwrap())
                .collect::<Vec<_>>()
        };
        let source = Arc::new(RnsBasis::new(n, to_mod(&qs)).unwrap());
        let target = Arc::new(RnsBasis::new(n, to_mod(&ps)).unwrap());
        let converter = BasisConverter::new(source.clone(), target);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let towers: Vec<Vec<u64>> = source
            .moduli()
            .iter()
            .map(|m| (0..n).map(|_| rng.gen_range(0..m.value())).collect())
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{source_towers}to{target_towers}")),
            &towers,
            |b, towers| b.iter(|| converter.convert_towers(towers)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ntt, bench_basis_conversion);
criterion_main!(benches);
