//! Criterion benchmarks of the CiFlow machinery itself: schedule generation
//! and task-level simulation for every benchmark and dataflow.

use ciflow::benchmark::HksBenchmark;
use ciflow::dataflow::Dataflow;
use ciflow::hks_shape::HksShape;
use ciflow::schedule::{build_schedule, ScheduleConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpu::{EvkPolicy, RpuConfig, RpuEngine};

fn bench_schedule_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_generation");
    let config = ScheduleConfig {
        data_memory_bytes: 32 * rpu::MIB,
        evk_policy: EvkPolicy::Streamed,
    };
    for benchmark in [HksBenchmark::ARK, HksBenchmark::BTS3] {
        for dataflow in Dataflow::all() {
            let shape = HksShape::new(benchmark);
            group.bench_with_input(
                BenchmarkId::new(benchmark.name, dataflow.short_name()),
                &shape,
                |b, shape| b.iter(|| build_schedule(dataflow, shape, &config)),
            );
        }
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpu_simulation");
    let config = ScheduleConfig {
        data_memory_bytes: 32 * rpu::MIB,
        evk_policy: EvkPolicy::Streamed,
    };
    let engine = RpuEngine::new(RpuConfig::ciflow_streaming());
    for benchmark in [HksBenchmark::ARK, HksBenchmark::BTS3] {
        for dataflow in Dataflow::all() {
            let schedule = build_schedule(dataflow, &HksShape::new(benchmark), &config);
            group.bench_with_input(
                BenchmarkId::new(benchmark.name, dataflow.short_name()),
                &schedule,
                |b, schedule| b.iter(|| engine.execute(&schedule.graph).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_schedule_generation, bench_simulation);
criterion_main!(benches);
