//! Checks the paper's headline claims end to end: up to 4.16x speedup over
//! MP, 12.25x SRAM saving from streaming evks, up to 3.3x bandwidth saving
//! versus the MP on-chip baseline, and 1.43x-2.4x arithmetic-intensity gains.

use ciflow::analysis::table2_rows;
use ciflow::benchmark::HksBenchmark;
use ciflow::dataflow::Dataflow;
use ciflow::sweep::{min_bandwidth_for_runtime, table4_rows, BASELINE_BANDWIDTH_GBPS};
use rpu::EvkPolicy;

fn main() {
    ciflow_bench::section("Headline claim 1: OC speedup over MP at the OCbase bandwidth");
    let best = table4_rows()
        .into_iter()
        .map(|r| (r.benchmark, r.oc_speedup))
        .collect::<Vec<_>>();
    for (name, speedup) in &best {
        println!("{name}: {speedup:.2}x (paper's best: ARK 4.16x)");
    }

    ciflow_bench::section("Headline claim 2: SRAM saving from streaming evks");
    let on_chip = ciflow_bench::rpu_for(EvkPolicy::OnChip, BASELINE_BANDWIDTH_GBPS);
    let streaming = ciflow_bench::rpu_for(EvkPolicy::Streamed, BASELINE_BANDWIDTH_GBPS);
    println!(
        "{} MiB -> {} MiB = {:.2}x (paper: 12.25x); estimated area {:.1} mm2 -> {:.1} mm2",
        (on_chip.vector_memory_bytes + on_chip.key_memory_bytes) / rpu::MIB,
        (streaming.vector_memory_bytes + streaming.key_memory_bytes) / rpu::MIB,
        (on_chip.vector_memory_bytes + on_chip.key_memory_bytes) as f64
            / (streaming.vector_memory_bytes + streaming.key_memory_bytes) as f64,
        on_chip.estimated_area_mm2(),
        streaming.estimated_area_mm2(),
    );

    ciflow_bench::section(
        "Headline claim 3: bandwidth saving of OC (evks streamed) vs the MP on-chip baseline",
    );
    for benchmark in HksBenchmark::all() {
        let baseline = ciflow::sweep::baseline_runtime_ms(benchmark);
        let needed = min_bandwidth_for_runtime(
            benchmark,
            Dataflow::OutputCentric,
            EvkPolicy::Streamed,
            1.0,
            baseline,
            4.0,
            1024.0,
        );
        println!(
            "{}: OC streaming matches the baseline at {needed:.1} GB/s ({:.2}x saving; paper: up to 3.3x)",
            benchmark.name,
            BASELINE_BANDWIDTH_GBPS / needed
        );
    }

    ciflow_bench::section("Headline claim 4: arithmetic-intensity gain of OC");
    let rows = table2_rows();
    for benchmark in HksBenchmark::all() {
        let get = |d: Dataflow| {
            rows.iter()
                .find(|r| r.benchmark == benchmark.name && r.dataflow == d.short_name())
                .unwrap()
                .arithmetic_intensity
        };
        println!(
            "{}: OC/MP = {:.2}x, OC/DC = {:.2}x (paper: 1.43x-2.4x over MP)",
            benchmark.name,
            get(Dataflow::OutputCentric) / get(Dataflow::MaxParallel),
            get(Dataflow::OutputCentric) / get(Dataflow::DigitCentric),
        );
    }
}
