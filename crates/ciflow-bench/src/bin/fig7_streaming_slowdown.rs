//! Regenerates Figure 7: for each benchmark, the bandwidth OC needs when
//! streaming evks to match its own evk-on-chip performance at the OCbase
//! bandwidth, and the associated SRAM saving.

use ciflow::benchmark::HksBenchmark;
use ciflow::report::markdown_table;
use ciflow::sweep::streaming_equivalence_row;

fn main() {
    ciflow_bench::section("Figure 7 analogue: OC with evks streamed vs on-chip");
    let rows: Vec<Vec<String>> = HksBenchmark::all()
        .into_iter()
        .map(|b| {
            let r = streaming_equivalence_row(b);
            vec![
                r.benchmark.to_string(),
                ciflow_bench::fmt(r.ocbase_gbps, 1),
                ciflow_bench::fmt(r.on_chip_ms, 2),
                ciflow_bench::fmt(r.equivalent_streaming_gbps, 1),
                format!("{:.2}x", r.extra_bandwidth),
                format!("{:.2}x", r.sram_saving),
            ]
        })
        .collect();
    print!(
        "{}",
        markdown_table(
            &[
                "Benchmark",
                "OCbase BW (GB/s)",
                "on-chip runtime (ms)",
                "equiv. streaming BW (GB/s)",
                "extra BW",
                "SRAM saving",
            ],
            &rows,
        )
    );
    println!(
        "\nPaper reference: 1.3x (BTS1) to 2.9x (ARK) extra bandwidth for a 12.25x SRAM saving."
    );
}
