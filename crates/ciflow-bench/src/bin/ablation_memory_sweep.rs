//! Ablation (beyond the paper's figures): sweep the on-chip data-memory
//! capacity and report the DRAM traffic, spill volume and runtime of each
//! dataflow. This makes the capacity at which each dataflow stops spilling
//! visible — the quantity behind the paper's 675 MB (MP) / 255 MB (DC) /
//! 32 MB (OC) working-set discussion.

use ciflow::benchmark::HksBenchmark;
use ciflow::dataflow::Dataflow;
use ciflow::report::markdown_table;
use ciflow::sweep::memory_sweep;

fn main() {
    let capacities = [8u64, 16, 32, 64, 128, 256, 512, 1024];
    for benchmark in [HksBenchmark::ARK, HksBenchmark::BTS3] {
        ciflow_bench::section(&format!(
            "Memory ablation: {} at 64 GB/s, evks streamed (traffic MiB / spill MiB / runtime ms)",
            benchmark.name
        ));
        let mut rows = Vec::new();
        for &mib in &capacities {
            let mut cells = vec![format!("{mib} MiB")];
            for dataflow in Dataflow::all() {
                let p = memory_sweep(benchmark, dataflow, &[mib], 64.0)[0];
                cells.push(format!(
                    "{:.0} / {:.0} / {:.2}",
                    p.dram_mib, p.spill_mib, p.runtime_ms
                ));
            }
            rows.push(cells);
        }
        print!(
            "{}",
            markdown_table(&["data memory", "MP", "DC", "OC"], &rows)
        );
    }
}
