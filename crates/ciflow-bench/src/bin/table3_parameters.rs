//! Regenerates Table III: the five benchmark parameter points with their evk
//! and intermediate-data footprints.

fn main() {
    ciflow_bench::section("Table III analogue: benchmark parameters (128-bit security points)");
    let rows = ciflow::analysis::table3_rows();
    print!("{}", ciflow::report::render_table3(&rows));
}
