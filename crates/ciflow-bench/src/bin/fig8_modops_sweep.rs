//! Regenerates Figure 8: ARK runtime under OC at 1x/2x/4x/8x/16x MODOPS
//! across the bandwidth range, with evks on-chip.

use ciflow::benchmark::HksBenchmark;
use ciflow::sweep::{modops_sweep, MODOPS_LADDER};

fn main() {
    let bandwidths = ciflow_bench::extended_bandwidths();
    let series: Vec<_> = MODOPS_LADDER
        .iter()
        .map(|&m| modops_sweep(HksBenchmark::ARK, m, &bandwidths))
        .collect();
    ciflow_bench::section("Figure 8 analogue: ARK OC runtime at different MODOPS (evks on-chip)");
    println!("columns are 1x, 2x, 4x, 8x, 16x MODOPS");
    print!("{}", ciflow::report::render_sweep_csv(&series));
    let (bw, runtime) = ciflow::sweep::ark_saturation_point();
    println!("\nARK saturation point: {bw} GB/s -> {runtime:.2} ms at 1x MODOPS");
}
