//! Regenerates Figure 4: HKS runtime vs off-chip bandwidth for the five
//! benchmarks under MP / DC / OC, with evks preloaded on-chip.

use ciflow::benchmark::HksBenchmark;
use rpu::EvkPolicy;

fn main() {
    for benchmark in HksBenchmark::all() {
        let bandwidths = if benchmark == HksBenchmark::ARK || benchmark == HksBenchmark::BTS3 {
            ciflow_bench::extended_bandwidths()
        } else {
            ciflow_bench::ddr_bandwidths()
        };
        let series = ciflow_bench::sweep_all_dataflows(benchmark, &bandwidths, EvkPolicy::OnChip);
        ciflow_bench::section(&format!(
            "Figure 4 analogue: {} (evks on-chip)",
            benchmark.name
        ));
        print!("{}", ciflow::report::render_sweep_csv(&series));
        print!("{}", ciflow::report::render_sweep_ascii(&series, 60, 12));
    }
}
