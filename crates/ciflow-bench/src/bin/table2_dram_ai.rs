//! Regenerates Table II: DRAM transfers (MB) and arithmetic intensity for
//! every benchmark under MP / DC / OC, with 32 MB of on-chip data memory and
//! evks streamed from DRAM.

fn main() {
    ciflow_bench::section("Table II analogue: DRAM transfers (MiB) and arithmetic intensity");
    let rows = ciflow::analysis::table2_rows();
    print!("{}", ciflow::report::render_table2(&rows));
    ciflow_bench::section("Paper reference (MB / AI)");
    println!("BTS1: MP 600/1.81  DC 600/1.81  OC 420/2.59");
    println!("BTS2: MP 1352/1.14 DC 1278/1.20 OC 716/2.15");
    println!("BTS3: MP 1850/1.00 DC 1766/1.04 OC 1119/1.65");
    println!("ARK:  MP 432/1.05  DC 356/1.27  OC 180/2.52");
    println!("DPRIVE: MP 365/1.26 DC 336/1.37 OC 170/2.71");
}
