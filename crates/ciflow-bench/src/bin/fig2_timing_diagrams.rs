//! Regenerates Figure 2: high-level ModUp timing diagrams for the three
//! dataflows (which stages are active when), rendered as ASCII timelines from
//! the simulator trace of the DPRIVE benchmark.

use ciflow::benchmark::HksBenchmark;
use ciflow::dataflow::Dataflow;
use rpu::TraceMode;

fn main() {
    ciflow_bench::section("Figure 2 analogue: per-stage activity timelines (DPRIVE, 12.8 GB/s)");
    let outcome = Dataflow::all()
        .into_iter()
        .fold(
            ciflow_bench::session_at(12.8).with_trace(TraceMode::Full),
            |session, dataflow| session.job(HksBenchmark::DPRIVE, dataflow),
        )
        .run();
    for (dataflow, result) in Dataflow::all().into_iter().zip(&outcome.results) {
        let output = result.outcome.as_ref().expect("run");
        println!("\n--- {dataflow} ({}) ---", dataflow.description());
        print!(
            "{}",
            output
                .trace
                .as_ref()
                .expect("traced session returns traces")
                .render_ascii(72)
        );
        println!(
            "runtime {:.2} ms, compute idle {:.1}%",
            output.stats.runtime_ms(),
            100.0 * output.stats.compute_idle_fraction()
        );
    }
}
