//! Regenerates Figure 2: high-level ModUp timing diagrams for the three
//! dataflows (which stages are active when), rendered as ASCII timelines from
//! the simulator trace of the DPRIVE benchmark.

use ciflow::benchmark::HksBenchmark;
use ciflow::dataflow::Dataflow;
use ciflow::runner::HksRun;
use rpu::RpuConfig;

fn main() {
    ciflow_bench::section("Figure 2 analogue: per-stage activity timelines (DPRIVE, 12.8 GB/s)");
    for dataflow in Dataflow::all() {
        let result = HksRun::new(HksBenchmark::DPRIVE, dataflow)
            .with_rpu(RpuConfig::ciflow_baseline().with_bandwidth(12.8))
            .execute()
            .expect("run");
        println!("\n--- {dataflow} ({}) ---", dataflow.description());
        print!("{}", result.trace.render_ascii(72));
        println!(
            "runtime {:.2} ms, compute idle {:.1}%",
            result.stats.runtime_ms(),
            100.0 * result.stats.compute_idle_fraction()
        );
    }
}
