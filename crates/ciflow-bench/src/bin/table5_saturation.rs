//! Regenerates Table V: the bandwidth and MODOPS each dataflow needs to match
//! ARK's saturation-point performance.

fn main() {
    ciflow_bench::section("Table V analogue: configurations matching ARK's saturation point");
    let rows = ciflow::sweep::table5_rows();
    print!("{}", ciflow::report::render_table5(&rows));
    ciflow_bench::section("Paper reference");
    println!("Sat. point: 128 GB/s, 1x | OC 12.8 GB/s @2x | DC 54.64 GB/s @2x | MP 128 GB/s @2x");
}
