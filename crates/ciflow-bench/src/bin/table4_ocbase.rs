//! Regenerates Table IV: the bandwidth at which OC matches the MP baseline
//! (64 GB/s, evks on-chip), the bandwidth saving, and the OC speedup at that
//! point.

fn main() {
    ciflow_bench::section("Table IV analogue: OCbase bandwidth and OC speedup over MP");
    let rows = ciflow::sweep::table4_rows();
    print!("{}", ciflow::report::render_table4(&rows));
    ciflow_bench::section("Paper reference");
    println!("BTS1 25.6 GB/s 2.5x 1.30x | BTS2 12.8 GB/s 5x 2.42x | BTS3 32 GB/s 2x 1.37x");
    println!("ARK 8 GB/s 8x 4.16x | DPRIVE 12.8 GB/s 5x 2.96x");
}
