//! Simulator perf harness: times schedule generation, engine execution and
//! the full workload sweep, and writes `BENCH_simulator.json` at the
//! repository root (see `ciflow_bench::perf` for what each section means).
//!
//! ```text
//! cargo run -p ciflow-bench --release --bin perf_report [-- --iters N] [--out PATH]
//! ```

use ciflow_bench::perf;

fn main() {
    let mut iters = 5usize;
    let mut out = String::from("BENCH_simulator.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters takes a positive integer");
            }
            "--out" => {
                out = args.next().expect("--out takes a path");
            }
            other => panic!("unknown argument {other:?} (expected --iters N or --out PATH)"),
        }
    }

    ciflow_bench::section("Simulator performance report");
    let report = perf::measure(iters);
    print!("{}", report.render_text());

    let json = report.to_json();
    perf::validate_json(&json).expect("rendered report must satisfy its schema");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("\nwrote {out}");
}
