//! Regenerates Figure 5: BTS3 runtime vs bandwidth with evks streamed from
//! DRAM compared against evks preloaded on-chip.

use ciflow::benchmark::HksBenchmark;
use rpu::EvkPolicy;

fn main() {
    let bandwidths = ciflow_bench::extended_bandwidths();
    let mut series =
        ciflow_bench::sweep_all_dataflows(HksBenchmark::BTS3, &bandwidths, EvkPolicy::Streamed);
    series.extend(ciflow_bench::sweep_all_dataflows(
        HksBenchmark::BTS3,
        &bandwidths,
        EvkPolicy::OnChip,
    ));
    ciflow_bench::section("Figure 5 analogue: BTS3 with evks streamed vs on-chip");
    print!("{}", ciflow::report::render_sweep_csv(&series));
    let baseline = ciflow::sweep::baseline_runtime_ms(HksBenchmark::BTS3);
    println!("\nbaseline (MP @ 64 GB/s, evks on-chip): {baseline:.2} ms");
}
