//! Regenerates the information content of Figure 1: the stage-by-stage shape
//! of hybrid key switching for the ℓ = 33, α = 11, dnum = 3 parameter point.

use ciflow::benchmark::HksBenchmark;
use ciflow::hks_shape::HksShape;

fn main() {
    let figure1 = HksBenchmark {
        name: "Figure-1",
        log_ring_degree: 16,
        q_towers: 33,
        p_towers: 11,
        dnum: 3,
    };
    let shape = HksShape::new(figure1);
    ciflow_bench::section("Figure 1 analogue: HKS stage shapes (ℓ=33, α=11, dnum=3)");
    println!("input polynomial: N x {} towers", shape.ell());
    for j in 0..shape.dnum() {
        println!(
            "digit {j}: {} towers -> BConv extends to beta = {} towers -> NTT -> apply evk over {} towers",
            shape.digit_width(j),
            shape.beta(j),
            shape.extended()
        );
    }
    println!(
        "ModUp reduce: {} partial products summed into 2 x N x {} towers",
        shape.dnum(),
        shape.extended()
    );
    println!(
        "ModDown: 2 x {} aux towers INTT -> BConv to {} towers -> NTT -> combine",
        shape.k(),
        shape.ell()
    );
    println!();
    println!("ModUp operations:   {:>15}", shape.modup_ops());
    println!("ModDown operations: {:>15}", shape.moddown_ops());
    println!("Total operations:   {:>15}", shape.total_ops());
}
